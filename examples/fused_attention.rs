//! Compares the standard (DGL-style) GAT layer against the fused
//! attention kernel (FAK, §3.3 of the paper) on a single host:
//! identical outputs and gradients, a fraction of the peak memory.
//!
//! Run with: `cargo run --release --example fused_attention`

use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sar::graph::datasets;
use sar::nn::{FusedGatLayer, GatConfig, GatLayer};
use sar::tensor::{init, MemoryTracker, Var};

fn main() {
    let dataset = datasets::products_like(2_000, 2);
    let graph = Arc::new(dataset.graph.clone());
    let heads = 4;
    let head_dim = 64;
    let width = heads * head_dim;

    let mut rng = StdRng::seed_from_u64(0);
    let mut cfg = GatConfig::new(width, head_dim, heads);
    cfg.activation = false;
    let standard = GatLayer::new(cfg, &mut rng);
    // Share the exact same parameters between both implementations.
    let fused = FusedGatLayer::from_standard(&standard);
    let x = init::randn(&[dataset.num_nodes(), width], 0.5, &mut rng);

    println!(
        "single GAT layer: {} nodes, {} edges, {heads} heads × {head_dim}\n",
        dataset.num_nodes(),
        dataset.graph.num_edges()
    );

    let mut outputs = Vec::new();
    let mut grads = Vec::new();
    for (name, is_fused) in [
        ("standard (DGL-style)", false),
        ("fused kernel (FAK)", true),
    ] {
        let h = Var::parameter(x.clone());
        MemoryTracker::reset_peak();
        let base = MemoryTracker::stats().current_bytes;
        let t0 = Instant::now();
        let out = if is_fused {
            fused.forward(&graph, &h)
        } else {
            standard.forward(&graph, &h)
        };
        let fwd = t0.elapsed();
        let peak = MemoryTracker::stats().peak_bytes - base;
        let t1 = Instant::now();
        out.sum().backward();
        let bwd = t1.elapsed();
        println!(
            "{name:<22} forward {fwd:>8.2?}  backward {bwd:>8.2?}  peak {:6.2} MiB",
            peak as f64 / (1024.0 * 1024.0)
        );
        outputs.push(out.value_clone());
        grads.push(h.grad().expect("input gradient"));
        for p in standard.params() {
            p.zero_grad();
        }
    }

    let out_ok = outputs[0].allclose(&outputs[1], 1e-4);
    let grad_ok = grads[0].allclose(&grads[1], 1e-3);
    println!("\noutputs identical:   {out_ok}");
    println!("gradients identical: {grad_ok}");
    assert!(out_ok && grad_ok, "implementations must agree");
    println!("\nThe fused kernel never materializes the [E, H] attention");
    println!("coefficients — it recomputes them on the fly in the backward");
    println!("pass, which SAR must do during rematerialization anyway.");
}
