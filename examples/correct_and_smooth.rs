//! Trains a GAT with SAR, then boosts its predictions with distributed
//! Correct & Smooth — the paper's full Table-1 pipeline for one dataset.
//!
//! Run with: `cargo run --release --example correct_and_smooth`

use sar::comm::CostModel;
use sar::core::{train, Arch, Mode, ModelConfig, TrainConfig};
use sar::graph::datasets;
use sar::nn::{CsConfig, LrSchedule};
use sar::partition::multilevel;

fn main() {
    let dataset = datasets::products_like(2_500, 3);
    let partitioning = multilevel(&dataset.graph, 4, 3);

    let cfg = TrainConfig {
        model: ModelConfig {
            arch: Arch::Gat {
                head_dim: 32,
                heads: 4,
            },
            mode: Mode::SarFused,
            layers: 3,
            in_dim: 0,
            num_classes: dataset.num_classes,
            dropout: 0.2,
            batch_norm: true,
            jumping_knowledge: false,
            seed: 7,
        },
        epochs: 40,
        lr: 0.01,
        schedule: LrSchedule::StepDecay {
            every: 20,
            gamma: 0.5,
        },
        label_aug: true,
        aug_frac: 0.5,
        // Correct & Smooth runs distributedly after training, reusing
        // SAR's sequential per-partition propagation.
        cs: Some(CsConfig::default()),
        prefetch_depth: 0,
        seed: 7,
        threads: 1,
        protocol: Default::default(),
        codec: Default::default(),
        mem_budget: 0,
    };

    println!(
        "training 3-layer GAT (SAR+FAK) on {} across {} workers...",
        dataset.name,
        partitioning.num_parts()
    );
    let report = train(&dataset, &partitioning, CostModel::default(), &cfg);

    println!(
        "\nfinal loss:          {:.4}",
        report.losses.last().unwrap()
    );
    println!("val accuracy:        {:.1}%", 100.0 * report.val_acc);
    println!("test accuracy:       {:.1}%", 100.0 * report.test_acc);
    let cs = report.test_acc_cs.expect("C&S was enabled");
    println!("test accuracy + C&S: {:.1}%", 100.0 * cs);
    println!(
        "\nC&S delta: {:+.2} points (paper Table 1 shows +0.5..+3 points)",
        100.0 * (cs - report.test_acc)
    );
}
