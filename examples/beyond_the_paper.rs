//! Extensions beyond the paper's evaluation: a GCN backbone with
//! jumping-knowledge skip connections, trained with SAR, checkpointed,
//! and re-served through distributed inference on a *different* cluster
//! size — demonstrating that SAR handles non-linear tape topologies
//! (§2 notes prior full-batch systems are "specific to linear GNN
//! topologies") and that checkpoints are portable across partitionings.
//!
//! Run with: `cargo run --release --example beyond_the_paper`

use sar::comm::CostModel;
use sar::core::{checkpoint, inference, train, Arch, Mode, ModelConfig, TrainConfig};
use sar::graph::datasets;
use sar::nn::{loss::accuracy, LrSchedule};
use sar::partition::multilevel;

fn main() {
    let dataset = datasets::products_like(2_000, 11);
    let train_part = multilevel(&dataset.graph, 4, 11);

    let cfg = TrainConfig {
        model: ModelConfig {
            arch: Arch::Gcn { hidden: 64 },
            mode: Mode::Sar,
            layers: 3,
            in_dim: 0,
            num_classes: dataset.num_classes,
            dropout: 0.2,
            batch_norm: true,
            // Classify from the concatenation of all three layer outputs.
            jumping_knowledge: true,
            seed: 11,
        },
        epochs: 30,
        lr: 0.02,
        schedule: LrSchedule::Cosine {
            total: 30,
            floor: 0.001,
        },
        label_aug: true,
        aug_frac: 0.5,
        cs: None,
        prefetch_depth: 1, // 3/N memory, overlapped fetches
        seed: 11,
        threads: 1,
        protocol: Default::default(),
        codec: Default::default(),
        mem_budget: 0,
    };

    println!("training 3-layer GCN + jumping knowledge with SAR on 4 workers...");
    let report = train(&dataset, &train_part, CostModel::default(), &cfg);
    println!(
        "loss {:.3} -> {:.3} | test accuracy {:.1}%",
        report.losses.first().unwrap(),
        report.losses.last().unwrap(),
        100.0 * report.test_acc
    );

    // Checkpoint the trained parameters...
    let path = std::env::temp_dir().join("sar_jk_gcn.ckpt");
    checkpoint::save_raw_params(
        &report.final_params,
        std::fs::File::create(&path).expect("create checkpoint"),
    )
    .expect("write checkpoint");
    println!(
        "checkpointed {} parameter tensors to {}",
        report.final_params.len(),
        path.display()
    );

    // ...and serve it with distributed inference on a 7-worker cluster —
    // a partitioning the model has never seen.
    let serve_part = multilevel(&dataset.graph, 7, 99);
    let logits = inference::infer(
        &dataset,
        &serve_part,
        CostModel::default(),
        &cfg.model,
        &report.final_params,
        true,
    );
    let acc = accuracy(&logits, &dataset.labels, &dataset.test_mask);
    println!("re-served on 7 workers: test accuracy {:.1}%", 100.0 * acc);
    assert!(
        (acc - report.test_acc).abs() < 1e-6,
        "inference must be partitioning-independent"
    );
    println!("identical to training-time accuracy — SAR inference is exact.");
    let _ = std::fs::remove_file(&path);
}
