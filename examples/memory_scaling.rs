//! Demonstrates the paper's headline memory claim: per-worker peak memory
//! under SAR shrinks as workers are added (≈ 2/N of the total state),
//! while vanilla domain-parallel training keeps a large halo resident.
//!
//! Trains the same 3-layer GAT under both execution modes at several
//! cluster sizes and prints the per-worker peaks side by side.
//!
//! Run with: `cargo run --release --example memory_scaling`

use sar::comm::CostModel;
use sar::core::{train, Arch, Mode, ModelConfig, TrainConfig};
use sar::graph::datasets;
use sar::nn::LrSchedule;
use sar::partition::multilevel;

fn main() {
    let dataset = datasets::products_like(3_000, 1);
    println!(
        "3-layer GAT (4 heads × 32) on {} ({} edges)\n",
        dataset.name,
        dataset.graph.num_edges()
    );
    println!("workers  domain-parallel  SAR+FAK  ratio");
    for world in [2usize, 4, 8, 16] {
        let partitioning = multilevel(&dataset.graph, world, 1);
        let mut peaks = Vec::new();
        for mode in [Mode::DomainParallel, Mode::SarFused] {
            let cfg = TrainConfig {
                model: ModelConfig {
                    arch: Arch::Gat {
                        head_dim: 32,
                        heads: 4,
                    },
                    mode,
                    layers: 3,
                    in_dim: 0,
                    num_classes: dataset.num_classes,
                    dropout: 0.0,
                    batch_norm: false,
                    jumping_knowledge: false,
                    seed: 1,
                },
                epochs: 2,
                lr: 0.01,
                schedule: LrSchedule::Constant,
                label_aug: false,
                aug_frac: 0.0,
                cs: None,
                prefetch_depth: 0,
                seed: 1,
                threads: 1,
                protocol: Default::default(),
                codec: Default::default(),
                mem_budget: 0,
            };
            let report = train(&dataset, &partitioning, CostModel::default(), &cfg);
            peaks.push(report.max_peak_bytes() as f64 / (1024.0 * 1024.0));
        }
        println!(
            "{world:>7}  {:>14.2}M  {:>6.2}M  {:.2}x",
            peaks[0],
            peaks[1],
            peaks[0] / peaks[1]
        );
    }
    println!("\nSAR's advantage grows with the worker count: the fetched");
    println!("partitions are freed after use instead of living on the tape.");
}
