//! Quickstart: distributed full-batch GNN training with SAR in ~40 lines.
//!
//! Generates a small synthetic node-classification dataset, partitions it
//! METIS-style across 4 simulated workers, trains a 2-layer GraphSage
//! network with Sequential Aggregation and Rematerialization, and prints
//! the loss curve, accuracy and per-worker peak memory.
//!
//! Run with: `cargo run --release --example quickstart`

use sar::comm::CostModel;
use sar::core::{train, Arch, Mode, ModelConfig, TrainConfig};
use sar::graph::datasets;
use sar::nn::LrSchedule;
use sar::partition::multilevel;

fn main() {
    // 1. A synthetic stand-in for ogbn-products (2 000 nodes).
    let dataset = datasets::products_like(2_000, 0);
    println!(
        "dataset: {} — {} nodes, {} edges, {} classes",
        dataset.name,
        dataset.num_nodes(),
        dataset.graph.num_edges(),
        dataset.num_classes
    );

    // 2. Partition across 4 workers (multilevel partitioner ≈ METIS).
    let partitioning = multilevel(&dataset.graph, 4, 0);
    println!(
        "partitioned into {} parts, edge cut {:.1}%, balance {:.3}",
        partitioning.num_parts(),
        100.0 * partitioning.cut_fraction(&dataset.graph),
        partitioning.balance()
    );

    // 3. Train a 2-layer GraphSage with SAR.
    let cfg = TrainConfig {
        model: ModelConfig {
            arch: Arch::GraphSage { hidden: 64 },
            mode: Mode::Sar,
            layers: 2,
            in_dim: 0, // filled in by the trainer
            num_classes: dataset.num_classes,
            dropout: 0.2,
            batch_norm: true,
            jumping_knowledge: false,
            seed: 0,
        },
        epochs: 30,
        lr: 0.01,
        schedule: LrSchedule::StepDecay {
            every: 15,
            gamma: 0.5,
        },
        label_aug: true,
        aug_frac: 0.5,
        cs: None,
        prefetch_depth: 0,
        seed: 0,
        threads: 1,
        protocol: Default::default(),
        codec: Default::default(),
        mem_budget: 0,
    };
    let report = train(&dataset, &partitioning, CostModel::default(), &cfg);

    // 4. Results.
    println!("\nepoch  loss");
    for (e, loss) in report.losses.iter().enumerate().step_by(5) {
        println!("{e:>5}  {loss:.4}");
    }
    println!(
        "\nval accuracy:  {:.1}%\ntest accuracy: {:.1}%",
        100.0 * report.val_acc,
        100.0 * report.test_acc
    );
    for (rank, peak) in report.peak_bytes.iter().enumerate() {
        println!(
            "worker {rank}: peak tensor memory {:.2} MiB",
            *peak as f64 / (1024.0 * 1024.0)
        );
    }
}
