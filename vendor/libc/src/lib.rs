#![warn(missing_docs)]
#![allow(non_camel_case_types)]

//! Offline stand-in for the `libc` crate.
//!
//! Declares exactly the C interface the workspace uses: per-thread CPU
//! clock reads via `clock_gettime(CLOCK_THREAD_CPUTIME_ID, ..)`. The
//! symbols come from the platform libc that std already links.

/// C `int`.
pub type c_int = i32;

/// C `long` (LP64: 64-bit on the Linux targets this workspace builds for).
pub type c_long = i64;

/// Seconds-since-epoch type of [`timespec`].
pub type time_t = i64;

/// Identifier of the calling thread's CPU-time clock (Linux value).
pub const CLOCK_THREAD_CPUTIME_ID: c_int = 3;

/// Identifier of the monotonic clock (Linux value).
pub const CLOCK_MONOTONIC: c_int = 1;

/// C `struct timespec`.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct timespec {
    /// Whole seconds.
    pub tv_sec: time_t,
    /// Nanoseconds in `[0, 1e9)`.
    pub tv_nsec: c_long,
}

#[cfg(unix)]
extern "C" {
    /// Reads clock `clockid` into `tp`; returns 0 on success.
    pub fn clock_gettime(clockid: c_int, tp: *mut timespec) -> c_int;
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;

    #[test]
    fn thread_cpu_clock_reads() {
        let mut ts = timespec {
            tv_sec: 0,
            tv_nsec: 0,
        };
        let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
        assert_eq!(rc, 0);
        assert!(ts.tv_sec >= 0);
        assert!((0..1_000_000_000).contains(&ts.tv_nsec));
    }
}
