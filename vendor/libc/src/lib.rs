#![warn(missing_docs)]
#![allow(non_camel_case_types)]

//! Offline stand-in for the `libc` crate.
//!
//! Declares exactly the C interface the workspace uses: per-thread CPU
//! clock reads via `clock_gettime(CLOCK_THREAD_CPUTIME_ID, ..)` and the
//! `mmap`/`munmap`/`msync` trio backing the out-of-core spill arena in
//! `sar_tensor::tier`. The symbols come from the platform libc that std
//! already links.

/// Opaque C `void` used in pointer position (`*mut c_void`).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub enum c_void {
    /// Variant only present so the type is uninhabited-by-construction;
    /// never instantiated.
    #[doc(hidden)]
    __variant1,
    /// Second hidden variant (mirrors the real `libc` definition).
    #[doc(hidden)]
    __variant2,
}

/// C `int`.
pub type c_int = i32;

/// C `size_t` (pointer-sized unsigned).
pub type size_t = usize;

/// C `off_t` (LP64: 64-bit file offset).
pub type off_t = i64;

/// C `long` (LP64: 64-bit on the Linux targets this workspace builds for).
pub type c_long = i64;

/// Seconds-since-epoch type of [`timespec`].
pub type time_t = i64;

/// Identifier of the calling thread's CPU-time clock (Linux value).
pub const CLOCK_THREAD_CPUTIME_ID: c_int = 3;

/// Identifier of the monotonic clock (Linux value).
pub const CLOCK_MONOTONIC: c_int = 1;

/// `mmap` protection flag: pages may be read (Linux value).
pub const PROT_READ: c_int = 1;

/// `mmap` protection flag: pages may be written (Linux value).
pub const PROT_WRITE: c_int = 2;

/// `mmap` flag: updates are carried through to the underlying file
/// (Linux value).
pub const MAP_SHARED: c_int = 1;

/// Sentinel returned by `mmap` on failure (`(void *) -1`).
pub const MAP_FAILED: *mut c_void = !0usize as *mut c_void;

/// `msync` flag: request synchronous write-back (Linux value).
pub const MS_SYNC: c_int = 4;

/// C `struct timespec`.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct timespec {
    /// Whole seconds.
    pub tv_sec: time_t,
    /// Nanoseconds in `[0, 1e9)`.
    pub tv_nsec: c_long,
}

#[cfg(unix)]
extern "C" {
    /// Reads clock `clockid` into `tp`; returns 0 on success.
    pub fn clock_gettime(clockid: c_int, tp: *mut timespec) -> c_int;

    /// Maps `len` bytes of file `fd` at `offset` into the address space.
    /// Returns [`MAP_FAILED`] on error.
    pub fn mmap(
        addr: *mut c_void,
        len: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;

    /// Unmaps `len` bytes at `addr`; returns 0 on success.
    pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;

    /// Flushes `len` bytes of a shared mapping at `addr` back to the
    /// underlying file; returns 0 on success.
    pub fn msync(addr: *mut c_void, len: size_t, flags: c_int) -> c_int;
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;

    #[test]
    fn thread_cpu_clock_reads() {
        let mut ts = timespec {
            tv_sec: 0,
            tv_nsec: 0,
        };
        let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
        assert_eq!(rc, 0);
        assert!(ts.tv_sec >= 0);
        assert!((0..1_000_000_000).contains(&ts.tv_nsec));
    }

    #[test]
    fn mmap_round_trips_file_bytes() {
        use std::io::Write;
        use std::os::unix::io::AsRawFd;

        let dir = std::env::temp_dir().join(format!("sar-libc-mmap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("probe.bin");
        let mut f = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .expect("open probe file");
        f.write_all(&[7u8; 4096]).expect("seed file");
        f.flush().expect("flush");
        // SAFETY: fd is a valid open file of exactly 4096 bytes; the
        // mapping is unmapped before the file is closed and removed.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                4096,
                PROT_READ | PROT_WRITE,
                MAP_SHARED,
                f.as_raw_fd(),
                0,
            )
        };
        assert_ne!(ptr, MAP_FAILED);
        // SAFETY: ptr maps 4096 valid bytes; offsets below stay in range.
        unsafe {
            let bytes = ptr.cast::<u8>();
            assert_eq!(*bytes, 7);
            *bytes.add(1) = 42;
            assert_eq!(msync(ptr, 4096, MS_SYNC), 0);
            assert_eq!(munmap(ptr, 4096), 0);
        }
        let back = std::fs::read(&path).expect("read back");
        assert_eq!(back[1], 42);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
