#![warn(missing_docs)]

//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no network access, so the workspace vendors the
//! API subset its benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Instead of criterion's statistical engine,
//! each benchmark runs a fixed number of timed iterations and prints
//! `group/id  median  mean` to stdout — enough for coarse comparisons and
//! for keeping the bench targets compiling and runnable in CI.

use std::time::Instant;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id, &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id, &mut |b: &mut Bencher| f(b, input));
        self
    }

    fn run(&mut self, id: &BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher { elapsed_ns: 0 };
            f(&mut b);
            samples.push(b.elapsed_ns);
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<u128>() / samples.len() as u128;
        println!(
            "bench {:<40} median {:>12}  mean {:>12}",
            format!("{}/{}", self.name, id.label),
            fmt_ns(median),
            fmt_ns(mean),
        );
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Times closures inside one benchmark sample.
#[derive(Debug)]
pub struct Bencher {
    elapsed_ns: u128,
}

impl Bencher {
    /// Times one execution of `f` (criterion would time many; one
    /// execution per sample keeps heavyweight distributed benches fast).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.elapsed_ns += start.elapsed().as_nanos();
        drop(out);
    }
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from a parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Collects benchmark functions into one group runner, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits a `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
