#![warn(missing_docs)]

//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access and no registry cache, so the
//! workspace vendors the *exact* API subset it consumes from `rand` 0.9:
//! [`Rng::random`], [`Rng::random_range`], [`SeedableRng::seed_from_u64`]
//! and [`rngs::StdRng`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic, fast, and far better than the tests need.
//! It is **not** a cryptographic generator and makes no stability promise
//! w.r.t. the real `rand` crate's value streams.

pub mod rngs;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the type's standard distribution (uniform in
    /// `[0, 1)` for floats, uniform over all values for integers).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types with a standard (uniform) distribution for [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        // 24 high bits -> uniform in [0, 1) with full f32 precision.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u128 + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * <$t as Standard>::sample(rng)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                start + (end - start) * <$t as Standard>::sample(rng)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let av: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f32 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let a = rng.random_range(5usize..17);
            assert!((5..17).contains(&a));
            let b = rng.random_range(0usize..=4);
            assert!(b <= 4);
            let c = rng.random_range(-3i64..3);
            assert!((-3..3).contains(&c));
            let f = rng.random_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn range_mean_is_plausible() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| rng.random_range(0u64..10)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 4.5).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn works_through_mut_ref() {
        fn draw(rng: &mut impl Rng) -> f32 {
            rng.random()
        }
        let mut rng = StdRng::seed_from_u64(0);
        let _ = draw(&mut rng);
    }
}
