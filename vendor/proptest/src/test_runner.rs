//! Configuration, errors, and the deterministic case generator.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// How many cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of randomized cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case failed.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed with the given message.
    Fail(String),
}

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}

/// Result type property bodies are rewritten into by [`crate::proptest!`].
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic per-case random source.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Builds the generator for (test name, case index) — identical across
    /// runs and machines so failures reproduce.
    pub fn deterministic(name: &str, case: u32) -> Self {
        // FNV-1a over the fully qualified test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(
            h ^ ((case as u64) << 32 | case as u64),
        ))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}
