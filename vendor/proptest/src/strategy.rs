//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `pred`, retrying on rejection.
    ///
    /// # Panics
    ///
    /// Panics if 1000 consecutive samples are rejected.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive samples: {}",
            self.whence
        );
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.sample(rng),
            self.1.sample(rng),
            self.2.sample(rng),
            self.3.sample(rng),
        )
    }
}
