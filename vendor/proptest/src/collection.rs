//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Length specification for [`vec`]: an exact count or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max_exclusive: *r.end() + 1,
        }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = if self.size.min + 1 >= self.size.max_exclusive {
            self.size.min
        } else {
            rng.random_range(self.size.min..self.size.max_exclusive)
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length
/// matches `size` (a `usize` for an exact length, or a range).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
