#![warn(missing_docs)]

//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no network access, so the workspace vendors the
//! API subset its property tests use: the [`proptest!`] macro with
//! `proptest_config`, range and tuple strategies, `prop_map` /
//! `prop_flat_map`, [`collection::vec`], and the `prop_assert*` macros.
//!
//! Semantics differ from real proptest in one deliberate way: failing
//! cases are **not shrunk** — the failing inputs are reported as sampled.
//! Case generation is deterministic per (test name, case index), so
//! failures reproduce exactly across runs.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( #[test] fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )*
                    let __result: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        { $body }
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case,
                            config.cases,
                            e,
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current proptest case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current proptest case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Fails the current proptest case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}
