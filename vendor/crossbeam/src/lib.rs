#![warn(missing_docs)]

//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module is provided, implemented over
//! `std::sync::mpsc`. The workspace uses unbounded MPSC channels with one
//! receiver per worker thread, which std's channels support directly; the
//! crossbeam niceties (select, multi-consumer cloning of receivers) are
//! not needed and not offered.

pub mod channel {
    //! Unbounded MPSC channels with the `crossbeam-channel` names.

    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half of an unbounded channel. Clonable and `Send`.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; never blocks. Fails only if the receiver has
        /// been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// The receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Returns a message if one is already queued.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_round_trip() {
            let (tx, rx) = unbounded();
            tx.send(7u32).unwrap();
            assert_eq!(rx.recv().unwrap(), 7);
        }

        #[test]
        fn clone_senders_feed_one_receiver() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(1u8).unwrap())
                .join()
                .unwrap();
            tx.send(2).unwrap();
            let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
        }

        #[test]
        fn recv_timeout_expires() {
            let (tx, rx) = unbounded::<u8>();
            let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
            assert_eq!(err, RecvTimeoutError::Timeout);
            drop(tx);
        }
    }
}
