//! The rank-0 front-end: request batching, backpressure, and graceful
//! shutdown over a resident [`ServeEngine`].
//!
//! Threading model: the engine owns the worker-mesh context, which is not
//! `Send`, so all cluster work happens on the thread that calls
//! [`serve`]. Around it:
//!
//! - an **accept thread** admits client connections (non-blocking accept
//!   polled against the closing flag, so it always joins cleanly);
//! - one **reader thread per connection** decodes request frames and
//!   pushes jobs into a *bounded* queue — when the queue is full the
//!   blocking push stalls that reader, which stops draining its socket:
//!   backpressure reaches the client as TCP flow control, and nothing in
//!   the server grows without bound;
//! - **responses** go back over a mutex-guarded clone of the connection,
//!   so the engine thread and a reader rejecting a malformed frame never
//!   interleave partial frames.
//!
//! Batching: the engine thread takes the first queued query, then keeps
//! coalescing until `max_batch` queries are aboard or `max_delay` has
//! elapsed since the first one — one MFG build and one restricted
//! rotation answer the whole batch, and each client gets its own rows
//! back. Non-query operations are serialized between batches in arrival
//! order.
//!
//! Graceful shutdown: a `Shutdown` request flips the closing flag (new
//! queries are refused at the reader), the queue is drained to the last
//! job, the rotation runs the final barrier, and only then does the
//! shutdown requester get its acknowledgement — by the time the client
//! sees the ack, every in-flight request has been answered.

use std::io::Write;
use std::net::{Shutdown as SockShutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use sar_comm::wire::{self, FrameKind, WireError};
use sar_comm::Payload;

use crate::engine::{ServeEngine, StatsSnapshot, WorkerStep};
use crate::error::ServeError;
use crate::proto::{self, Request};

/// Front-end knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Most queries coalesced into one MFG execution.
    pub max_batch: usize,
    /// Longest a query waits for batch-mates before executing.
    pub max_delay: Duration,
    /// Bounded job-queue depth; beyond it, readers stall (backpressure).
    pub queue_cap: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_batch: 32,
            max_delay: Duration::from_millis(2),
            queue_cap: 256,
        }
    }
}

/// What the front-end did over its lifetime.
#[derive(Debug, Clone, Copy)]
pub struct ServeSummary {
    /// Client connections admitted.
    pub connections: u64,
    /// Requests answered (all opcodes, including errors).
    pub requests: u64,
    /// Final engine counters.
    pub stats: StatsSnapshot,
}

/// One client's write half plus the request id to echo.
#[derive(Clone)]
struct Responder {
    stream: Arc<Mutex<TcpStream>>,
    tag: u64,
}

impl Responder {
    fn send(&self, body: Vec<u8>) {
        // A poisoned lock just means another thread died mid-write; the
        // stream is unusable either way, so best-effort is correct here.
        let mut guard = match self.stream.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        let _ = wire::write_frame(
            &mut *guard,
            FrameKind::Response,
            0,
            self.tag,
            &Payload::Bytes(body),
        );
        let _ = guard.flush();
    }
}

/// A decoded request bound to where its answer goes.
struct Job {
    req: Request,
    resp: Responder,
}

/// Runs the resident worker loop on a non-zero rank: wait for control
/// operations, execute them, leave after the shutdown barrier. Returns
/// the rank's final counters.
///
/// # Errors
///
/// [`ServeError`] if the mesh fails or a control message is malformed —
/// an idle receive timeout is not an error, the loop just polls again.
pub fn worker_loop(engine: &mut ServeEngine) -> Result<StatsSnapshot, ServeError> {
    loop {
        match engine.step()? {
            WorkerStep::Shutdown => return Ok(engine.snapshot()),
            WorkerStep::Idle | WorkerStep::Served => {}
        }
    }
}

/// Runs the rank-0 front-end until a client requests shutdown. Consumes
/// the listener; the engine must be rank 0's.
///
/// # Errors
///
/// [`ServeError`] on listener setup failure or a mesh failure mid-batch.
/// Client-level problems (malformed frames, bad node ids, unsupported
/// ops) are answered with error responses and never end the loop.
pub fn serve(
    engine: &mut ServeEngine,
    listener: TcpListener,
    cfg: &ServerConfig,
) -> Result<ServeSummary, ServeError> {
    if engine.rank() != 0 {
        return Err(ServeError::Protocol(format!(
            "serve() started on rank {}, the front-end is rank 0",
            engine.rank()
        )));
    }
    let max_batch = cfg.max_batch.max(1);
    let (tx, rx) = std::sync::mpsc::sync_channel::<Job>(cfg.queue_cap.max(1));
    let closing = Arc::new(AtomicBool::new(false));
    let conns: Arc<Mutex<Vec<Arc<Mutex<TcpStream>>>>> = Arc::new(Mutex::new(Vec::new()));
    let connections = Arc::new(std::sync::atomic::AtomicU64::new(0));

    listener.set_nonblocking(true)?;
    let accept_thread = {
        let tx = tx.clone();
        let closing = Arc::clone(&closing);
        let conns = Arc::clone(&conns);
        let connections = Arc::clone(&connections);
        std::thread::spawn(move || {
            let mut readers = Vec::new();
            while !closing.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        connections.fetch_add(1, Ordering::SeqCst);
                        stream.set_nodelay(true).ok();
                        stream.set_nonblocking(false).ok();
                        let write_half = match stream.try_clone() {
                            Ok(clone) => Arc::new(Mutex::new(clone)),
                            Err(_) => continue,
                        };
                        if let Ok(mut reg) = conns.lock() {
                            reg.push(Arc::clone(&write_half));
                        }
                        let tx = tx.clone();
                        let closing = Arc::clone(&closing);
                        readers.push(std::thread::spawn(move || {
                            reader_loop(stream, &write_half, &tx, &closing);
                        }));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(_) => break,
                }
            }
            for r in readers {
                let _ = r.join();
            }
        })
    };
    drop(tx); // The engine thread only receives.

    let mut requests: u64 = 0;
    let mut mesh_failure: Option<ServeError> = None;
    'outer: loop {
        let first = match rx.recv_timeout(Duration::from_millis(20)) {
            Ok(job) => job,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        let mut batch: Vec<Job> = Vec::new();
        let mut others: Vec<Job> = Vec::new();
        let stash = |job: Job, batch: &mut Vec<Job>, others: &mut Vec<Job>| {
            if matches!(job.req, Request::Query(_)) {
                batch.push(job);
            } else {
                others.push(job);
            }
        };
        stash(first, &mut batch, &mut others);

        // Coalesce: wait out the delay window while the batch has room.
        let deadline = Instant::now() + cfg.max_delay;
        while batch.len() < max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(job) => stash(job, &mut batch, &mut others),
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }

        if !batch.is_empty() {
            requests += batch.len() as u64;
            if let Err(e) = run_query_batch(engine, &batch) {
                mesh_failure = Some(e);
                break 'outer;
            }
        }
        for job in others {
            requests += 1;
            let down = match run_other(engine, &job) {
                Ok(down) => down,
                Err(e) => {
                    mesh_failure = Some(e);
                    break 'outer;
                }
            };
            if down {
                // Drain: answer everything already queued (readers have
                // stopped admitting queries), then quiesce the rotation.
                closing.store(true, Ordering::SeqCst);
                let mut rest: Vec<Job> = rx.try_iter().collect();
                while !rest.is_empty() {
                    let tail: Vec<Job> = rest
                        .drain(..)
                        .filter(|j| matches!(j.req, Request::Query(_)))
                        .collect();
                    if !tail.is_empty() {
                        requests += tail.len() as u64;
                        if let Err(e) = run_query_batch(engine, &tail) {
                            mesh_failure = Some(e);
                            break;
                        }
                    }
                    rest = rx.try_iter().collect();
                }
                if mesh_failure.is_none() {
                    if let Err(e) = engine.shutdown() {
                        mesh_failure = Some(e);
                    }
                }
                job.resp.send(proto::encode_ack(proto::OP_SHUTDOWN));
                break 'outer;
            }
        }
    }

    closing.store(true, Ordering::SeqCst);
    // Unblock readers parked on their sockets so their threads join.
    if let Ok(reg) = conns.lock() {
        for conn in reg.iter() {
            if let Ok(s) = conn.lock() {
                let _ = s.shutdown(SockShutdown::Both);
            }
        }
    }
    let _ = accept_thread.join();
    match mesh_failure {
        Some(e) => Err(e),
        None => Ok(ServeSummary {
            connections: connections.load(Ordering::SeqCst),
            requests,
            stats: engine.snapshot(),
        }),
    }
}

/// Per-connection read loop: decode frames, answer cheap failures
/// locally, hand real work to the engine thread through the bounded
/// queue.
fn reader_loop(
    mut stream: TcpStream,
    write_half: &Arc<Mutex<TcpStream>>,
    tx: &SyncSender<Job>,
    closing: &AtomicBool,
) {
    loop {
        let frame = match wire::read_frame(&mut stream) {
            Ok(f) => f,
            Err(WireError::Eof) => break,
            Err(WireError::Io(_)) => break,
            Err(e) => {
                // Corrupt frame: the stream may be desynchronized, so
                // report and hang up rather than guess at a resync.
                Responder {
                    stream: Arc::clone(write_half),
                    tag: 0,
                }
                .send(proto::encode_error(&format!("bad frame: {e}")));
                break;
            }
        };
        let resp = Responder {
            stream: Arc::clone(write_half),
            tag: frame.tag,
        };
        if frame.kind != FrameKind::Request {
            resp.send(proto::encode_error(&format!(
                "unexpected {:?} frame on a client connection",
                frame.kind
            )));
            continue;
        }
        let body = match frame.payload {
            Payload::Bytes(b) => b,
            other => {
                resp.send(proto::encode_error(&format!(
                    "request payload must be bytes, got {}",
                    other.kind()
                )));
                continue;
            }
        };
        let req = match proto::decode_request(&body) {
            Ok(r) => r,
            Err(e) => {
                resp.send(proto::encode_error(&e.to_string()));
                continue;
            }
        };
        if closing.load(Ordering::SeqCst) && !matches!(req, Request::Shutdown) {
            resp.send(proto::encode_error("server is shutting down"));
            continue;
        }
        // Blocking push = backpressure; but bail out promptly if the
        // engine thread is gone.
        let mut job = Job { req, resp };
        loop {
            match tx.try_send(job) {
                Ok(()) => break,
                Err(TrySendError::Full(j)) => {
                    if closing.load(Ordering::SeqCst) {
                        j.resp.send(proto::encode_error("server is shutting down"));
                        break;
                    }
                    job = j;
                    std::thread::sleep(Duration::from_micros(200));
                }
                Err(TrySendError::Disconnected(j)) => {
                    j.resp.send(proto::encode_error("server is shutting down"));
                    return;
                }
            }
        }
    }
}

/// Executes one coalesced query batch and scatters per-client answers.
/// Client-level errors (bad ids) are answered per-job; only a mesh
/// failure propagates.
fn run_query_batch(engine: &mut ServeEngine, jobs: &[Job]) -> Result<(), ServeError> {
    // Validate per job so one bad id rejects one client, not the batch.
    let mut live: Vec<(&Job, &[u32])> = Vec::with_capacity(jobs.len());
    for job in jobs {
        if let Request::Query(ids) = &job.req {
            match ids.iter().find(|&&id| (id as usize) >= engine.num_nodes()) {
                Some(&bad) => job.resp.send(proto::encode_error(&format!(
                    "node {bad} out of range (graph has {} nodes)",
                    engine.num_nodes()
                ))),
                None => live.push((job, ids)),
            }
        }
    }
    if live.is_empty() {
        return Ok(());
    }
    let all: Vec<u32> = live
        .iter()
        .flat_map(|(_, ids)| ids.iter().copied())
        .collect();
    match engine.execute_query(&all) {
        Ok((logits, _stats)) => {
            let cols = engine.num_classes();
            let mut offset = 0usize;
            for (job, ids) in live {
                let rows = ids.len();
                let values = &logits.data()[offset * cols..(offset + rows) * cols];
                job.resp.send(proto::encode_logits(rows, cols, values));
                offset += rows;
            }
            Ok(())
        }
        Err(e @ ServeError::Comm(_)) => {
            for (job, _) in live {
                job.resp.send(proto::encode_error("worker mesh failure"));
            }
            Err(e)
        }
        Err(e) => {
            let msg = e.to_string();
            for (job, _) in live {
                job.resp.send(proto::encode_error(&msg));
            }
            Ok(())
        }
    }
}

/// Executes one non-query operation. Returns whether it was a shutdown
/// (whose ack is deferred until the drain completes).
fn run_other(engine: &mut ServeEngine, job: &Job) -> Result<bool, ServeError> {
    match &job.req {
        Request::Query(_) => Ok(false),
        Request::Update { node, values } => {
            match engine.update_feature(*node, values) {
                Ok(()) => job.resp.send(proto::encode_ack(proto::OP_UPDATE)),
                Err(e @ ServeError::Comm(_)) => {
                    job.resp.send(proto::encode_error("worker mesh failure"));
                    return Err(e);
                }
                Err(e) => job.resp.send(proto::encode_error(&e.to_string())),
            }
            Ok(false)
        }
        Request::Reload => {
            match engine.reload() {
                Ok(()) => job.resp.send(proto::encode_ack(proto::OP_RELOAD)),
                Err(e @ ServeError::Comm(_)) => {
                    job.resp.send(proto::encode_error("worker mesh failure"));
                    return Err(e);
                }
                Err(e) => job.resp.send(proto::encode_error(&e.to_string())),
            }
            Ok(false)
        }
        Request::Stats => {
            job.resp
                .send(proto::encode_stats(&engine.snapshot().to_counters()));
            Ok(false)
        }
        Request::Shutdown => Ok(true),
    }
}
