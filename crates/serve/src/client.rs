//! A blocking client for the `sar-serve` front-end.
//!
//! Speaks the framed serving protocol over one TCP connection: each call
//! writes a `Request` frame with a monotonically increasing request id
//! and blocks until the matching `Response` frame comes back (ids are
//! verified, so a desynchronized stream is a typed error, not a wrong
//! answer).

use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use sar_comm::wire::{self, FrameKind};
use sar_comm::Payload;
use sar_tensor::Tensor;

use crate::engine::StatsSnapshot;
use crate::error::ServeError;
use crate::proto::{self, Request, Response};

/// A connected serving client.
pub struct ServeClient {
    stream: TcpStream,
    next_tag: u64,
}

impl ServeClient {
    /// Connects to a front-end.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<ServeClient, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(ServeClient {
            stream,
            next_tag: 1,
        })
    }

    /// Sets (or clears) the per-call receive timeout.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the socket rejects the option.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ServeError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    fn call(&mut self, req: &Request) -> Result<Response, ServeError> {
        let tag = self.next_tag;
        self.next_tag += 1;
        wire::write_frame(
            &mut self.stream,
            FrameKind::Request,
            0,
            tag,
            &Payload::Bytes(proto::encode_request(req)),
        )?;
        self.stream.flush()?;
        let frame = wire::read_frame(&mut self.stream)
            .map_err(|e| ServeError::Protocol(format!("reading response: {e}")))?;
        if frame.kind != FrameKind::Response {
            return Err(ServeError::Protocol(format!(
                "expected a response frame, got {:?}",
                frame.kind
            )));
        }
        if frame.tag != tag {
            return Err(ServeError::Protocol(format!(
                "response id {} does not match request id {tag}",
                frame.tag
            )));
        }
        let body = frame.payload.try_into_bytes()?;
        proto::decode_response(&body)
    }

    /// Queries logits for a batch of global node ids; returns a
    /// `[ids.len(), num_classes]` tensor in request order.
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] carrying the server's message on a
    /// rejected query, or on a malformed reply.
    pub fn query(&mut self, ids: &[u32]) -> Result<Tensor, ServeError> {
        match self.call(&Request::Query(ids.to_vec()))? {
            Response::Logits { rows, cols, values } => {
                if rows != ids.len() || values.len() != rows * cols {
                    return Err(ServeError::Protocol(format!(
                        "logits shape [{rows}, {cols}] with {} values does not cover {} queries",
                        values.len(),
                        ids.len()
                    )));
                }
                Ok(Tensor::from_vec(&[rows, cols], values))
            }
            Response::Error(msg) => Err(ServeError::Protocol(msg)),
            other => Err(ServeError::Protocol(format!(
                "unexpected reply to a query: {other:?}"
            ))),
        }
    }

    /// Overwrites one node's input feature row cluster-wide.
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] carrying the server's message on
    /// rejection.
    pub fn update_feature(&mut self, node: u32, values: &[f32]) -> Result<(), ServeError> {
        self.expect_ack(&Request::Update {
            node,
            values: values.to_vec(),
        })
    }

    /// Asks the cluster to reload parameters from its checkpoint path.
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] carrying the server's message on
    /// rejection (missing path, unreadable or mismatched file).
    pub fn reload(&mut self) -> Result<(), ServeError> {
        self.expect_ack(&Request::Reload)
    }

    /// Fetches the front-end's cumulative serving counters.
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] on a malformed stats block.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ServeError> {
        match self.call(&Request::Stats)? {
            Response::Stats(counters) => StatsSnapshot::from_counters(&counters),
            Response::Error(msg) => Err(ServeError::Protocol(msg)),
            other => Err(ServeError::Protocol(format!(
                "unexpected reply to a stats request: {other:?}"
            ))),
        }
    }

    /// Requests a graceful cluster shutdown; returns once every in-flight
    /// request has been answered and the rotation has quiesced.
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] if the server rejects the request.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        self.expect_ack(&Request::Shutdown)
    }

    fn expect_ack(&mut self, req: &Request) -> Result<(), ServeError> {
        match self.call(req)? {
            Response::Ack => Ok(()),
            Response::Error(msg) => Err(ServeError::Protocol(msg)),
            other => Err(ServeError::Protocol(format!(
                "expected an acknowledgement, got {other:?}"
            ))),
        }
    }
}
