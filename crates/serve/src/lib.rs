#![warn(missing_docs)]

//! Distributed inference serving on top of the SAR runtime.
//!
//! Training computes every layer over every node, full-batch. A serving
//! request asks for logits of a handful of nodes — recomputing the whole
//! graph per query would waste both compute and the rotation's bandwidth.
//! This crate keeps the trained cluster *resident* (each rank holds its
//! checkpoint parameters and feature partition) and answers each query
//! batch over the query set's **message-flow graph** (MFG): per-layer
//! bipartite slices of the [`DistGraph`](sar_core::DistGraph) built by
//! [`sar_core::mfg`], so every rank fetches only the rows the K-hop
//! neighborhood actually references. The same ascending-column kernels as
//! training run over the slices, which makes served logits **bitwise
//! identical** to the corresponding rows of a full-graph
//! [`infer`](sar_core::infer) — the parity invariant this crate's tests
//! pin down.
//!
//! The moving parts:
//!
//! * [`ServeEngine`] — the per-rank resident core: MFG construction (an
//!   L-round request exchange), the restricted rotation forward, the
//!   per-level [`EmbedCache`], feature updates and checkpoint reloads.
//!   Rank 0 drives; other ranks sit in [`worker_loop`] serving the
//!   rotation.
//! * [`serve`] — the rank-0 front-end: accepts client connections over
//!   the same wire format as the worker mesh (new
//!   [`FrameKind::Request`](sar_comm::wire::FrameKind) /
//!   [`FrameKind::Response`](sar_comm::wire::FrameKind) frames), coalesces
//!   concurrent queries into one MFG execution with bounded queueing and
//!   a max-delay/max-batch policy, and drains in-flight requests before
//!   the rotation quiesces on shutdown.
//! * [`ServeClient`] — a synchronous client speaking the request codec in
//!   [`proto`].

mod cache;
mod client;
mod engine;
mod error;
mod params;
pub mod proto;
mod server;

pub use cache::{CacheStats, EmbedCache};
pub use client::ServeClient;
pub use engine::{BatchStats, EngineSetup, RawParams, ServeEngine, StatsSnapshot, WorkerStep};
pub use error::ServeError;
pub use params::{LayerParams, LayerSpec, ServeModel};
pub use server::{serve, worker_loop, ServeSummary, ServerConfig};
