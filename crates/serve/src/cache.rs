//! The per-rank L1 embedding cache.
//!
//! Serving recomputes a query's K-hop MFG from the input features every
//! time; hidden activations deep in that cone are shared across queries
//! that land in the same neighborhood. The cache keeps recently computed
//! hidden rows keyed by `(layer level, local node)` so a later query can
//! prune its MFG at the cached frontier — fewer destination rows at that
//! level means fewer fetched source rows below it.
//!
//! Correctness contract: a cached row is exactly the value the forward
//! pass produced (bitwise), so substituting it for recomputation cannot
//! change any logit. Anything that could change activations — a feature
//! update, a checkpoint reload — must call [`EmbedCache::invalidate`]
//! *before* the next batch executes; the engine does this explicitly.
//!
//! Capacity is bounded (a row budget across all levels). Insertion past
//! capacity is a no-op rather than an eviction: serving workloads skew
//! heavily toward hub nodes, which are also the rows computed first, so
//! fill-and-hold captures most of the benefit without an eviction policy
//! on the hot path.

use std::collections::HashMap;

/// Cumulative cache counters, for observability and the bench report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Rows answered from the cache.
    pub hits: u64,
    /// Rows that had to be computed.
    pub misses: u64,
    /// Rows inserted.
    pub inserts: u64,
    /// Explicit whole-cache invalidations.
    pub invalidations: u64,
}

/// A bounded per-level map from local node id to its hidden activation
/// row at that level.
#[derive(Debug)]
pub struct EmbedCache {
    /// `levels[k]` caches activations entering level `k`; slots 0 and `L`
    /// exist but stay empty (inputs are resident, logits are per-query).
    levels: Vec<HashMap<u32, Vec<f32>>>,
    capacity_rows: usize,
    rows: usize,
    stats: CacheStats,
}

impl EmbedCache {
    /// A cache spanning levels `0..=levels` with a total row budget.
    /// `capacity_rows == 0` disables caching entirely.
    #[must_use]
    pub fn new(levels: usize, capacity_rows: usize) -> Self {
        EmbedCache {
            levels: vec![HashMap::new(); levels + 1],
            capacity_rows,
            rows: 0,
            stats: CacheStats::default(),
        }
    }

    /// Splits an ascending row set into `(cached, missing)` — both
    /// ascending — counting one hit or miss per row.
    pub fn split(&mut self, level: usize, rows: &[u32]) -> (Vec<u32>, Vec<u32>) {
        let map = &self.levels[level];
        let mut cached = Vec::new();
        let mut missing = Vec::with_capacity(rows.len());
        for &r in rows {
            if map.contains_key(&r) {
                cached.push(r);
            } else {
                missing.push(r);
            }
        }
        self.stats.hits += cached.len() as u64;
        self.stats.misses += missing.len() as u64;
        (cached, missing)
    }

    /// The cached row, if present. Does not touch the hit/miss counters —
    /// [`EmbedCache::split`] already classified the row set.
    #[must_use]
    pub fn get(&self, level: usize, row: u32) -> Option<&[f32]> {
        self.levels[level].get(&row).map(Vec::as_slice)
    }

    /// Inserts a computed row, unless the budget is exhausted or the row
    /// is already present.
    pub fn insert(&mut self, level: usize, row: u32, value: Vec<f32>) {
        if self.rows >= self.capacity_rows || self.levels[level].contains_key(&row) {
            return;
        }
        self.levels[level].insert(row, value);
        self.rows += 1;
        self.stats.inserts += 1;
    }

    /// Drops every cached row. Must run before the next batch whenever
    /// features or parameters change.
    pub fn invalidate(&mut self) {
        for map in &mut self.levels {
            map.clear();
        }
        self.rows = 0;
        self.stats.invalidations += 1;
    }

    /// Rows currently cached, across all levels.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Cumulative counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_classifies_and_counts() {
        let mut c = EmbedCache::new(2, 8);
        c.insert(1, 3, vec![1.0]);
        c.insert(1, 7, vec![2.0]);
        let (hit, miss) = c.split(1, &[1, 3, 5, 7]);
        assert_eq!(hit, vec![3, 7]);
        assert_eq!(miss, vec![1, 5]);
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
        assert_eq!(c.get(1, 3), Some(&[1.0][..]));
        assert_eq!(c.get(2, 3), None);
    }

    #[test]
    fn capacity_bounds_insertion() {
        let mut c = EmbedCache::new(1, 2);
        c.insert(1, 0, vec![0.0]);
        c.insert(1, 1, vec![1.0]);
        c.insert(1, 2, vec![2.0]); // over budget: dropped
        assert_eq!(c.rows(), 2);
        assert!(c.get(1, 2).is_none());
        assert_eq!(c.stats().inserts, 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = EmbedCache::new(1, 0);
        c.insert(1, 0, vec![0.0]);
        assert_eq!(c.rows(), 0);
        let (hit, miss) = c.split(1, &[0]);
        assert!(hit.is_empty());
        assert_eq!(miss, vec![0]);
    }

    #[test]
    fn invalidate_clears_everything() {
        let mut c = EmbedCache::new(2, 8);
        c.insert(1, 3, vec![1.0]);
        c.insert(2, 4, vec![2.0]);
        c.invalidate();
        assert_eq!(c.rows(), 0);
        assert!(c.get(1, 3).is_none());
        assert!(c.get(2, 4).is_none());
        assert_eq!(c.stats().invalidations, 1);
        // Reinsertion after invalidation works (budget was released).
        c.insert(1, 3, vec![1.0]);
        assert_eq!(c.rows(), 1);
    }
}
