//! The serving byte protocol.
//!
//! Client traffic rides the same checksummed wire frames as the worker
//! mesh ([`sar_comm::wire`]), under the serving-only frame kinds
//! `Request` / `Response`; the frame `tag` carries a client-chosen
//! request id echoed back on the response. This module defines what goes
//! *inside* those frames, plus the rank-0 → worker control codec.
//!
//! Request body: one opcode byte, then opcode-specific little-endian
//! payload. Response body: one status byte (0 = ok, 1 = error), then a
//! result payload (logits matrix, stats block, or a UTF-8 error message).
//!
//! Everything here is pure encode/decode — malformed input returns
//! [`ServeError::Protocol`], never a panic, because these bytes arrive
//! from the network.

use crate::error::ServeError;

/// Opcode: query a batch of node ids for logits.
pub const OP_QUERY: u8 = 1;
/// Opcode: overwrite one node's input feature row.
pub const OP_UPDATE: u8 = 2;
/// Opcode: reload model parameters from the server's checkpoint path.
pub const OP_RELOAD: u8 = 3;
/// Opcode: fetch the front-end's serving statistics.
pub const OP_STATS: u8 = 4;
/// Opcode: drain in-flight requests and shut the cluster down.
pub const OP_SHUTDOWN: u8 = 5;

/// Response status: success.
pub const STATUS_OK: u8 = 0;
/// Response status: failure (body is a UTF-8 message).
pub const STATUS_ERR: u8 = 1;

/// A decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Node-classification query over global node ids.
    Query(Vec<u32>),
    /// Overwrite the input feature row of one node.
    Update {
        /// Global node id.
        node: u32,
        /// New feature values (base feature width, label-augmentation
        /// channels are derived server-side).
        values: Vec<f32>,
    },
    /// Reload parameters from the configured checkpoint.
    Reload,
    /// Fetch serving statistics.
    Stats,
    /// Graceful shutdown.
    Shutdown,
}

/// A decoded response body.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Query result: `[rows, cols]` logits, row-major, in request order.
    Logits {
        /// Number of queried nodes.
        rows: usize,
        /// Number of classes.
        cols: usize,
        /// Row-major values.
        values: Vec<f32>,
    },
    /// Acknowledgement with no payload (update / reload / shutdown).
    Ack,
    /// Statistics block.
    Stats(Vec<u64>),
    /// Server-side failure.
    Error(String),
}

// ----------------------------------------------------------------------
// Little-endian cursor helpers
// ----------------------------------------------------------------------

/// A bounds-checked little-endian reader over a received byte buffer.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Wraps a buffer.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ServeError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(ServeError::Protocol(format!(
                "message truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len()
            ))),
        }
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, ServeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, ServeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, ServeError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Reads `n` little-endian `u32`s.
    pub fn u32s(&mut self, n: usize) -> Result<Vec<u32>, ServeError> {
        let b = self.take(n.saturating_mul(4))?;
        Ok(b.chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    /// Reads `n` little-endian `f32`s.
    pub fn f32s(&mut self, n: usize) -> Result<Vec<f32>, ServeError> {
        let b = self.take(n.saturating_mul(4))?;
        Ok(b.chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    /// The remaining bytes.
    #[must_use]
    pub fn rest(&self) -> &'a [u8] {
        &self.buf[self.pos..]
    }

    /// Errors unless the buffer is fully consumed.
    pub fn finish(&self) -> Result<(), ServeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ServeError::Protocol(format!(
                "{} trailing bytes after message",
                self.buf.len() - self.pos
            )))
        }
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32s(out: &mut Vec<u8>, vs: &[f32]) {
    out.reserve(vs.len() * 4);
    for v in vs {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn put_u32s(out: &mut Vec<u8>, vs: &[u32]) {
    out.reserve(vs.len() * 4);
    for v in vs {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

// ----------------------------------------------------------------------
// Request codec
// ----------------------------------------------------------------------

/// Encodes a client request body.
#[must_use]
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    match req {
        Request::Query(ids) => {
            out.push(OP_QUERY);
            put_u32(&mut out, ids.len() as u32);
            put_u32s(&mut out, ids);
        }
        Request::Update { node, values } => {
            out.push(OP_UPDATE);
            put_u32(&mut out, *node);
            put_u32(&mut out, values.len() as u32);
            put_f32s(&mut out, values);
        }
        Request::Reload => out.push(OP_RELOAD),
        Request::Stats => out.push(OP_STATS),
        Request::Shutdown => out.push(OP_SHUTDOWN),
    }
    out
}

/// Decodes a client request body.
///
/// # Errors
///
/// [`ServeError::Protocol`] on unknown opcodes, truncation, or trailing
/// bytes.
pub fn decode_request(buf: &[u8]) -> Result<Request, ServeError> {
    let mut c = Cursor::new(buf);
    let op = c.u8()?;
    let req = match op {
        OP_QUERY => {
            let n = c.u32()? as usize;
            Request::Query(c.u32s(n)?)
        }
        OP_UPDATE => {
            let node = c.u32()?;
            let dim = c.u32()? as usize;
            Request::Update {
                node,
                values: c.f32s(dim)?,
            }
        }
        OP_RELOAD => Request::Reload,
        OP_STATS => Request::Stats,
        OP_SHUTDOWN => Request::Shutdown,
        other => {
            return Err(ServeError::Protocol(format!(
                "unknown request opcode {other}"
            )))
        }
    };
    c.finish()?;
    Ok(req)
}

// ----------------------------------------------------------------------
// Response codec
// ----------------------------------------------------------------------

/// Encodes a successful query response.
#[must_use]
pub fn encode_logits(rows: usize, cols: usize, values: &[f32]) -> Vec<u8> {
    let mut out = vec![STATUS_OK, OP_QUERY];
    put_u32(&mut out, rows as u32);
    put_u32(&mut out, cols as u32);
    put_f32s(&mut out, values);
    out
}

/// Encodes a payload-free acknowledgement.
#[must_use]
pub fn encode_ack(op: u8) -> Vec<u8> {
    vec![STATUS_OK, op]
}

/// Encodes a statistics block (a flat list of named-by-position `u64`
/// counters; see [`StatsSnapshot`](crate::StatsSnapshot) for the order).
#[must_use]
pub fn encode_stats(counters: &[u64]) -> Vec<u8> {
    let mut out = vec![STATUS_OK, OP_STATS];
    put_u32(&mut out, counters.len() as u32);
    for &v in counters {
        put_u64(&mut out, v);
    }
    out
}

/// Encodes a failure response.
#[must_use]
pub fn encode_error(msg: &str) -> Vec<u8> {
    let mut out = vec![STATUS_ERR];
    out.extend_from_slice(msg.as_bytes());
    out
}

/// Decodes a response body.
///
/// # Errors
///
/// [`ServeError::Protocol`] on malformed bytes.
pub fn decode_response(buf: &[u8]) -> Result<Response, ServeError> {
    let mut c = Cursor::new(buf);
    let status = c.u8()?;
    if status == STATUS_ERR {
        return Ok(Response::Error(
            String::from_utf8_lossy(c.rest()).into_owned(),
        ));
    }
    if status != STATUS_OK {
        return Err(ServeError::Protocol(format!(
            "unknown response status {status}"
        )));
    }
    let op = c.u8()?;
    let resp = match op {
        OP_QUERY => {
            let rows = c.u32()? as usize;
            let cols = c.u32()? as usize;
            let values = c.f32s(rows.saturating_mul(cols))?;
            Response::Logits { rows, cols, values }
        }
        OP_STATS => {
            let n = c.u32()? as usize;
            let mut counters = Vec::with_capacity(n);
            for _ in 0..n {
                counters.push(c.u64()?);
            }
            Response::Stats(counters)
        }
        OP_UPDATE | OP_RELOAD | OP_SHUTDOWN => Response::Ack,
        other => {
            return Err(ServeError::Protocol(format!(
                "unknown response opcode {other}"
            )))
        }
    };
    c.finish()?;
    Ok(resp)
}

// ----------------------------------------------------------------------
// Rank-0 → worker control codec
// ----------------------------------------------------------------------

/// A control message broadcast from rank 0 to the resident workers.
/// Every rank (0 included) executes the same sequence of these, which is
/// what keeps the SPMD engine in lockstep.
#[derive(Debug, Clone, PartialEq)]
pub enum Ctrl {
    /// Execute one query batch (global node ids, deduplicated order
    /// preserved rank-side).
    Query(Vec<u32>),
    /// Overwrite one node's feature row; owner applies, everyone
    /// invalidates their cache.
    Update {
        /// Global node id.
        node: u32,
        /// New base-feature values.
        values: Vec<f32>,
    },
    /// Install new parameters (already validated by rank 0; shipped as
    /// raw shape/value pairs so every rank installs identical bits).
    Reload(Vec<(Vec<usize>, Vec<f32>)>),
    /// Leave the serving loop after a final barrier.
    Shutdown,
}

const CTRL_QUERY: u8 = 1;
const CTRL_UPDATE: u8 = 2;
const CTRL_RELOAD: u8 = 3;
const CTRL_SHUTDOWN: u8 = 4;

/// Encodes a control message.
#[must_use]
pub fn encode_ctrl(ctrl: &Ctrl) -> Vec<u8> {
    let mut out = Vec::new();
    match ctrl {
        Ctrl::Query(ids) => {
            out.push(CTRL_QUERY);
            put_u32(&mut out, ids.len() as u32);
            put_u32s(&mut out, ids);
        }
        Ctrl::Update { node, values } => {
            out.push(CTRL_UPDATE);
            put_u32(&mut out, *node);
            put_u32(&mut out, values.len() as u32);
            put_f32s(&mut out, values);
        }
        Ctrl::Reload(params) => {
            out.push(CTRL_RELOAD);
            put_u32(&mut out, params.len() as u32);
            for (shape, data) in params {
                put_u32(&mut out, shape.len() as u32);
                for &d in shape {
                    put_u32(&mut out, d as u32);
                }
                put_u32(&mut out, data.len() as u32);
                put_f32s(&mut out, data);
            }
        }
        Ctrl::Shutdown => out.push(CTRL_SHUTDOWN),
    }
    out
}

/// Decodes a control message.
///
/// # Errors
///
/// [`ServeError::Protocol`] on malformed bytes.
pub fn decode_ctrl(buf: &[u8]) -> Result<Ctrl, ServeError> {
    let mut c = Cursor::new(buf);
    let op = c.u8()?;
    let ctrl = match op {
        CTRL_QUERY => {
            let n = c.u32()? as usize;
            Ctrl::Query(c.u32s(n)?)
        }
        CTRL_UPDATE => {
            let node = c.u32()?;
            let dim = c.u32()? as usize;
            Ctrl::Update {
                node,
                values: c.f32s(dim)?,
            }
        }
        CTRL_RELOAD => {
            let count = c.u32()? as usize;
            let mut params = Vec::with_capacity(count);
            for _ in 0..count {
                let ndims = c.u32()? as usize;
                let mut shape = Vec::with_capacity(ndims);
                for _ in 0..ndims {
                    shape.push(c.u32()? as usize);
                }
                let len = c.u32()? as usize;
                params.push((shape, c.f32s(len)?));
            }
            Ctrl::Reload(params)
        }
        CTRL_SHUTDOWN => Ctrl::Shutdown,
        other => {
            return Err(ServeError::Protocol(format!(
                "unknown control opcode {other}"
            )))
        }
    };
    c.finish()?;
    Ok(ctrl)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Query(vec![3, 1, 4, 1, 5]),
            Request::Update {
                node: 7,
                values: vec![0.5, -1.25],
            },
            Request::Reload,
            Request::Stats,
            Request::Shutdown,
        ] {
            let bytes = encode_request(&req);
            assert_eq!(decode_request(&bytes).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let logits = decode_response(&encode_logits(2, 3, &[1.0; 6])).unwrap();
        assert_eq!(
            logits,
            Response::Logits {
                rows: 2,
                cols: 3,
                values: vec![1.0; 6]
            }
        );
        assert_eq!(
            decode_response(&encode_ack(OP_RELOAD)).unwrap(),
            Response::Ack
        );
        assert_eq!(
            decode_response(&encode_stats(&[1, 2, 3])).unwrap(),
            Response::Stats(vec![1, 2, 3])
        );
        match decode_response(&encode_error("boom")).unwrap() {
            Response::Error(m) => assert_eq!(m, "boom"),
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn ctrl_round_trips() {
        for ctrl in [
            Ctrl::Query(vec![0, 9]),
            Ctrl::Update {
                node: 2,
                values: vec![1.0, 2.0, 3.0],
            },
            Ctrl::Reload(vec![(vec![2, 3], vec![0.5; 6]), (vec![3], vec![1.0; 3])]),
            Ctrl::Shutdown,
        ] {
            let bytes = encode_ctrl(&ctrl);
            assert_eq!(decode_ctrl(&bytes).unwrap(), ctrl);
        }
    }

    #[test]
    fn malformed_bytes_are_typed_errors() {
        assert!(matches!(
            decode_request(&[99]),
            Err(ServeError::Protocol(_))
        ));
        // Truncated query: claims 4 ids, carries 1.
        let mut buf = vec![OP_QUERY];
        buf.extend_from_slice(&4u32.to_le_bytes());
        buf.extend_from_slice(&7u32.to_le_bytes());
        assert!(matches!(decode_request(&buf), Err(ServeError::Protocol(_))));
        // Trailing garbage.
        let mut buf = encode_request(&Request::Reload);
        buf.push(0);
        assert!(matches!(decode_request(&buf), Err(ServeError::Protocol(_))));
        assert!(matches!(decode_ctrl(&[77]), Err(ServeError::Protocol(_))));
    }
}
