//! Raw-tensor model parameters for the serving forward pass.
//!
//! Training wraps parameters in autograd `Var`s; serving only ever runs
//! forward, so the engine keeps plain [`Tensor`]s parsed out of a
//! checkpoint's raw `(shape, values)` list in
//! [`DistModel::params`](sar_core::DistModel::params) order. The parse
//! replicates [`DistModel::new`](sar_core::DistModel)'s layer layout
//! exactly — per layer: GraphSage `[w_neigh, w_res, b_res]`, GCN `[w]`,
//! GAT `[w, a_dst, a_src]` — after the same
//! [`validate_params`](sar_core::validate_params) check the fallible
//! inference path performs, so a mismatched checkpoint is a typed error
//! before any resident state changes.
//!
//! Serving restricts the supported configurations: batch normalization
//! (no eval-mode statistics in [`DistBatchNorm`](sar_core::DistBatchNorm)),
//! jumping knowledge (needs every layer over every node — the opposite of
//! an MFG), and domain-parallel mode (serving exists to exercise the SAR
//! rotation) are rejected with [`ServeError::Unsupported`].

use sar_core::{validate_params, Arch, Mode, ModelConfig};
use sar_tensor::Tensor;

use crate::error::ServeError;

/// One layer's parameters, as raw tensors.
#[derive(Debug, Clone)]
pub enum LayerParams {
    /// GraphSage: `out = agg(h W_neigh) / deg + h W_res + b_res`.
    Sage {
        /// Neighbor projection `[in, out]`.
        w_neigh: Tensor,
        /// Residual projection `[in, out]`.
        w_res: Tensor,
        /// Residual bias `[out]`.
        b_res: Tensor,
    },
    /// GCN: `out = D^{-1/2} A D^{-1/2} h W`.
    Gcn {
        /// Projection `[in, out]`.
        w: Tensor,
    },
    /// GAT: attention aggregation over `z = h W`.
    Gat {
        /// Projection `[in, heads*d]`.
        w: Tensor,
        /// Destination attention vector `[heads*d]`.
        a_dst: Tensor,
        /// Source attention vector `[heads*d]`.
        a_src: Tensor,
    },
}

/// Static per-layer facts the engine needs every batch.
#[derive(Debug, Clone, Copy)]
pub struct LayerSpec {
    /// Width of the projected features `z` exchanged by the rotation.
    pub z_width: usize,
    /// Width of the layer's output rows.
    pub out_width: usize,
    /// Whether a ReLU follows (every layer but the last).
    pub activation: bool,
    /// Attention heads (GAT only; 1 otherwise).
    pub heads: usize,
    /// Whether head outputs stay concatenated (GAT hidden layers) or are
    /// averaged (GAT output layer).
    pub concat: bool,
}

/// A servable model: per-layer raw parameters plus their specs.
#[derive(Debug, Clone)]
pub struct ServeModel {
    /// Per-layer parameters, input to output.
    pub layers: Vec<LayerParams>,
    /// Per-layer specs, aligned with `layers`.
    pub specs: Vec<LayerSpec>,
}

/// Rejects configurations the serving tier cannot run.
///
/// # Errors
///
/// [`ServeError::Unsupported`] naming the offending option.
pub fn check_servable(cfg: &ModelConfig) -> Result<(), ServeError> {
    if cfg.mode == Mode::DomainParallel {
        return Err(ServeError::Unsupported(
            "domain-parallel mode (serving runs the SAR rotation)".into(),
        ));
    }
    if cfg.batch_norm {
        return Err(ServeError::Unsupported(
            "batch normalization (DistBatchNorm has no eval-mode statistics)".into(),
        ));
    }
    if cfg.jumping_knowledge {
        return Err(ServeError::Unsupported(
            "jumping knowledge (needs all layers over all nodes, defeating the MFG)".into(),
        ));
    }
    if cfg.layers == 0 {
        return Err(ServeError::Unsupported("a zero-layer model".into()));
    }
    Ok(())
}

impl ServeModel {
    /// Parses a raw checkpoint parameter list against a *resolved*
    /// configuration (`cfg.in_dim` already includes label-augmentation
    /// channels).
    ///
    /// # Errors
    ///
    /// [`ServeError::Unsupported`] for unservable configurations,
    /// [`ServeError::BadCheckpoint`] when the list does not match the
    /// model the configuration describes.
    pub fn from_raw(
        cfg: &ModelConfig,
        params: &[(Vec<usize>, Vec<f32>)],
    ) -> Result<ServeModel, ServeError> {
        check_servable(cfg)?;
        validate_params(cfg, params)?;
        let tensor = |(shape, data): &(Vec<usize>, Vec<f32>)| Tensor::from_vec(shape, data.clone());
        let mut layers = Vec::with_capacity(cfg.layers);
        let mut specs = Vec::with_capacity(cfg.layers);
        let mut next = params.iter();
        // Shapes were validated above; the iterator yields exactly the
        // parameters DistModel::new declares, in order.
        let mut pull = || {
            next.next()
                .map(tensor)
                .ok_or_else(|| ServeError::Protocol("validated parameter list ran dry".into()))
        };
        for l in 0..cfg.layers {
            let last = l == cfg.layers - 1;
            match cfg.arch {
                Arch::GraphSage { hidden } => {
                    let out = if last { cfg.num_classes } else { hidden };
                    layers.push(LayerParams::Sage {
                        w_neigh: pull()?,
                        w_res: pull()?,
                        b_res: pull()?,
                    });
                    specs.push(LayerSpec {
                        z_width: out,
                        out_width: out,
                        activation: !last,
                        heads: 1,
                        concat: true,
                    });
                }
                Arch::Gcn { hidden } => {
                    let out = if last { cfg.num_classes } else { hidden };
                    layers.push(LayerParams::Gcn { w: pull()? });
                    specs.push(LayerSpec {
                        z_width: out,
                        out_width: out,
                        activation: !last,
                        heads: 1,
                        concat: true,
                    });
                }
                Arch::Gat { head_dim, heads } => {
                    let d = if last { cfg.num_classes } else { head_dim };
                    let width = heads * d;
                    layers.push(LayerParams::Gat {
                        w: pull()?,
                        a_dst: pull()?,
                        a_src: pull()?,
                    });
                    specs.push(LayerSpec {
                        z_width: width,
                        out_width: if last { cfg.num_classes } else { width },
                        activation: !last,
                        heads,
                        concat: !last,
                    });
                }
            }
        }
        Ok(ServeModel { layers, specs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sar_core::DistModel;

    fn cfg(arch: Arch) -> ModelConfig {
        ModelConfig {
            arch,
            mode: Mode::Sar,
            layers: 2,
            in_dim: 6,
            num_classes: 3,
            dropout: 0.0,
            batch_norm: false,
            jumping_knowledge: false,
            seed: 0,
        }
    }

    fn raw(cfg: &ModelConfig) -> Vec<(Vec<usize>, Vec<f32>)> {
        DistModel::new(cfg)
            .params()
            .iter()
            .map(|p| (p.shape(), p.value().data().to_vec()))
            .collect()
    }

    #[test]
    fn parses_each_arch_with_matching_widths() {
        let c = cfg(Arch::GraphSage { hidden: 8 });
        let m = ServeModel::from_raw(&c, &raw(&c)).unwrap();
        assert_eq!(m.layers.len(), 2);
        assert_eq!(m.specs[0].z_width, 8);
        assert_eq!(m.specs[1].out_width, 3);
        assert!(m.specs[0].activation && !m.specs[1].activation);

        let c = cfg(Arch::Gcn { hidden: 5 });
        let m = ServeModel::from_raw(&c, &raw(&c)).unwrap();
        assert!(matches!(m.layers[0], LayerParams::Gcn { .. }));

        let c = cfg(Arch::Gat {
            head_dim: 4,
            heads: 2,
        });
        let m = ServeModel::from_raw(&c, &raw(&c)).unwrap();
        assert_eq!(m.specs[0].z_width, 8);
        assert!(m.specs[0].concat);
        // Output layer: heads averaged down to num_classes.
        assert_eq!(m.specs[1].z_width, 6);
        assert_eq!(m.specs[1].out_width, 3);
        assert!(!m.specs[1].concat);
    }

    #[test]
    fn unsupported_configs_are_rejected() {
        let mut c = cfg(Arch::GraphSage { hidden: 8 });
        c.batch_norm = true;
        assert!(matches!(
            ServeModel::from_raw(&c, &raw(&c)),
            Err(ServeError::Unsupported(_))
        ));
        let mut c = cfg(Arch::GraphSage { hidden: 8 });
        c.jumping_knowledge = true;
        let raw_p = raw(&c);
        assert!(matches!(
            ServeModel::from_raw(&c, &raw_p),
            Err(ServeError::Unsupported(_))
        ));
        let mut c = cfg(Arch::GraphSage { hidden: 8 });
        c.mode = Mode::DomainParallel;
        assert!(matches!(
            ServeModel::from_raw(&c, &raw(&c)),
            Err(ServeError::Unsupported(_))
        ));
    }

    #[test]
    fn mismatched_checkpoints_are_typed_errors() {
        let c = cfg(Arch::GraphSage { hidden: 8 });
        let mut p = raw(&c);
        p.pop();
        assert!(matches!(
            ServeModel::from_raw(&c, &p),
            Err(ServeError::BadCheckpoint(_))
        ));
    }
}
