//! Typed serving-tier errors.
//!
//! A resident server outlives any single request: everything a client or
//! an operator can get wrong (bad checkpoint, unsupported configuration,
//! malformed request, out-of-range node id) must surface as a value the
//! front-end can report back, never a panic that takes the rotation down.

use sar_comm::TransportError;
use sar_core::InferError;

/// Why a serving operation failed.
#[derive(Debug)]
pub enum ServeError {
    /// The model configuration cannot be served (e.g. domain-parallel
    /// mode, batch normalization, jumping knowledge).
    Unsupported(String),
    /// The checkpoint does not match the configured model.
    BadCheckpoint(InferError),
    /// The worker mesh failed underneath the engine.
    Comm(TransportError),
    /// A queried node id is outside the graph.
    QueryOutOfRange {
        /// The offending node id.
        id: u32,
        /// Number of nodes in the graph.
        nodes: usize,
    },
    /// A filesystem or socket operation failed.
    Io(String),
    /// A peer or client violated the serving protocol (bad opcode,
    /// wrong payload size, mismatched response tag).
    Protocol(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Unsupported(what) => {
                write!(f, "configuration not servable: {what}")
            }
            ServeError::BadCheckpoint(e) => write!(f, "bad checkpoint: {e}"),
            ServeError::Comm(e) => write!(f, "worker mesh failure: {e}"),
            ServeError::QueryOutOfRange { id, nodes } => {
                write!(
                    f,
                    "queried node {id} out of range (graph has {nodes} nodes)"
                )
            }
            ServeError::Io(e) => write!(f, "i/o failure: {e}"),
            ServeError::Protocol(e) => write!(f, "protocol violation: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<InferError> for ServeError {
    fn from(e: InferError) -> Self {
        ServeError::BadCheckpoint(e)
    }
}

impl From<TransportError> for ServeError {
    fn from(e: TransportError) -> Self {
        ServeError::Comm(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e.to_string())
    }
}
