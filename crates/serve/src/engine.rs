//! The per-rank resident serving engine.
//!
//! Every rank constructs a [`ServeEngine`] over its [`DistGraph`]
//! partition, feature shard and checkpoint parameters, then the cluster
//! runs SPMD: rank 0 originates control messages (query batches, feature
//! updates, reloads, shutdown) and every rank — rank 0 included —
//! executes the identical sequence, which keeps the rotation in lockstep
//! without any scheduler.
//!
//! A query batch executes in three phases:
//!
//! 1. **MFG build** — an L-round request exchange. Starting from the
//!    rank's owned query rows at the top level, each round slices one
//!    layer ([`mfg::slice_layer`]), ships the per-peer source-row request
//!    lists, learns which local rows peers will need
//!    (`serve_rows`), and expands to the next-shallower activation row
//!    set ([`mfg::expand_inputs`]). Rows found in the [`EmbedCache`] are
//!    pruned before slicing, shrinking every level below them.
//! 2. **Restricted rotation forward** — per level, the projected
//!    features `z` are computed over exactly the planned activation
//!    rows; every peer's requested rows are gathered and sent first,
//!    then blocks are consumed in the training rotation's order
//!    (`q = p, p+1, …`): the local block through the fused
//!    indexed kernels, remote blocks straight from the wire buffer —
//!    the same kernels, in the same per-row ascending-column order, as
//!    full-batch training, which is what makes served logits bitwise
//!    equal to [`infer`](sar_core::infer) rows.
//! 3. **Result gather** — each rank ships `(query position, logits row)`
//!    pairs to rank 0, which assembles the `[Q, C]` response without
//!    needing any partitioning knowledge.
//!
//! Byte accounting: MFG traffic (request lists + fetched rows) is
//! ledgered under [`Phase::ForwardFetch`]; control and result traffic
//! under [`Phase::Collective`]. [`BatchStats`] exposes the measured
//! per-batch fetch volume next to the full-graph rotation's predicted
//! volume — the serving tier's reason to exist is keeping the former
//! strictly below the latter.

use std::fs::File;
use std::io::BufReader;
use std::path::PathBuf;
use std::sync::Arc;

use sar_comm::{Payload, Phase, TransportError, WorkerCtx};
use sar_core::mfg::{self, LayerSlice};
use sar_core::{checkpoint, DistGraph, DistModel, Mode, ModelConfig, Shard};
use sar_graph::fused::{
    gat_fused_block_forward, gat_fused_block_forward_indexed, gat_twostep_block_forward,
    gat_twostep_block_forward_indexed, OnlineAttnState,
};
use sar_graph::ops;
use sar_tensor::Tensor;

use crate::cache::EmbedCache;
use crate::error::ServeError;
use crate::params::{check_servable, LayerParams, ServeModel};
use crate::proto::{self, Ctrl};

/// Raw model parameters as `(shape, row-major values)` pairs — the form
/// checkpoints load into and the control broadcast ships on reload.
pub type RawParams = Vec<(Vec<usize>, Vec<f32>)>;

/// Base of the serving tag range. Far above the per-epoch training tags,
/// far below the collective range (`1 << 62`), so serving traffic keeps
/// normal phase attribution.
const SERVE_TAG_BASE: u64 = 1 << 42;
/// Tags per batch sequence number; sequence numbers wrap at this span.
const SEQ_SPAN: u64 = 1 << 20;
/// Control broadcast (rank 0 → workers).
const OFF_CTRL: u64 = 0;
/// MFG build request lists, plus the level number.
const OFF_BUILD: u64 = 0x100;
/// Rotation feature blocks, plus the level number.
const OFF_FWD: u64 = 0x200;
/// Result-gather query positions.
const OFF_RES_POS: u64 = 0x300;
/// Result-gather logits rows.
const OFF_RES_VAL: u64 = 0x301;

fn batch_base(seq: u64) -> u64 {
    SERVE_TAG_BASE + (seq % SEQ_SPAN) * SEQ_SPAN
}

/// Static engine configuration, identical on every rank.
#[derive(Debug, Clone)]
pub struct EngineSetup {
    /// Model configuration; `in_dim` is resolved from the shard (plus
    /// label-augmentation channels), so callers may leave it 0.
    pub model_cfg: ModelConfig,
    /// Whether training used label augmentation (must match: it changes
    /// the input width and values).
    pub label_aug: bool,
    /// Embedding-cache row budget (0 disables caching).
    pub cache_rows: usize,
    /// Checkpoint path for [`ServeEngine`] reloads (`None` disables the
    /// reload op).
    pub checkpoint: Option<PathBuf>,
}

/// Per-batch byte accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchStats {
    /// Queried node ids in the batch.
    pub queries: usize,
    /// Measured [`Phase::ForwardFetch`] bytes received this batch (MFG
    /// request lists + fetched feature rows).
    pub fetch_bytes: u64,
    /// The MFG's predicted fetch volume
    /// ([`LayerSlice::predicted_fetch_bytes`] summed over levels).
    pub predicted_bytes: u64,
    /// What one full-graph rotation forward would have fetched
    /// ([`DistGraph::predicted_fetch_bytes`] summed over layers) — the
    /// ceiling MFG-restricted compute must stay strictly below.
    pub full_forward_bytes: u64,
}

/// Cumulative serving counters, encodable for the Stats opcode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Query batches executed.
    pub batches: u64,
    /// Individual node queries answered.
    pub queries: u64,
    /// Cumulative measured ForwardFetch bytes across batches.
    pub fetch_bytes: u64,
    /// Per-batch full-graph fetch prediction (the comparison ceiling).
    pub full_forward_bytes: u64,
    /// Cache hits.
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Cache insertions.
    pub cache_inserts: u64,
    /// Cache invalidations.
    pub cache_invalidations: u64,
    /// Cluster size.
    pub world: u64,
}

impl StatsSnapshot {
    /// Flattens to the positional counter list the Stats response carries.
    #[must_use]
    pub fn to_counters(&self) -> Vec<u64> {
        vec![
            self.batches,
            self.queries,
            self.fetch_bytes,
            self.full_forward_bytes,
            self.cache_hits,
            self.cache_misses,
            self.cache_inserts,
            self.cache_invalidations,
            self.world,
        ]
    }

    /// Parses a positional counter list.
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] if the list is too short.
    pub fn from_counters(counters: &[u64]) -> Result<StatsSnapshot, ServeError> {
        if counters.len() < 9 {
            return Err(ServeError::Protocol(format!(
                "stats block has {} counters, expected 9",
                counters.len()
            )));
        }
        Ok(StatsSnapshot {
            batches: counters[0],
            queries: counters[1],
            fetch_bytes: counters[2],
            full_forward_bytes: counters[3],
            cache_hits: counters[4],
            cache_misses: counters[5],
            cache_inserts: counters[6],
            cache_invalidations: counters[7],
            world: counters[8],
        })
    }
}

/// What one [`ServeEngine::step`] call on a worker rank did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerStep {
    /// No control message arrived within the receive timeout.
    Idle,
    /// One control operation was executed.
    Served,
    /// Rank 0 ordered shutdown; the final barrier has completed.
    Shutdown,
}

/// One level of a batch's MFG plan.
struct LevelPlan {
    /// Rows computed at this level, ascending. The rest of `active` is
    /// answered from the cache at assembly time.
    computed: Vec<u32>,
    /// The layer restriction over `computed`.
    slice: LayerSlice,
    /// Rows each peer requested of this rank, per peer.
    serve_rows: Vec<Vec<u32>>,
    /// `computed ∪ cached` — the level's activation row set.
    active: Vec<u32>,
}

struct BatchPlan {
    /// Per level `k`, at index `k - 1`.
    levels: Vec<LevelPlan>,
    /// Input rows (level 0) this rank must gather from its features.
    active0: Vec<u32>,
}

struct Counters {
    batches: u64,
    queries: u64,
    fetch_bytes: u64,
    last: BatchStats,
}

/// The per-rank resident serving core. See the module docs for the
/// batch protocol.
pub struct ServeEngine {
    ctx: WorkerCtx,
    graph: Arc<DistGraph>,
    cfg: ModelConfig,
    model: ServeModel,
    /// Resident `[n_local, in_dim]` input (features ‖ label channels).
    input: Tensor,
    feat_dim: usize,
    num_nodes: usize,
    inv_deg: Tensor,
    inv_sqrt: Tensor,
    cache: EmbedCache,
    checkpoint: Option<PathBuf>,
    seq: u64,
    counters: Counters,
}

impl ServeEngine {
    /// Builds the resident engine for one rank.
    ///
    /// `params` is the checkpoint's raw parameter list in
    /// [`DistModel::params`] order; `num_nodes` the global node count
    /// (for query validation). The configuration's `in_dim` is resolved
    /// from the shard, mirroring [`sar_core::try_infer`].
    ///
    /// # Errors
    ///
    /// [`ServeError::Unsupported`] or [`ServeError::BadCheckpoint`] when
    /// the configuration/checkpoint pair cannot be served.
    pub fn new(
        ctx: WorkerCtx,
        graph: Arc<DistGraph>,
        shard: &Shard,
        num_nodes: usize,
        setup: &EngineSetup,
        params: &[(Vec<usize>, Vec<f32>)],
    ) -> Result<ServeEngine, ServeError> {
        let mut cfg = setup.model_cfg.clone();
        cfg.in_dim = shard.feat_dim
            + if setup.label_aug {
                shard.num_classes
            } else {
                0
            };
        cfg.num_classes = shard.num_classes;
        check_servable(&cfg)?;
        let model = ServeModel::from_raw(&cfg, params)?;

        // Inference-time label augmentation, exactly as `infer` builds it:
        // every training node sees its one-hot label.
        let feats = shard.features_tensor();
        let input = if setup.label_aug {
            let mut aug = Tensor::zeros(&[shard.num_local(), shard.num_classes]);
            for i in 0..shard.num_local() {
                if shard.train_mask[i] {
                    aug.row_mut(i)[shard.labels[i] as usize] = 1.0;
                }
            }
            Tensor::hstack(&[&feats, &aug])
        } else {
            feats
        };

        let n_local = graph.num_local();
        let inv_deg = Tensor::from_vec(&[n_local], graph.inv_in_degree());
        let inv_sqrt = Tensor::from_vec(
            &[n_local],
            graph
                .global_in_degree()
                .iter()
                .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
                .collect(),
        );
        let cache = EmbedCache::new(cfg.layers, setup.cache_rows);
        Ok(ServeEngine {
            ctx,
            graph,
            cfg,
            model,
            input,
            feat_dim: shard.feat_dim,
            num_nodes,
            inv_deg,
            inv_sqrt,
            cache,
            checkpoint: setup.checkpoint.clone(),
            seq: 0,
            counters: Counters {
                batches: 0,
                queries: 0,
                fetch_bytes: 0,
                last: BatchStats::default(),
            },
        })
    }

    /// This rank.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.graph.rank()
    }

    /// Cluster size.
    #[must_use]
    pub fn world(&self) -> usize {
        self.graph.world()
    }

    /// Global node count.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Base (un-augmented) feature width updates must match.
    #[must_use]
    pub fn feat_dim(&self) -> usize {
        self.feat_dim
    }

    /// Number of output classes.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.cfg.num_classes
    }

    /// The previous batch's byte accounting.
    #[must_use]
    pub fn last_batch(&self) -> BatchStats {
        self.counters.last
    }

    /// What one full-graph rotation forward would fetch — the ceiling
    /// every MFG batch is measured against.
    #[must_use]
    pub fn full_forward_fetch_bytes(&self) -> u64 {
        self.model
            .specs
            .iter()
            .map(|s| self.graph.predicted_fetch_bytes(s.z_width))
            .sum()
    }

    /// Cumulative serving counters.
    #[must_use]
    pub fn snapshot(&self) -> StatsSnapshot {
        let cs = self.cache.stats();
        StatsSnapshot {
            batches: self.counters.batches,
            queries: self.counters.queries,
            fetch_bytes: self.counters.fetch_bytes,
            full_forward_bytes: self.full_forward_fetch_bytes(),
            cache_hits: cs.hits,
            cache_misses: cs.misses,
            cache_inserts: cs.inserts,
            cache_invalidations: cs.invalidations,
            world: self.world() as u64,
        }
    }

    // ------------------------------------------------------------------
    // Rank-0 entry points
    // ------------------------------------------------------------------

    fn ensure_rank0(&self) -> Result<(), ServeError> {
        if self.rank() == 0 {
            Ok(())
        } else {
            Err(ServeError::Protocol(format!(
                "control op invoked on rank {}, only rank 0 originates",
                self.rank()
            )))
        }
    }

    /// Executes one query batch across the cluster and returns `[Q, C]`
    /// logits in request order. Rank 0 only.
    ///
    /// # Errors
    ///
    /// [`ServeError::QueryOutOfRange`] before anything is broadcast;
    /// [`ServeError::Comm`] if the mesh fails mid-batch.
    pub fn execute_query(&mut self, ids: &[u32]) -> Result<(Tensor, BatchStats), ServeError> {
        self.ensure_rank0()?;
        for &id in ids {
            if id as usize >= self.num_nodes {
                return Err(ServeError::QueryOutOfRange {
                    id,
                    nodes: self.num_nodes,
                });
            }
        }
        self.broadcast_ctrl(&Ctrl::Query(ids.to_vec()))?;
        let out = self.apply_ctrl(Ctrl::Query(ids.to_vec()))?.0;
        match out {
            Some(t) => Ok((t, self.counters.last)),
            None => Err(ServeError::Protocol(
                "rank 0 batch produced no result".into(),
            )),
        }
    }

    /// Overwrites one node's input feature row cluster-wide and
    /// invalidates every rank's cache. Rank 0 only.
    ///
    /// # Errors
    ///
    /// [`ServeError::QueryOutOfRange`] / [`ServeError::Protocol`] on a
    /// bad node id or width, before anything is broadcast.
    pub fn update_feature(&mut self, node: u32, values: &[f32]) -> Result<(), ServeError> {
        self.ensure_rank0()?;
        if node as usize >= self.num_nodes {
            return Err(ServeError::QueryOutOfRange {
                id: node,
                nodes: self.num_nodes,
            });
        }
        if values.len() != self.feat_dim {
            return Err(ServeError::Protocol(format!(
                "feature update carries {} values, feature width is {}",
                values.len(),
                self.feat_dim
            )));
        }
        let ctrl = Ctrl::Update {
            node,
            values: values.to_vec(),
        };
        self.broadcast_ctrl(&ctrl)?;
        self.apply_ctrl(ctrl)?;
        Ok(())
    }

    /// Reloads parameters from the configured checkpoint path: rank 0
    /// reads and validates the file, then ships the raw values so every
    /// rank installs identical bits (all-or-nothing — a bad file leaves
    /// every rank's resident parameters untouched). Rank 0 only.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] / [`ServeError::BadCheckpoint`] /
    /// [`ServeError::Unsupported`], all raised before any broadcast.
    pub fn reload(&mut self) -> Result<(), ServeError> {
        self.ensure_rank0()?;
        let path = self.checkpoint.clone().ok_or_else(|| {
            ServeError::Unsupported("reload without a configured checkpoint path".into())
        })?;
        let params = load_checkpoint_raw(&self.cfg, &path)?;
        // Dry-run the install before broadcasting, so a mismatched file
        // cannot leave ranks divergent.
        ServeModel::from_raw(&self.cfg, &params)?;
        self.broadcast_ctrl(&Ctrl::Reload(params.clone()))?;
        self.apply_ctrl(Ctrl::Reload(params))?;
        Ok(())
    }

    /// Broadcasts shutdown and joins the final barrier. Rank 0 only.
    ///
    /// # Errors
    ///
    /// [`ServeError::Comm`] if the mesh fails.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        self.ensure_rank0()?;
        self.broadcast_ctrl(&Ctrl::Shutdown)?;
        self.apply_ctrl(Ctrl::Shutdown)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Worker entry point
    // ------------------------------------------------------------------

    /// Waits for (at most one receive-timeout) and executes the next
    /// control operation. Worker ranks only; call in a loop until
    /// [`WorkerStep::Shutdown`].
    ///
    /// # Errors
    ///
    /// [`ServeError::Comm`] on mesh failure (a receive timeout is
    /// [`WorkerStep::Idle`], not an error), [`ServeError::Protocol`] on
    /// an undecodable control message.
    pub fn step(&mut self) -> Result<WorkerStep, ServeError> {
        if self.rank() == 0 {
            return Err(ServeError::Protocol(
                "rank 0 drives the cluster; step() is for worker ranks".into(),
            ));
        }
        match self.poll_ctrl()? {
            None => Ok(WorkerStep::Idle),
            Some(ctrl) => {
                let (_, down) = self.apply_ctrl(ctrl)?;
                if down {
                    Ok(WorkerStep::Shutdown)
                } else {
                    Ok(WorkerStep::Served)
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Control plane
    // ------------------------------------------------------------------

    fn broadcast_ctrl(&self, ctrl: &Ctrl) -> Result<(), ServeError> {
        let _phase = self.ctx.phase_scope(Phase::Collective);
        let bytes = proto::encode_ctrl(ctrl);
        let tag = batch_base(self.seq) + OFF_CTRL;
        for q in 1..self.world() {
            self.ctx.send_nowait(q, tag, Payload::Bytes(bytes.clone()));
        }
        Ok(())
    }

    fn poll_ctrl(&self) -> Result<Option<Ctrl>, ServeError> {
        let _phase = self.ctx.phase_scope(Phase::Collective);
        match self.ctx.try_recv(0, batch_base(self.seq) + OFF_CTRL) {
            Ok(p) => Ok(Some(proto::decode_ctrl(&p.try_into_bytes()?)?)),
            Err(TransportError::Timeout { .. }) => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// Executes one control operation locally (every rank runs this for
    /// every op — SPMD lockstep). Returns rank 0's batch result and
    /// whether the op was a shutdown.
    fn apply_ctrl(&mut self, ctrl: Ctrl) -> Result<(Option<Tensor>, bool), ServeError> {
        match ctrl {
            Ctrl::Query(ids) => {
                let out = self.run_batch(&ids)?;
                self.seq += 1;
                Ok((out, false))
            }
            Ctrl::Update { node, values } => {
                if let Ok(li) = self.graph.local_nodes().binary_search(&node) {
                    let width = self.input.cols();
                    let row = self.input.row_mut(li);
                    let n = values.len().min(width);
                    row[..n].copy_from_slice(&values[..n]);
                }
                // Any rank's cached activations may transitively depend on
                // the updated node — invalidate everywhere.
                self.cache.invalidate();
                self.seq += 1;
                Ok((None, false))
            }
            Ctrl::Reload(params) => {
                self.model = ServeModel::from_raw(&self.cfg, &params)?;
                self.cache.invalidate();
                self.seq += 1;
                Ok((None, false))
            }
            Ctrl::Shutdown => {
                self.quiesce();
                Ok((None, true))
            }
        }
    }

    /// The shutdown barrier: every rank parks here until the whole
    /// rotation has drained, so no rank exits while a peer still expects
    /// service.
    fn quiesce(&self) {
        let _phase = self.ctx.phase_scope(Phase::Collective);
        self.ctx.barrier();
    }

    // ------------------------------------------------------------------
    // Batch execution
    // ------------------------------------------------------------------

    fn forward_fetch_recv(&self) -> u64 {
        self.ctx
            .stats()
            .ledger
            .phase_total(Phase::ForwardFetch)
            .recv_bytes
    }

    /// Runs one query batch. Collective — every rank calls with the same
    /// id list. Returns `Some(logits)` on rank 0.
    fn run_batch(&mut self, queries: &[u32]) -> Result<Option<Tensor>, ServeError> {
        let base = batch_base(self.seq);
        let before = self.forward_fetch_recv();

        // Owned query positions: (position in `queries`, local row).
        let local_nodes = self.graph.local_nodes();
        let mut owned: Vec<(u32, u32)> = Vec::new();
        for (pos, gid) in queries.iter().enumerate() {
            if let Ok(li) = local_nodes.binary_search(gid) {
                owned.push((pos as u32, li as u32));
            }
        }
        let mut active: Vec<u32> = owned.iter().map(|&(_, li)| li).collect();
        active.sort_unstable();
        active.dedup();

        let plan = self.build_mfg(&active, base)?;
        let out = self.forward_mfg(&plan, base)?;

        let predicted: u64 = plan
            .levels
            .iter()
            .zip(self.model.specs.iter())
            .map(|(lvl, spec)| {
                lvl.slice
                    .predicted_fetch_bytes(self.graph.rank(), spec.z_width)
            })
            .sum();
        let measured = self.forward_fetch_recv() - before;
        self.counters.batches += 1;
        self.counters.queries += queries.len() as u64;
        self.counters.fetch_bytes += measured;
        self.counters.last = BatchStats {
            queries: queries.len(),
            fetch_bytes: measured,
            predicted_bytes: predicted,
            full_forward_bytes: self.full_forward_fetch_bytes(),
        };

        let top = &plan.levels[self.cfg.layers - 1];
        self.gather_results(queries.len(), &owned, &top.computed, &out, base)
    }

    /// The L-round MFG build exchange (see module docs). Top level is
    /// never cache-pruned — its rows are the batch's answer.
    fn build_mfg(&mut self, query_rows: &[u32], base: u64) -> Result<BatchPlan, ServeError> {
        let g = Arc::clone(&self.graph);
        let (p, world, levels) = (g.rank(), g.world(), self.cfg.layers);
        let _phase = self.ctx.phase_scope(Phase::ForwardFetch);
        let mut plans: Vec<LevelPlan> = Vec::with_capacity(levels);
        let mut active = query_rows.to_vec();
        for k in (1..=levels).rev() {
            let (_cached, computed) = if k < levels {
                self.cache.split(k, &active)
            } else {
                (Vec::new(), active.clone())
            };
            let slice = mfg::slice_layer(&g, &computed);
            let tag = base + OFF_BUILD + k as u64;
            // Send-all-then-receive-all: deadlock-free on both backends.
            for q in 0..world {
                if q != p {
                    self.ctx
                        .send_nowait(q, tag, Payload::U32(slice.req_rows[q].clone()));
                }
            }
            let mut serve_rows = vec![Vec::new(); world];
            for (q, rows) in serve_rows.iter_mut().enumerate() {
                if q != p {
                    *rows = self.ctx.try_recv(q, tag)?.try_into_u32()?;
                }
            }
            let next = mfg::expand_inputs(&g, &slice, &serve_rows);
            plans.push(LevelPlan {
                computed,
                slice,
                serve_rows,
                active,
            });
            active = next;
        }
        plans.reverse();
        Ok(BatchPlan {
            levels: plans,
            active0: active,
        })
    }

    /// The restricted rotation forward over a built plan. Returns the top
    /// level's computed rows (ascending local query rows × classes).
    fn forward_mfg(&mut self, plan: &BatchPlan, base: u64) -> Result<Tensor, ServeError> {
        let g = Arc::clone(&self.graph);
        let (p, world, n_local) = (g.rank(), g.world(), g.num_local());
        let fused = self.cfg.mode == Mode::SarFused;
        let mut h_prev = self.input.gather_rows(&plan.active0);
        let mut prev_rows: &[u32] = &plan.active0;
        let mut out = Tensor::zeros(&[0, self.cfg.num_classes]);

        for k in 1..=self.cfg.layers {
            let lvl = &plan.levels[k - 1];
            let spec = self.model.specs[k - 1];
            let hpos = mfg::position_map(n_local, prev_rows);
            let pos_of = |r: u32| -> Result<u32, ServeError> {
                let v = hpos[r as usize];
                if v == u32::MAX {
                    Err(ServeError::Protocol(format!(
                        "level {k}: row {r} missing from the planned activation set"
                    )))
                } else {
                    Ok(v)
                }
            };
            let dst_map: Vec<u32> = lvl
                .computed
                .iter()
                .map(|&r| pos_of(r))
                .collect::<Result<_, _>>()?;

            // Projected features over every planned activation row — this
            // one matrix serves the local block (indexed kernels), the
            // residual/attention destination paths, and every peer's
            // requested rows.
            let layer = &self.model.layers[k - 1];
            let z = match layer {
                LayerParams::Sage { w_neigh, .. } => h_prev.matmul(w_neigh),
                LayerParams::Gcn { w } => h_prev
                    .matmul(w)
                    .mul_col_broadcast(&gather_scalar(&self.inv_sqrt, prev_rows)),
                LayerParams::Gat { w, .. } => h_prev.matmul(w),
            };
            let zw = spec.z_width;

            let computed_out = {
                let _phase = self.ctx.phase_scope(Phase::ForwardFetch);
                let tag = base + OFF_FWD + k as u64;
                // Ship every peer's requested rows before consuming any
                // block (empty requests still get a framed message,
                // mirroring the training rotation).
                for q in 0..world {
                    if q == p {
                        continue;
                    }
                    let mut buf = Vec::with_capacity(lvl.serve_rows[q].len() * zw);
                    for &r in &lvl.serve_rows[q] {
                        buf.extend_from_slice(z.row(pos_of(r)? as usize));
                    }
                    self.ctx.send_nowait(q, tag, Payload::F32(buf));
                }

                // Consume blocks in the training rotation's order:
                // q = p, p+1, …, p+N-1 (mod N).
                let recv_block = |ctx: &WorkerCtx, q: usize| -> Result<Tensor, ServeError> {
                    let data = ctx.try_recv(q, tag)?.try_into_f32()?;
                    let rows = lvl.slice.req_rows[q].len();
                    if data.len() != rows * zw {
                        return Err(ServeError::Protocol(format!(
                            "level {k}: peer {q} served {} values, expected {}",
                            data.len(),
                            rows * zw
                        )));
                    }
                    Ok(Tensor::from_vec(&[rows, zw], data))
                };
                let local_map: Vec<u32> = lvl.slice.req_rows[p]
                    .iter()
                    .map(|&r| pos_of(r))
                    .collect::<Result<_, _>>()?;

                match layer {
                    LayerParams::Sage { w_res, b_res, .. } => {
                        let mut acc = Tensor::zeros(&[lvl.computed.len(), zw]);
                        for r in 0..world {
                            let q = (p + r) % world;
                            if q == p {
                                ops::spmm_sum_into_indexed(
                                    &lvl.slice.blocks[p],
                                    &z,
                                    &local_map,
                                    &mut acc,
                                );
                            } else {
                                let block = recv_block(&self.ctx, q)?;
                                ops::spmm_sum_into(&lvl.slice.blocks[q], &block, &mut acc);
                            }
                        }
                        let h_dst = h_prev.gather_rows(&dst_map);
                        acc.mul_col_broadcast(&gather_scalar(&self.inv_deg, &lvl.computed))
                            .add(&h_dst.matmul(w_res).add_row_broadcast(b_res))
                    }
                    LayerParams::Gcn { .. } => {
                        let mut acc = Tensor::zeros(&[lvl.computed.len(), zw]);
                        for r in 0..world {
                            let q = (p + r) % world;
                            if q == p {
                                ops::spmm_sum_into_indexed(
                                    &lvl.slice.blocks[p],
                                    &z,
                                    &local_map,
                                    &mut acc,
                                );
                            } else {
                                let block = recv_block(&self.ctx, q)?;
                                ops::spmm_sum_into(&lvl.slice.blocks[q], &block, &mut acc);
                            }
                        }
                        acc.mul_col_broadcast(&gather_scalar(&self.inv_sqrt, &lvl.computed))
                    }
                    LayerParams::Gat { a_dst, a_src, .. } => {
                        let heads = spec.heads;
                        let s_dst = ops::head_project_indexed(&z, &dst_map, a_dst, heads);
                        let mut state = OnlineAttnState::new(lvl.computed.len(), heads, zw / heads);
                        for r in 0..world {
                            let q = (p + r) % world;
                            let block = &lvl.slice.blocks[q];
                            if q == p {
                                let s_src = ops::head_project_indexed(&z, &local_map, a_src, heads);
                                if fused {
                                    gat_fused_block_forward_indexed(
                                        block, &s_dst, &s_src, &z, &local_map, 0.2, &mut state,
                                    );
                                } else {
                                    gat_twostep_block_forward_indexed(
                                        block, &s_dst, &s_src, &z, &local_map, 0.2, &mut state,
                                    );
                                }
                            } else {
                                let zb = recv_block(&self.ctx, q)?;
                                let s_src = ops::head_project(&zb, a_src, heads);
                                if fused {
                                    gat_fused_block_forward(
                                        block, &s_dst, &s_src, &zb, 0.2, &mut state,
                                    );
                                } else {
                                    gat_twostep_block_forward(
                                        block, &s_dst, &s_src, &zb, 0.2, &mut state,
                                    );
                                }
                            }
                        }
                        let (value, _max, _den) = state.finalize_into();
                        if spec.concat {
                            value
                        } else {
                            mean_heads_tensor(&value, heads)
                        }
                    }
                }
            };
            let computed_out = if spec.activation {
                computed_out.map(|x| x.max(0.0))
            } else {
                computed_out
            };

            if k == self.cfg.layers {
                out = computed_out;
                break;
            }

            // Assemble the level's activation matrix from computed and
            // cached rows, then bank the computed rows.
            let mut h = Tensor::zeros(&[lvl.active.len(), spec.out_width]);
            let mut ci = 0usize;
            for (i, &r) in lvl.active.iter().enumerate() {
                if ci < lvl.computed.len() && lvl.computed[ci] == r {
                    h.row_mut(i).copy_from_slice(computed_out.row(ci));
                    ci += 1;
                } else {
                    let row = self.cache.get(k, r).ok_or_else(|| {
                        ServeError::Protocol(format!(
                            "level {k}: row {r} vanished from the cache mid-batch"
                        ))
                    })?;
                    h.row_mut(i).copy_from_slice(row);
                }
            }
            for (i, &r) in lvl.computed.iter().enumerate() {
                self.cache.insert(k, r, computed_out.row(i).to_vec());
            }
            h_prev = h;
            prev_rows = &lvl.active;
        }
        Ok(out)
    }

    /// Ships each rank's `(query position, logits row)` pairs to rank 0
    /// and assembles the `[Q, C]` response there.
    fn gather_results(
        &self,
        num_queries: usize,
        owned: &[(u32, u32)],
        sorted_rows: &[u32],
        out: &Tensor,
        base: u64,
    ) -> Result<Option<Tensor>, ServeError> {
        let _phase = self.ctx.phase_scope(Phase::Collective);
        let (p, world, c) = (self.graph.rank(), self.graph.world(), self.cfg.num_classes);
        let mut positions = Vec::with_capacity(owned.len());
        let mut values = Vec::with_capacity(owned.len() * c);
        for &(pos, li) in owned {
            let i = sorted_rows.binary_search(&li).map_err(|_| {
                ServeError::Protocol(format!(
                    "owned query row {li} missing from the batch output"
                ))
            })?;
            positions.push(pos);
            values.extend_from_slice(out.row(i));
        }
        if p != 0 {
            self.ctx
                .send_nowait(0, base + OFF_RES_POS, Payload::U32(positions));
            self.ctx
                .send_nowait(0, base + OFF_RES_VAL, Payload::F32(values));
            return Ok(None);
        }
        let mut result = Tensor::zeros(&[num_queries, c]);
        let mut fill = |positions: &[u32], values: &[f32]| -> Result<(), ServeError> {
            if values.len() != positions.len() * c {
                return Err(ServeError::Protocol(format!(
                    "result block carries {} values for {} positions",
                    values.len(),
                    positions.len()
                )));
            }
            for (j, &pos) in positions.iter().enumerate() {
                if pos as usize >= num_queries {
                    return Err(ServeError::Protocol(format!(
                        "result position {pos} out of range for {num_queries} queries"
                    )));
                }
                result
                    .row_mut(pos as usize)
                    .copy_from_slice(&values[j * c..(j + 1) * c]);
            }
            Ok(())
        };
        fill(&positions, &values)?;
        for q in 1..world {
            let pos = self.ctx.try_recv(q, base + OFF_RES_POS)?.try_into_u32()?;
            let vals = self.ctx.try_recv(q, base + OFF_RES_VAL)?.try_into_f32()?;
            fill(&pos, &vals)?;
        }
        Ok(Some(result))
    }
}

/// Reads a checkpoint file into raw `(shape, values)` pairs by loading it
/// through a throwaway [`DistModel`] (which validates count and shapes).
fn load_checkpoint_raw(cfg: &ModelConfig, path: &std::path::Path) -> Result<RawParams, ServeError> {
    let model = DistModel::new(cfg);
    let params = model.params();
    let file = File::open(path)?;
    checkpoint::load_params(&params, BufReader::new(file))?;
    Ok(params
        .iter()
        .map(|p| (p.shape(), p.value().data().to_vec()))
        .collect())
}

/// Gathers per-row scalars (`[n_local]`) at the given rows.
fn gather_scalar(t: &Tensor, rows: &[u32]) -> Tensor {
    let data = t.data();
    Tensor::from_vec(
        &[rows.len()],
        rows.iter().map(|&r| data[r as usize]).collect(),
    )
}

/// Head-averaging of a `[N, H*D]` matrix to `[N, D]`, replicating the
/// training implementation's accumulation order bitwise (ascending head
/// index, division before accumulation).
// sar-check: deterministic(one-writer-per-row: sequential row loop, heads
// folded in fixed ascending order into a freshly zeroed buffer)
fn mean_heads_tensor(x: &Tensor, heads: usize) -> Tensor {
    let hd = x.cols();
    let d = hd / heads;
    let n = x.rows();
    let mut out = vec![0.0f32; n * d];
    for i in 0..n {
        let row = x.row(i);
        for h in 0..heads {
            for j in 0..d {
                out[i * d + j] += row[h * d + j] / heads as f32;
            }
        }
    }
    Tensor::from_vec(&[n, d], out)
}
