//! Integration tests for the serving tier.
//!
//! The load-bearing property is **bitwise parity**: logits served through
//! the MFG-restricted path must equal the corresponding rows of the
//! full-graph [`infer`] baseline exactly (`to_bits`), across
//! architectures, thread counts, SIMD modes, and both transport
//! backends. On top of that: the per-batch fetch ledger must stay
//! strictly below a full-graph forward's predicted volume, the embedding
//! cache must cut traffic without touching bits, and the TCP front-end
//! must answer real clients end to end.

use std::net::TcpListener;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use sar_comm::tcp::run_tcp_threads;
use sar_comm::{Cluster, CostModel, TcpOpts, Transport, WorkerCtx};
use sar_core::{infer, Arch, DistGraph, DistModel, Mode, ModelConfig, Shard};
use sar_graph::{datasets, Dataset};
use sar_partition::{multilevel, Partitioning};
use sar_serve::{
    serve, worker_loop, BatchStats, EngineSetup, ServeClient, ServeEngine, ServeError, ServerConfig,
};
use sar_tensor::{pool, simd, Tensor};

const WORLD: usize = 4;

fn dataset() -> Dataset {
    datasets::products_like(300, 0)
}

fn model_cfg(arch: Arch, mode: Mode, d: &Dataset) -> ModelConfig {
    ModelConfig {
        arch,
        mode,
        layers: 2,
        in_dim: 0, // resolved from the shard
        num_classes: d.num_classes,
        dropout: 0.0,
        batch_norm: false,
        jumping_knowledge: false,
        seed: 11,
    }
}

fn raw_params(cfg: &ModelConfig, d: &Dataset, label_aug: bool) -> Vec<(Vec<usize>, Vec<f32>)> {
    let mut resolved = cfg.clone();
    resolved.in_dim = d.feat_dim() + if label_aug { d.num_classes } else { 0 };
    DistModel::new(&resolved)
        .params()
        .iter()
        .map(|p| (p.shape(), p.value().data().to_vec()))
        .collect()
}

struct Fixture {
    d: Dataset,
    part: Partitioning,
    graphs: Arc<Vec<Arc<DistGraph>>>,
    shards: Arc<Vec<Shard>>,
    cfg: ModelConfig,
    params: Vec<(Vec<usize>, Vec<f32>)>,
    label_aug: bool,
}

fn fixture(arch: Arch, mode: Mode, label_aug: bool) -> Fixture {
    let d = dataset();
    let part = multilevel(&d.graph, WORLD, 0);
    let cfg = model_cfg(arch, mode, &d);
    let params = raw_params(&cfg, &d, label_aug);
    Fixture {
        graphs: Arc::new(
            DistGraph::build_all(&d.graph, &part)
                .into_iter()
                .map(Arc::new)
                .collect(),
        ),
        shards: Arc::new(Shard::build_all(&d, &part)),
        d,
        part,
        cfg,
        params,
        label_aug,
    }
}

fn setup(fx: &Fixture) -> EngineSetup {
    EngineSetup {
        model_cfg: fx.cfg.clone(),
        label_aug: fx.label_aug,
        cache_rows: 4096,
        checkpoint: None,
    }
}

fn full_logits(fx: &Fixture) -> Tensor {
    infer(
        &fx.d,
        &fx.part,
        CostModel::default(),
        &fx.cfg,
        &fx.params,
        fx.label_aug,
    )
}

/// Serves one query batch over the in-process channel backend and
/// returns rank 0's logits + stats.
fn serve_once_sim(fx: &Fixture, queries: &[u32], threads: usize) -> (Tensor, BatchStats) {
    let graphs = Arc::clone(&fx.graphs);
    let shards = Arc::clone(&fx.shards);
    let st = setup(fx);
    let params = fx.params.clone();
    let queries = queries.to_vec();
    let n = fx.d.num_nodes();
    let c = fx.d.num_classes;
    let out = Cluster::new(WORLD, CostModel::default()).run(move |ctx| {
        pool::set_threads(threads);
        let rank = ctx.rank();
        let mut engine = ServeEngine::new(
            ctx,
            Arc::clone(&graphs[rank]),
            &shards[rank],
            n,
            &st,
            &params,
        )
        .expect("engine builds");
        if rank == 0 {
            let (logits, stats) = engine.execute_query(&queries).expect("query runs");
            engine.shutdown().expect("shutdown");
            Some((logits.data().to_vec(), stats))
        } else {
            worker_loop(&mut engine).expect("worker loop");
            None
        }
    });
    let (data, stats) = out
        .into_iter()
        .map(|o| o.result)
        .find(Option::is_some)
        .flatten()
        .expect("rank 0 result");
    (Tensor::from_vec(&[data.len() / c, c], data), stats)
}

/// Same batch over real TCP sockets.
fn serve_once_tcp(fx: &Fixture, queries: &[u32]) -> (Tensor, BatchStats) {
    let graphs = Arc::clone(&fx.graphs);
    let shards = Arc::clone(&fx.shards);
    let st = setup(fx);
    let params = fx.params.clone();
    let queries = queries.to_vec();
    let n = fx.d.num_nodes();
    let c = fx.d.num_classes;
    let out = run_tcp_threads(WORLD, TcpOpts::default(), move |transport| {
        let rank = transport.rank();
        let ctx = WorkerCtx::new(
            Box::new(transport),
            CostModel::default(),
            Duration::from_secs(120),
        );
        let mut engine = ServeEngine::new(
            ctx,
            Arc::clone(&graphs[rank]),
            &shards[rank],
            n,
            &st,
            &params,
        )
        .expect("engine builds");
        if rank == 0 {
            let (logits, stats) = engine.execute_query(&queries).expect("query runs");
            engine.shutdown().expect("shutdown");
            Some((logits.data().to_vec(), stats))
        } else {
            worker_loop(&mut engine).expect("worker loop");
            None
        }
    });
    let (data, stats) = out
        .into_iter()
        .find(Option::is_some)
        .flatten()
        .expect("rank 0");
    (Tensor::from_vec(&[data.len() / c, c], data), stats)
}

fn assert_rows_bitwise(label: &str, served: &Tensor, full: &Tensor, queries: &[u32]) {
    assert_eq!(served.rows(), queries.len(), "{label}: row count");
    for (i, &gid) in queries.iter().enumerate() {
        let got = served.row(i);
        let want = full.row(gid as usize);
        for (j, (a, b)) in got.iter().zip(want).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{label}: query {i} (node {gid}) col {j}: served {a} != full {b}"
            );
        }
    }
}

/// Duplicates and unsorted order on purpose: the response must be in
/// request order, dedup is an internal matter.
const QUERIES: &[u32] = &[7, 123, 3, 255, 3, 64, 7, 0, 299];

#[test]
fn sage_mfg_logits_match_full_inference_bitwise() {
    let fx = fixture(Arch::GraphSage { hidden: 16 }, Mode::Sar, true);
    let full = full_logits(&fx);
    for threads in [1, 4] {
        for mode in [simd::SimdMode::Auto, simd::SimdMode::ForceScalar] {
            simd::set_mode(mode);
            let (served, stats) = serve_once_sim(&fx, QUERIES, threads);
            simd::set_mode(simd::SimdMode::Auto);
            assert_rows_bitwise(
                &format!("sage threads={threads} simd={mode:?}"),
                &served,
                &full,
                QUERIES,
            );
            assert!(
                stats.fetch_bytes < stats.full_forward_bytes,
                "sage: MFG fetched {} bytes, full forward predicts {}",
                stats.fetch_bytes,
                stats.full_forward_bytes
            );
        }
    }
}

#[test]
fn gcn_mfg_logits_match_full_inference_bitwise() {
    let fx = fixture(Arch::Gcn { hidden: 12 }, Mode::Sar, false);
    let full = full_logits(&fx);
    let (served, stats) = serve_once_sim(&fx, QUERIES, 1);
    assert_rows_bitwise("gcn", &served, &full, QUERIES);
    assert!(stats.fetch_bytes < stats.full_forward_bytes);
}

#[test]
fn gat_mfg_logits_match_full_inference_bitwise_both_kernels() {
    for mode in [Mode::Sar, Mode::SarFused] {
        let fx = fixture(
            Arch::Gat {
                head_dim: 8,
                heads: 2,
            },
            mode,
            true,
        );
        let full = full_logits(&fx);
        let (served, stats) = serve_once_sim(&fx, QUERIES, 4);
        assert_rows_bitwise(&format!("gat {mode:?}"), &served, &full, QUERIES);
        assert!(stats.fetch_bytes < stats.full_forward_bytes);
    }
}

#[test]
fn tcp_transport_serves_identical_bits() {
    let fx = fixture(Arch::GraphSage { hidden: 16 }, Mode::Sar, true);
    let full = full_logits(&fx);
    let (served, stats) = serve_once_tcp(&fx, QUERIES);
    assert_rows_bitwise("sage/tcp", &served, &full, QUERIES);
    assert!(stats.fetch_bytes < stats.full_forward_bytes);
    // And the same bits as the channel backend end to end.
    let (sim, _) = serve_once_sim(&fx, QUERIES, 1);
    for (a, b) in sim.data().iter().zip(served.data()) {
        assert_eq!(a.to_bits(), b.to_bits(), "sim and tcp serving diverged");
    }
}

#[test]
fn cache_cuts_fetch_traffic_without_changing_bits() {
    let fx = fixture(Arch::GraphSage { hidden: 16 }, Mode::Sar, false);
    let graphs = Arc::clone(&fx.graphs);
    let shards = Arc::clone(&fx.shards);
    let st = setup(&fx);
    let params = fx.params.clone();
    let n = fx.d.num_nodes();
    let feat_dim = fx.d.feat_dim();
    let out = Cluster::new(WORLD, CostModel::default()).run(move |ctx| {
        let rank = ctx.rank();
        let mut engine = ServeEngine::new(
            ctx,
            Arc::clone(&graphs[rank]),
            &shards[rank],
            n,
            &st,
            &params,
        )
        .expect("engine builds");
        if rank == 0 {
            let (first, s1) = engine.execute_query(QUERIES).expect("first");
            let (second, s2) = engine.execute_query(QUERIES).expect("second");
            // Identical bits: cached rows are the exact values the
            // forward pass produced.
            for (a, b) in first.data().iter().zip(second.data()) {
                assert_eq!(a.to_bits(), b.to_bits(), "cache changed served bits");
            }
            // Strictly less traffic: the cached level drops out of the
            // second batch's MFG.
            assert!(
                s2.fetch_bytes < s1.fetch_bytes,
                "cache did not cut traffic: {} -> {}",
                s1.fetch_bytes,
                s2.fetch_bytes
            );
            let snap = engine.snapshot();
            assert!(snap.cache_hits > 0, "no cache hits recorded");

            // A feature update invalidates every rank's cache: the next
            // identical batch pays full price again and sees new bits
            // for queries whose MFG contains the updated node.
            engine
                .update_feature(QUERIES[0], &vec![9.0; feat_dim])
                .expect("update");
            let (third, s3) = engine.execute_query(QUERIES).expect("third");
            assert!(
                s3.fetch_bytes > s2.fetch_bytes,
                "invalidation did not restore fetch traffic"
            );
            let changed = first
                .data()
                .iter()
                .zip(third.data())
                .any(|(a, b)| a.to_bits() != b.to_bits());
            assert!(changed, "feature update did not reach served logits");
            assert!(engine.snapshot().cache_invalidations > 0);
            engine.shutdown().expect("shutdown");
        } else {
            worker_loop(&mut engine).expect("worker loop");
        }
    });
    drop(out);
}

#[test]
fn bad_queries_are_typed_errors_and_do_not_poison_the_cluster() {
    let fx = fixture(Arch::Gcn { hidden: 8 }, Mode::Sar, false);
    let full = full_logits(&fx);
    let graphs = Arc::clone(&fx.graphs);
    let shards = Arc::clone(&fx.shards);
    let st = setup(&fx);
    let params = fx.params.clone();
    let n = fx.d.num_nodes();
    Cluster::new(WORLD, CostModel::default()).run(move |ctx| {
        let rank = ctx.rank();
        let mut engine = ServeEngine::new(
            ctx,
            Arc::clone(&graphs[rank]),
            &shards[rank],
            n,
            &st,
            &params,
        )
        .expect("engine builds");
        if rank == 0 {
            // Out-of-range id: rejected before any broadcast, so the
            // workers never see a broken batch.
            match engine.execute_query(&[n as u32]) {
                Err(ServeError::QueryOutOfRange { id, nodes }) => {
                    assert_eq!((id as usize, nodes), (n, n));
                }
                other => panic!("expected QueryOutOfRange, got {other:?}"),
            }
            // Reload without a configured checkpoint path: typed error.
            match engine.reload() {
                Err(ServeError::Unsupported(_)) => {}
                other => panic!("expected Unsupported, got {other:?}"),
            }
            // The cluster still serves correctly afterwards.
            let (logits, _) = engine.execute_query(&[5, 9]).expect("query after errors");
            for (i, &gid) in [5u32, 9].iter().enumerate() {
                for (a, b) in logits.row(i).iter().zip(full.row(gid as usize)) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            engine.shutdown().expect("shutdown");
        } else {
            worker_loop(&mut engine).expect("worker loop");
        }
    });
}

#[test]
fn tcp_front_end_serves_clients_end_to_end() {
    let fx = fixture(Arch::GraphSage { hidden: 16 }, Mode::Sar, true);
    let full = full_logits(&fx);
    let feat_dim = fx.d.feat_dim();

    // Persist the parameters so the reload path has a real file.
    let ckpt = std::env::temp_dir().join(format!(
        "sar-serve-e2e-{}-{:x}.ckpt",
        std::process::id(),
        &fx as *const _ as usize
    ));
    {
        let f = std::fs::File::create(&ckpt).expect("create checkpoint");
        sar_core::checkpoint::save_raw_params(&fx.params, std::io::BufWriter::new(f))
            .expect("save checkpoint");
    }

    let graphs = Arc::clone(&fx.graphs);
    let shards = Arc::clone(&fx.shards);
    let mut st = setup(&fx);
    st.checkpoint = Some(ckpt.clone());
    let params = fx.params.clone();
    let n = fx.d.num_nodes();

    // The client learns the front-end's address through this channel.
    let (addr_tx, addr_rx) = mpsc::channel();
    let addr_tx = Arc::new(Mutex::new(Some(addr_tx)));

    let full_for_client = full.clone();
    let client = std::thread::spawn(move || {
        let addr = addr_rx
            .recv_timeout(Duration::from_secs(60))
            .expect("server address");
        let mut c = ServeClient::connect(addr).expect("connect");
        c.set_timeout(Some(Duration::from_secs(60)))
            .expect("timeout");

        // Plain query: bitwise parity through the whole stack.
        let logits = c.query(QUERIES).expect("query");
        assert_rows_bitwise("e2e", &logits, &full_for_client, QUERIES);

        // Bad ids are refused per request; the connection survives.
        match c.query(&[n as u32]) {
            Err(ServeError::Protocol(msg)) => {
                assert!(msg.contains("out of range"), "unexpected message: {msg}")
            }
            other => panic!("expected a protocol error, got {other:?}"),
        }

        // A second concurrent client exercises the coalescing path
        // (before any feature update, so the pristine baseline applies).
        let mut c2 = ServeClient::connect(addr).expect("second connect");
        let q2 = std::thread::spawn(move || c2.query(&[1, 2, 3]).expect("parallel query"));
        let a = c.query(&[10, 20]).expect("parallel query");
        let b = q2.join().expect("client thread");
        assert_rows_bitwise("e2e-par-a", &a, &full_for_client, &[10, 20]);
        assert_rows_bitwise("e2e-par-b", &b, &full_for_client, &[1, 2, 3]);

        // Feature update changes served bits; reloading the checkpoint
        // (same parameters, fresh cache) keeps the new features.
        c.update_feature(QUERIES[0], &vec![4.5; feat_dim])
            .expect("update");
        let after_update = c.query(QUERIES).expect("query after update");
        let changed = logits
            .data()
            .iter()
            .zip(after_update.data())
            .any(|(a, b)| a.to_bits() != b.to_bits());
        assert!(changed, "update did not change served logits");
        c.reload().expect("reload");
        let after_reload = c.query(QUERIES).expect("query after reload");
        for (a, b) in after_update.data().iter().zip(after_reload.data()) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "reload changed non-parameter state"
            );
        }

        // Stats reflect the work done.
        let snap = c.stats().expect("stats");
        assert!(snap.batches >= 3, "batches: {}", snap.batches);
        assert_eq!(snap.world as usize, WORLD);
        assert!(snap.fetch_bytes > 0);
        assert!(snap.fetch_bytes < snap.full_forward_bytes * snap.batches);

        // Graceful shutdown: the ack arrives only after the drain.
        c.shutdown().expect("shutdown");
    });

    let summaries = run_tcp_threads(WORLD, TcpOpts::default(), move |transport| {
        let rank = transport.rank();
        let ctx = WorkerCtx::new(
            Box::new(transport),
            CostModel::default(),
            Duration::from_secs(120),
        );
        let mut engine = ServeEngine::new(
            ctx,
            Arc::clone(&graphs[rank]),
            &shards[rank],
            n,
            &st,
            &params,
        )
        .expect("engine builds");
        if rank == 0 {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            if let Some(tx) = addr_tx.lock().expect("addr lock").take() {
                tx.send(listener.local_addr().expect("addr"))
                    .expect("send addr");
            }
            let cfg = ServerConfig {
                max_batch: 8,
                max_delay: Duration::from_millis(2),
                queue_cap: 64,
            };
            let summary = serve(&mut engine, listener, &cfg).expect("serve");
            assert!(summary.requests >= 8, "requests: {}", summary.requests);
            assert!(summary.connections >= 2);
            Some(summary.stats.batches)
        } else {
            worker_loop(&mut engine).expect("worker loop");
            None
        }
    });
    client.join().expect("client thread");
    let _ = std::fs::remove_file(&ckpt);
    assert!(summaries.into_iter().flatten().next().is_some());
}
