//! Microbenchmarks of the sparse message-passing kernels (the DGL
//! substitute): SpMM, edge softmax and multi-head weighted aggregation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sar_graph::{datasets, ops};
use sar_tensor::init;
use std::hint::black_box;

fn bench_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm");
    group.sample_size(10);
    let d = datasets::products_like(5_000, 0);
    for &f in &[64usize, 256] {
        let mut rng = StdRng::seed_from_u64(0);
        let x = init::randn(&[5_000, f], 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("sum", f), &f, |bench, _| {
            bench.iter(|| black_box(ops::spmm_sum(&d.graph, &x)))
        });
        group.bench_with_input(BenchmarkId::new("backward", f), &f, |bench, _| {
            bench.iter(|| black_box(ops::spmm_sum_backward(&d.graph, &x)))
        });
    }
    group.finish();
}

fn bench_edge_softmax(c: &mut Criterion) {
    let mut group = c.benchmark_group("edge_softmax");
    group.sample_size(10);
    let d = datasets::products_like(5_000, 1);
    let e = d.graph.num_edges();
    for &h in &[2usize, 8] {
        let mut rng = StdRng::seed_from_u64(1);
        let scores = init::randn(&[e, h], 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("forward", h), &h, |bench, _| {
            bench.iter(|| black_box(ops::edge_softmax(&d.graph, &scores)))
        });
    }
    group.finish();
}

fn bench_spmm_multihead(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm_multihead");
    group.sample_size(10);
    let d = datasets::products_like(5_000, 2);
    let e = d.graph.num_edges();
    let heads = 4;
    let hd = heads * 32;
    let mut rng = StdRng::seed_from_u64(2);
    let alpha = init::randn(&[e, heads], 1.0, &mut rng).softmax_rows();
    let x = init::randn(&[5_000, hd], 1.0, &mut rng);
    group.bench_function("4heads_x32", |bench| {
        bench.iter(|| black_box(ops::spmm_multihead(&d.graph, &alpha, &x)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_spmm,
    bench_edge_softmax,
    bench_spmm_multihead
);
criterion_main!(benches);
