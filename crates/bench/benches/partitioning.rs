//! Partitioner throughput and quality benchmarks: the METIS-like
//! multilevel partitioner vs the baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sar_graph::datasets;
use sar_partition::{partition, Method};
use std::hint::black_box;

fn bench_partitioners(c: &mut Criterion) {
    let d = datasets::products_like(5_000, 0);
    let mut group = c.benchmark_group("partition_5k_nodes");
    group.sample_size(10);
    for (method, name) in [
        (Method::Multilevel, "multilevel"),
        (Method::Bfs, "bfs"),
        (Method::Random, "random"),
        (Method::Range, "range"),
    ] {
        group.bench_with_input(BenchmarkId::new(name, 8), &method, |bench, &m| {
            bench.iter(|| black_box(partition(&d.graph, 8, m, 0)))
        });
    }
    group.finish();
}

fn bench_multilevel_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("multilevel_by_k");
    group.sample_size(10);
    let d = datasets::products_like(4_000, 1);
    for &k in &[2usize, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bench, &k| {
            bench.iter(|| black_box(partition(&d.graph, k, Method::Multilevel, 0)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partitioners, bench_multilevel_scaling);
criterion_main!(benches);
