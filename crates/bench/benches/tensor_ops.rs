//! Microbenchmarks of the dense-tensor substrate (matmul, softmax,
//! gather/scatter) — the building blocks whose throughput anchors every
//! epoch-time measurement in the paper reproduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sar_tensor::{init, Tensor};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(10);
    for &n in &[128usize, 512] {
        let mut rng = StdRng::seed_from_u64(0);
        let a = init::randn(&[n, n], 1.0, &mut rng);
        let b = init::randn(&[n, n], 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("nn", n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b)))
        });
        group.bench_with_input(BenchmarkId::new("tn", n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul_tn(&b)))
        });
    }
    group.finish();
}

fn bench_softmax(c: &mut Criterion) {
    let mut group = c.benchmark_group("softmax_rows");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(1);
    let x = init::randn(&[10_000, 64], 1.0, &mut rng);
    group.bench_function("10000x64", |bench| {
        bench.iter(|| black_box(x.softmax_rows()))
    });
    group.bench_function("log_10000x64", |bench| {
        bench.iter(|| black_box(x.log_softmax_rows()))
    });
    group.finish();
}

fn bench_gather_scatter(c: &mut Criterion) {
    let mut group = c.benchmark_group("gather_scatter");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(2);
    let x = init::randn(&[20_000, 128], 1.0, &mut rng);
    let idx: Vec<u32> = (0..40_000u32).map(|i| (i * 7919) % 20_000).collect();
    group.bench_function("gather_40k_rows", |bench| {
        bench.iter(|| black_box(x.gather_rows(&idx)))
    });
    let src = init::randn(&[40_000, 128], 1.0, &mut rng);
    group.bench_function("scatter_add_40k_rows", |bench| {
        bench.iter(|| {
            let mut out = Tensor::zeros(&[20_000, 128]);
            out.scatter_add_rows(&idx, &src);
            black_box(out)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_softmax, bench_gather_scatter);
criterion_main!(benches);
