//! Criterion version of Fig. 2: fused attention kernel (FAK) vs the
//! DGL-style decomposed GAT layer, forward and backward, across head
//! counts at a constant per-head dimension.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sar_graph::datasets;
use sar_nn::{FusedGatLayer, GatConfig, GatLayer};
use sar_tensor::{init, Var};
use std::hint::black_box;

fn bench_gat_layers(c: &mut Criterion) {
    let d = datasets::products_like(2_000, 0);
    let g = Arc::new(d.graph.clone());
    let mut group = c.benchmark_group("fig2_gat_layer");
    group.sample_size(10);
    for &heads in &[2usize, 4, 8] {
        let head_dim = 100;
        let width = heads * head_dim;
        let mut rng = StdRng::seed_from_u64(heads as u64);
        let mut cfg = GatConfig::new(width, head_dim, heads);
        cfg.activation = false;
        let standard = GatLayer::new(cfg, &mut rng);
        let fused = FusedGatLayer::from_standard(&standard);
        let x = init::randn(&[d.num_nodes(), width], 0.5, &mut rng);

        group.bench_with_input(
            BenchmarkId::new("standard_fwd", heads),
            &heads,
            |bench, _| {
                let h = Var::constant(x.clone());
                bench.iter(|| black_box(standard.forward(&g, &h)))
            },
        );
        group.bench_with_input(BenchmarkId::new("fak_fwd", heads), &heads, |bench, _| {
            let h = Var::constant(x.clone());
            bench.iter(|| black_box(fused.forward(&g, &h)))
        });
        group.bench_with_input(
            BenchmarkId::new("standard_fwd_bwd", heads),
            &heads,
            |bench, _| {
                bench.iter(|| {
                    let h = Var::parameter(x.clone());
                    standard.forward(&g, &h).sum().backward();
                    for p in standard.params() {
                        p.zero_grad();
                    }
                    black_box(h.grad())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("fak_fwd_bwd", heads),
            &heads,
            |bench, _| {
                bench.iter(|| {
                    let h = Var::parameter(x.clone());
                    fused.forward(&g, &h).sum().backward();
                    for p in fused.params() {
                        p.zero_grad();
                    }
                    black_box(h.grad())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_gat_layers);
criterion_main!(benches);
