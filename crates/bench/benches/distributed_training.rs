//! End-to-end distributed-epoch benchmarks: the criterion counterpart of
//! Figs. 3–6, one epoch of 3-layer GraphSage/GAT under each execution
//! mode at a fixed worker count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sar_comm::CostModel;
use sar_core::{train, Arch, Mode, ModelConfig, TrainConfig};
use sar_graph::datasets;
use sar_nn::LrSchedule;
use sar_partition::multilevel;
use std::hint::black_box;

fn cfg(arch: Arch, mode: Mode, classes: usize) -> TrainConfig {
    TrainConfig {
        model: ModelConfig {
            arch,
            mode,
            layers: 3,
            in_dim: 0,
            num_classes: classes,
            dropout: 0.0,
            batch_norm: false,
            jumping_knowledge: false,
            seed: 0,
        },
        epochs: 1,
        lr: 0.01,
        schedule: LrSchedule::Constant,
        label_aug: false,
        aug_frac: 0.0,
        cs: None,
        prefetch_depth: 0,
        seed: 0,
        threads: 1,
        protocol: Default::default(),
        codec: Default::default(),
        mem_budget: 0,
    }
}

fn bench_epoch(c: &mut Criterion) {
    let d = datasets::products_like(1_500, 0);
    let part = multilevel(&d.graph, 4, 0);
    let mut group = c.benchmark_group("epoch_4workers");
    group.sample_size(10);

    let sage = Arch::GraphSage { hidden: 64 };
    let gat = Arch::Gat {
        head_dim: 16,
        heads: 4,
    };
    for (arch, arch_name) in [(sage, "sage"), (gat, "gat")] {
        for (mode, mode_name) in [
            (Mode::DomainParallel, "dp"),
            (Mode::Sar, "sar"),
            (Mode::SarFused, "sar_fak"),
        ] {
            // SAR and SAR+FAK are identical for GraphSage; skip one.
            if matches!(arch, Arch::GraphSage { .. }) && mode == Mode::SarFused {
                continue;
            }
            let c_ = cfg(arch, mode, d.num_classes);
            group.bench_with_input(BenchmarkId::new(arch_name, mode_name), &c_, |bench, c_| {
                bench.iter(|| black_box(train(&d, &part, CostModel::default(), c_)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_epoch);
criterion_main!(benches);
