//! Per-rank driver for real multi-process *serving* over the TCP
//! transport.
//!
//! The training driver ([`crate::distrun`]) establishes the contract:
//! nothing is shared between OS processes, so every rank rebuilds the
//! dataset, the partitioning and the model deterministically from the
//! shared workload flags. Serving reuses that contract verbatim — the
//! same [`Workload`] flags rebuild the same [`DistGraph`]/[`Shard`]
//! pair in every `sar-serve` process — and adds two serving-specific
//! pieces:
//!
//! * **parameters** come from a checkpoint file when `--checkpoint` is
//!   given (each rank reads the same file through a throwaway
//!   [`DistModel`], which validates count and shapes, so all ranks hold
//!   bit-identical parameters) or from the seeded deterministic
//!   initialization otherwise;
//! * **rank 0** binds a second listener for *clients*, publishes its
//!   address through the same atomic-rename file mechanism the
//!   rendezvous uses, and runs the batching front-end
//!   ([`sar_serve::serve`]) until a client requests shutdown, while the
//!   other ranks sit in [`sar_serve::worker_loop`].
//!
//! Inference-time restrictions are resolved here, not left to the
//! caller: serving always runs with dropout 0 and batch normalization
//! off ([`sar_serve`] rejects batch norm because `DistBatchNorm` keeps
//! no eval-mode statistics), so a workload's training-oriented defaults
//! cannot produce an unservable configuration.

use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use sar_comm::{CostModel, TcpOpts, TcpTransport, WorkerCtx};
use sar_core::{checkpoint, DistGraph, DistModel, ModelConfig, Shard};
use sar_graph::Dataset;
use sar_serve::{
    serve, worker_loop, EngineSetup, RawParams, ServeEngine, ServeSummary, ServerConfig,
};

use crate::distrun::Workload;

/// How long a serving rank waits on a mesh message before declaring the
/// cluster dead. Serving ranks legitimately idle between requests, so
/// the engine's idle poll (which is *not* an error) uses a much shorter
/// internal timeout; this bound only fences genuinely lost peers during
/// an active batch.
const RECV_TIMEOUT: Duration = Duration::from_secs(120);

/// Per-process serving options that are *not* part of the shared
/// workload.
#[derive(Debug, Clone)]
pub struct ServeRankOpts {
    /// This process's rank.
    pub rank: usize,
    /// Total rank count.
    pub world: usize,
    /// File through which rank 0 publishes its mesh rendezvous address.
    pub rendezvous_file: PathBuf,
    /// How long non-zero ranks poll for the rendezvous file.
    pub rendezvous_timeout: Duration,
    /// Checkpoint to load parameters from (`None` = seeded init). Also
    /// becomes the engine's reload source.
    pub checkpoint: Option<PathBuf>,
    /// File through which rank 0 publishes its *client* listener
    /// address (atomic rename, same as the rendezvous file).
    pub client_addr_file: Option<PathBuf>,
    /// Front-end batching knobs (rank 0 only).
    pub server: ServerConfig,
    /// Embedding-cache row budget per rank (0 disables caching).
    pub cache_rows: usize,
}

/// Resolves the serving [`ModelConfig`] from workload flags: identical
/// to the training configuration except that inference runs with
/// dropout 0 and batch normalization off.
///
/// # Errors
///
/// Rejects unknown architecture/mode names (via
/// [`Workload::train_config`]).
pub fn serve_model_config(workload: &Workload, dataset: &Dataset) -> Result<ModelConfig, String> {
    let mut cfg = workload.train_config(dataset)?.model;
    cfg.dropout = 0.0;
    cfg.batch_norm = false;
    Ok(cfg)
}

/// Builds the raw `(shape, values)` parameter list every rank serves
/// from: the seeded deterministic initialization for `cfg`, overwritten
/// from `checkpoint` when one is given. Loading goes through a
/// throwaway [`DistModel`] so count and shapes are validated against
/// the configuration before any rank commits to serving them.
///
/// # Errors
///
/// Names the checkpoint file on any read or format failure.
pub fn load_or_init_params(
    cfg: &ModelConfig,
    dataset: &Dataset,
    label_aug: bool,
    checkpoint: Option<&Path>,
) -> Result<RawParams, String> {
    let mut resolved = cfg.clone();
    resolved.in_dim = dataset.feat_dim() + if label_aug { dataset.num_classes } else { 0 };
    let model = DistModel::new(&resolved);
    let params = model.params();
    if let Some(path) = checkpoint {
        let file = std::fs::File::open(path)
            .map_err(|e| format!("cannot open checkpoint {}: {e}", path.display()))?;
        checkpoint::load_params(&params, file)
            .map_err(|e| format!("cannot load checkpoint {}: {e}", path.display()))?;
    }
    Ok(params
        .iter()
        .map(|p| (p.shape(), p.value().data().to_vec()))
        .collect())
}

/// The whole per-process serving lifecycle: rebuild state from the
/// workload flags, load or initialize parameters, form the TCP mesh,
/// then serve — rank 0 as the client front-end, the rest as resident
/// workers — until a client requests shutdown. Returns the front-end
/// summary on rank 0, `None` elsewhere.
///
/// # Errors
///
/// Flag, checkpoint, rendezvous and transport errors, each naming this
/// rank.
pub fn run_serve_rank(
    opts: &ServeRankOpts,
    workload: &Workload,
) -> Result<Option<ServeSummary>, String> {
    let rank = opts.rank;
    if rank >= opts.world {
        return Err(format!(
            "--rank {rank} out of range for --world {}",
            opts.world
        ));
    }
    let simd_mode = sar_tensor::simd::parse_mode(&workload.simd)
        .ok_or_else(|| format!("unknown --simd {} (auto|scalar)", workload.simd))?;
    sar_tensor::simd::set_mode(simd_mode);
    sar_tensor::pool::set_threads(workload.threads);

    let (dataset, part) = workload.build_data(opts.world)?;
    let cfg = serve_model_config(workload, &dataset)?;
    let params = load_or_init_params(
        &cfg,
        &dataset,
        workload.label_aug,
        opts.checkpoint.as_deref(),
    )
    .map_err(|e| format!("rank {rank}: {e}"))?;
    let graph = Arc::new(DistGraph::build_all(&dataset.graph, &part).swap_remove(rank));
    let shard = Shard::build_all(&dataset, &part).swap_remove(rank);

    let transport = if rank == 0 {
        let listener = TcpListener::bind(("127.0.0.1", 0))
            .map_err(|e| format!("rank 0: cannot bind rendezvous listener: {e}"))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("rank 0: cannot read listener address: {e}"))?;
        crate::launcher::write_rendezvous_addr(&opts.rendezvous_file, &addr)
            .map_err(|e| format!("rank 0: cannot write rendezvous file: {e}"))?;
        TcpTransport::host(listener, opts.world, TcpOpts::default())
            .map_err(|e| format!("rank 0: {e}"))?
    } else {
        let addr =
            crate::launcher::read_rendezvous_addr(&opts.rendezvous_file, opts.rendezvous_timeout)
                .map_err(|e| format!("rank {rank}: {e}"))?;
        TcpTransport::join(addr.as_str(), rank, opts.world, TcpOpts::default())
            .map_err(|e| format!("rank {rank}: {e}"))?
    };
    let ctx = WorkerCtx::new(Box::new(transport), CostModel::default(), RECV_TIMEOUT);

    let setup = EngineSetup {
        model_cfg: cfg,
        label_aug: workload.label_aug,
        cache_rows: opts.cache_rows,
        checkpoint: opts.checkpoint.clone(),
    };
    let mut engine = ServeEngine::new(ctx, graph, &shard, dataset.num_nodes(), &setup, &params)
        .map_err(|e| format!("rank {rank}: cannot build serving engine: {e}"))?;

    if rank == 0 {
        let listener = TcpListener::bind(("127.0.0.1", 0))
            .map_err(|e| format!("rank 0: cannot bind client listener: {e}"))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("rank 0: cannot read client listener address: {e}"))?;
        if let Some(path) = &opts.client_addr_file {
            crate::launcher::write_rendezvous_addr(path, &addr)
                .map_err(|e| format!("rank 0: cannot write client address file: {e}"))?;
        }
        eprintln!("[sar-serve] rank 0 front-end listening on {addr}");
        let summary = serve(&mut engine, listener, &opts.server)
            .map_err(|e| format!("rank 0: front-end failed: {e}"))?;
        Ok(Some(summary))
    } else {
        worker_loop(&mut engine).map_err(|e| format!("rank {rank}: worker loop failed: {e}"))?;
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sar_graph::datasets;

    fn workload() -> Workload {
        Workload {
            nodes: 120,
            layers: 2,
            ..Workload::default()
        }
    }

    #[test]
    fn serve_config_strips_training_only_pieces() {
        let d = datasets::products_like(120, 0);
        let cfg = serve_model_config(&workload(), &d).unwrap();
        assert_eq!(cfg.dropout, 0.0);
        assert!(!cfg.batch_norm);
        assert_eq!(cfg.layers, 2);
    }

    #[test]
    fn params_round_trip_through_a_checkpoint_file() {
        let d = datasets::products_like(120, 0);
        let cfg = serve_model_config(&workload(), &d).unwrap();
        let init = load_or_init_params(&cfg, &d, true, None).unwrap();
        let path = std::env::temp_dir().join(format!("sar-serverun-{}.ckpt", std::process::id()));
        let f = std::fs::File::create(&path).unwrap();
        checkpoint::save_raw_params(&init, std::io::BufWriter::new(f)).unwrap();
        let loaded = load_or_init_params(&cfg, &d, true, Some(&path)).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(init.len(), loaded.len());
        for ((s0, v0), (s1, v1)) in init.iter().zip(&loaded) {
            assert_eq!(s0, s1);
            assert_eq!(v0.len(), v1.len());
            assert!(v0.iter().zip(v1).all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }

    #[test]
    fn missing_checkpoint_is_a_named_error() {
        let d = datasets::products_like(120, 0);
        let cfg = serve_model_config(&workload(), &d).unwrap();
        let err = load_or_init_params(&cfg, &d, true, Some(Path::new("/nonexistent/x.ckpt")))
            .unwrap_err();
        assert!(err.contains("/nonexistent/x.ckpt"), "{err}");
    }
}
