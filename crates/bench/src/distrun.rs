//! Per-rank driver for real multi-process training over the TCP
//! transport.
//!
//! The in-process paths ([`sar_core::train`]) hand every worker an
//! `Arc` of the shared dataset. Across OS processes nothing is shared,
//! so the contract here is *determinism instead of sharing*: a
//! [`Workload`] captures every knob that influences the run, every rank
//! rebuilds the synthetic dataset, the partitioning and the model from
//! those flags, and the training math is bitwise-reproducible — so N
//! independent processes end up with exactly the state the simulated
//! cluster would have handed them (verified end to end by the
//! `transport_parity` integration tests in `sar-core`).
//!
//! [`run_rank`] is the whole per-process lifecycle: rebuild state →
//! rendezvous over a file ([`crate::launcher`]) → mesh via
//! [`TcpTransport`] → [`run_worker`] → gather. The gather ships each
//! rank's [`WorkerSummary`] (losses, accuracies, memory peak, and the
//! full [`CommStats`] ledger) to rank 0 over the data plane itself,
//! using the stats snapshot taken *before* the gather messages so the
//! reported ledgers stay byte-comparable with the simulated backend.

use std::path::PathBuf;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

use sar_comm::{Codec, CommStats, CostModel, Payload, TcpOpts, TcpTransport, WorkerCtx};
use sar_core::{
    run_worker, Arch, DistGraph, EpochRecord, Mode, ModelConfig, Protocol, Shard, TrainConfig,
};
use sar_graph::{datasets, Dataset};
use sar_nn::{CsConfig, LrSchedule};
use sar_partition::{partition, Method, Partitioning};

use crate::report::{RunReport, WorkerProfile};

/// Tag space for the post-training stats gather: above every peer-to-peer
/// view-index tag (`1 << 40` + small offsets) and below the collective
/// tag space (`1 << 62`).
const GATHER_TAG_BASE: u64 = 1 << 61;

/// How long a rank waits on a message before declaring the cluster dead.
const RECV_TIMEOUT: Duration = Duration::from_secs(120);

/// Everything that defines a training run, expressible as command-line
/// flags so independent processes can rebuild identical state.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Synthetic dataset family: `"products"` or `"papers"`.
    pub dataset: String,
    /// Node count for the synthetic generator.
    pub nodes: usize,
    /// Architecture name: `"sage"`, `"gcn"` or `"gat"`.
    pub arch: String,
    /// Hidden size (per-head dimension for GAT).
    pub hidden: usize,
    /// GAT attention heads.
    pub heads: usize,
    /// Execution mode: `"sar"`, `"sar-fak"` or `"dp"`.
    pub mode: String,
    /// GNN depth.
    pub layers: usize,
    /// Jumping-knowledge skip connections.
    pub jk: bool,
    /// Training epochs.
    pub epochs: usize,
    /// Base learning rate.
    pub lr: f32,
    /// Dropout probability.
    pub dropout: f32,
    /// Masked label prediction (Shi et al. 2020).
    pub label_aug: bool,
    /// Fraction of training labels fed as input per epoch.
    pub aug_frac: f64,
    /// Run Correct & Smooth after training.
    pub cs: bool,
    /// Pipeline depth of the sequential fetch (`(k+2)/N` memory; 0 =
    /// strictly sequential, 1 = the paper's 3/N prefetch).
    pub prefetch_depth: usize,
    /// Partitioner: `"ml"`, `"random"`, `"range"` or `"bfs"`.
    pub partitioner: String,
    /// Learning-rate schedule: `"constant"` or `"step"` (the paper's
    /// thirds-of-training step decay).
    pub schedule: String,
    /// RNG seed for the dataset, the partitioner and training.
    pub seed: u64,
    /// Intra-worker kernel threads (`sar_tensor::pool`). Results are
    /// bitwise identical across thread counts.
    pub threads: usize,
    /// SIMD dispatch mode (`sar_tensor::simd`): `"auto"` (use AVX2 when
    /// the CPU has it) or `"scalar"`. Results are bitwise identical
    /// across modes — the scalar fallback mirrors the vector paths'
    /// accumulation order exactly.
    pub simd: String,
    /// Wire codec for compressible payloads: `"raw"`, `"f16"`, `"bf16"`,
    /// `"int8"` or `"delta"`. Negotiated at the TCP rendezvous — every
    /// rank must run the same codec.
    pub codec: String,
    /// Exchange protocol: `"exact"`, `"gradonly"` or `"stale:<r>"`.
    pub protocol: String,
    /// Resident-tensor budget in bytes for the disk tier (`--mem-budget`;
    /// 0 = spilling disabled). Results are bitwise identical at every
    /// budget.
    pub mem_budget: u64,
}

impl Default for Workload {
    fn default() -> Self {
        Workload {
            dataset: "products".into(),
            nodes: 1500,
            arch: "sage".into(),
            hidden: 64,
            heads: 4,
            mode: "sar".into(),
            layers: 3,
            jk: false,
            epochs: 3,
            lr: 0.01,
            dropout: 0.3,
            label_aug: true,
            aug_frac: 0.5,
            cs: false,
            prefetch_depth: 0,
            partitioner: "ml".into(),
            schedule: "constant".into(),
            seed: 0,
            threads: 1,
            simd: "auto".into(),
            codec: "raw".into(),
            protocol: "exact".into(),
            mem_budget: 0,
        }
    }
}

impl Workload {
    /// Serializes the workload back into `sar-worker` flags, every field
    /// explicit so child processes never depend on defaults drifting.
    ///
    /// `sar-serve` parses this same vocabulary (ignoring training-only
    /// flags) — when adding a field here, teach its parser the new flag
    /// too or servebench's cluster spawn fails with "unknown flag".
    pub fn to_args(&self) -> Vec<String> {
        let mut a: Vec<String> = [
            ("--dataset", self.dataset.clone()),
            ("--nodes", self.nodes.to_string()),
            ("--arch", self.arch.clone()),
            ("--hidden", self.hidden.to_string()),
            ("--heads", self.heads.to_string()),
            ("--mode", self.mode.clone()),
            ("--layers", self.layers.to_string()),
            ("--epochs", self.epochs.to_string()),
            ("--lr", self.lr.to_string()),
            ("--dropout", self.dropout.to_string()),
            ("--aug-frac", self.aug_frac.to_string()),
            ("--partitioner", self.partitioner.clone()),
            ("--schedule", self.schedule.clone()),
            ("--seed", self.seed.to_string()),
            ("--threads", self.threads.to_string()),
            ("--simd", self.simd.clone()),
            ("--prefetch-depth", self.prefetch_depth.to_string()),
            ("--codec", self.codec.clone()),
            ("--protocol", self.protocol.clone()),
            ("--mem-budget", self.mem_budget.to_string()),
        ]
        .into_iter()
        .flat_map(|(k, v)| [k.to_string(), v])
        .collect();
        if self.jk {
            a.push("--jk".into());
        }
        if !self.label_aug {
            a.push("--no-label-aug".into());
        }
        if self.cs {
            a.push("--cs".into());
        }
        a
    }

    /// Rebuilds the dataset and partitioning deterministically from the
    /// flags — identical in every process.
    ///
    /// # Errors
    ///
    /// Rejects unknown dataset or partitioner names.
    pub fn build_data(&self, world: usize) -> Result<(Dataset, Partitioning), String> {
        let dataset = match self.dataset.as_str() {
            "products" => datasets::products_like(self.nodes, self.seed),
            "papers" => datasets::papers_like(self.nodes, self.seed),
            other => return Err(format!("unknown dataset {other}")),
        };
        let method = match self.partitioner.as_str() {
            "ml" => Method::Multilevel,
            "random" => Method::Random,
            "range" => Method::Range,
            "bfs" => Method::Bfs,
            other => return Err(format!("unknown partitioner {other}")),
        };
        let part = partition(&dataset.graph, world, method, self.seed);
        Ok((dataset, part))
    }

    /// Builds the [`TrainConfig`] for this workload.
    ///
    /// # Errors
    ///
    /// Rejects unknown architecture, mode or schedule names.
    pub fn train_config(&self, dataset: &Dataset) -> Result<TrainConfig, String> {
        let arch = match self.arch.as_str() {
            "sage" => Arch::GraphSage {
                hidden: self.hidden,
            },
            "gcn" => Arch::Gcn {
                hidden: self.hidden,
            },
            "gat" => Arch::Gat {
                head_dim: self.hidden,
                heads: self.heads,
            },
            other => return Err(format!("unknown arch {other}")),
        };
        let mode = match self.mode.as_str() {
            "sar" => Mode::Sar,
            "sar-fak" => Mode::SarFused,
            "dp" => Mode::DomainParallel,
            other => return Err(format!("unknown mode {other}")),
        };
        let schedule = match self.schedule.as_str() {
            "constant" => LrSchedule::Constant,
            "step" => LrSchedule::StepDecay {
                every: (self.epochs / 3).max(1),
                gamma: 0.5,
            },
            other => return Err(format!("unknown schedule {other}")),
        };
        let codec = Codec::parse(&self.codec)
            .ok_or_else(|| format!("unknown codec {} (raw|f16|bf16|int8|delta)", self.codec))?;
        let protocol = Protocol::parse(&self.protocol)?;
        Ok(TrainConfig {
            model: ModelConfig {
                arch,
                mode,
                layers: self.layers,
                in_dim: 0, // set by the trainer
                num_classes: dataset.num_classes,
                dropout: self.dropout,
                batch_norm: true,
                jumping_knowledge: self.jk,
                seed: self.seed,
            },
            epochs: self.epochs,
            lr: self.lr,
            schedule,
            label_aug: self.label_aug,
            aug_frac: self.aug_frac,
            cs: self.cs.then(CsConfig::default),
            prefetch_depth: self.prefetch_depth,
            seed: self.seed,
            threads: self.threads,
            protocol,
            codec,
            mem_budget: self.mem_budget,
        })
    }
}

/// One rank's results, gathered to rank 0 after training.
#[derive(Debug, Clone)]
pub struct WorkerSummary {
    /// Per-epoch loss / compute / comm / bytes records.
    pub epochs: Vec<EpochRecord>,
    /// Global validation accuracy (identical on every rank).
    pub val_acc: f64,
    /// Global test accuracy.
    pub test_acc: f64,
    /// Test accuracy after Correct & Smooth, if run.
    pub test_acc_cs: Option<f64>,
    /// Steady-state peak live tensor bytes on this rank.
    pub steady_peak_bytes: u64,
    /// The rank's full communication statistics, snapshotted before the
    /// gather itself so its traffic is not part of the ledger.
    pub comm: CommStats,
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_f32(buf: &mut Vec<u8>, v: f32) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| format!("worker summary truncated at byte {}", self.pos))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f32(&mut self) -> Result<f32, String> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Encodes a [`WorkerSummary`] for the wire (little-endian, no padding).
pub fn encode_summary(s: &WorkerSummary) -> Vec<u8> {
    let stats = s.comm.to_bytes();
    let mut buf = Vec::with_capacity(64 + 28 * s.epochs.len() + stats.len());
    put_u32(&mut buf, s.epochs.len() as u32);
    for e in &s.epochs {
        put_f32(&mut buf, e.loss);
        put_f64(&mut buf, e.compute_secs);
        put_f64(&mut buf, e.comm_secs);
        put_u64(&mut buf, e.sent_bytes);
    }
    put_f64(&mut buf, s.val_acc);
    put_f64(&mut buf, s.test_acc);
    buf.push(s.test_acc_cs.is_some() as u8);
    put_f64(&mut buf, s.test_acc_cs.unwrap_or(0.0));
    put_u64(&mut buf, s.steady_peak_bytes);
    put_u32(&mut buf, stats.len() as u32);
    buf.extend_from_slice(&stats);
    buf
}

/// Decodes a [`WorkerSummary`] from the wire.
///
/// # Errors
///
/// Rejects truncated or trailing bytes and propagates
/// [`CommStats::from_bytes`] errors.
pub fn decode_summary(buf: &[u8]) -> Result<WorkerSummary, String> {
    let mut c = Cursor { buf, pos: 0 };
    let n_epochs = c.u32()? as usize;
    if n_epochs > 1 << 20 {
        return Err(format!("implausible epoch count {n_epochs}"));
    }
    let mut epochs = Vec::with_capacity(n_epochs);
    for _ in 0..n_epochs {
        epochs.push(EpochRecord {
            loss: c.f32()?,
            compute_secs: c.f64()?,
            comm_secs: c.f64()?,
            sent_bytes: c.u64()?,
        });
    }
    let val_acc = c.f64()?;
    let test_acc = c.f64()?;
    let has_cs = c.u8()? != 0;
    let cs_val = c.f64()?;
    let steady_peak_bytes = c.u64()?;
    let stats_len = c.u32()? as usize;
    let comm = CommStats::from_bytes(c.take(stats_len)?)?;
    if c.pos != buf.len() {
        return Err(format!(
            "worker summary has {} trailing bytes",
            buf.len() - c.pos
        ));
    }
    Ok(WorkerSummary {
        epochs,
        val_acc,
        test_acc,
        test_acc_cs: has_cs.then_some(cs_val),
        steady_peak_bytes,
        comm,
    })
}

/// Assembles rank-indexed summaries into the serializable [`RunReport`],
/// mirroring how [`sar_core::train`] aggregates in-process outcomes:
/// modeled epoch time is `max_p compute + max_p comm`, the global loss
/// and accuracies are taken from rank 0 (every rank reports the same
/// all-reduced values).
pub fn assemble_report(
    experiment: &str,
    arch: &str,
    mode: &str,
    summaries: &[WorkerSummary],
) -> RunReport {
    let epochs = summaries.first().map_or(0, |s| s.epochs.len());
    let mut losses = Vec::with_capacity(epochs);
    let mut epoch_times = Vec::with_capacity(epochs);
    for e in 0..epochs {
        let max_compute = summaries
            .iter()
            .map(|s| s.epochs[e].compute_secs)
            .fold(0.0, f64::max);
        let max_comm = summaries
            .iter()
            .map(|s| s.epochs[e].comm_secs)
            .fold(0.0, f64::max);
        epoch_times.push(max_compute + max_comm);
        losses.push(summaries[0].epochs[e].loss);
    }
    RunReport {
        experiment: experiment.into(),
        arch: arch.into(),
        mode: mode.into(),
        world: summaries.len(),
        losses,
        epoch_times,
        val_acc: summaries.first().map_or(0.0, |s| s.val_acc),
        test_acc: summaries.first().map_or(0.0, |s| s.test_acc),
        test_acc_cs: summaries.first().and_then(|s| s.test_acc_cs),
        // Rank 0's own process pool; the other ranks' pools live in their
        // processes and are not gathered.
        buffer_pool: Some(sar_comm::buffer::pool_stats()),
        workers: summaries
            .iter()
            .enumerate()
            .map(|(rank, s)| WorkerProfile::from_stats(rank, s.steady_peak_bytes as usize, &s.comm))
            .collect(),
    }
}

/// Per-process options that are *not* part of the (shared) workload.
#[derive(Debug, Clone)]
pub struct RankOpts {
    /// This process's rank.
    pub rank: usize,
    /// Total rank count.
    pub world: usize,
    /// File through which rank 0 publishes its rendezvous address.
    pub rendezvous_file: PathBuf,
    /// How long non-zero ranks poll for the rendezvous file.
    pub rendezvous_timeout: Duration,
    /// Experiment label for the assembled report.
    pub experiment: String,
}

/// The whole per-process lifecycle: rebuild dataset/partition/model from
/// the workload flags, form the TCP mesh, train, gather. Returns the
/// assembled report on rank 0, `None` elsewhere.
///
/// # Errors
///
/// Flag, rendezvous and transport errors, each naming this rank.
pub fn run_rank(opts: &RankOpts, workload: &Workload) -> Result<Option<RunReport>, String> {
    let rank = opts.rank;
    if rank >= opts.world {
        return Err(format!(
            "--rank {rank} out of range for --world {}",
            opts.world
        ));
    }
    let simd_mode = sar_tensor::simd::parse_mode(&workload.simd)
        .ok_or_else(|| format!("unknown --simd {} (auto|scalar)", workload.simd))?;
    sar_tensor::simd::set_mode(simd_mode);
    let (dataset, part) = workload.build_data(opts.world)?;
    let cfg = workload.train_config(&dataset)?;
    let graph = Arc::new(DistGraph::build_all(&dataset.graph, &part).swap_remove(rank));
    let shard = Shard::build_all(&dataset, &part).swap_remove(rank);

    // The wire codec is negotiated at the rendezvous: every rank
    // advertises it in its hello and rank 0 rejects mismatches, so a
    // heterogeneous launch fails fast with a named diagnostic instead of
    // decoding garbage mid-epoch.
    let tcp_opts = TcpOpts {
        codec: cfg.codec,
        ..TcpOpts::default()
    };
    let transport = if rank == 0 {
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0))
            .map_err(|e| format!("rank 0: cannot bind rendezvous listener: {e}"))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("rank 0: cannot read listener address: {e}"))?;
        crate::launcher::write_rendezvous_addr(&opts.rendezvous_file, &addr)
            .map_err(|e| format!("rank 0: cannot write rendezvous file: {e}"))?;
        TcpTransport::host(listener, opts.world, tcp_opts).map_err(|e| format!("rank 0: {e}"))?
    } else {
        let addr =
            crate::launcher::read_rendezvous_addr(&opts.rendezvous_file, opts.rendezvous_timeout)
                .map_err(|e| format!("rank {rank}: {e}"))?;
        TcpTransport::join(addr.as_str(), rank, opts.world, tcp_opts)
            .map_err(|e| format!("rank {rank}: {e}"))?
    };

    let ctx = Rc::new(WorkerCtx::new(
        Box::new(transport),
        CostModel::default(),
        RECV_TIMEOUT,
    ));
    let report = run_worker(Rc::clone(&ctx), graph, &shard, &cfg);

    // Snapshot the stats *before* any gather traffic so the shipped
    // ledgers match what an in-process run of the same program records.
    let summary = WorkerSummary {
        epochs: report.epochs.clone(),
        val_acc: report.val_acc,
        test_acc: report.test_acc,
        test_acc_cs: report.test_acc_cs,
        steady_peak_bytes: report.steady_peak_bytes as u64,
        comm: ctx.stats(),
    };

    // The gather and the final barrier use the fallible context paths:
    // a rank that died mid-protocol turns into an `Err` naming the
    // failing rank, so the process exits nonzero with a diagnostic
    // instead of panicking (or leaving the launcher to time out).
    let out = if rank == 0 {
        let mut summaries = vec![summary];
        for q in 1..opts.world {
            let blob = ctx
                .try_recv(q, GATHER_TAG_BASE + q as u64)
                .map_err(|e| format!("rank 0: gathering summary from rank {q}: {e}"))?
                .try_into_bytes()
                .map_err(|e| format!("rank 0: summary from rank {q}: {e}"))?;
            summaries
                .push(decode_summary(&blob).map_err(|e| format!("gather from rank {q}: {e}"))?);
        }
        Some(assemble_report(
            &opts.experiment,
            &workload.arch,
            &workload.mode,
            &summaries,
        ))
    } else {
        ctx.try_send(
            0,
            GATHER_TAG_BASE + rank as u64,
            Payload::Bytes(encode_summary(&summary)),
        )
        .map_err(|e| format!("rank {rank}: sending summary to rank 0: {e}"))?;
        None
    };
    // Hold every rank until the gather lands, so no process tears down
    // its sockets while a peer is still reading.
    ctx.try_barrier()
        .map_err(|e| format!("rank {rank}: final barrier: {e}"))?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_summary() -> WorkerSummary {
        let mut comm = CommStats::new(2);
        comm.sent_bytes[1] = 123;
        comm.recv_bytes = 456;
        comm.comm_us = 7.5;
        WorkerSummary {
            epochs: vec![
                EpochRecord {
                    loss: 1.25,
                    compute_secs: 0.5,
                    comm_secs: 0.25,
                    sent_bytes: 100,
                },
                EpochRecord {
                    loss: 0.75,
                    compute_secs: 0.4,
                    comm_secs: 0.2,
                    sent_bytes: 90,
                },
            ],
            val_acc: 0.5,
            test_acc: 0.625,
            test_acc_cs: Some(0.75),
            steady_peak_bytes: 4096,
            comm,
        }
    }

    #[test]
    fn summary_codec_round_trips() {
        let s = sample_summary();
        let d = decode_summary(&encode_summary(&s)).unwrap();
        assert_eq!(d.epochs.len(), 2);
        assert_eq!(d.epochs[0].loss.to_bits(), s.epochs[0].loss.to_bits());
        assert_eq!(d.epochs[1].sent_bytes, 90);
        assert_eq!(d.val_acc, 0.5);
        assert_eq!(d.test_acc_cs, Some(0.75));
        assert_eq!(d.steady_peak_bytes, 4096);
        assert_eq!(d.comm.sent_bytes, s.comm.sent_bytes);
        assert_eq!(d.comm.recv_bytes, 456);
    }

    #[test]
    fn summary_codec_rejects_truncation_and_trailing_garbage() {
        let buf = encode_summary(&sample_summary());
        assert!(decode_summary(&buf[..buf.len() - 1]).is_err());
        let mut longer = buf.clone();
        longer.push(0);
        assert!(decode_summary(&longer).is_err());
    }

    #[test]
    fn assemble_report_takes_max_times_and_rank0_metrics() {
        let mut a = sample_summary();
        let mut b = sample_summary();
        a.epochs[0].compute_secs = 1.0;
        b.epochs[0].comm_secs = 2.0;
        b.val_acc = 0.0; // must be ignored: rank 0 wins
        let r = assemble_report("exp", "sage", "sar", &[a, b]);
        assert_eq!(r.world, 2);
        assert_eq!(r.epoch_times[0], 1.0 + 2.0);
        assert_eq!(r.val_acc, 0.5);
        assert_eq!(r.losses.len(), 2);
        assert_eq!(r.workers.len(), 2);
        assert_eq!(r.workers[1].rank, 1);
    }

    #[test]
    fn workload_flags_round_trip_every_field() {
        let wl = Workload {
            dataset: "papers".into(),
            nodes: 777,
            arch: "gat".into(),
            hidden: 8,
            heads: 2,
            mode: "sar-fak".into(),
            layers: 2,
            jk: true,
            epochs: 5,
            lr: 0.025,
            dropout: 0.1,
            label_aug: false,
            aug_frac: 0.25,
            cs: true,
            prefetch_depth: 2,
            partitioner: "bfs".into(),
            schedule: "step".into(),
            seed: 9,
            threads: 4,
            simd: "scalar".into(),
            codec: "int8".into(),
            protocol: "stale:4".into(),
            mem_budget: 1 << 20,
        };
        let args = wl.to_args();
        // Spot-check the flags a child would parse back.
        let find = |k: &str| -> Option<&String> {
            args.iter()
                .position(|a| a == k)
                .and_then(|i| args.get(i + 1))
        };
        assert_eq!(find("--dataset").unwrap(), "papers");
        assert_eq!(find("--lr").unwrap().parse::<f32>().unwrap(), 0.025);
        assert_eq!(find("--threads").unwrap(), "4");
        assert_eq!(find("--simd").unwrap(), "scalar");
        assert!(args.contains(&"--jk".to_string()));
        assert!(args.contains(&"--no-label-aug".to_string()));
        assert!(args.contains(&"--cs".to_string()));
        assert_eq!(find("--prefetch-depth").unwrap(), "2");
        assert_eq!(find("--codec").unwrap(), "int8");
        assert_eq!(find("--protocol").unwrap(), "stale:4");
        assert_eq!(find("--mem-budget").unwrap(), "1048576");
    }

    #[test]
    fn workload_rejects_unknown_codec_and_protocol() {
        let d = datasets::products_like(64, 0);
        let wl = Workload {
            codec: "zstd".into(),
            ..Workload::default()
        };
        assert!(wl.train_config(&d).unwrap_err().contains("codec"));
        let wl = Workload {
            protocol: "stale:0".into(),
            ..Workload::default()
        };
        assert!(wl.train_config(&d).is_err());
    }

    #[test]
    fn workload_rejects_unknown_names() {
        let d = datasets::products_like(64, 0);
        let wl = Workload {
            arch: "transformer".into(),
            ..Workload::default()
        };
        assert!(wl.train_config(&d).is_err());
        let wl = Workload {
            dataset: "citeseer".into(),
            ..Workload::default()
        };
        assert!(wl.build_data(2).is_err());
        let wl = Workload {
            schedule: "cosine".into(),
            ..Workload::default()
        };
        assert!(wl.train_config(&d).is_err());
    }
}
