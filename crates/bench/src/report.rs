//! Plain-text table rendering for experiment reports.

/// A printable result table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (e.g. `"Figure 3a — epoch time (s)"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats bytes as mebibytes with two decimals.
pub fn mib(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// Formats seconds with three decimals.
pub fn secs(s: f64) -> String {
    format!("{s:.3}")
}

/// Formats a probability as a percentage with one decimal.
pub fn pct(p: f64) -> String {
    format!("{:.1}%", p * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-name"));
        let lines: Vec<&str> = s.lines().filter(|l| !l.is_empty()).collect();
        // header + separator + 2 rows + title
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(mib(1024 * 1024), "1.00");
        assert_eq!(secs(1.23456), "1.235");
        assert_eq!(pct(0.801), "80.1%");
    }
}
