//! Plain-text table rendering and machine-readable run reports.
//!
//! [`Table`] renders the paper's tables/figures for human eyes;
//! [`RunReport`] serializes a full training run — per-worker, per-layer,
//! per-phase timings, communication volumes and tensor-memory peaks — to
//! JSON so CI can archive and gate on it. The JSON is hand-rolled (the
//! build environment is offline, so no serde); the schema is documented
//! on [`RunReport::to_json`].

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use sar_comm::Phase;

/// A printable result table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (e.g. `"Figure 3a — epoch time (s)"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats bytes as mebibytes with two decimals.
pub fn mib(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// Formats seconds with three decimals.
pub fn secs(s: f64) -> String {
    format!("{s:.3}")
}

/// Formats a probability as a percentage with one decimal.
pub fn pct(p: f64) -> String {
    format!("{:.1}%", p * 100.0)
}

// ----------------------------------------------------------------------
// Machine-readable run reports
// ----------------------------------------------------------------------

/// One `(phase, layer)` cell of a worker's observability ledger.
#[derive(Debug, Clone)]
pub struct PhaseRow {
    /// Phase name (`"forward_fetch"`, `"backward_refetch"`,
    /// `"grad_routing"`, `"collective"`, `"other"`).
    pub phase: &'static str,
    /// GNN layer the traffic was attributed to, if any.
    pub layer: Option<u16>,
    /// Bytes sent while this cell was active (self-sends included).
    /// *Logical* volume: raw-f32 payload + frame header, independent of
    /// the negotiated wire codec (the parity digest pins these).
    pub sent_bytes: u64,
    /// Bytes received from remote peers (logical volume, as above).
    pub recv_bytes: u64,
    /// Bytes that actually crossed the transport while sending — the
    /// post-codec wire volume. Equals `sent_bytes` under the `raw` codec.
    pub wire_sent_bytes: u64,
    /// Bytes that actually arrived off the transport (post-codec).
    pub wire_recv_bytes: u64,
    /// Messages sent.
    pub sent_messages: u64,
    /// Messages received from remote peers.
    pub recv_messages: u64,
    /// Simulated α–β communication time charged, microseconds.
    pub comm_us: f64,
    /// Exclusive CPU time spent under this cell, microseconds (includes
    /// pool helper threads — see DESIGN.md §8).
    pub cpu_us: f64,
    /// Exclusive wall-clock time under this cell, microseconds.
    /// `cpu_us / wall_us` reads as the cell's parallel speedup.
    pub wall_us: f64,
    /// Wall-clock time spent *parked* in a blocking receive under this
    /// cell, microseconds. `blocked_us / wall_us` is the cell's
    /// un-overlapped communication fraction — the number the pipelined
    /// rotation exchange drives down as `--prefetch-depth` grows.
    pub blocked_us: f64,
    /// Peak live tensor bytes observed inside this cell's scopes.
    pub peak_tensor_bytes: u64,
    /// Bytes evicted to the out-of-core disk tier under this cell (zero
    /// unless `--mem-budget` is set).
    pub spill_bytes: u64,
    /// Bytes faulted back from the disk tier under this cell.
    pub fault_bytes: u64,
    /// Wall-clock time spent blocked on disk-tier IO under this cell,
    /// microseconds — the disk analogue of `blocked_us`.
    pub disk_blocked_us: f64,
}

/// One worker's profile: totals plus the per-phase ledger.
#[derive(Debug, Clone)]
pub struct WorkerProfile {
    /// Worker rank.
    pub rank: usize,
    /// Steady-state peak live tensor bytes (from the second epoch on).
    pub steady_peak_bytes: usize,
    /// Total bytes sent over the whole run.
    pub total_sent_bytes: u64,
    /// Total bytes received over the whole run.
    pub total_recv_bytes: u64,
    /// Total simulated communication time, microseconds.
    pub comm_us: f64,
    /// The per-phase / per-layer ledger rows, in ledger order.
    pub phases: Vec<PhaseRow>,
}

impl WorkerProfile {
    /// Lifts one worker's [`sar_comm::CommStats`] (plus its measured
    /// steady-state memory peak) into the serializable profile. Used both
    /// by [`RunReport::from_train`] for in-process runs and by the
    /// multi-process launcher, which gathers each rank's stats over the
    /// wire.
    pub fn from_stats(rank: usize, steady_peak_bytes: usize, comm: &sar_comm::CommStats) -> Self {
        WorkerProfile {
            rank,
            steady_peak_bytes,
            total_sent_bytes: comm.total_sent(),
            total_recv_bytes: comm.recv_bytes,
            comm_us: comm.comm_us,
            phases: comm
                .ledger
                .rows()
                .map(|(phase, layer, e)| PhaseRow {
                    phase: phase.name(),
                    layer,
                    sent_bytes: e.sent_bytes,
                    recv_bytes: e.recv_bytes,
                    wire_sent_bytes: e.wire_sent_bytes,
                    wire_recv_bytes: e.wire_recv_bytes,
                    sent_messages: e.sent_messages,
                    recv_messages: e.recv_messages,
                    comm_us: e.comm_us,
                    cpu_us: e.cpu_us,
                    wall_us: e.wall_us,
                    blocked_us: e.blocked_us,
                    peak_tensor_bytes: e.peak_tensor_bytes,
                    spill_bytes: e.spill_bytes,
                    fault_bytes: e.fault_bytes,
                    disk_blocked_us: e.disk_blocked_us,
                })
                .collect(),
        }
    }

    /// Sums `f` over this worker's ledger rows in the given phase.
    pub fn phase_sum(&self, phase: &str, f: impl Fn(&PhaseRow) -> u64) -> u64 {
        self.phases.iter().filter(|r| r.phase == phase).map(f).sum()
    }

    /// Max of `f` over this worker's ledger rows in the given phase.
    pub fn phase_max(&self, phase: &str, f: impl Fn(&PhaseRow) -> u64) -> u64 {
        self.phases
            .iter()
            .filter(|r| r.phase == phase)
            .map(f)
            .max()
            .unwrap_or(0)
    }
}

/// A machine-readable record of one distributed training run.
///
/// Build with [`RunReport::from_train`], serialize with
/// [`RunReport::to_json`] / [`RunReport::write_json`].
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Free-form experiment label (e.g. `"smoke-sage"`).
    pub experiment: String,
    /// Architecture label (e.g. `"sage"`, `"gat"`).
    pub arch: String,
    /// Execution-mode label (e.g. `"sar"`, `"sar-fak"`, `"dp"`).
    pub mode: String,
    /// Number of workers.
    pub world: usize,
    /// Global training loss per epoch.
    pub losses: Vec<f32>,
    /// Modeled epoch times (max compute + max comm), seconds.
    pub epoch_times: Vec<f64>,
    /// Validation accuracy.
    pub val_acc: f64,
    /// Test accuracy.
    pub test_acc: f64,
    /// Test accuracy after Correct & Smooth, if run.
    pub test_acc_cs: Option<f64>,
    /// Snapshot of the process-wide send-buffer pool counters at report
    /// time (the pool is shared by all in-process workers, so this is a
    /// run-level, not per-rank, statistic). `None` when not captured.
    pub buffer_pool: Option<sar_comm::buffer::PoolStats>,
    /// Per-worker profiles, indexed by rank.
    pub workers: Vec<WorkerProfile>,
}

impl RunReport {
    /// Lifts a [`sar_core::RunReport`] into the serializable form.
    pub fn from_train(
        experiment: impl Into<String>,
        arch: impl Into<String>,
        mode: impl Into<String>,
        run: &sar_core::RunReport,
    ) -> Self {
        let workers = run
            .worker_comm
            .iter()
            .enumerate()
            .map(|(rank, comm)| {
                WorkerProfile::from_stats(
                    rank,
                    run.peak_bytes.get(rank).copied().unwrap_or(0),
                    comm,
                )
            })
            .collect();
        RunReport {
            experiment: experiment.into(),
            arch: arch.into(),
            mode: mode.into(),
            world: run.world,
            losses: run.losses.clone(),
            epoch_times: run.epoch_times.clone(),
            val_acc: run.val_acc,
            test_acc: run.test_acc,
            test_acc_cs: run.test_acc_cs,
            buffer_pool: Some(sar_comm::buffer::pool_stats()),
            workers,
        }
    }

    /// `true` if any recorded epoch loss is NaN or infinite.
    pub fn has_non_finite_loss(&self) -> bool {
        self.losses.iter().any(|l| !l.is_finite())
    }

    /// The worker's ledger total for `(phase, metric)` summed across
    /// layers, for all workers. Convenience for CI gates.
    pub fn per_worker_phase_sum(&self, phase: Phase, f: impl Fn(&PhaseRow) -> u64) -> Vec<u64> {
        self.workers
            .iter()
            .map(|w| w.phase_sum(phase.name(), &f))
            .collect()
    }

    /// Serializes to a self-contained JSON document:
    ///
    /// ```json
    /// {
    ///   "experiment": "...", "arch": "...", "mode": "...", "world": 4,
    ///   "losses": [...], "epoch_times_secs": [...],
    ///   "val_acc": 0.9, "test_acc": 0.9, "test_acc_cs": null,
    ///   "buffer_pool": {"hits": 0, "misses": 0, "recycles": 0,
    ///                   "recycle_drops": 0},
    ///   "workers": [
    ///     {"rank": 0, "steady_peak_bytes": 0, "total_sent_bytes": 0,
    ///      "total_recv_bytes": 0, "comm_us": 0.0,
    ///      "phases": [
    ///        {"phase": "forward_fetch", "layer": 0, "sent_bytes": 0,
    ///         "recv_bytes": 0, "wire_sent_bytes": 0,
    ///         "wire_recv_bytes": 0, "sent_messages": 0,
    ///         "recv_messages": 0, "comm_us": 0.0, "cpu_us": 0.0,
    ///         "wall_us": 0.0, "blocked_us": 0.0, "peak_tensor_bytes": 0,
    ///         "spill_bytes": 0, "fault_bytes": 0, "disk_blocked_us": 0.0}
    ///      ]}
    ///   ]
    /// }
    /// ```
    ///
    /// Non-finite floats serialize as `null` (JSON has no NaN).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        let _ = writeln!(s, "  \"experiment\": {},", json_str(&self.experiment));
        let _ = writeln!(s, "  \"arch\": {},", json_str(&self.arch));
        let _ = writeln!(s, "  \"mode\": {},", json_str(&self.mode));
        let _ = writeln!(s, "  \"world\": {},", self.world);
        let _ = writeln!(
            s,
            "  \"losses\": [{}],",
            join(self.losses.iter().map(|&l| json_f64(l as f64)))
        );
        let _ = writeln!(
            s,
            "  \"epoch_times_secs\": [{}],",
            join(self.epoch_times.iter().map(|&t| json_f64(t)))
        );
        let _ = writeln!(s, "  \"val_acc\": {},", json_f64(self.val_acc));
        let _ = writeln!(s, "  \"test_acc\": {},", json_f64(self.test_acc));
        let _ = writeln!(
            s,
            "  \"test_acc_cs\": {},",
            self.test_acc_cs.map_or("null".into(), json_f64)
        );
        match &self.buffer_pool {
            Some(p) => {
                let _ = writeln!(
                    s,
                    "  \"buffer_pool\": {{\"hits\": {}, \"misses\": {}, \
                     \"recycles\": {}, \"recycle_drops\": {}}},",
                    p.hits, p.misses, p.recycles, p.recycle_drops
                );
            }
            None => {
                let _ = writeln!(s, "  \"buffer_pool\": null,");
            }
        }
        s.push_str("  \"workers\": [\n");
        for (i, w) in self.workers.iter().enumerate() {
            s.push_str("    {");
            let _ = write!(
                s,
                "\"rank\": {}, \"steady_peak_bytes\": {}, \"total_sent_bytes\": {}, \
                 \"total_recv_bytes\": {}, \"comm_us\": {},",
                w.rank,
                w.steady_peak_bytes,
                w.total_sent_bytes,
                w.total_recv_bytes,
                json_f64(w.comm_us)
            );
            s.push_str("\n     \"phases\": [");
            for (j, r) in w.phases.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(
                    s,
                    "\n       {{\"phase\": {}, \"layer\": {}, \"sent_bytes\": {}, \
                     \"recv_bytes\": {}, \"wire_sent_bytes\": {}, \
                     \"wire_recv_bytes\": {}, \"sent_messages\": {}, \
                     \"recv_messages\": {}, \
                     \"comm_us\": {}, \"cpu_us\": {}, \"wall_us\": {}, \
                     \"blocked_us\": {}, \"peak_tensor_bytes\": {}, \
                     \"spill_bytes\": {}, \"fault_bytes\": {}, \
                     \"disk_blocked_us\": {}}}",
                    json_str(r.phase),
                    r.layer.map_or("null".to_string(), |l| l.to_string()),
                    r.sent_bytes,
                    r.recv_bytes,
                    r.wire_sent_bytes,
                    r.wire_recv_bytes,
                    r.sent_messages,
                    r.recv_messages,
                    json_f64(r.comm_us),
                    json_f64(r.cpu_us),
                    json_f64(r.wall_us),
                    json_f64(r.blocked_us),
                    r.peak_tensor_bytes,
                    r.spill_bytes,
                    r.fault_bytes,
                    json_f64(r.disk_blocked_us),
                );
            }
            s.push_str("]}");
            s.push_str(if i + 1 < self.workers.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Writes the JSON document to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_json(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// A determinism digest of everything that must be bitwise identical
    /// across intra-worker thread counts: the per-epoch losses (as exact
    /// f32 bit patterns) and every worker's per-`(phase, layer)` byte and
    /// message counters. Timings and memory peaks are deliberately
    /// excluded — they legitimately vary run to run — so two runs of the
    /// same workload at different `--threads` must produce identical
    /// digests (the CI thread-parity gate compares these strings).
    pub fn parity_digest(&self) -> String {
        let mut s = String::with_capacity(1024);
        let _ = writeln!(s, "world {}", self.world);
        let _ = writeln!(
            s,
            "losses {}",
            join(self.losses.iter().map(|l| format!("{:08x}", l.to_bits())))
        );
        for w in &self.workers {
            for r in &w.phases {
                let _ = writeln!(
                    s,
                    "w{} {}/{} sent={} recv={} smsg={} rmsg={}",
                    w.rank,
                    r.phase,
                    r.layer.map_or("-".to_string(), |l| l.to_string()),
                    r.sent_bytes,
                    r.recv_bytes,
                    r.sent_messages,
                    r.recv_messages,
                );
            }
        }
        s
    }

    /// The per-phase overlap scoreboard as a self-contained JSON object:
    /// wall, blocked, comm and CPU microseconds summed across workers and
    /// layers. `blocked_us / wall_us` is the fraction of the phase the
    /// cluster spent parked in blocking receives — the pipelined rotation
    /// exchange drives it down as `--prefetch-depth` grows. This is the
    /// fragment `repro smoke` embeds into `BENCH_overlap.json`.
    pub fn overlap_json(&self) -> String {
        use std::collections::BTreeMap;
        let mut agg: BTreeMap<&'static str, (f64, f64, f64, f64)> = BTreeMap::new();
        for w in &self.workers {
            for r in &w.phases {
                let e = agg.entry(r.phase).or_insert((0.0, 0.0, 0.0, 0.0));
                e.0 += r.wall_us;
                e.1 += r.blocked_us;
                e.2 += r.comm_us;
                e.3 += r.cpu_us;
            }
        }
        let mut s = String::from("{\"phases\": [");
        for (i, (phase, (wall, blocked, comm, cpu))) in agg.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(
                s,
                "{{\"phase\": {}, \"wall_us\": {}, \"blocked_us\": {}, \
                 \"comm_us\": {}, \"cpu_us\": {}}}",
                json_str(phase),
                json_f64(*wall),
                json_f64(*blocked),
                json_f64(*comm),
                json_f64(*cpu)
            );
        }
        s.push_str("]}");
        s
    }
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as a JSON number (`null` for NaN/infinity — JSON has
/// no non-finite literals).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

fn join(items: impl Iterator<Item = String>) -> String {
    items.collect::<Vec<_>>().join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-name"));
        let lines: Vec<&str> = s.lines().filter(|l| !l.is_empty()).collect();
        // header + separator + 2 rows + title
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(mib(1024 * 1024), "1.00");
        assert_eq!(secs(1.23456), "1.235");
        assert_eq!(pct(0.801), "80.1%");
    }

    fn sample_report() -> RunReport {
        RunReport {
            experiment: "smoke \"quoted\"".into(),
            arch: "sage".into(),
            mode: "sar".into(),
            world: 2,
            losses: vec![1.5, f32::NAN],
            epoch_times: vec![0.25],
            val_acc: 0.5,
            test_acc: 0.75,
            test_acc_cs: None,
            buffer_pool: Some(sar_comm::buffer::PoolStats {
                hits: 10,
                misses: 4,
                recycles: 9,
                recycle_drops: 1,
            }),
            workers: vec![WorkerProfile {
                rank: 0,
                steady_peak_bytes: 1024,
                total_sent_bytes: 64,
                total_recv_bytes: 32,
                comm_us: 12.5,
                phases: vec![PhaseRow {
                    phase: "forward_fetch",
                    layer: Some(1),
                    sent_bytes: 64,
                    recv_bytes: 32,
                    wire_sent_bytes: 40,
                    wire_recv_bytes: 24,
                    sent_messages: 2,
                    recv_messages: 1,
                    comm_us: 12.5,
                    cpu_us: 3.0,
                    wall_us: 4.5,
                    blocked_us: 1.5,
                    peak_tensor_bytes: 512,
                    spill_bytes: 256,
                    fault_bytes: 128,
                    disk_blocked_us: 0.5,
                }],
            }],
        }
    }

    #[test]
    fn json_escapes_and_nulls() {
        let r = sample_report();
        let json = r.to_json();
        assert!(json.contains(r#""experiment": "smoke \"quoted\"""#));
        // NaN loss must serialize as null, not a bare NaN token.
        assert!(json.contains("\"losses\": [1.5, null]"));
        assert!(!json.contains("NaN"));
        assert!(json.contains("\"test_acc_cs\": null"));
        assert!(json.contains(r#""phase": "forward_fetch", "layer": 1"#));
        assert!(json.contains(r#""blocked_us": 1.5"#));
        assert!(json.contains(r#""spill_bytes": 256"#));
        assert!(json.contains(r#""fault_bytes": 128"#));
        assert!(json.contains(r#""disk_blocked_us": 0.5"#));
        assert!(json.contains(
            r#""buffer_pool": {"hits": 10, "misses": 4, "recycles": 9, "recycle_drops": 1}"#
        ));
        // Balanced braces/brackets — cheap structural sanity without a
        // JSON parser in the dependency set.
        let count = |c: char| json.chars().filter(|&x| x == c).count();
        assert_eq!(count('{'), count('}'));
        assert_eq!(count('['), count(']'));
    }

    #[test]
    fn non_finite_loss_detected() {
        let mut r = sample_report();
        assert!(r.has_non_finite_loss());
        r.losses = vec![1.0, 0.5];
        assert!(!r.has_non_finite_loss());
    }

    #[test]
    fn parity_digest_ignores_timings_but_pins_bytes_and_losses() {
        let a = sample_report();
        let mut b = sample_report();
        // Timings and peaks vary run to run — the digest must not see them.
        b.workers[0].phases[0].cpu_us = 999.0;
        b.workers[0].phases[0].wall_us = 999.0;
        b.workers[0].phases[0].blocked_us = 999.0;
        b.workers[0].phases[0].comm_us = 999.0;
        b.workers[0].phases[0].peak_tensor_bytes = 999;
        // Disk-tier traffic legitimately differs between spill-on and
        // spill-off runs of the same training — the digest must not see it.
        b.workers[0].phases[0].spill_bytes = 999;
        b.workers[0].phases[0].fault_bytes = 999;
        b.workers[0].phases[0].disk_blocked_us = 999.0;
        b.buffer_pool = None;
        b.epoch_times = vec![9.0];
        assert_eq!(a.parity_digest(), b.parity_digest());
        // A single flipped loss bit or ledger byte must break the digest.
        let mut c = sample_report();
        c.losses[0] = f32::from_bits(c.losses[0].to_bits() ^ 1);
        assert_ne!(a.parity_digest(), c.parity_digest());
        let mut d = sample_report();
        d.workers[0].phases[0].recv_bytes += 1;
        assert_ne!(a.parity_digest(), d.parity_digest());
    }

    #[test]
    fn overlap_json_aggregates_blocked_vs_wall() {
        let r = sample_report();
        let j = r.overlap_json();
        assert!(j.contains(r#""phase": "forward_fetch""#));
        assert!(j.contains(r#""wall_us": 4.5"#));
        assert!(j.contains(r#""blocked_us": 1.5"#));
        let count = |c: char| j.chars().filter(|&x| x == c).count();
        assert_eq!(count('{'), count('}'));
        assert_eq!(count('['), count(']'));
    }

    #[test]
    fn phase_sums_filter_by_phase() {
        let r = sample_report();
        assert_eq!(
            r.workers[0].phase_sum("forward_fetch", |p| p.recv_bytes),
            32
        );
        assert_eq!(r.workers[0].phase_sum("grad_routing", |p| p.recv_bytes), 0);
        assert_eq!(
            r.per_worker_phase_sum(Phase::ForwardFetch, |p| p.sent_bytes),
            vec![64]
        );
    }
}
