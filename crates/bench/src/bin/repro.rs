//! Regenerates every table and figure of the SAR paper.
//!
//! ```text
//! repro <experiment> [flags]
//!
//! experiments:
//!   table1              dataset stats + final accuracies
//!   fig2                single-host fused attention kernels
//!   fig3 | fig4         GraphSage | GAT scaling on products-like
//!   fig5 | fig6         GraphSage | GAT scaling on papers-like
//!   ablation-prefetch   2/N vs 3/N memory (§3.4)
//!   ablation-softmax    stable vs naive online softmax (§3.4)
//!   ablation-partition  partitioner quality vs comm volume
//!   exactness           SAR results independent of worker count
//!   smoke               CI gate: scaled-down 4-worker Sage + GAT runs;
//!                       writes per-worker RunReport JSON (--out DIR) and
//!                       exits non-zero on NaN loss or a ledger-invariant
//!                       violation (Sage backward must add zero fetch
//!                       bytes; GAT must re-fetch what the forward fetched).
//!                       With --transport tcp the same workloads run as 4
//!                       real OS processes over TCP loopback (spawned via
//!                       the sar-worker binary) and are gated on the same
//!                       invariants
//!   kernelbench         single-host SAR kernel micro-benchmarks over a
//!                       fixed seeded workload matrix; writes/checks the
//!                       schema-versioned BENCH_kernels.json perf
//!                       trajectory (own flags: --out PATH, --check PATH,
//!                       --simd auto|scalar, --threads N, --quick)
//!   overlap-check       diff a freshly generated BENCH_overlap.json
//!                       against the committed copy on run-set identity
//!                       and ledger invariants (timings are not compared);
//!                       flags: --current PATH --committed PATH
//!   servebench          closed-loop serving benchmark: spawns a real
//!                       4-process sar-serve cluster over TCP loopback,
//!                       drives it with concurrent clients, reports
//!                       p50/p99 latency + QPS, and writes/checks the
//!                       schema-versioned BENCH_serve.json artifact
//!                       (own flags: --out PATH, --check PATH, --world N,
//!                       --nodes N, --archs a,b, --clients N,
//!                       --requests N, --ids-per-request N,
//!                       --max-batch N, --max-delay-us N, --cache-rows N,
//!                       --threads N, --simd auto|scalar, --seed N).
//!                       The gate never compares latency magnitudes —
//!                       only schema/run-set identity and the serving
//!                       invariants (all queries answered, MFG fetch
//!                       strictly below the full-graph forward ceiling)
//!   outofcorebench      out-of-core tiering benchmark: a memory-
//!                       flatness sweep over the mmap-backed disk tier
//!                       (graph scale grows 8x under a fixed budget;
//!                       peak resident tensor bytes must stay flat and
//!                       the result digest must match a never-spilling
//!                       baseline bit for bit) plus end-to-end training
//!                       parity runs with --mem-budget on vs off across
//!                       {sim,tcp} x {threads} x {prefetch-depth};
//!                       writes/checks the schema-versioned
//!                       BENCH_outofcore.json artifact (own flags:
//!                       --out PATH, --check PATH, --transport sim,tcp,
//!                       --nodes N, --train-budget BYTES, --seed N,
//!                       --quick). The gate never compares timings
//!   compressbench       codec/protocol ablation: trains the smoke
//!                       workloads across the {codec × protocol} grid
//!                       (sim in-process, plus a TCP subset as real OS
//!                       processes) and writes/checks the
//!                       schema-versioned BENCH_compress.json artifact
//!                       (own flags: --out PATH, --check PATH,
//!                       --transport sim,tcp, --world N, --nodes N,
//!                       --epochs N, --seed N, --quick). The gate never
//!                       compares epoch-time magnitudes — only the run
//!                       set, the logical-vs-wire ledger invariants
//!                       (raw moves wire == logical, lossy codecs clear
//!                       the 2x payload bar, gradonly/stale skip what
//!                       they claim to skip), cross-transport raw/exact
//!                       digest equality, and the accuracy floor
//!   all                 everything above except smoke/kernelbench
//!
//! flags:
//!   --transport sim|tcp  smoke backend: in-process simulated cluster or
//!                        one OS process per rank over TCP    (sim)
//!   --products-nodes N   products-like size     (default 4000)
//!   --papers-nodes N     papers-like size       (default 8000)
//!   --epochs N           accuracy-run epochs    (default 40)
//!   --timing-epochs N    timing-run epochs      (default 3)
//!   --bw-scale X         bandwidth down-scale   (default 100)
//!   --mem-budget-products-mib X  OOM budget, Figs. 3/4 (default 512)
//!   --mem-budget-papers-mib X    OOM budget, Figs. 5/6 (default 48)
//!   --worlds A,B,C       worker counts override
//!   --out DIR            RunReport JSON output directory (smoke only)
//!   --model sage|gat|all smoke model selection (default all); validated
//!                        against the supported model list at parse time
//!   --threads A,B        smoke intra-worker thread counts (default 1).
//!                        With more than one count, the same workload runs
//!                        once per count and the gate fails unless every
//!                        run's losses and byte ledgers are identical —
//!                        the kernels' determinism contract (DESIGN.md §8)
//!   --prefetch-depth A,B smoke fetch-pipeline depths (default 0). With
//!                        more than one depth, the same workload runs once
//!                        per depth and the gate fails unless every run's
//!                        losses and byte ledgers are identical — the
//!                        pipelined exchange's deterministic-accumulation
//!                        contract (DESIGN.md §9). Crosses with --threads.
//!   --simd A,B           smoke SIMD dispatch modes (default auto). With
//!                        more than one mode (auto,scalar), the same
//!                        workload runs once per mode and the gate fails
//!                        unless every run's parity digest is identical —
//!                        the SIMD paths' bitwise-determinism contract
//!                        (DESIGN.md §11). Crosses with --threads and
//!                        --prefetch-depth.
//!   --mem-budget BYTES   smoke resident-tensor budget for the disk
//!                        tier (0 = spilling disabled). The ledger
//!                        invariants and cross-combination digests must
//!                        hold unchanged — spilling is invisible to
//!                        training                        (default 0)
//!   --seed N             RNG seed               (default 0)
//! ```
//!
//! With `--out DIR`, smoke also writes `DIR/BENCH_overlap.json`: one
//! record per (model, threads, depth) run with the per-phase
//! blocked-vs-wall overlap summary, so the realized comm/compute overlap
//! is tracked as a CI artifact.

use sar_bench::experiments::{
    ablation_partition, ablation_prefetch, ablation_softmax, exactness, fig2, scaling, table1,
    ExpConfig, Workload,
};
use sar_bench::report::RunReport;
use sar_bench::{compressbench, kernelbench, launcher, outofcorebench, servebench, smoke};
use sar_core::{train, Arch};

struct Flags {
    cfg: ExpConfig,
    worlds: Option<Vec<usize>>,
    out: Option<String>,
    transport: String,
    /// Intra-worker thread counts the smoke gate runs (and cross-checks).
    threads: Vec<usize>,
    /// Fetch-pipeline depths the smoke gate runs (and cross-checks).
    depths: Vec<usize>,
    /// SIMD dispatch modes the smoke gate runs (and cross-checks).
    simds: Vec<String>,
    /// Smoke model selection: `"all"` or one of [`smoke::MODELS`].
    model: String,
    /// Smoke `--mem-budget` (bytes; 0 = spilling disabled).
    mem_budget: u64,
}

fn parse_flags(args: &[String]) -> Flags {
    let mut cfg = ExpConfig::default();
    let mut worlds = None;
    let mut out = None;
    let mut transport = "sim".to_string();
    let mut threads = vec![1usize];
    let mut depths = vec![0usize];
    let mut simds = vec!["auto".to_string()];
    let mut model = "all".to_string();
    let mut mem_budget = 0u64;
    let mut i = 0;
    while i < args.len() {
        let key = args[i].as_str();
        let value = args.get(i + 1).cloned();
        let mut take = |name: &str| -> Option<String> {
            if key == name {
                i += 1;
                Some(value.clone().unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    std::process::exit(2);
                }))
            } else {
                None
            }
        };
        if let Some(v) = take("--products-nodes") {
            cfg.products_nodes = v.parse().expect("--products-nodes");
        } else if let Some(v) = take("--papers-nodes") {
            cfg.papers_nodes = v.parse().expect("--papers-nodes");
        } else if let Some(v) = take("--epochs") {
            cfg.epochs = v.parse().expect("--epochs");
        } else if let Some(v) = take("--timing-epochs") {
            cfg.timing_epochs = v.parse().expect("--timing-epochs");
        } else if let Some(v) = take("--bw-scale") {
            cfg.bandwidth_scale = v.parse().expect("--bw-scale");
        } else if let Some(v) = take("--mem-budget-products-mib") {
            cfg.mem_budget_products_mib = v.parse().expect("--mem-budget-products-mib");
        } else if let Some(v) = take("--mem-budget-papers-mib") {
            cfg.mem_budget_papers_mib = v.parse().expect("--mem-budget-papers-mib");
        } else if let Some(v) = take("--worlds") {
            worlds = Some(v.split(',').map(|x| x.parse().expect("--worlds")).collect());
        } else if let Some(v) = take("--out") {
            out = Some(v);
        } else if let Some(v) = take("--transport") {
            if v != "sim" && v != "tcp" {
                eprintln!("--transport must be sim or tcp, not {v}");
                std::process::exit(2);
            }
            transport = v;
        } else if let Some(v) = take("--threads") {
            threads = v
                .split(',')
                .map(|x| match x.parse::<usize>() {
                    Ok(t) if t >= 1 => t,
                    _ => {
                        eprintln!("--threads takes a comma list of counts >= 1, e.g. 1,4");
                        std::process::exit(2);
                    }
                })
                .collect();
        } else if let Some(v) = take("--prefetch-depth") {
            depths = v
                .split(',')
                .map(|x| match x.parse::<usize>() {
                    Ok(d) => d,
                    _ => {
                        eprintln!("--prefetch-depth takes a comma list of depths, e.g. 0,2");
                        std::process::exit(2);
                    }
                })
                .collect();
        } else if let Some(v) = take("--simd") {
            simds = v
                .split(',')
                .map(|x| {
                    if sar_tensor::simd::parse_mode(x).is_none() {
                        eprintln!("--simd takes a comma list of modes from: auto, scalar");
                        std::process::exit(2);
                    }
                    x.to_string()
                })
                .collect();
        } else if let Some(v) = take("--model") {
            if v != "all" && !smoke::MODELS.contains(&v.as_str()) {
                eprintln!(
                    "unknown --model {v}; supported models: {}, all",
                    smoke::MODELS.join(", ")
                );
                std::process::exit(2);
            }
            model = v;
        } else if let Some(v) = take("--mem-budget") {
            mem_budget = v.parse().expect("--mem-budget");
        } else if let Some(v) = take("--seed") {
            cfg.seed = v.parse().expect("--seed");
        } else {
            eprintln!("unknown flag: {key}");
            std::process::exit(2);
        }
        i += 1;
    }
    Flags {
        cfg,
        worlds,
        out,
        transport,
        threads,
        depths,
        simds,
        model,
        mem_budget,
    }
}

/// One smoke run's overlap record, destined for `BENCH_overlap.json`.
struct OverlapRun {
    experiment: String,
    transport: &'static str,
    threads: usize,
    depth: usize,
    simd: String,
    /// Verbatim [`RunReport::overlap_json`] fragment.
    fragment: String,
}

/// Assembles `DIR/BENCH_overlap.json` from the collected per-run overlap
/// fragments (each fragment is already a JSON object, embedded verbatim).
/// The committed copy at the repository root is diffed against this
/// output by `repro overlap-check` in CI (run-set identity and ledger
/// invariants only — timings vary freely).
fn write_overlap_artifact(dir: &str, runs: &[OverlapRun]) -> Result<String, String> {
    let mut s = String::from("{\n  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"experiment\": \"{}\", \"transport\": \"{}\", \"threads\": {}, \
             \"prefetch_depth\": {}, \"simd\": \"{}\", \"overlap\": {}}}{}\n",
            r.experiment,
            r.transport,
            r.threads,
            r.depth,
            r.simd,
            r.fragment.trim(),
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    let path = format!("{dir}/BENCH_overlap.json");
    std::fs::write(&path, s).map_err(|e| format!("cannot write {path}: {e}"))?;
    Ok(path)
}

// ----------------------------------------------------------------------
// `smoke` — the CI gate
// ----------------------------------------------------------------------

/// The `(threads, prefetch_depth, simd)` grid a smoke workload runs
/// over, in a deterministic order with the baseline combination first.
fn combos(threads: &[usize], depths: &[usize], simds: &[String]) -> Vec<(usize, usize, String)> {
    simds
        .iter()
        .flat_map(|s| {
            depths
                .iter()
                .flat_map(move |&d| threads.iter().map(move |&t| (t, d, s.clone())))
        })
        .collect()
}

/// Report-file name for one combination: the baseline keeps the bare
/// `{exp}.json` name CI has always archived; variants get suffixes.
fn report_path(dir: &str, exp: &str, k: usize, t: usize, d: usize, s: &str) -> String {
    if k == 0 {
        format!("{dir}/{exp}.json")
    } else {
        format!("{dir}/{exp}-t{t}-d{d}-{s}.json")
    }
}

/// Scaled-down 4-worker GraphSage and GAT training runs whose
/// observability ledgers are checked against the paper's communication
/// claims. The workloads and the invariants live in [`sar_bench::smoke`],
/// shared verbatim with the TCP backend. With more than one entry in
/// `threads` or `depths`, the same workload runs once per combination and
/// the runs' [`RunReport::parity_digest`]s must match exactly — the
/// parallel kernels' and the pipelined exchange's bitwise-determinism
/// contracts. Returns the violations found (empty = gate passes) and
/// appends each run's overlap record to `overlaps`.
fn smoke_sim(
    cfg: &ExpConfig,
    out_dir: Option<&str>,
    models: &[&str],
    threads: &[usize],
    depths: &[usize],
    simds: &[String],
    mem_budget: u64,
    overlaps: &mut Vec<OverlapRun>,
) -> Vec<String> {
    let nodes = cfg.products_nodes.min(1500);
    let mut violations = Vec::new();
    for arch_name in models {
        let exp = format!("smoke-{arch_name}");
        let base = match smoke::workload(arch_name, nodes, cfg.seed) {
            Ok(w) => w,
            Err(e) => {
                violations.push(format!("{exp}: {e}"));
                continue;
            }
        };
        let mut first_digest: Option<String> = None;
        for (k, (t, d, s)) in combos(threads, depths, simds).into_iter().enumerate() {
            let mut wl = base.clone();
            wl.threads = t;
            wl.prefetch_depth = d;
            wl.simd = s.clone();
            wl.mem_budget = mem_budget;
            // The combos run sequentially, so flipping the process-global
            // dispatch mode per combination is race-free here.
            match sar_tensor::simd::parse_mode(&wl.simd) {
                Some(mode) => sar_tensor::simd::set_mode(mode),
                None => {
                    violations.push(format!("{exp}: unknown --simd {}", wl.simd));
                    continue;
                }
            }
            let (dataset, part) = match wl.build_data(smoke::WORLD) {
                Ok(dp) => dp,
                Err(e) => {
                    violations.push(format!("{exp}: {e}"));
                    continue;
                }
            };
            let tcfg = match wl.train_config(&dataset) {
                Ok(t) => t,
                Err(e) => {
                    violations.push(format!("{exp}: {e}"));
                    continue;
                }
            };
            eprintln!(
                "[repro] smoke: training {arch_name}/{} on {} workers \
                 (threads={t}, prefetch-depth={d}, simd={s}) ...",
                wl.mode,
                smoke::WORLD
            );
            let run = train(&dataset, &part, cfg.cost_model(), &tcfg);
            let report = RunReport::from_train(&exp, *arch_name, &wl.mode, &run);
            smoke::ledger_table(&report).print();
            violations.extend(smoke::violations(&report, wl.epochs));
            match &first_digest {
                None => first_digest = Some(report.parity_digest()),
                Some(d0) => {
                    if let Some(diff) = smoke::digest_diff(d0, &report.parity_digest()) {
                        violations.push(format!(
                            "{exp}: --threads {t} --prefetch-depth {d} --simd {s} diverged \
                             from the baseline combination — {diff}"
                        ));
                    }
                }
            }
            overlaps.push(OverlapRun {
                experiment: exp.clone(),
                transport: "sim",
                threads: t,
                depth: d,
                simd: s.clone(),
                fragment: report.overlap_json(),
            });
            if let Some(dir) = out_dir {
                let path = report_path(dir, &exp, k, t, d, &s);
                match report.write_json(&path) {
                    Ok(()) => eprintln!("[repro] wrote {path}"),
                    Err(e) => violations.push(format!("{exp}: cannot write {path}: {e}")),
                }
            }
        }
    }
    // Leave the process in the default dispatch mode for whatever runs next.
    sar_tensor::simd::set_mode(sar_tensor::simd::SimdMode::Auto);
    violations
}

/// The same smoke workloads as real OS processes: one `sar-worker`
/// process per rank over TCP loopback. Rank 0 of each run gathers the
/// ledgers, applies the same invariants (`--check smoke`) and writes the
/// same RunReport JSON; any rank failure or invariant violation surfaces
/// here as a non-zero child exit. Cross-thread-count parity is checked
/// through rank 0's `--digest-out` file, since the report itself lives in
/// the child process.
fn smoke_tcp(
    cfg: &ExpConfig,
    out_dir: Option<&str>,
    models: &[&str],
    threads: &[usize],
    depths: &[usize],
    simds: &[String],
    mem_budget: u64,
    overlaps: &mut Vec<OverlapRun>,
) -> Vec<String> {
    let nodes = cfg.products_nodes.min(1500);
    let exe = match launcher::sibling_binary("sar-worker") {
        Ok(exe) => exe,
        Err(e) => return vec![format!("smoke-tcp: {e}")],
    };
    let mut violations = Vec::new();
    for arch_name in models {
        let exp = format!("smoke-{arch_name}");
        let base = match smoke::workload(arch_name, nodes, cfg.seed) {
            Ok(w) => w,
            Err(e) => {
                violations.push(format!("{exp}: {e}"));
                continue;
            }
        };
        let mut first_digest: Option<String> = None;
        for (k, (t, d, s)) in combos(threads, depths, simds).into_iter().enumerate() {
            let mut wl = base.clone();
            wl.threads = t;
            wl.prefetch_depth = d;
            wl.simd = s.clone();
            wl.mem_budget = mem_budget;
            let mut args = wl.to_args();
            args.extend([
                "--check".to_string(),
                "smoke".to_string(),
                "--experiment".to_string(),
                exp.clone(),
            ]);
            let digest_path = std::env::temp_dir().join(format!(
                "sar-{exp}-t{t}-d{d}-{s}-{}.digest",
                std::process::id()
            ));
            let overlap_path = std::env::temp_dir().join(format!(
                "sar-{exp}-t{t}-d{d}-{s}-{}.overlap",
                std::process::id()
            ));
            args.extend([
                "--digest-out".to_string(),
                digest_path.display().to_string(),
                "--overlap-out".to_string(),
                overlap_path.display().to_string(),
            ]);
            if let Some(dir) = out_dir {
                args.extend(["--out".to_string(), report_path(dir, &exp, k, t, d, &s)]);
            }
            eprintln!(
                "[repro] smoke: training {arch_name}/{} on {} OS processes over TCP \
                 (threads={t}, prefetch-depth={d}, simd={s}) ...",
                wl.mode,
                smoke::WORLD
            );
            if let Err(e) = launcher::spawn_ranks(&exe, smoke::WORLD, &args) {
                violations.push(format!("{exp}: {e}"));
                continue;
            }
            if let Ok(fragment) = std::fs::read_to_string(&overlap_path) {
                overlaps.push(OverlapRun {
                    experiment: exp.clone(),
                    transport: "tcp",
                    threads: t,
                    depth: d,
                    simd: s.clone(),
                    fragment,
                });
            }
            let _ = std::fs::remove_file(&overlap_path);
            let digest = match std::fs::read_to_string(&digest_path) {
                Ok(d) => d,
                Err(e) => {
                    violations.push(format!(
                        "{exp}: rank 0 wrote no digest at {}: {e}",
                        digest_path.display()
                    ));
                    continue;
                }
            };
            let _ = std::fs::remove_file(&digest_path);
            match &first_digest {
                None => first_digest = Some(digest),
                Some(d0) => {
                    if let Some(diff) = smoke::digest_diff(d0, &digest) {
                        violations.push(format!(
                            "{exp}: --threads {t} --prefetch-depth {d} --simd {s} diverged \
                             from the baseline combination — {diff}"
                        ));
                    }
                }
            }
        }
    }
    violations
}

fn smoke(flags: &Flags) -> Vec<String> {
    if let Some(dir) = flags.out.as_deref() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("[repro] cannot create {dir}: {e}");
            std::process::exit(2);
        }
    }
    let models: Vec<&str> = if flags.model == "all" {
        smoke::MODELS.to_vec()
    } else {
        vec![flags.model.as_str()]
    };
    let mut overlaps = Vec::new();
    let mut violations = match flags.transport.as_str() {
        "tcp" => smoke_tcp(
            &flags.cfg,
            flags.out.as_deref(),
            &models,
            &flags.threads,
            &flags.depths,
            &flags.simds,
            flags.mem_budget,
            &mut overlaps,
        ),
        _ => smoke_sim(
            &flags.cfg,
            flags.out.as_deref(),
            &models,
            &flags.threads,
            &flags.depths,
            &flags.simds,
            flags.mem_budget,
            &mut overlaps,
        ),
    };
    if let Some(dir) = flags.out.as_deref() {
        match write_overlap_artifact(dir, &overlaps) {
            Ok(path) => eprintln!("[repro] wrote {path}"),
            Err(e) => violations.push(format!("smoke: {e}")),
        }
    }
    violations
}

fn run(name: &str, cfg: &ExpConfig, worlds: Option<&[usize]>) {
    let products_worlds = worlds.unwrap_or(&[4, 8, 16]).to_vec();
    let papers_worlds = worlds.unwrap_or(&[32, 64, 128]).to_vec();
    let tables = match name {
        "table1" => table1(cfg),
        "fig2" => fig2(cfg),
        "fig3" => scaling(
            Arch::GraphSage { hidden: 256 },
            Workload::Products,
            &products_worlds,
            cfg,
        ),
        "fig4" => scaling(
            Arch::Gat {
                head_dim: 128,
                heads: 4,
            },
            Workload::Products,
            &products_worlds,
            cfg,
        ),
        "fig5" => scaling(
            Arch::GraphSage { hidden: 256 },
            Workload::Papers,
            &papers_worlds,
            cfg,
        ),
        "fig6" => scaling(
            Arch::Gat {
                head_dim: 128,
                heads: 4,
            },
            Workload::Papers,
            &papers_worlds,
            cfg,
        ),
        "ablation-prefetch" => vec![ablation_prefetch(cfg)],
        "ablation-softmax" => vec![ablation_softmax(cfg)],
        "ablation-partition" => vec![ablation_partition(cfg)],
        "exactness" => vec![exactness(cfg)],
        other => {
            eprintln!("unknown experiment: {other}");
            std::process::exit(2);
        }
    };
    for t in tables {
        t.print();
    }
}

// ----------------------------------------------------------------------
// `kernelbench` — the committed perf trajectory
// ----------------------------------------------------------------------

/// `repro kernelbench [--out PATH] [--check PATH] [--simd auto|scalar]
/// [--threads N] [--quick]`: run the fixed kernel workload matrix, write
/// the schema-versioned report, and/or gate against a committed baseline.
fn kernelbench_cmd(args: &[String]) -> i32 {
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut threads = 1usize;
    let mut quick = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" | "--check" | "--simd" | "--threads" => {
                let key = args[i].clone();
                i += 1;
                let Some(v) = args.get(i).cloned() else {
                    eprintln!("missing value for {key}");
                    return 2;
                };
                match key.as_str() {
                    "--out" => out = Some(v),
                    "--check" => check = Some(v),
                    "--simd" => match sar_tensor::simd::parse_mode(&v) {
                        Some(mode) => sar_tensor::simd::set_mode(mode),
                        None => {
                            eprintln!("--simd must be auto or scalar, not {v}");
                            return 2;
                        }
                    },
                    _ => match v.parse::<usize>() {
                        Ok(t) if t >= 1 => threads = t,
                        _ => {
                            eprintln!("--threads takes a count >= 1");
                            return 2;
                        }
                    },
                }
            }
            "--quick" => quick = true,
            other => {
                eprintln!("unknown kernelbench flag: {other}");
                return 2;
            }
        }
        i += 1;
    }
    sar_tensor::pool::set_threads(threads);
    eprintln!(
        "[repro] kernelbench: simd={}, threads={threads}{} ...",
        sar_tensor::simd::dispatch_label(),
        if quick { ", quick" } else { "" }
    );
    let report = kernelbench::run_bench(quick);
    kernelbench::print_table(&report);
    if let Some(path) = &out {
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("[repro] cannot create {}: {e}", dir.display());
                    return 2;
                }
            }
        }
        match report.write_json(path) {
            Ok(()) => eprintln!("[repro] wrote {path}"),
            Err(e) => {
                eprintln!("[repro] {e}");
                return 2;
            }
        }
    }
    if let Some(path) = &check {
        let baseline = match std::fs::read_to_string(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!(
                    "[repro] kernelbench FAIL: no baseline at {path}: {e} — \
                     generate one with `repro kernelbench --out {path}`"
                );
                return 1;
            }
        };
        let violations = kernelbench::check_against(&report, &baseline);
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("[repro] kernelbench REGRESSION: {v}");
            }
            return 1;
        }
        eprintln!("[repro] kernelbench: all kernels within tolerance of {path}");
    }
    0
}

/// `repro servebench [--out PATH] [--check PATH] [workload flags]`: spawn
/// a real `sar-serve` cluster per architecture, drive it with the
/// deterministic closed-loop client load, write the schema-versioned
/// report, and/or gate against the committed `BENCH_serve.json`.
fn servebench_cmd(args: &[String]) -> i32 {
    let mut cfg = servebench::ServeBenchConfig::default();
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let key = args[i].clone();
        i += 1;
        let Some(v) = args.get(i).cloned() else {
            eprintln!("missing value for {key}");
            return 2;
        };
        let parse_usize = |v: &str, key: &str| -> Result<usize, i32> {
            v.parse::<usize>().map_err(|_| {
                eprintln!("{key} takes a non-negative integer, not {v}");
                2
            })
        };
        let r = (|| -> Result<(), i32> {
            match key.as_str() {
                "--out" => out = Some(v.clone()),
                "--check" => check = Some(v.clone()),
                "--world" => cfg.world = parse_usize(&v, &key)?.max(1),
                "--nodes" => cfg.nodes = parse_usize(&v, &key)?,
                "--archs" => cfg.archs = v.split(',').map(str::to_string).collect(),
                "--clients" => cfg.clients = parse_usize(&v, &key)?.max(1),
                "--requests" => cfg.requests = parse_usize(&v, &key)?.max(1),
                "--ids-per-request" => cfg.ids_per_request = parse_usize(&v, &key)?.max(1),
                "--max-batch" => cfg.max_batch = parse_usize(&v, &key)?.max(1),
                "--max-delay-us" => cfg.max_delay_us = parse_usize(&v, &key)? as u64,
                "--cache-rows" => cfg.cache_rows = parse_usize(&v, &key)?,
                "--threads" => cfg.threads = parse_usize(&v, &key)?.max(1),
                "--simd" => {
                    if sar_tensor::simd::parse_mode(&v).is_none() {
                        eprintln!("--simd must be auto or scalar, not {v}");
                        return Err(2);
                    }
                    cfg.simd = v.clone();
                }
                "--seed" => cfg.seed = parse_usize(&v, &key)? as u64,
                other => {
                    eprintln!("unknown servebench flag: {other}");
                    return Err(2);
                }
            }
            Ok(())
        })();
        if let Err(code) = r {
            return code;
        }
        i += 1;
    }
    let exe = match launcher::sibling_binary("sar-serve") {
        Ok(exe) => exe,
        Err(e) => {
            eprintln!("[repro] servebench: {e}");
            return 2;
        }
    };
    let report = match servebench::run_servebench(&exe, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("[repro] servebench FAIL: {e}");
            return 1;
        }
    };
    servebench::print_table(&report);
    if let Some(path) = &out {
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("[repro] cannot create {}: {e}", dir.display());
                    return 2;
                }
            }
        }
        match report.write_json(path) {
            Ok(()) => eprintln!("[repro] wrote {path}"),
            Err(e) => {
                eprintln!("[repro] {e}");
                return 2;
            }
        }
    }
    if let Some(path) = &check {
        let committed = match std::fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!(
                    "[repro] servebench FAIL: no committed artifact at {path}: {e} — \
                     generate one with `repro servebench --out {path}`"
                );
                return 1;
            }
        };
        let violations = servebench::check_against(&report, &committed);
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("[repro] servebench VIOLATION: {v}");
            }
            return 1;
        }
        eprintln!("[repro] servebench: structure and invariants consistent with {path}");
    }
    0
}

/// `repro outofcorebench [--out PATH] [--check PATH] [--transport sim,tcp]
/// [--nodes N] [--train-budget BYTES] [--seed N] [--quick]`: run the
/// out-of-core memory-flatness sweep and the --mem-budget training
/// parity grid, write the schema-versioned report, and/or gate against
/// the committed `BENCH_outofcore.json`.
fn outofcorebench_cmd(args: &[String]) -> i32 {
    let mut cfg = outofcorebench::OocBenchConfig::default();
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let key = args[i].clone();
        if key == "--quick" {
            cfg.quick = true;
            i += 1;
            continue;
        }
        i += 1;
        let Some(v) = args.get(i).cloned() else {
            eprintln!("missing value for {key}");
            return 2;
        };
        let r = (|| -> Result<(), i32> {
            let parse_u64 = |v: &str, key: &str| -> Result<u64, i32> {
                v.parse::<u64>().map_err(|_| {
                    eprintln!("{key} takes a non-negative integer, not {v}");
                    2
                })
            };
            match key.as_str() {
                "--out" => out = Some(v.clone()),
                "--check" => check = Some(v.clone()),
                "--nodes" => cfg.nodes = parse_u64(&v, &key)? as usize,
                "--train-budget" => cfg.train_budget = parse_u64(&v, &key)?,
                "--seed" => cfg.seed = parse_u64(&v, &key)?,
                "--transport" => {
                    let ts: Vec<String> = v.split(',').map(str::to_string).collect();
                    if ts.iter().any(|t| t != "sim" && t != "tcp") {
                        eprintln!("--transport takes a comma list from: sim, tcp");
                        return Err(2);
                    }
                    cfg.transports = ts;
                }
                other => {
                    eprintln!("unknown outofcorebench flag: {other}");
                    return Err(2);
                }
            }
            Ok(())
        })();
        if let Err(code) = r {
            return code;
        }
        i += 1;
    }
    let report = match outofcorebench::run_oocbench(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("[repro] outofcorebench FAIL: {e}");
            return 1;
        }
    };
    outofcorebench::print_table(&report);
    if let Some(path) = &out {
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("[repro] cannot create {}: {e}", dir.display());
                    return 2;
                }
            }
        }
        match report.write_json(path) {
            Ok(()) => eprintln!("[repro] wrote {path}"),
            Err(e) => {
                eprintln!("[repro] {e}");
                return 2;
            }
        }
    }
    if let Some(path) = &check {
        let committed = match std::fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!(
                    "[repro] outofcorebench FAIL: no committed artifact at {path}: {e} — \
                     generate one with `repro outofcorebench --out {path}`"
                );
                return 1;
            }
        };
        let violations = outofcorebench::check_against(&report, &committed);
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("[repro] outofcorebench VIOLATION: {v}");
            }
            return 1;
        }
        eprintln!("[repro] outofcorebench: structure and invariants consistent with {path}");
    }
    0
}

/// `repro compressbench [--out PATH] [--check PATH] [--transport sim,tcp]
/// [--world N] [--nodes N] [--epochs N] [--seed N] [--quick]`: run the
/// codec/protocol grid, write the schema-versioned report, and/or gate
/// against the committed `BENCH_compress.json`.
fn compressbench_cmd(args: &[String]) -> i32 {
    let mut cfg = compressbench::CompressBenchConfig::default();
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let key = args[i].clone();
        if key == "--quick" {
            cfg.quick = true;
            i += 1;
            continue;
        }
        i += 1;
        let Some(v) = args.get(i).cloned() else {
            eprintln!("missing value for {key}");
            return 2;
        };
        let parse_usize = |v: &str, key: &str| -> Result<usize, i32> {
            v.parse::<usize>().map_err(|_| {
                eprintln!("{key} takes a non-negative integer, not {v}");
                2
            })
        };
        let r = (|| -> Result<(), i32> {
            match key.as_str() {
                "--out" => out = Some(v.clone()),
                "--check" => check = Some(v.clone()),
                "--world" => cfg.world = parse_usize(&v, &key)?.max(1),
                "--nodes" => cfg.nodes = parse_usize(&v, &key)?,
                "--epochs" => cfg.epochs = parse_usize(&v, &key)?.max(1),
                "--seed" => cfg.seed = parse_usize(&v, &key)? as u64,
                "--transport" => {
                    let ts: Vec<String> = v.split(',').map(str::to_string).collect();
                    if ts.iter().any(|t| t != "sim" && t != "tcp") {
                        eprintln!("--transport takes a comma list from: sim, tcp");
                        return Err(2);
                    }
                    cfg.transports = ts;
                }
                other => {
                    eprintln!("unknown compressbench flag: {other}");
                    return Err(2);
                }
            }
            Ok(())
        })();
        if let Err(code) = r {
            return code;
        }
        i += 1;
    }
    let report = match compressbench::run_compressbench(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("[repro] compressbench FAIL: {e}");
            return 1;
        }
    };
    compressbench::print_table(&report);
    if let Some(path) = &out {
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("[repro] cannot create {}: {e}", dir.display());
                    return 2;
                }
            }
        }
        match report.write_json(path) {
            Ok(()) => eprintln!("[repro] wrote {path}"),
            Err(e) => {
                eprintln!("[repro] {e}");
                return 2;
            }
        }
    }
    if let Some(path) = &check {
        let committed = match std::fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!(
                    "[repro] compressbench FAIL: no committed artifact at {path}: {e} — \
                     generate one with `repro compressbench --out {path}`"
                );
                return 1;
            }
        };
        let violations = compressbench::check_against(&report, &committed);
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("[repro] compressbench VIOLATION: {v}");
            }
            return 1;
        }
        eprintln!("[repro] compressbench: structure and invariants consistent with {path}");
    }
    0
}

/// `repro overlap-check --current PATH --committed PATH`: diff a fresh
/// `BENCH_overlap.json` against the committed copy (run-set identity and
/// ledger invariants; timings are not compared).
fn overlap_check_cmd(args: &[String]) -> i32 {
    let mut current: Option<String> = None;
    let mut committed: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let key = args[i].clone();
        i += 1;
        let Some(v) = args.get(i).cloned() else {
            eprintln!("missing value for {key}");
            return 2;
        };
        match key.as_str() {
            "--current" => current = Some(v),
            "--committed" => committed = Some(v),
            other => {
                eprintln!("unknown overlap-check flag: {other}");
                return 2;
            }
        }
        i += 1;
    }
    let (Some(current), Some(committed)) = (current, committed) else {
        eprintln!("overlap-check needs --current PATH and --committed PATH");
        return 2;
    };
    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let (cur, base) = match (read(&current), read(&committed)) {
        (Ok(c), Ok(b)) => (c, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("[repro] overlap-check: {e}");
            return 1;
        }
    };
    let violations = kernelbench::overlap_check(&cur, &base);
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("[repro] overlap-check VIOLATION: {v}");
        }
        return 1;
    }
    eprintln!("[repro] overlap-check: {current} is consistent with {committed}");
    0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: repro <experiment|all> [flags] — see crate docs");
        std::process::exit(2);
    }
    if args[0] == "kernelbench" {
        std::process::exit(kernelbench_cmd(&args[1..]));
    }
    if args[0] == "overlap-check" {
        std::process::exit(overlap_check_cmd(&args[1..]));
    }
    if args[0] == "servebench" {
        std::process::exit(servebench_cmd(&args[1..]));
    }
    if args[0] == "compressbench" {
        std::process::exit(compressbench_cmd(&args[1..]));
    }
    if args[0] == "outofcorebench" {
        std::process::exit(outofcorebench_cmd(&args[1..]));
    }
    let flags = parse_flags(&args[1..]);
    let (cfg, worlds, transport) = (&flags.cfg, &flags.worlds, &flags.transport);
    eprintln!(
        "[repro] products-like n={}, papers-like n={}, epochs={}, timing-epochs={}, bw-scale={}",
        cfg.products_nodes, cfg.papers_nodes, cfg.epochs, cfg.timing_epochs, cfg.bandwidth_scale
    );
    if args[0] == "smoke" {
        let violations = smoke(&flags);
        if violations.is_empty() {
            eprintln!("[repro] smoke ({transport}): all ledger invariants hold");
        } else {
            for v in &violations {
                eprintln!("[repro] smoke VIOLATION: {v}");
            }
            std::process::exit(1);
        }
        return;
    }
    if args[0] == "all" {
        for name in [
            "table1",
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "ablation-prefetch",
            "ablation-softmax",
            "ablation-partition",
            "exactness",
        ] {
            eprintln!("[repro] running {name} ...");
            run(name, cfg, worlds.as_deref());
        }
    } else {
        run(&args[0], cfg, worlds.as_deref());
    }
}
