//! Regenerates every table and figure of the SAR paper.
//!
//! ```text
//! repro <experiment> [flags]
//!
//! experiments:
//!   table1              dataset stats + final accuracies
//!   fig2                single-host fused attention kernels
//!   fig3 | fig4         GraphSage | GAT scaling on products-like
//!   fig5 | fig6         GraphSage | GAT scaling on papers-like
//!   ablation-prefetch   2/N vs 3/N memory (§3.4)
//!   ablation-softmax    stable vs naive online softmax (§3.4)
//!   ablation-partition  partitioner quality vs comm volume
//!   exactness           SAR results independent of worker count
//!   all                 everything above
//!
//! flags:
//!   --products-nodes N   products-like size     (default 4000)
//!   --papers-nodes N     papers-like size       (default 8000)
//!   --epochs N           accuracy-run epochs    (default 40)
//!   --timing-epochs N    timing-run epochs      (default 3)
//!   --bw-scale X         bandwidth down-scale   (default 100)
//!   --mem-budget-products-mib X  OOM budget, Figs. 3/4 (default 512)
//!   --mem-budget-papers-mib X    OOM budget, Figs. 5/6 (default 48)
//!   --worlds A,B,C       worker counts override
//!   --seed N             RNG seed               (default 0)
//! ```

use sar_bench::experiments::{
    ablation_partition, ablation_prefetch, ablation_softmax, exactness, fig2, scaling, table1,
    ExpConfig, Workload,
};
use sar_core::Arch;

fn parse_flags(args: &[String]) -> (ExpConfig, Option<Vec<usize>>) {
    let mut cfg = ExpConfig::default();
    let mut worlds = None;
    let mut i = 0;
    while i < args.len() {
        let key = args[i].as_str();
        let value = args.get(i + 1).cloned();
        let mut take = |name: &str| -> Option<String> {
            if key == name {
                i += 1;
                Some(value.clone().unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    std::process::exit(2);
                }))
            } else {
                None
            }
        };
        if let Some(v) = take("--products-nodes") {
            cfg.products_nodes = v.parse().expect("--products-nodes");
        } else if let Some(v) = take("--papers-nodes") {
            cfg.papers_nodes = v.parse().expect("--papers-nodes");
        } else if let Some(v) = take("--epochs") {
            cfg.epochs = v.parse().expect("--epochs");
        } else if let Some(v) = take("--timing-epochs") {
            cfg.timing_epochs = v.parse().expect("--timing-epochs");
        } else if let Some(v) = take("--bw-scale") {
            cfg.bandwidth_scale = v.parse().expect("--bw-scale");
        } else if let Some(v) = take("--mem-budget-products-mib") {
            cfg.mem_budget_products_mib = v.parse().expect("--mem-budget-products-mib");
        } else if let Some(v) = take("--mem-budget-papers-mib") {
            cfg.mem_budget_papers_mib = v.parse().expect("--mem-budget-papers-mib");
        } else if let Some(v) = take("--worlds") {
            worlds = Some(
                v.split(',')
                    .map(|x| x.parse().expect("--worlds"))
                    .collect(),
            );
        } else if let Some(v) = take("--seed") {
            cfg.seed = v.parse().expect("--seed");
        } else {
            eprintln!("unknown flag: {key}");
            std::process::exit(2);
        }
        i += 1;
    }
    (cfg, worlds)
}

fn run(name: &str, cfg: &ExpConfig, worlds: Option<&[usize]>) {
    let products_worlds = worlds.unwrap_or(&[4, 8, 16]).to_vec();
    let papers_worlds = worlds.unwrap_or(&[32, 64, 128]).to_vec();
    let tables = match name {
        "table1" => table1(cfg),
        "fig2" => fig2(cfg),
        "fig3" => scaling(
            Arch::GraphSage { hidden: 256 },
            Workload::Products,
            &products_worlds,
            cfg,
        ),
        "fig4" => scaling(
            Arch::Gat {
                head_dim: 128,
                heads: 4,
            },
            Workload::Products,
            &products_worlds,
            cfg,
        ),
        "fig5" => scaling(
            Arch::GraphSage { hidden: 256 },
            Workload::Papers,
            &papers_worlds,
            cfg,
        ),
        "fig6" => scaling(
            Arch::Gat {
                head_dim: 128,
                heads: 4,
            },
            Workload::Papers,
            &papers_worlds,
            cfg,
        ),
        "ablation-prefetch" => vec![ablation_prefetch(cfg)],
        "ablation-softmax" => vec![ablation_softmax(cfg)],
        "ablation-partition" => vec![ablation_partition(cfg)],
        "exactness" => vec![exactness(cfg)],
        other => {
            eprintln!("unknown experiment: {other}");
            std::process::exit(2);
        }
    };
    for t in tables {
        t.print();
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: repro <experiment|all> [flags] — see crate docs");
        std::process::exit(2);
    }
    let (cfg, worlds) = parse_flags(&args[1..]);
    eprintln!(
        "[repro] products-like n={}, papers-like n={}, epochs={}, timing-epochs={}, bw-scale={}",
        cfg.products_nodes, cfg.papers_nodes, cfg.epochs, cfg.timing_epochs, cfg.bandwidth_scale
    );
    if args[0] == "all" {
        for name in [
            "table1",
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "ablation-prefetch",
            "ablation-softmax",
            "ablation-partition",
            "exactness",
        ] {
            eprintln!("[repro] running {name} ...");
            run(name, &cfg, worlds.as_deref());
        }
    } else {
        run(&args[0], &cfg, worlds.as_deref());
    }
}
