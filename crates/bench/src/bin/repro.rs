//! Regenerates every table and figure of the SAR paper.
//!
//! ```text
//! repro <experiment> [flags]
//!
//! experiments:
//!   table1              dataset stats + final accuracies
//!   fig2                single-host fused attention kernels
//!   fig3 | fig4         GraphSage | GAT scaling on products-like
//!   fig5 | fig6         GraphSage | GAT scaling on papers-like
//!   ablation-prefetch   2/N vs 3/N memory (§3.4)
//!   ablation-softmax    stable vs naive online softmax (§3.4)
//!   ablation-partition  partitioner quality vs comm volume
//!   exactness           SAR results independent of worker count
//!   smoke               CI gate: scaled-down 4-worker Sage + GAT runs;
//!                       writes per-worker RunReport JSON (--out DIR) and
//!                       exits non-zero on NaN loss or a ledger-invariant
//!                       violation (Sage backward must add zero fetch
//!                       bytes; GAT must re-fetch what the forward fetched)
//!   all                 everything above except smoke
//!
//! flags:
//!   --products-nodes N   products-like size     (default 4000)
//!   --papers-nodes N     papers-like size       (default 8000)
//!   --epochs N           accuracy-run epochs    (default 40)
//!   --timing-epochs N    timing-run epochs      (default 3)
//!   --bw-scale X         bandwidth down-scale   (default 100)
//!   --mem-budget-products-mib X  OOM budget, Figs. 3/4 (default 512)
//!   --mem-budget-papers-mib X    OOM budget, Figs. 5/6 (default 48)
//!   --worlds A,B,C       worker counts override
//!   --out DIR            RunReport JSON output directory (smoke only)
//!   --seed N             RNG seed               (default 0)
//! ```

use sar_bench::experiments::{
    ablation_partition, ablation_prefetch, ablation_softmax, exactness, fig2, scaling, table1,
    ExpConfig, Workload,
};
use sar_bench::report::{mib, RunReport, Table};
use sar_core::{train, Arch, Mode, ModelConfig, TrainConfig};
use sar_graph::datasets;
use sar_nn::LrSchedule;
use sar_partition::multilevel;

fn parse_flags(args: &[String]) -> (ExpConfig, Option<Vec<usize>>, Option<String>) {
    let mut cfg = ExpConfig::default();
    let mut worlds = None;
    let mut out = None;
    let mut i = 0;
    while i < args.len() {
        let key = args[i].as_str();
        let value = args.get(i + 1).cloned();
        let mut take = |name: &str| -> Option<String> {
            if key == name {
                i += 1;
                Some(value.clone().unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    std::process::exit(2);
                }))
            } else {
                None
            }
        };
        if let Some(v) = take("--products-nodes") {
            cfg.products_nodes = v.parse().expect("--products-nodes");
        } else if let Some(v) = take("--papers-nodes") {
            cfg.papers_nodes = v.parse().expect("--papers-nodes");
        } else if let Some(v) = take("--epochs") {
            cfg.epochs = v.parse().expect("--epochs");
        } else if let Some(v) = take("--timing-epochs") {
            cfg.timing_epochs = v.parse().expect("--timing-epochs");
        } else if let Some(v) = take("--bw-scale") {
            cfg.bandwidth_scale = v.parse().expect("--bw-scale");
        } else if let Some(v) = take("--mem-budget-products-mib") {
            cfg.mem_budget_products_mib = v.parse().expect("--mem-budget-products-mib");
        } else if let Some(v) = take("--mem-budget-papers-mib") {
            cfg.mem_budget_papers_mib = v.parse().expect("--mem-budget-papers-mib");
        } else if let Some(v) = take("--worlds") {
            worlds = Some(v.split(',').map(|x| x.parse().expect("--worlds")).collect());
        } else if let Some(v) = take("--out") {
            out = Some(v);
        } else if let Some(v) = take("--seed") {
            cfg.seed = v.parse().expect("--seed");
        } else {
            eprintln!("unknown flag: {key}");
            std::process::exit(2);
        }
        i += 1;
    }
    (cfg, worlds, out)
}

// ----------------------------------------------------------------------
// `smoke` — the CI gate
// ----------------------------------------------------------------------

/// Scaled-down 4-worker GraphSage and GAT training runs whose
/// observability ledgers are checked against the paper's communication
/// claims. Returns the violations found (empty = gate passes).
fn smoke(cfg: &ExpConfig, out_dir: Option<&str>) -> Vec<String> {
    const WORLD: usize = 4;
    const EPOCHS: usize = 3;
    let nodes = cfg.products_nodes.min(1500);
    let dataset = datasets::products_like(nodes, cfg.seed);
    let part = multilevel(&dataset.graph, WORLD, cfg.seed);
    let mut violations = Vec::new();

    if let Some(dir) = out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("[repro] cannot create {dir}: {e}");
            std::process::exit(2);
        }
    }

    let runs: [(&str, &str, &str, Arch, Mode); 2] = [
        (
            "smoke-sage",
            "sage",
            "sar",
            Arch::GraphSage { hidden: 64 },
            Mode::Sar,
        ),
        (
            "smoke-gat",
            "gat",
            "sar-fak",
            Arch::Gat {
                head_dim: 16,
                heads: 4,
            },
            Mode::SarFused,
        ),
    ];
    for (exp, arch_name, mode_name, arch, mode) in runs {
        let tcfg = TrainConfig {
            model: ModelConfig {
                arch,
                mode,
                layers: 3,
                in_dim: 0,
                num_classes: dataset.num_classes,
                dropout: 0.3,
                batch_norm: true,
                jumping_knowledge: false,
                seed: cfg.seed,
            },
            epochs: EPOCHS,
            lr: 0.01,
            schedule: LrSchedule::Constant,
            label_aug: true,
            aug_frac: 0.5,
            // No Correct & Smooth: its propagation rounds would fold extra
            // fetch traffic into the forward-fetch ledger and blur the
            // forward/backward volume comparison below.
            cs: None,
            prefetch: false,
            seed: cfg.seed,
        };
        eprintln!("[repro] smoke: training {arch_name}/{mode_name} on {WORLD} workers ...");
        let run = train(&dataset, &part, cfg.cost_model(), &tcfg);
        let report = RunReport::from_train(exp, arch_name, mode_name, &run);

        let mut t = Table::new(
            format!("smoke — {arch_name} per-worker ledger (MiB received)"),
            &[
                "rank",
                "fwd fetch",
                "bwd refetch",
                "grad routing",
                "collective",
                "peak MiB",
            ],
        );
        for w in &report.workers {
            t.row(vec![
                w.rank.to_string(),
                mib(w.phase_sum("forward_fetch", |p| p.recv_bytes) as usize),
                mib(w.phase_sum("backward_refetch", |p| p.recv_bytes) as usize),
                mib(w.phase_sum("grad_routing", |p| p.recv_bytes) as usize),
                mib(w.phase_sum("collective", |p| p.recv_bytes) as usize),
                mib(w.steady_peak_bytes),
            ]);
        }
        t.print();

        if report.has_non_finite_loss() {
            violations.push(format!(
                "{exp}: non-finite training loss {:?}",
                report.losses
            ));
        }
        for w in &report.workers {
            let fwd = w.phase_sum("forward_fetch", |p| p.recv_bytes);
            let refetch_recv = w.phase_sum("backward_refetch", |p| p.recv_bytes);
            let refetch_sent = w.phase_sum("backward_refetch", |p| p.sent_bytes);
            if fwd == 0 {
                violations.push(format!("{exp}: rank {} fetched zero forward bytes", w.rank));
            }
            match arch_name {
                // Case 1: the backward pass must add no fetch traffic.
                "sage" => {
                    if refetch_recv + refetch_sent != 0 {
                        violations.push(format!(
                            "{exp}: rank {} sage backward refetched {refetch_recv}B recv / \
                             {refetch_sent}B sent (expected 0)",
                            w.rank
                        ));
                    }
                }
                // Case 2: each of the EPOCHS backward passes re-fetches
                // exactly what one of the EPOCHS+1 forward passes (the
                // extra one is evaluation) fetched.
                _ => {
                    let expected = fwd as f64 * EPOCHS as f64 / (EPOCHS + 1) as f64;
                    let rel = (refetch_recv as f64 - expected).abs() / expected.max(1.0);
                    if refetch_recv == 0 || rel > 0.02 {
                        violations.push(format!(
                            "{exp}: rank {} gat refetched {refetch_recv}B, expected ~{expected:.0}B \
                             (rel err {rel:.4})",
                            w.rank
                        ));
                    }
                }
            }
        }

        if let Some(dir) = out_dir {
            let path = format!("{dir}/{exp}.json");
            match report.write_json(&path) {
                Ok(()) => eprintln!("[repro] wrote {path}"),
                Err(e) => violations.push(format!("{exp}: cannot write {path}: {e}")),
            }
        }
    }
    violations
}

fn run(name: &str, cfg: &ExpConfig, worlds: Option<&[usize]>) {
    let products_worlds = worlds.unwrap_or(&[4, 8, 16]).to_vec();
    let papers_worlds = worlds.unwrap_or(&[32, 64, 128]).to_vec();
    let tables = match name {
        "table1" => table1(cfg),
        "fig2" => fig2(cfg),
        "fig3" => scaling(
            Arch::GraphSage { hidden: 256 },
            Workload::Products,
            &products_worlds,
            cfg,
        ),
        "fig4" => scaling(
            Arch::Gat {
                head_dim: 128,
                heads: 4,
            },
            Workload::Products,
            &products_worlds,
            cfg,
        ),
        "fig5" => scaling(
            Arch::GraphSage { hidden: 256 },
            Workload::Papers,
            &papers_worlds,
            cfg,
        ),
        "fig6" => scaling(
            Arch::Gat {
                head_dim: 128,
                heads: 4,
            },
            Workload::Papers,
            &papers_worlds,
            cfg,
        ),
        "ablation-prefetch" => vec![ablation_prefetch(cfg)],
        "ablation-softmax" => vec![ablation_softmax(cfg)],
        "ablation-partition" => vec![ablation_partition(cfg)],
        "exactness" => vec![exactness(cfg)],
        other => {
            eprintln!("unknown experiment: {other}");
            std::process::exit(2);
        }
    };
    for t in tables {
        t.print();
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: repro <experiment|all> [flags] — see crate docs");
        std::process::exit(2);
    }
    let (cfg, worlds, out) = parse_flags(&args[1..]);
    eprintln!(
        "[repro] products-like n={}, papers-like n={}, epochs={}, timing-epochs={}, bw-scale={}",
        cfg.products_nodes, cfg.papers_nodes, cfg.epochs, cfg.timing_epochs, cfg.bandwidth_scale
    );
    if args[0] == "smoke" {
        let violations = smoke(&cfg, out.as_deref());
        if violations.is_empty() {
            eprintln!("[repro] smoke: all ledger invariants hold");
        } else {
            for v in &violations {
                eprintln!("[repro] smoke VIOLATION: {v}");
            }
            std::process::exit(1);
        }
        return;
    }
    if args[0] == "all" {
        for name in [
            "table1",
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "ablation-prefetch",
            "ablation-softmax",
            "ablation-partition",
            "exactness",
        ] {
            eprintln!("[repro] running {name} ...");
            run(name, &cfg, worlds.as_deref());
        }
    } else {
        run(&args[0], &cfg, worlds.as_deref());
    }
}
