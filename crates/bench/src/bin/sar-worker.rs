//! `sar-worker` — one OS process per rank for real TCP training runs.
//!
//! ```text
//! sar-worker --spawn-local N [workload flags]      # launcher mode
//! sar-worker --rank R --world N --rendezvous-file PATH [workload flags]
//!
//! workload flags (identical on every rank — each process rebuilds the
//! dataset, partitioning and model deterministically from them):
//!   --dataset products|papers    synthetic stand-in        (products)
//!   --nodes N                    stand-in size             (1500)
//!   --arch sage|gcn|gat          model architecture        (sage)
//!   --hidden N                   hidden size / GAT head dim (64)
//!   --heads N                    GAT attention heads       (4)
//!   --mode sar|sar-fak|dp        execution mode            (sar)
//!   --layers N                   GNN depth                 (3)
//!   --jk                         jumping-knowledge skips
//!   --epochs N                   training epochs           (3)
//!   --lr X                       base learning rate        (0.01)
//!   --dropout X                  dropout probability       (0.3)
//!   --no-label-aug               disable masked label prediction
//!   --aug-frac X                 label-augmentation fraction (0.5)
//!   --cs                         Correct & Smooth post-processing
//!   --prefetch-depth K           fetch pipeline depth: (K+2)/N memory,
//!                                0 = sequential, 1 = paper's 3/N (0)
//!   --partitioner ml|random|range|bfs               (ml)
//!   --schedule constant|step     learning-rate schedule (constant)
//!   --seed N                                        (0)
//!   --threads N                  intra-worker kernel threads (1);
//!                                results are bitwise identical
//!                                across thread counts
//!   --simd auto|scalar           SIMD dispatch mode (auto); results
//!                                are bitwise identical across modes
//!   --codec raw|f16|bf16|int8|delta
//!                                wire codec for compressible payloads
//!                                (raw); negotiated at the rendezvous,
//!                                so every rank must agree
//!   --protocol exact|gradonly|stale:<r>
//!                                exchange protocol (exact); approximate
//!                                protocols trade accuracy for wire
//!                                volume, evaluation always runs exact
//!
//! rank-0-only outputs:
//!   --experiment NAME            report label       (<arch>-<mode>)
//!   --out PATH                   write the gathered RunReport JSON
//!   --check smoke                apply the smoke ledger invariants to
//!                                the gathered report; exit 1 on any
//!                                violation
//!   --digest-out PATH            write the run's determinism digest
//!                                (losses + per-worker byte ledgers) for
//!                                cross-thread-count parity checks
//!   --overlap-out PATH           write the per-phase blocked-vs-wall
//!                                overlap summary JSON (the fragment
//!                                repro embeds into BENCH_overlap.json)
//!
//! other:
//!   --rendezvous-timeout-secs N  poll budget for the rendezvous file (60)
//! ```
//!
//! In `--spawn-local N` mode the binary re-execs itself once per rank
//! (via `std::env::current_exe`), wires the ranks together through a
//! fresh rendezvous file in the temp directory, waits for all children,
//! and exits non-zero if any rank does. Rank 0 gathers every rank's
//! per-phase communication ledger over the data plane after training and
//! assembles the same `RunReport` JSON the simulated backend writes.

use std::time::Duration;

use sar_bench::distrun::{run_rank, RankOpts, Workload};
use sar_bench::{launcher, smoke};

struct Cli {
    spawn_local: Option<usize>,
    rank: Option<usize>,
    world: Option<usize>,
    rendezvous_file: Option<std::path::PathBuf>,
    rendezvous_timeout: Duration,
    experiment: Option<String>,
    out: Option<String>,
    check: Option<String>,
    digest_out: Option<String>,
    overlap_out: Option<String>,
    workload: Workload,
}

fn fail(msg: &str) -> ! {
    eprintln!("sar-worker: {msg}");
    std::process::exit(2);
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        spawn_local: None,
        rank: None,
        world: None,
        rendezvous_file: None,
        rendezvous_timeout: Duration::from_secs(60),
        experiment: None,
        out: None,
        check: None,
        digest_out: None,
        overlap_out: None,
        workload: Workload::default(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let mut value = || -> String {
            i += 1;
            argv.get(i)
                .cloned()
                .unwrap_or_else(|| fail(&format!("missing value for {flag}")))
        };
        let w = &mut cli.workload;
        match flag {
            "--spawn-local" => {
                cli.spawn_local = Some(value().parse().unwrap_or_else(|_| fail("--spawn-local")))
            }
            "--rank" => cli.rank = Some(value().parse().unwrap_or_else(|_| fail("--rank"))),
            "--world" => cli.world = Some(value().parse().unwrap_or_else(|_| fail("--world"))),
            "--rendezvous-file" => cli.rendezvous_file = Some(value().into()),
            "--rendezvous-timeout-secs" => {
                cli.rendezvous_timeout = Duration::from_secs(
                    value()
                        .parse()
                        .unwrap_or_else(|_| fail("--rendezvous-timeout-secs")),
                )
            }
            "--experiment" => cli.experiment = Some(value()),
            "--out" => cli.out = Some(value()),
            "--check" => cli.check = Some(value()),
            "--digest-out" => cli.digest_out = Some(value()),
            "--overlap-out" => cli.overlap_out = Some(value()),
            "--dataset" => w.dataset = value(),
            "--nodes" => w.nodes = value().parse().unwrap_or_else(|_| fail("--nodes")),
            "--arch" => w.arch = value(),
            "--hidden" => w.hidden = value().parse().unwrap_or_else(|_| fail("--hidden")),
            "--heads" => w.heads = value().parse().unwrap_or_else(|_| fail("--heads")),
            "--mode" => w.mode = value(),
            "--layers" => w.layers = value().parse().unwrap_or_else(|_| fail("--layers")),
            "--jk" => w.jk = true,
            "--epochs" => w.epochs = value().parse().unwrap_or_else(|_| fail("--epochs")),
            "--lr" => w.lr = value().parse().unwrap_or_else(|_| fail("--lr")),
            "--dropout" => w.dropout = value().parse().unwrap_or_else(|_| fail("--dropout")),
            "--no-label-aug" => w.label_aug = false,
            "--aug-frac" => w.aug_frac = value().parse().unwrap_or_else(|_| fail("--aug-frac")),
            "--cs" => w.cs = true,
            "--prefetch-depth" => {
                w.prefetch_depth = value().parse().unwrap_or_else(|_| fail("--prefetch-depth"))
            }
            "--partitioner" => w.partitioner = value(),
            "--schedule" => w.schedule = value(),
            "--seed" => w.seed = value().parse().unwrap_or_else(|_| fail("--seed")),
            "--threads" => w.threads = value().parse().unwrap_or_else(|_| fail("--threads")),
            "--simd" => w.simd = value(),
            "--codec" => w.codec = value(),
            "--protocol" => w.protocol = value(),
            "--mem-budget" => {
                w.mem_budget = value().parse().unwrap_or_else(|_| fail("--mem-budget"))
            }
            "--help" | "-h" => {
                eprintln!("see the doc comment at the top of crates/bench/src/bin/sar-worker.rs");
                std::process::exit(0);
            }
            other => fail(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    if let Some(check) = &cli.check {
        if check != "smoke" {
            fail(&format!("unknown --check {check} (only: smoke)"));
        }
    }
    cli
}

/// `--spawn-local N`: re-exec this binary once per rank and wait.
fn spawn_local(n: usize, cli: &Cli) -> ! {
    if n == 0 {
        fail("--spawn-local needs at least one rank");
    }
    let exe = std::env::current_exe()
        .unwrap_or_else(|e| fail(&format!("cannot locate own executable: {e}")));
    let mut args = cli.workload.to_args();
    args.extend([
        "--rendezvous-timeout-secs".to_string(),
        cli.rendezvous_timeout.as_secs().to_string(),
    ]);
    if let Some(exp) = &cli.experiment {
        args.extend(["--experiment".to_string(), exp.clone()]);
    }
    if let Some(out) = &cli.out {
        args.extend(["--out".to_string(), out.clone()]);
    }
    if let Some(check) = &cli.check {
        args.extend(["--check".to_string(), check.clone()]);
    }
    if let Some(digest) = &cli.digest_out {
        args.extend(["--digest-out".to_string(), digest.clone()]);
    }
    if let Some(overlap) = &cli.overlap_out {
        args.extend(["--overlap-out".to_string(), overlap.clone()]);
    }
    eprintln!(
        "[sar-worker] spawning {n} local rank processes ({} / {} on {} nodes) ...",
        cli.workload.arch, cli.workload.mode, cli.workload.nodes
    );
    match launcher::spawn_ranks(&exe, n, &args) {
        Ok(()) => {
            eprintln!("[sar-worker] all {n} ranks completed");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("[sar-worker] launch failed: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let cli = parse_cli();
    if let Some(n) = cli.spawn_local {
        if cli.rank.is_some() || cli.rendezvous_file.is_some() {
            fail("--spawn-local is exclusive with --rank/--rendezvous-file");
        }
        spawn_local(n, &cli);
    }

    let rank = cli
        .rank
        .unwrap_or_else(|| fail("--rank is required (or use --spawn-local N)"));
    let world = cli.world.unwrap_or_else(|| fail("--world is required"));
    let rendezvous_file = cli
        .rendezvous_file
        .clone()
        .unwrap_or_else(|| fail("--rendezvous-file is required"));
    let experiment = cli
        .experiment
        .clone()
        .unwrap_or_else(|| format!("{}-{}", cli.workload.arch, cli.workload.mode));
    let opts = RankOpts {
        rank,
        world,
        rendezvous_file,
        rendezvous_timeout: cli.rendezvous_timeout,
        experiment,
    };

    match run_rank(&opts, &cli.workload) {
        Ok(None) => {} // ranks 1..N: results were shipped to rank 0
        Ok(Some(report)) => {
            smoke::ledger_table(&report).print();
            println!(
                "losses {:?} | val {:.2}% | test {:.2}%",
                report.losses,
                100.0 * report.val_acc,
                100.0 * report.test_acc
            );
            if let Some(path) = &cli.out {
                if let Some(dir) = std::path::Path::new(path).parent() {
                    if !dir.as_os_str().is_empty() {
                        std::fs::create_dir_all(dir).unwrap_or_else(|e| {
                            fail(&format!("cannot create {}: {e}", dir.display()))
                        });
                    }
                }
                report
                    .write_json(path)
                    .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
                eprintln!("[sar-worker] wrote {path}");
            }
            if let Some(path) = &cli.digest_out {
                std::fs::write(path, report.parity_digest())
                    .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
                eprintln!("[sar-worker] wrote digest {path}");
            }
            if let Some(path) = &cli.overlap_out {
                std::fs::write(path, report.overlap_json())
                    .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
                eprintln!("[sar-worker] wrote overlap summary {path}");
            }
            if cli.check.as_deref() == Some("smoke") {
                let violations = smoke::violations(&report, cli.workload.epochs);
                if !violations.is_empty() {
                    for v in &violations {
                        eprintln!("[sar-worker] smoke VIOLATION: {v}");
                    }
                    std::process::exit(1);
                }
                eprintln!("[sar-worker] smoke: all ledger invariants hold over TCP");
            }
            if report.has_non_finite_loss() {
                eprintln!("sar-worker: training diverged (non-finite loss)");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("sar-worker: {e}");
            std::process::exit(1);
        }
    }
}
