//! `sar-serve` — one OS process per rank for a resident serving cluster.
//!
//! ```text
//! sar-serve --spawn-local N [flags]                # launcher mode
//! sar-serve --rank R --world N --rendezvous-file PATH [flags]
//!
//! workload flags (identical on every rank — each process rebuilds the
//! dataset, partitioning and model deterministically from them; the
//! vocabulary is shared with sar-worker, and training-only flags are
//! accepted and ignored so one flag list can drive both binaries):
//!   --dataset products|papers    synthetic stand-in        (products)
//!   --nodes N                    stand-in size             (1500)
//!   --arch sage|gcn|gat          model architecture        (sage)
//!   --hidden N                   hidden size / GAT head dim (64)
//!   --heads N                    GAT attention heads       (4)
//!   --mode sar|sar-fak           execution mode            (sar)
//!   --layers N                   GNN depth                 (3)
//!   --no-label-aug               disable masked label prediction
//!   --partitioner ml|random|range|bfs               (ml)
//!   --seed N                                        (0)
//!   --threads N                  intra-rank kernel threads (1)
//!   --simd auto|scalar           SIMD dispatch mode (auto)
//!
//! serving flags:
//!   --checkpoint PATH            parameter checkpoint every rank loads
//!                                (also the engine's reload source);
//!                                without it, the seeded deterministic
//!                                initialization is served
//!   --client-addr-file PATH      rank 0 publishes its client listener
//!                                address here (atomic rename)
//!   --max-batch N                front-end query coalescing bound (32)
//!   --max-delay-us N             coalescing delay, microseconds (2000)
//!   --queue-cap N                bounded job-queue depth        (256)
//!   --cache-rows N               per-rank embedding-cache rows  (4096)
//!
//! other:
//!   --rendezvous-timeout-secs N  poll budget for the rendezvous file (60)
//! ```
//!
//! Serving always runs with dropout 0 and batch normalization off (see
//! `sar_bench::serverun`); `--jk` is rejected by the engine because
//! jumping knowledge needs every layer over every node, defeating the
//! MFG restriction. Rank 0 prints the front-end summary on exit; the
//! cluster leaves when a client sends the Shutdown opcode.

use std::time::Duration;

use sar_bench::distrun::Workload;
use sar_bench::launcher;
use sar_bench::serverun::{run_serve_rank, ServeRankOpts};
use sar_serve::ServerConfig;

struct Cli {
    spawn_local: Option<usize>,
    rank: Option<usize>,
    world: Option<usize>,
    rendezvous_file: Option<std::path::PathBuf>,
    rendezvous_timeout: Duration,
    checkpoint: Option<std::path::PathBuf>,
    client_addr_file: Option<std::path::PathBuf>,
    server: ServerConfig,
    cache_rows: usize,
    workload: Workload,
}

fn fail(msg: &str) -> ! {
    eprintln!("sar-serve: {msg}");
    std::process::exit(2);
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        spawn_local: None,
        rank: None,
        world: None,
        rendezvous_file: None,
        rendezvous_timeout: Duration::from_secs(60),
        checkpoint: None,
        client_addr_file: None,
        server: ServerConfig::default(),
        cache_rows: 4096,
        workload: Workload::default(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let mut value = || -> String {
            i += 1;
            argv.get(i)
                .cloned()
                .unwrap_or_else(|| fail(&format!("missing value for {flag}")))
        };
        let w = &mut cli.workload;
        match flag {
            "--spawn-local" => {
                cli.spawn_local = Some(value().parse().unwrap_or_else(|_| fail("--spawn-local")))
            }
            "--rank" => cli.rank = Some(value().parse().unwrap_or_else(|_| fail("--rank"))),
            "--world" => cli.world = Some(value().parse().unwrap_or_else(|_| fail("--world"))),
            "--rendezvous-file" => cli.rendezvous_file = Some(value().into()),
            "--rendezvous-timeout-secs" => {
                cli.rendezvous_timeout = Duration::from_secs(
                    value()
                        .parse()
                        .unwrap_or_else(|_| fail("--rendezvous-timeout-secs")),
                )
            }
            "--checkpoint" => cli.checkpoint = Some(value().into()),
            "--client-addr-file" => cli.client_addr_file = Some(value().into()),
            "--max-batch" => {
                cli.server.max_batch = value().parse().unwrap_or_else(|_| fail("--max-batch"))
            }
            "--max-delay-us" => {
                cli.server.max_delay = Duration::from_micros(
                    value().parse().unwrap_or_else(|_| fail("--max-delay-us")),
                )
            }
            "--queue-cap" => {
                cli.server.queue_cap = value().parse().unwrap_or_else(|_| fail("--queue-cap"))
            }
            "--cache-rows" => {
                cli.cache_rows = value().parse().unwrap_or_else(|_| fail("--cache-rows"))
            }
            "--dataset" => w.dataset = value(),
            "--nodes" => w.nodes = value().parse().unwrap_or_else(|_| fail("--nodes")),
            "--arch" => w.arch = value(),
            "--hidden" => w.hidden = value().parse().unwrap_or_else(|_| fail("--hidden")),
            "--heads" => w.heads = value().parse().unwrap_or_else(|_| fail("--heads")),
            "--mode" => w.mode = value(),
            "--layers" => w.layers = value().parse().unwrap_or_else(|_| fail("--layers")),
            "--jk" => w.jk = true,
            "--no-label-aug" => w.label_aug = false,
            "--partitioner" => w.partitioner = value(),
            "--seed" => w.seed = value().parse().unwrap_or_else(|_| fail("--seed")),
            "--threads" => w.threads = value().parse().unwrap_or_else(|_| fail("--threads")),
            "--simd" => w.simd = value(),
            // Training-only workload flags, accepted for vocabulary
            // parity with sar-worker and ignored by serving.
            "--epochs" | "--lr" | "--dropout" | "--aug-frac" | "--schedule"
            | "--prefetch-depth" | "--codec" | "--protocol" | "--mem-budget" => {
                let _ = value();
            }
            "--cs" => {}
            "--help" | "-h" => {
                eprintln!("see the doc comment at the top of crates/bench/src/bin/sar-serve.rs");
                std::process::exit(0);
            }
            other => fail(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    cli
}

/// `--spawn-local N`: re-exec this binary once per rank and wait. The
/// cluster then serves until a client requests shutdown, so this mode is
/// only useful together with `--client-addr-file` and an external client.
fn spawn_local(n: usize, cli: &Cli) -> ! {
    if n == 0 {
        fail("--spawn-local needs at least one rank");
    }
    let exe = std::env::current_exe()
        .unwrap_or_else(|e| fail(&format!("cannot locate own executable: {e}")));
    let mut args = cli.workload.to_args();
    args.extend([
        "--rendezvous-timeout-secs".to_string(),
        cli.rendezvous_timeout.as_secs().to_string(),
        "--max-batch".to_string(),
        cli.server.max_batch.to_string(),
        "--max-delay-us".to_string(),
        cli.server.max_delay.as_micros().to_string(),
        "--queue-cap".to_string(),
        cli.server.queue_cap.to_string(),
        "--cache-rows".to_string(),
        cli.cache_rows.to_string(),
    ]);
    if let Some(path) = &cli.checkpoint {
        args.extend(["--checkpoint".to_string(), path.display().to_string()]);
    }
    if let Some(path) = &cli.client_addr_file {
        args.extend(["--client-addr-file".to_string(), path.display().to_string()]);
    }
    eprintln!(
        "[sar-serve] spawning {n} local rank processes ({} / {} on {} nodes) ...",
        cli.workload.arch, cli.workload.mode, cli.workload.nodes
    );
    match launcher::spawn_ranks(&exe, n, &args) {
        Ok(()) => {
            eprintln!("[sar-serve] all {n} ranks completed");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("[sar-serve] launch failed: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let cli = parse_cli();
    if let Some(n) = cli.spawn_local {
        if cli.rank.is_some() || cli.rendezvous_file.is_some() {
            fail("--spawn-local is exclusive with --rank/--rendezvous-file");
        }
        spawn_local(n, &cli);
    }

    let rank = cli
        .rank
        .unwrap_or_else(|| fail("--rank is required (or use --spawn-local N)"));
    let world = cli.world.unwrap_or_else(|| fail("--world is required"));
    let rendezvous_file = cli
        .rendezvous_file
        .clone()
        .unwrap_or_else(|| fail("--rendezvous-file is required"));
    let opts = ServeRankOpts {
        rank,
        world,
        rendezvous_file,
        rendezvous_timeout: cli.rendezvous_timeout,
        checkpoint: cli.checkpoint.clone(),
        client_addr_file: cli.client_addr_file.clone(),
        server: cli.server.clone(),
        cache_rows: cli.cache_rows,
    };

    match run_serve_rank(&opts, &cli.workload) {
        Ok(None) => {} // ranks 1..N: quiesced after the shutdown barrier
        Ok(Some(summary)) => {
            let s = &summary.stats;
            println!(
                "connections {} | requests {} | batches {} | queries {} | \
                 fetch {} B (full-forward ceiling {} B/batch) | cache {}h/{}m",
                summary.connections,
                summary.requests,
                s.batches,
                s.queries,
                s.fetch_bytes,
                s.full_forward_bytes,
                s.cache_hits,
                s.cache_misses
            );
        }
        Err(e) => {
            eprintln!("sar-serve: {e}");
            std::process::exit(1);
        }
    }
}
