//! Multi-process launching: one OS process per rank, rendezvoused
//! through a file.
//!
//! The TCP transport ([`sar_comm::TcpTransport`]) needs every rank to
//! know rank 0's rendezvous address before any socket exists. Between
//! processes on one machine the simplest reliable channel is the
//! filesystem: rank 0 binds `127.0.0.1:0` (an ephemeral port — nothing
//! is hard-coded, so parallel launches never collide), writes the
//! resulting `host:port` to a rendezvous file with an atomic
//! temp-file-plus-rename, and the other ranks poll for the file. The
//! launcher itself ([`spawn_ranks`]) execs one copy of the `sar-worker`
//! binary per rank with `--rank`/`--world`/`--rendezvous-file` prepended
//! to the shared workload flags, waits for all of them, and reports any
//! non-zero exits.

use std::io;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Writes `addr` to the rendezvous file atomically (temp file in the
/// same directory, then rename), so a polling reader never observes a
/// partial write.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_rendezvous_addr(path: &Path, addr: &SocketAddr) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, addr.to_string())?;
    std::fs::rename(&tmp, path)
}

/// Polls for the rendezvous file until it appears (with content) or
/// `timeout` elapses, returning the `host:port` string rank 0 wrote.
///
/// # Errors
///
/// Returns a message naming the file and the timeout if it never
/// appears — a sibling rank that fails before binding its listener must
/// surface as a clean error here, not a hang.
pub fn read_rendezvous_addr(path: &Path, timeout: Duration) -> Result<String, String> {
    let deadline = Instant::now() + timeout;
    loop {
        if let Ok(s) = std::fs::read_to_string(path) {
            let s = s.trim();
            if !s.is_empty() {
                return Ok(s.to_string());
            }
        }
        if Instant::now() >= deadline {
            return Err(format!(
                "rendezvous file {} did not appear within {:?} (did rank 0 start?)",
                path.display(),
                timeout
            ));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// A fresh rendezvous-file path in the system temp directory, unique per
/// process and per call so repeated launches never reuse a stale file.
pub fn temp_rendezvous_path() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "sar-rendezvous-{}-{}.addr",
        std::process::id(),
        seq
    ))
}

/// Locates a sibling binary (e.g. `sar-worker`) in the directory of the
/// currently running executable — all workspace binaries land in the
/// same `target/<profile>/` directory.
///
/// # Errors
///
/// Returns a message with the build command to run if the binary is
/// missing (e.g. `repro` was built alone without `--bins`).
pub fn sibling_binary(name: &str) -> Result<PathBuf, String> {
    let me = std::env::current_exe().map_err(|e| format!("cannot locate own executable: {e}"))?;
    let dir = me
        .parent()
        .ok_or_else(|| format!("{} has no parent directory", me.display()))?;
    let exe = dir.join(format!("{name}{}", std::env::consts::EXE_SUFFIX));
    if exe.is_file() {
        Ok(exe)
    } else {
        Err(format!(
            "{} not found next to {}; build it with `cargo build --release -p sar-bench --bins`",
            exe.display(),
            me.display()
        ))
    }
}

/// Spawns `world` copies of `exe`, one OS process per rank, each with
/// `--rank R --world N --rendezvous-file PATH` prepended to
/// `common_args`, and waits for all of them. Children inherit
/// stdout/stderr. The rendezvous file is created and cleaned up here.
///
/// # Errors
///
/// Returns a message listing every rank that failed to spawn or exited
/// non-zero. All children are always waited on, so no zombies remain
/// even when some ranks fail.
pub fn spawn_ranks(exe: &Path, world: usize, common_args: &[String]) -> Result<(), String> {
    assert!(world > 0, "cannot launch a zero-rank cluster");
    let rendezvous = temp_rendezvous_path();
    let _ = std::fs::remove_file(&rendezvous);

    let mut children = Vec::with_capacity(world);
    let mut failures = Vec::new();
    for rank in 0..world {
        let mut cmd = Command::new(exe);
        cmd.arg("--rank")
            .arg(rank.to_string())
            .arg("--world")
            .arg(world.to_string())
            .arg("--rendezvous-file")
            .arg(&rendezvous)
            .args(common_args);
        match cmd.spawn() {
            Ok(child) => children.push((rank, child)),
            Err(e) => failures.push(format!("rank {rank}: spawn failed: {e}")),
        }
    }
    for (rank, mut child) in children {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => failures.push(format!("rank {rank} exited with {status}")),
            Err(e) => failures.push(format!("rank {rank}: wait failed: {e}")),
        }
    }
    let _ = std::fs::remove_file(&rendezvous);
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{IpAddr, Ipv4Addr};

    #[test]
    fn rendezvous_file_round_trips_atomically() {
        let path = temp_rendezvous_path();
        let addr = SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), 43210);
        write_rendezvous_addr(&path, &addr).unwrap();
        let read = read_rendezvous_addr(&path, Duration::from_secs(1)).unwrap();
        assert_eq!(read, "127.0.0.1:43210");
        // The temp file must not linger next to the real one.
        assert!(!path.with_extension("tmp").exists());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_rendezvous_file_times_out_with_context() {
        let path = temp_rendezvous_path();
        let err = read_rendezvous_addr(&path, Duration::from_millis(50)).unwrap_err();
        assert!(err.contains("rendezvous file"), "unhelpful error: {err}");
        assert!(
            err.contains("rank 0"),
            "error should hint at the cause: {err}"
        );
    }

    #[test]
    fn temp_paths_are_unique_per_call() {
        assert_ne!(temp_rendezvous_path(), temp_rendezvous_path());
    }

    #[test]
    fn sibling_binary_reports_missing_with_build_hint() {
        let err = sibling_binary("definitely-not-a-real-binary").unwrap_err();
        assert!(err.contains("cargo build"), "no build hint in: {err}");
    }
}
