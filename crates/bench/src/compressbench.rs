//! `repro compressbench` — the codec/protocol ablation with a committed,
//! CI-gated `BENCH_compress.json`.
//!
//! Trains the scaled-down smoke workloads across a fixed grid of
//! `{wire codec} × {exchange protocol}` combinations and records, per
//! run, the accuracy outcome plus the *logical* (raw-f32) and *wire*
//! (post-codec) byte volumes of the fetch and gradient-routing phases.
//! Simulated runs train in-process; the TCP subset spawns one
//! `sar-worker` OS process per rank over loopback and reads back the
//! gathered `RunReport` JSON, so the negotiated wire path is measured
//! end to end.
//!
//! Following the `BENCH_kernels.json` precedent, the committed artifact
//! is never compared on timing magnitudes — epoch times are recorded for
//! human eyes only. The gate checks *structure and invariants*, on both
//! the fresh and the committed report:
//!
//! * schema and run-set identity (a mismatch means the artifact is
//!   stale — regenerate with `repro compressbench --out`),
//! * `raw` moves exactly its logical volume (wire == logical),
//! * every lossy codec beats the 2× payload-reduction bar on the fetch
//!   phases; `delta` (lossless) stays within its header overhead,
//! * `gradonly` moves zero gradient-routing bytes and only the exact
//!   final evaluation's fetch volume; `stale:<r>` undercuts the exact
//!   fetch volume,
//! * the `raw`/`exact` parity digest agrees between the simulated and
//!   the TCP transport (the codec layer cannot perturb training),
//! * every run's final loss is finite and its validation accuracy stays
//!   within [`ACC_FLOOR`] of the same transport's `raw`/`exact` run.

use std::path::Path;

use crate::kernelbench::{parse_json, JsonValue};
use crate::report::RunReport;
use crate::{launcher, smoke};

/// Schema tag written into (and required from) `BENCH_compress.json`.
/// Bump whenever the grid, the counters or the field layout change; the
/// gate refuses to compare across schema versions.
pub const SCHEMA: &str = "sar-compressbench/v1";

/// How far a lossy/approximate run's validation accuracy may fall below
/// the same transport's `raw`/`exact` baseline before the gate fails.
pub const ACC_FLOOR: f64 = 0.20;

/// Minimum payload-only wire reduction a lossy codec must deliver on the
/// fetch phases (`(logical − header) / (wire − header)`). f16/bf16 halve
/// the payload exactly but carry an 8-byte stream header per block, so
/// the bar sits just under 2×; int8 clears it with ≈3.8×.
pub const LOSSY_REDUCTION_BAR: f64 = 1.9;

/// The benchmark workload: everything needed to rebuild every run
/// deterministically.
#[derive(Debug, Clone)]
pub struct CompressBenchConfig {
    /// Cluster size (simulated workers / OS processes).
    pub world: usize,
    /// Synthetic products-like node count.
    pub nodes: usize,
    /// Training epochs per run.
    pub epochs: usize,
    /// Seed for the dataset, the partitioning and the model.
    pub seed: u64,
    /// Transports to run (`"sim"`, `"tcp"`); the TCP grid is a subset.
    pub transports: Vec<String>,
    /// Trim the grid for local iteration (the committed artifact is
    /// always generated at full scale).
    pub quick: bool,
}

impl Default for CompressBenchConfig {
    fn default() -> Self {
        CompressBenchConfig {
            world: 4,
            nodes: 1200,
            epochs: 8,
            seed: 0,
            transports: vec!["sim".into(), "tcp".into()],
            quick: false,
        }
    }
}

/// One `(arch, codec, protocol)` grid cell.
type Cell = (&'static str, &'static str, &'static str);

/// The simulated-transport grid: the full codec sweep plus the
/// approximate protocols on GraphSage, and a GAT spot-check.
#[must_use]
pub fn sim_grid(quick: bool) -> Vec<Cell> {
    let mut g = vec![
        ("sage", "raw", "exact"),
        ("sage", "f16", "exact"),
        ("sage", "int8", "exact"),
        ("sage", "raw", "gradonly"),
        ("sage", "raw", "stale:4"),
    ];
    if !quick {
        g.extend([
            ("sage", "bf16", "exact"),
            ("sage", "delta", "exact"),
            ("sage", "int8", "stale:4"),
            ("gat", "raw", "exact"),
            ("gat", "int8", "exact"),
        ]);
    }
    g
}

/// The TCP subset: enough to pin the negotiated wire path (exact parity,
/// a lossy codec, an approximate protocol) without a full OS-process
/// sweep per cell.
#[must_use]
pub fn tcp_grid(quick: bool) -> Vec<Cell> {
    let mut g = vec![("sage", "raw", "exact"), ("sage", "int8", "exact")];
    if !quick {
        g.push(("sage", "raw", "stale:4"));
    }
    g
}

/// One grid cell's measured run.
#[derive(Debug, Clone)]
pub struct CompressRun {
    /// `"sim"` or `"tcp"`.
    pub transport: String,
    /// Architecture name (`"sage"`, `"gat"`).
    pub arch: String,
    /// Negotiated wire codec.
    pub codec: String,
    /// Exchange protocol (`"exact"`, `"gradonly"`, `"stale:<r>"`).
    pub protocol: String,
    /// Final-epoch training loss.
    pub final_loss: f64,
    /// Validation accuracy after the (always exact) final evaluation.
    pub val_acc: f64,
    /// Test accuracy.
    pub test_acc: f64,
    /// Logical (raw-f32) bytes sent in the fetch phases
    /// (`forward_fetch` + `backward_refetch`), summed over workers.
    pub fetch_logical_bytes: u64,
    /// Post-codec wire bytes for the same phases.
    pub fetch_wire_bytes: u64,
    /// Messages sent in the fetch phases.
    pub fetch_messages: u64,
    /// Logical bytes sent in the `grad_routing` phase.
    pub grad_logical_bytes: u64,
    /// Post-codec wire bytes for `grad_routing`.
    pub grad_wire_bytes: u64,
    /// Messages sent in `grad_routing`.
    pub grad_messages: u64,
    /// Mean epoch time, seconds (modeled on sim, measured on tcp) —
    /// recorded for humans, never gated.
    pub epoch_time_s: f64,
    /// FNV-1a 64 fingerprint of the run's parity digest; recorded only
    /// for `raw`/`exact` runs, where it must agree across transports.
    pub digest: Option<String>,
}

/// A full compressbench run: the workload identity plus per-cell results.
#[derive(Debug, Clone)]
pub struct CompressBenchReport {
    /// Cluster size.
    pub world: usize,
    /// Dataset node count.
    pub nodes: usize,
    /// Training epochs per run.
    pub epochs: usize,
    /// Per-cell runs, sim grid first, then tcp.
    pub runs: Vec<CompressRun>,
}

/// FNV-1a 64 over a string — the stable fingerprint committed in place
/// of the multi-line parity digest.
#[must_use]
pub fn fingerprint(text: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// The workload for one grid cell (the smoke workload with the cell's
/// codec/protocol and this benchmark's epoch count).
fn cell_workload(
    cfg: &CompressBenchConfig,
    (arch, codec, protocol): Cell,
) -> Result<crate::distrun::Workload, String> {
    let mut wl = smoke::workload(arch, cfg.nodes, cfg.seed)?;
    wl.epochs = cfg.epochs;
    wl.codec = codec.to_string();
    wl.protocol = protocol.to_string();
    Ok(wl)
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

// ----------------------------------------------------------------------
// Simulated runs (in-process)
// ----------------------------------------------------------------------

fn run_sim(cfg: &CompressBenchConfig, cell: Cell) -> Result<CompressRun, String> {
    let (arch, codec, protocol) = cell;
    let wl = cell_workload(cfg, cell)?;
    let (dataset, part) = wl.build_data(cfg.world)?;
    let tcfg = wl.train_config(&dataset)?;
    eprintln!("[compressbench] sim: {arch} codec={codec} protocol={protocol} ...");
    let run = sar_core::train(&dataset, &part, sar_comm::CostModel::default(), &tcfg);

    let total = |phase: sar_comm::Phase| {
        run.worker_comm.iter().fold((0u64, 0u64, 0u64), |acc, c| {
            let e = c.ledger.phase_total(phase);
            (
                acc.0 + e.sent_bytes,
                acc.1 + e.wire_sent_bytes,
                acc.2 + e.sent_messages,
            )
        })
    };
    let fwd = total(sar_comm::Phase::ForwardFetch);
    let refetch = total(sar_comm::Phase::BackwardRefetch);
    let grad = total(sar_comm::Phase::GradRouting);

    let digest = (codec == "raw" && protocol == "exact").then(|| {
        let report = RunReport::from_train("compressbench", arch, &wl.mode, &run);
        fingerprint(&report.parity_digest())
    });
    Ok(CompressRun {
        transport: "sim".into(),
        arch: arch.into(),
        codec: codec.into(),
        protocol: protocol.into(),
        final_loss: f64::from(run.losses.last().copied().unwrap_or(f32::NAN)),
        val_acc: run.val_acc,
        test_acc: run.test_acc,
        fetch_logical_bytes: fwd.0 + refetch.0,
        fetch_wire_bytes: fwd.1 + refetch.1,
        fetch_messages: fwd.2 + refetch.2,
        grad_logical_bytes: grad.0,
        grad_wire_bytes: grad.1,
        grad_messages: grad.2,
        epoch_time_s: mean(&run.epoch_times),
        digest,
    })
}

// ----------------------------------------------------------------------
// TCP runs (one sar-worker process per rank)
// ----------------------------------------------------------------------

/// Sums `(sent_bytes, wire_sent_bytes, sent_messages)` over every
/// worker's ledger rows whose phase is in `phases`, from a gathered
/// `RunReport` JSON document.
fn sum_phases(doc: &JsonValue, phases: &[&str]) -> Result<(u64, u64, u64), String> {
    let workers = doc
        .get("workers")
        .and_then(JsonValue::arr)
        .ok_or("report has no workers array")?;
    let mut acc = (0u64, 0u64, 0u64);
    for w in workers {
        for row in w.get("phases").and_then(JsonValue::arr).unwrap_or_default() {
            let phase = row.get("phase").and_then(JsonValue::str).unwrap_or("");
            if !phases.contains(&phase) {
                continue;
            }
            let num = |k: &str| -> Result<u64, String> {
                row.get(k)
                    .and_then(JsonValue::num)
                    .map(|v| v as u64)
                    .ok_or_else(|| format!("ledger row is missing {k}"))
            };
            acc.0 += num("sent_bytes")?;
            acc.1 += num("wire_sent_bytes")?;
            acc.2 += num("sent_messages")?;
        }
    }
    Ok(acc)
}

fn run_tcp(exe: &Path, cfg: &CompressBenchConfig, cell: Cell) -> Result<CompressRun, String> {
    let (arch, codec, protocol) = cell;
    let wl = cell_workload(cfg, cell)?;
    let uniq = format!(
        "{}-{arch}-{codec}-{}",
        std::process::id(),
        protocol.replace(':', "-")
    );
    let out = std::env::temp_dir().join(format!("sar-compressbench-{uniq}.json"));
    let digest_path = std::env::temp_dir().join(format!("sar-compressbench-{uniq}.digest"));
    let mut args = wl.to_args();
    args.extend([
        "--experiment".to_string(),
        format!("compressbench-{arch}-{codec}-{protocol}"),
        "--out".to_string(),
        out.display().to_string(),
        "--digest-out".to_string(),
        digest_path.display().to_string(),
    ]);
    eprintln!("[compressbench] tcp: {arch} codec={codec} protocol={protocol} ...");
    let result = (|| -> Result<CompressRun, String> {
        launcher::spawn_ranks(exe, cfg.world, &args)?;
        let text = std::fs::read_to_string(&out)
            .map_err(|e| format!("rank 0 wrote no report at {}: {e}", out.display()))?;
        let doc = parse_json(&text).map_err(|e| format!("gathered report: {e}"))?;
        let losses = doc
            .get("losses")
            .and_then(JsonValue::arr)
            .unwrap_or_default();
        let final_loss = losses
            .last()
            .and_then(JsonValue::num)
            .ok_or("gathered report has no losses")?;
        let acc = |k: &str| doc.get(k).and_then(JsonValue::num).unwrap_or(f64::NAN);
        let epoch_times: Vec<f64> = doc
            .get("epoch_times")
            .and_then(JsonValue::arr)
            .unwrap_or_default()
            .iter()
            .filter_map(JsonValue::num)
            .collect();
        let fetch = sum_phases(&doc, &["forward_fetch", "backward_refetch"])?;
        let grad = sum_phases(&doc, &["grad_routing"])?;
        let digest = if codec == "raw" && protocol == "exact" {
            let d = std::fs::read_to_string(&digest_path)
                .map_err(|e| format!("rank 0 wrote no digest at {}: {e}", digest_path.display()))?;
            Some(fingerprint(&d))
        } else {
            None
        };
        Ok(CompressRun {
            transport: "tcp".into(),
            arch: arch.into(),
            codec: codec.into(),
            protocol: protocol.into(),
            final_loss,
            val_acc: acc("val_acc"),
            test_acc: acc("test_acc"),
            fetch_logical_bytes: fetch.0,
            fetch_wire_bytes: fetch.1,
            fetch_messages: fetch.2,
            grad_logical_bytes: grad.0,
            grad_wire_bytes: grad.1,
            grad_messages: grad.2,
            epoch_time_s: mean(&epoch_times),
            digest,
        })
    })();
    let _ = std::fs::remove_file(&out);
    let _ = std::fs::remove_file(&digest_path);
    result.map_err(|e| format!("{arch}/{codec}/{protocol}: {e}"))
}

/// Runs the configured grid: the sim sweep in-process, then the TCP
/// subset as real OS processes.
///
/// # Errors
///
/// Propagates workload, spawn and report-parsing failures, naming the
/// grid cell.
pub fn run_compressbench(cfg: &CompressBenchConfig) -> Result<CompressBenchReport, String> {
    let mut runs = Vec::new();
    if cfg.transports.iter().any(|t| t == "sim") {
        for cell in sim_grid(cfg.quick) {
            runs.push(run_sim(cfg, cell)?);
        }
    }
    if cfg.transports.iter().any(|t| t == "tcp") {
        let exe = launcher::sibling_binary("sar-worker")?;
        for cell in tcp_grid(cfg.quick) {
            runs.push(run_tcp(&exe, cfg, cell)?);
        }
    }
    Ok(CompressBenchReport {
        world: cfg.world,
        nodes: cfg.nodes,
        epochs: cfg.epochs,
        runs,
    })
}

// ----------------------------------------------------------------------
// JSON report
// ----------------------------------------------------------------------

fn fmt_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".into()
    }
}

impl CompressBenchReport {
    /// Serializes the report as the schema-versioned
    /// `BENCH_compress.json` document.
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": \"{SCHEMA}\",");
        let _ = writeln!(s, "  \"world\": {},", self.world);
        let _ = writeln!(s, "  \"nodes\": {},", self.nodes);
        let _ = writeln!(s, "  \"epochs\": {},", self.epochs);
        s.push_str("  \"runs\": [\n");
        for (i, r) in self.runs.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"transport\": \"{}\", \"arch\": \"{}\", \"codec\": \"{}\", \
                 \"protocol\": \"{}\", \"final_loss\": {}, \"val_acc\": {}, \
                 \"test_acc\": {}, \"fetch_logical_bytes\": {}, \"fetch_wire_bytes\": {}, \
                 \"fetch_messages\": {}, \"grad_logical_bytes\": {}, \"grad_wire_bytes\": {}, \
                 \"grad_messages\": {}, \"epoch_time_s\": {}, \"digest\": {}}}",
                r.transport,
                r.arch,
                r.codec,
                r.protocol,
                fmt_num(r.final_loss),
                fmt_num(r.val_acc),
                fmt_num(r.test_acc),
                r.fetch_logical_bytes,
                r.fetch_wire_bytes,
                r.fetch_messages,
                r.grad_logical_bytes,
                r.grad_wire_bytes,
                r.grad_messages,
                fmt_num(r.epoch_time_s),
                r.digest
                    .as_ref()
                    .map_or("null".to_string(), |d| format!("\"{d}\"")),
            );
            s.push_str(if i + 1 < self.runs.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Writes [`CompressBenchReport::to_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors as strings.
    pub fn write_json(&self, path: &str) -> Result<(), String> {
        std::fs::write(path, self.to_json()).map_err(|e| format!("cannot write {path}: {e}"))
    }
}

// ----------------------------------------------------------------------
// The CI gate
// ----------------------------------------------------------------------

/// The identity of one run within a report.
fn run_key(r: &JsonValue) -> String {
    let s = |k: &str| r.get(k).and_then(JsonValue::str).unwrap_or("?");
    format!(
        "{}/{}/{}/{}",
        s("transport"),
        s("arch"),
        s("codec"),
        s("protocol")
    )
}

/// Payload-only bytes: the ledgered volume minus the 32-byte frame
/// header each message carries on both the logical and the wire side.
fn payload(bytes: f64, messages: f64) -> f64 {
    bytes - 32.0 * messages
}

/// Invariants one report's run set must satisfy, fresh or committed.
/// `label` names the side in violation messages. Epoch times are never
/// compared.
fn report_invariants(label: &str, runs: &[&JsonValue]) -> Vec<String> {
    let mut violations = Vec::new();
    let find = |transport: &str, arch: &str, codec: &str, protocol: &str| {
        runs.iter().copied().find(|r| {
            let s = |k: &str| r.get(k).and_then(JsonValue::str).unwrap_or("");
            s("transport") == transport
                && s("arch") == arch
                && s("codec") == codec
                && s("protocol") == protocol
        })
    };
    for r in runs {
        let ctx = format!("{label} run {}", run_key(r));
        let num = |k: &str| r.get(k).and_then(JsonValue::num);
        let s = |k: &str| r.get(k).and_then(JsonValue::str).unwrap_or("?");
        let (codec, protocol) = (s("codec"), s("protocol"));
        match num("final_loss") {
            Some(l) if l.is_finite() => {}
            _ => violations.push(format!("{ctx}: final loss is missing or non-finite")),
        }
        let Some([f_log, f_wire, f_msgs, g_log, g_wire, _g_msgs]) = [
            "fetch_logical_bytes",
            "fetch_wire_bytes",
            "fetch_messages",
            "grad_logical_bytes",
            "grad_wire_bytes",
            "grad_messages",
        ]
        .into_iter()
        .map(num)
        .collect::<Option<Vec<f64>>>()
        .and_then(|v| <[f64; 6]>::try_from(v).ok()) else {
            violations.push(format!("{ctx}: missing byte counters"));
            continue;
        };
        if codec == "raw" && (f_wire != f_log || g_wire != g_log) {
            violations.push(format!(
                "{ctx}: raw codec moved wire bytes ≠ logical bytes \
                 (fetch {f_wire} vs {f_log}, grad {g_wire} vs {g_log})"
            ));
        }
        if matches!(codec, "f16" | "bf16" | "int8") {
            let (lp, wp) = (payload(f_log, f_msgs), payload(f_wire, f_msgs));
            if !(wp > 0.0 && lp / wp >= LOSSY_REDUCTION_BAR) {
                violations.push(format!(
                    "{ctx}: fetch payload reduction {:.2}× is below the \
                     {LOSSY_REDUCTION_BAR}× bar ({lp} logical vs {wp} wire payload bytes)",
                    if wp > 0.0 { lp / wp } else { f64::INFINITY }
                ));
            }
        }
        if codec == "delta" && f_wire > f_log + 16.0 * f_msgs {
            violations.push(format!(
                "{ctx}: lossless delta wire bytes {f_wire} exceed logical {f_log} \
                 beyond the per-message header overhead"
            ));
        }
        // Baselines for the protocol and accuracy gates: the same
        // transport + arch at raw/exact.
        let baseline = find(s("transport"), s("arch"), "raw", "exact");
        if protocol == "gradonly" {
            if g_log != 0.0 || g_wire != 0.0 {
                violations.push(format!(
                    "{ctx}: gradonly routed {g_log} logical / {g_wire} wire gradient bytes"
                ));
            }
            if let Some(b) = baseline.and_then(|b| b.get("fetch_logical_bytes")) {
                if let Some(b) = b.num() {
                    if f_log * 2.0 >= b {
                        violations.push(format!(
                            "{ctx}: fetch volume {f_log} is not under half the exact \
                             baseline {b} — training epochs fetched remotely"
                        ));
                    }
                }
            }
        }
        if protocol.starts_with("stale:") {
            if let Some(b) = baseline
                .and_then(|b| b.get("fetch_logical_bytes"))
                .and_then(JsonValue::num)
            {
                if f_log >= b * 3.0 / 4.0 {
                    violations.push(format!(
                        "{ctx}: fetch volume {f_log} does not undercut the exact \
                         baseline {b} — stale epochs fetched remotely"
                    ));
                }
            }
        }
        if let (Some(acc), Some(base_acc)) = (
            num("val_acc"),
            baseline
                .and_then(|b| b.get("val_acc"))
                .and_then(JsonValue::num),
        ) {
            if acc < base_acc - ACC_FLOOR {
                violations.push(format!(
                    "{ctx}: val accuracy {acc:.4} fell more than {ACC_FLOOR} below \
                     the exact baseline {base_acc:.4}"
                ));
            }
        }
    }
    // The raw/exact parity digest must agree across transports *for the
    // same workload*: the codec layer and the negotiation cannot perturb
    // training. Different architectures legitimately digest differently.
    let digests: Vec<(&str, &str, &str)> = runs
        .iter()
        .filter_map(|r| {
            let d = r.get("digest").and_then(JsonValue::str)?;
            Some((
                r.get("arch").and_then(JsonValue::str)?,
                r.get("transport").and_then(JsonValue::str)?,
                d,
            ))
        })
        .collect();
    for (i, a) in digests.iter().enumerate() {
        for b in &digests[i + 1..] {
            if a.0 == b.0 && a.2 != b.2 {
                violations.push(format!(
                    "{label}: {} raw/exact parity digest differs across transports \
                     ({} {} vs {} {})",
                    a.0, a.1, a.2, b.1, b.2
                ));
            }
        }
    }
    violations
}

/// Compares a fresh report against the committed `BENCH_compress.json`.
///
/// Returns the violations (empty = gate passes). Hard-fails on a schema
/// or run-set mismatch (the artifact is stale — regenerate it); both the
/// fresh and the committed run sets must satisfy [`report_invariants`].
#[must_use]
pub fn check_against(current: &CompressBenchReport, committed_text: &str) -> Vec<String> {
    let committed = match parse_json(committed_text) {
        Ok(c) => c,
        Err(e) => return vec![format!("committed JSON parse error: {e}")],
    };
    match committed.get("schema").and_then(JsonValue::str) {
        Some(s) if s == SCHEMA => {}
        Some(s) => {
            return vec![format!(
                "committed schema \"{s}\" does not match this binary's \"{SCHEMA}\" — \
                 regenerate with `repro compressbench --out BENCH_compress.json`"
            )]
        }
        None => return vec!["committed BENCH_compress.json has no \"schema\" field".into()],
    }
    let mut violations = Vec::new();
    let committed_runs: Vec<&JsonValue> = committed
        .get("runs")
        .and_then(JsonValue::arr)
        .unwrap_or_default()
        .iter()
        .collect();
    let current_doc = match parse_json(&current.to_json()) {
        Ok(doc) => doc,
        Err(e) => return vec![format!("current report does not serialize: {e}")],
    };
    let current_runs: Vec<&JsonValue> = current_doc
        .get("runs")
        .and_then(JsonValue::arr)
        .unwrap_or_default()
        .iter()
        .collect();
    let committed_keys: Vec<String> = committed_runs.iter().map(|r| run_key(r)).collect();
    let current_keys: Vec<String> = current_runs.iter().map(|r| run_key(r)).collect();
    for k in &committed_keys {
        if !current_keys.contains(k) {
            violations.push(format!(
                "run {k} is committed but was not produced — the grid changed; \
                 regenerate BENCH_compress.json"
            ));
        }
    }
    for k in &current_keys {
        if !committed_keys.contains(k) {
            violations.push(format!(
                "run {k} is new (not committed) — regenerate BENCH_compress.json"
            ));
        }
    }
    violations.extend(report_invariants("committed", &committed_runs));
    violations.extend(report_invariants("current", &current_runs));
    violations
}

/// Pretty-prints the report as an aligned table on stderr.
pub fn print_table(report: &CompressBenchReport) {
    eprintln!(
        "[compressbench] world={} nodes={} epochs={}",
        report.world, report.nodes, report.epochs
    );
    eprintln!(
        "{:<4} {:<5} {:<6} {:<9} {:>9} {:>7} {:>12} {:>12} {:>8} {:>12} {:>12}",
        "xprt",
        "arch",
        "codec",
        "protocol",
        "loss",
        "val%",
        "fetch_log_B",
        "fetch_wire_B",
        "reduce",
        "grad_log_B",
        "grad_wire_B"
    );
    for r in &report.runs {
        let lp = payload(r.fetch_logical_bytes as f64, r.fetch_messages as f64);
        let wp = payload(r.fetch_wire_bytes as f64, r.fetch_messages as f64);
        let reduce = if wp > 0.0 { lp / wp } else { f64::NAN };
        eprintln!(
            "{:<4} {:<5} {:<6} {:<9} {:>9.4} {:>7.2} {:>12} {:>12} {:>8} {:>12} {:>12}",
            r.transport,
            r.arch,
            r.codec,
            r.protocol,
            r.final_loss,
            100.0 * r.val_acc,
            r.fetch_logical_bytes,
            r.fetch_wire_bytes,
            if reduce.is_finite() {
                format!("{reduce:.2}x")
            } else {
                "-".into()
            },
            r.grad_logical_bytes,
            r.grad_wire_bytes
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(transport: &str, codec: &str, protocol: &str, digest: Option<&str>) -> CompressRun {
        // Logical volumes mimic a real sweep: 1000 fetch messages of
        // 32-byte header + 4000 payload bytes each.
        let (msgs, logical) = (1000u64, 1000 * (32 + 4000) as u64);
        let wire = match codec {
            "f16" => 1000 * (32 + 8 + 2000),
            "bf16" => 1000 * (32 + 8 + 2000),
            "int8" => 1000 * (32 + 8 + 1000 + 4 * 16),
            "delta" => 1000 * (32 + 9 + 4000),
            _ => logical,
        };
        let training_fetch = if protocol == "gradonly" {
            logical / 9
        } else if protocol.starts_with("stale:") {
            logical / 3
        } else {
            logical
        };
        let scale = |b: u64| (b as f64 * training_fetch as f64 / logical as f64) as u64;
        CompressRun {
            transport: transport.into(),
            arch: "sage".into(),
            codec: codec.into(),
            protocol: protocol.into(),
            final_loss: 1.25,
            val_acc: 0.62,
            test_acc: 0.60,
            fetch_logical_bytes: training_fetch,
            fetch_wire_bytes: scale(wire),
            fetch_messages: (msgs as f64 * training_fetch as f64 / logical as f64) as u64,
            grad_logical_bytes: if protocol == "gradonly" { 0 } else { 500_000 },
            grad_wire_bytes: if protocol == "gradonly" { 0 } else { 500_000 },
            grad_messages: if protocol == "gradonly" { 0 } else { 120 },
            epoch_time_s: 0.05,
            digest: digest.map(str::to_string),
        }
    }

    fn sample_report() -> CompressBenchReport {
        CompressBenchReport {
            world: 4,
            nodes: 1200,
            epochs: 8,
            runs: vec![
                run("sim", "raw", "exact", Some("00ff00ff00ff00ff")),
                run("sim", "f16", "exact", None),
                run("sim", "int8", "exact", None),
                run("sim", "delta", "exact", None),
                run("sim", "raw", "gradonly", None),
                run("sim", "raw", "stale:4", None),
                run("tcp", "raw", "exact", Some("00ff00ff00ff00ff")),
            ],
        }
    }

    #[test]
    fn report_round_trips_and_passes_against_itself() {
        let r = sample_report();
        let doc = parse_json(&r.to_json()).expect("own JSON must parse");
        assert_eq!(doc.get("schema").and_then(JsonValue::str), Some(SCHEMA));
        assert_eq!(
            doc.get("runs").and_then(JsonValue::arr).map(<[_]>::len),
            Some(7)
        );
        let violations = check_against(&r, &r.to_json());
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn timings_may_drift_but_the_grid_may_not() {
        let r = sample_report();
        let committed = r.to_json();
        // Epoch times drift freely.
        let mut slow = r.clone();
        for run in &mut slow.runs {
            run.epoch_time_s *= 100.0;
        }
        assert!(check_against(&slow, &committed).is_empty());
        // A missing run is structural drift.
        let mut fewer = r.clone();
        fewer.runs.pop();
        assert!(check_against(&fewer, &committed)
            .iter()
            .any(|v| v.contains("not produced")));
        // Schema identity is hard.
        let stale = committed.replace(SCHEMA, "sar-compressbench/v0");
        assert!(check_against(&r, &stale)[0].contains("schema"));
    }

    #[test]
    fn gate_rejects_broken_codec_and_protocol_claims() {
        let r = sample_report();
        let committed = r.to_json();
        // raw must move exactly its logical volume.
        let mut leaky = r.clone();
        leaky.runs[0].fetch_wire_bytes += 64;
        assert!(check_against(&leaky, &committed)
            .iter()
            .any(|v| v.contains("raw codec")));
        // A lossy codec that stops compressing fails the 2x bar.
        let mut bloated = r.clone();
        bloated.runs[1].fetch_wire_bytes = bloated.runs[1].fetch_logical_bytes;
        assert!(check_against(&bloated, &committed)
            .iter()
            .any(|v| v.contains("below the")));
        // gradonly moving gradient bytes is a protocol violation.
        let mut routed = r.clone();
        routed.runs[4].grad_wire_bytes = 9000;
        routed.runs[4].grad_logical_bytes = 9000;
        assert!(check_against(&routed, &committed)
            .iter()
            .any(|v| v.contains("gradonly")));
        // A stale run with the full exact fetch volume skipped nothing.
        let mut eager = r.clone();
        eager.runs[5].fetch_logical_bytes = eager.runs[0].fetch_logical_bytes;
        eager.runs[5].fetch_wire_bytes = eager.runs[0].fetch_wire_bytes;
        assert!(check_against(&eager, &committed)
            .iter()
            .any(|v| v.contains("stale")));
        // Diverging cross-transport digests mean the codec perturbed
        // training.
        let mut skew = r.clone();
        skew.runs[6].digest = Some("deadbeefdeadbeef".into());
        assert!(check_against(&skew, &committed)
            .iter()
            .any(|v| v.contains("digest")));
        // Accuracy collapse under an approximate protocol fails the floor.
        let mut collapsed = r.clone();
        collapsed.runs[4].val_acc = 0.1;
        assert!(check_against(&collapsed, &committed)
            .iter()
            .any(|v| v.contains("accuracy")));
    }

    #[test]
    fn fingerprint_is_stable_and_collision_sensitive() {
        assert_eq!(fingerprint("abc"), fingerprint("abc"));
        assert_ne!(fingerprint("abc"), fingerprint("abd"));
        assert_eq!(fingerprint("").len(), 16);
    }

    #[test]
    fn grids_cover_the_claimed_cells() {
        let full = sim_grid(false);
        assert!(full.contains(&("sage", "raw", "exact")));
        assert!(full.contains(&("sage", "delta", "exact")));
        assert!(full.contains(&("gat", "int8", "exact")));
        assert!(full.len() > sim_grid(true).len());
        // Every TCP cell also exists in the sim grid, so the digest
        // cross-check always has both sides.
        for cell in tcp_grid(false) {
            assert!(
                cell.1 != "raw" || cell.2 != "exact" || full.contains(&cell),
                "tcp raw/exact cell missing from the sim grid"
            );
        }
    }
}
