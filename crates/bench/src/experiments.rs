//! The experiments of the paper's evaluation section (§4), one function
//! per table/figure, plus the ablations called out in DESIGN.md.

use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sar_comm::CostModel;
use sar_core::{train, Arch, Mode, ModelConfig, TrainConfig};
use sar_graph::fused::{gat_fused_block_forward, gat_naive_block_forward, OnlineAttnState};
use sar_graph::{datasets, CsrGraph, Dataset};
use sar_nn::{CsConfig, FusedGatLayer, GatConfig, GatLayer, LrSchedule};
use sar_partition::{multilevel, partition, Method};
use sar_tensor::{init, MemoryTracker, Var};

use crate::report::{mib, pct, secs, Table};

/// Shared experiment parameters (defaults target a 2-core CI box; scale
/// up with the `repro` CLI flags).
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Node count of the ogbn-products stand-in.
    pub products_nodes: usize,
    /// Node count of the ogbn-papers100M stand-in.
    pub papers_nodes: usize,
    /// Training epochs for accuracy experiments (paper: 100).
    pub epochs: usize,
    /// Epochs per timing measurement (first epoch is discarded).
    pub timing_epochs: usize,
    /// Bandwidth down-scaling of the InfiniBand cost model, matching the
    /// single-thread compute rate of this reproduction to the paper's
    /// 36-core workers so compute/communication ratios are comparable.
    pub bandwidth_scale: f64,
    /// Per-worker memory budget in MiB for the "OOM" marker on
    /// products-like runs (Figs. 3/4; the paper's 256 GB hosts never
    /// overflow there, so the default is generous).
    pub mem_budget_products_mib: f64,
    /// Per-worker memory budget in MiB for papers-like runs (Figs. 5/6).
    /// Calibrated so the budget sits between SAR's and domain-parallel
    /// GAT's measured peaks at 32 workers, in the same proportion as the
    /// paper's 256 GB limit (where DP-GAT-32 OOMs and SAR fits).
    pub mem_budget_papers_mib: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            products_nodes: 4000,
            papers_nodes: 8000,
            epochs: 40,
            timing_epochs: 4,
            bandwidth_scale: 100.0,
            mem_budget_products_mib: 512.0,
            mem_budget_papers_mib: 48.0,
            seed: 0,
        }
    }
}

impl ExpConfig {
    /// The α–β network model used by all distributed experiments.
    pub fn cost_model(&self) -> CostModel {
        CostModel::default().scale(self.bandwidth_scale)
    }
}

fn paper_train_cfg(model: ModelConfig, epochs: usize, seed: u64) -> TrainConfig {
    TrainConfig {
        model,
        epochs,
        lr: 0.01,
        schedule: LrSchedule::StepDecay {
            every: 30,
            gamma: 0.5,
        },
        label_aug: true,
        aug_frac: 0.5,
        cs: Some(CsConfig::default()),
        prefetch_depth: 0,
        seed,
        threads: 1,
        protocol: Default::default(),
        codec: Default::default(),
        mem_budget: 0,
    }
}

// ----------------------------------------------------------------------
// Table 1 — datasets and final accuracies
// ----------------------------------------------------------------------

/// Reproduces Table 1: dataset statistics plus GraphSage / GraphSage+C&S /
/// GAT / GAT+C&S accuracies on both stand-in datasets.
pub fn table1(cfg: &ExpConfig) -> Vec<Table> {
    let products = datasets::products_like(cfg.products_nodes, cfg.seed);
    let papers = datasets::papers_like(cfg.papers_nodes, cfg.seed + 1);

    let mut stats = Table::new(
        "Table 1 (top) — dataset statistics (synthetic stand-ins)",
        &["", "products-like", "papers-like"],
    );
    let row = |name: &str, f: &dyn Fn(&Dataset) -> String| {
        vec![name.to_string(), f(&products), f(&papers)]
    };
    stats.row(row("# nodes", &|d| d.num_nodes().to_string()));
    stats.row(row("# edges", &|d| d.graph.num_edges().to_string()));
    stats.row(row("# input features", &|d| d.feat_dim().to_string()));
    stats.row(row("# classes", &|d| d.num_classes.to_string()));

    let mut acc = Table::new(
        "Table 1 (bottom) — test accuracy",
        &["model", "products-like", "papers-like"],
    );
    let mut results: Vec<[String; 2]> = vec![
        [String::new(), String::new()],
        [String::new(), String::new()],
        [String::new(), String::new()],
        [String::new(), String::new()],
    ];
    for (col, d) in [&products, &papers].into_iter().enumerate() {
        let part = multilevel(&d.graph, 4, cfg.seed);
        // GraphSage.
        let model = ModelConfig::paper_graphsage(0, d.num_classes, Mode::Sar);
        let sage = train(
            d,
            &part,
            cfg.cost_model(),
            &paper_train_cfg(model, cfg.epochs, cfg.seed),
        );
        // GAT (smaller head dim than the Sage hidden, as in the paper).
        let model = ModelConfig::paper_gat(0, d.num_classes, Mode::SarFused);
        let gat = train(
            d,
            &part,
            cfg.cost_model(),
            &paper_train_cfg(model, cfg.epochs, cfg.seed),
        );
        results[0][col] = pct(sage.test_acc);
        results[1][col] = pct(sage.test_acc_cs.unwrap_or(sage.test_acc));
        results[2][col] = pct(gat.test_acc);
        results[3][col] = pct(gat.test_acc_cs.unwrap_or(gat.test_acc));
    }
    for (name, r) in [
        "GraphSage Accuracy",
        "GraphSage+C&S Accuracy",
        "GAT Accuracy",
        "GAT+C&S Accuracy",
    ]
    .iter()
    .zip(results)
    {
        acc.row(vec![name.to_string(), r[0].clone(), r[1].clone()]);
    }
    vec![stats, acc]
}

// ----------------------------------------------------------------------
// Figure 2 — single-host fused attention kernels
// ----------------------------------------------------------------------

/// Reproduces Fig. 2: forward/backward runtime (a) and peak memory (b) of
/// the fused attention kernel (FAK) vs the standard two-step GAT layer on
/// a single host, for 2/4/8 attention heads at a constant per-head
/// dimension of 100 (so widths 200/400/800 as in the paper).
pub fn fig2(cfg: &ExpConfig) -> Vec<Table> {
    let d = datasets::products_like(cfg.products_nodes, cfg.seed);
    let g = Arc::new(d.graph.clone());
    let mut time_table = Table::new(
        "Figure 2a — single GAT layer runtime (s)",
        &["heads", "impl", "forward", "backward", "fwd+bwd"],
    );
    let mut mem_table = Table::new(
        "Figure 2b — peak memory during forward (MiB)",
        &["heads", "DGL-style", "FAK", "ratio"],
    );
    for heads in [2usize, 4, 8] {
        let head_dim = 100;
        let width = heads * head_dim;
        let mut rng = StdRng::seed_from_u64(cfg.seed + heads as u64);
        let mut gat_cfg = GatConfig::new(width, head_dim, heads);
        gat_cfg.activation = false;
        let std_layer = GatLayer::new(gat_cfg, &mut rng);
        let fused = FusedGatLayer::from_standard(&std_layer);
        let x = init::randn(&[d.num_nodes(), width], 0.5, &mut rng);

        let measure = |fwd: &dyn Fn(&Var) -> Var| -> (f64, f64, usize) {
            let h = Var::parameter(x.clone());
            MemoryTracker::reset_peak();
            let base = MemoryTracker::stats().current_bytes;
            let t0 = Instant::now();
            let out = fwd(&h);
            let t_fwd = t0.elapsed().as_secs_f64();
            let peak = MemoryTracker::stats().peak_bytes.saturating_sub(base);
            let t1 = Instant::now();
            out.sum().backward();
            let t_bwd = t1.elapsed().as_secs_f64();
            (t_fwd, t_bwd, peak)
        };

        let (f_std, b_std, m_std) = measure(&|h| std_layer.forward(&g, h));
        let (f_fak, b_fak, m_fak) = measure(&|h| fused.forward(&g, h));

        for (name, f, b) in [("DGL-style", f_std, b_std), ("FAK", f_fak, b_fak)] {
            time_table.row(vec![
                heads.to_string(),
                name.to_string(),
                secs(f),
                secs(b),
                secs(f + b),
            ]);
        }
        mem_table.row(vec![
            heads.to_string(),
            mib(m_std),
            mib(m_fak),
            format!("{:.2}x", m_std as f64 / m_fak.max(1) as f64),
        ]);
    }
    vec![time_table, mem_table]
}

// ----------------------------------------------------------------------
// Figures 3–6 — distributed scaling
// ----------------------------------------------------------------------

/// Which dataset a scaling figure runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// ogbn-products stand-in (Figs. 3 and 4; paper worlds 4/8/16).
    Products,
    /// ogbn-papers100M stand-in (Figs. 5 and 6; paper worlds 32/64/128).
    Papers,
}

/// Reproduces one of Figs. 3–6: epoch time and per-worker peak memory of
/// a 3-layer GraphSage or GAT across worker counts, comparing
/// domain-parallel training against SAR (and SAR+FAK for GAT).
///
/// Returns `(epoch-time table, peak-memory table)`.
pub fn scaling(arch: Arch, workload: Workload, worlds: &[usize], cfg: &ExpConfig) -> Vec<Table> {
    let (d, figure) = match workload {
        Workload::Products => (
            datasets::products_like(cfg.products_nodes, cfg.seed),
            match arch {
                Arch::Gat { .. } => "Figure 4",
                _ => "Figure 3",
            },
        ),
        Workload::Papers => (
            datasets::papers_like(cfg.papers_nodes, cfg.seed + 1),
            match arch {
                Arch::Gat { .. } => "Figure 6",
                _ => "Figure 5",
            },
        ),
    };
    let modes: &[(Mode, &str)] = match arch {
        Arch::Gat { .. } => &[
            (Mode::DomainParallel, "domain-parallel"),
            (Mode::Sar, "SAR"),
            (Mode::SarFused, "SAR+FAK"),
        ],
        _ => &[
            (Mode::DomainParallel, "domain-parallel"),
            (Mode::Sar, "SAR"),
        ],
    };
    let arch_name = match arch {
        Arch::GraphSage { .. } => "GraphSage",
        Arch::Gat { .. } => "GAT",
        Arch::Gcn { .. } => "GCN",
    };

    let budget_mib = match workload {
        Workload::Products => cfg.mem_budget_products_mib,
        Workload::Papers => cfg.mem_budget_papers_mib,
    };
    let mut time_table = Table::new(
        format!("{figure}a — {arch_name} on {}: epoch time (s)", d.name),
        &["workers", "mode", "compute", "comm", "epoch time"],
    );
    let mut mem_table = Table::new(
        format!(
            "{figure}b — {arch_name} on {}: peak memory/worker (MiB, budget {budget_mib} MiB)",
            d.name
        ),
        &["workers", "mode", "peak MiB", "status"],
    );

    for &world in worlds {
        let part = multilevel(&d.graph, world, cfg.seed);
        for &(mode, mode_name) in modes {
            let model = ModelConfig {
                arch,
                mode,
                layers: 3,
                in_dim: 0,
                num_classes: d.num_classes,
                dropout: 0.3,
                batch_norm: true,
                jumping_knowledge: false,
                seed: cfg.seed,
            };
            let mut tc = paper_train_cfg(model, cfg.timing_epochs, cfg.seed);
            tc.cs = None;
            let run = train(&d, &part, cfg.cost_model(), &tc);
            let skip = 1.min(run.epoch_times.len() - 1);
            // Median over steady-state epochs: robust to scheduler noise
            // when many worker threads share few physical cores.
            let median = |v: &[f64]| -> f64 {
                let mut s = v[skip..].to_vec();
                s.sort_by(|a, b| a.partial_cmp(b).unwrap());
                s[s.len() / 2]
            };
            let avg_compute = median(&run.epoch_compute);
            let avg_comm = median(&run.epoch_comm);
            let avg_time = avg_compute + avg_comm;
            time_table.row(vec![
                world.to_string(),
                mode_name.to_string(),
                secs(avg_compute),
                secs(avg_comm),
                secs(avg_time),
            ]);
            let peak = run.max_peak_bytes();
            let status = if peak as f64 / (1024.0 * 1024.0) > budget_mib {
                "OOM (over budget)"
            } else {
                "ok"
            };
            mem_table.row(vec![
                world.to_string(),
                mode_name.to_string(),
                mib(peak),
                status.to_string(),
            ]);
        }
    }
    vec![time_table, mem_table]
}

// ----------------------------------------------------------------------
// Ablations
// ----------------------------------------------------------------------

/// §3.4 prefetching ablation: peak memory of the aggregation phase itself
/// at pipeline depths 0, 1 and 2 — the paper's 2/N vs 3/N residency
/// bound, extended to the general (k+2)/N staging law. Measured on a
/// *random* partitioning (worst-case boundary: essentially every remote
/// node is needed) so the fetched blocks dominate the phase's footprint.
pub fn ablation_prefetch(cfg: &ExpConfig) -> Table {
    use sar_core::{sage_aggregate, DistGraph, Worker};
    use std::sync::Arc;

    let d = datasets::products_like(cfg.products_nodes, cfg.seed);
    let world = 8;
    let part = sar_partition::random(&d.graph, world, cfg.seed);
    let graphs: Arc<Vec<Arc<DistGraph>>> = Arc::new(
        DistGraph::build_all(&d.graph, &part)
            .into_iter()
            .map(Arc::new)
            .collect(),
    );
    let feat = 512usize;
    let mut t = Table::new(
        "Ablation — prefetch depth (sequential aggregation phase, 8 workers, random partition)",
        &[
            "prefetch depth",
            "aggregation peak MiB/worker",
            "residency model",
        ],
    );
    for depth in [0usize, 1, 2] {
        let graphs = Arc::clone(&graphs);
        let outcomes = sar_comm::Cluster::new(world, cfg.cost_model()).run(move |ctx| {
            let rank = ctx.rank();
            let w = Worker::with_prefetch_depth(ctx, Arc::clone(&graphs[rank]), depth);
            let z = Var::constant(sar_tensor::Tensor::ones(&[w.graph.num_local(), feat]));
            // Measure only the aggregation loop.
            MemoryTracker::reset_peak();
            let base = MemoryTracker::stats().current_bytes;
            let out = sage_aggregate(&w, &z);
            let peak = MemoryTracker::stats().peak_bytes - base;
            drop(out);
            peak
        });
        let peak = outcomes.iter().map(|o| o.result).max().unwrap_or(0);
        t.row(vec![
            depth.to_string(),
            mib(peak),
            match depth {
                0 => "2/N (local + current)".to_string(),
                1 => "3/N (local + current + 1 staged)".to_string(),
                k => format!("{}/N (local + current + {k} staged)", k + 2),
            },
        ]);
    }
    t
}

/// §3.4 stable-softmax ablation: the running-max online softmax stays
/// finite under large attention logits; the naive accumulator overflows.
pub fn ablation_softmax(cfg: &ExpConfig) -> Table {
    let n = 256;
    let g = CsrGraph::from_edges(
        n,
        &(0..n as u32 - 1).map(|i| (i, i + 1)).collect::<Vec<_>>(),
    )
    .symmetrize()
    .with_self_loops();
    let mut t = Table::new(
        "Ablation — stable online softmax under large logits",
        &["logit std", "kernel", "finite outputs", "max |out|"],
    );
    for std in [1.0f32, 30.0, 90.0] {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let s_dst = init::randn(&[n, 1], std, &mut rng);
        let s_src = init::randn(&[n, 1], std, &mut rng);
        let x = init::randn(&[n, 4], 1.0, &mut rng);
        for (name, naive) in [("stable (SAR)", false), ("naive", true)] {
            let mut state = OnlineAttnState::new(n, 1, 4);
            if naive {
                gat_naive_block_forward(&g, &s_dst, &s_src, &x, 0.2, &mut state);
            } else {
                gat_fused_block_forward(&g, &s_dst, &s_src, &x, 0.2, &mut state);
            }
            let out = state.finalize();
            let finite = out.data().iter().filter(|v| v.is_finite()).count();
            t.row(vec![
                format!("{std}"),
                name.to_string(),
                format!("{}/{}", finite, out.numel()),
                if finite == out.numel() {
                    format!("{:.3}", out.max_abs())
                } else {
                    "non-finite".to_string()
                },
            ]);
        }
    }
    t
}

/// Partitioner-quality ablation: edge cut, per-epoch communication volume
/// and epoch time under different partitioners (the paper uses METIS).
pub fn ablation_partition(cfg: &ExpConfig) -> Table {
    let d = datasets::products_like(cfg.products_nodes, cfg.seed);
    let world = 8;
    let mut t = Table::new(
        "Ablation — partitioner quality (GraphSage, SAR, 8 workers)",
        &[
            "method",
            "cut fraction",
            "balance",
            "MB sent/epoch",
            "epoch time (s)",
        ],
    );
    for (method, name) in [
        (Method::Multilevel, "multilevel (METIS-like)"),
        (Method::Bfs, "BFS growing"),
        (Method::Range, "range"),
        (Method::Random, "random"),
    ] {
        let part = partition(&d.graph, world, method, cfg.seed);
        let model = ModelConfig {
            arch: Arch::GraphSage { hidden: 128 },
            mode: Mode::Sar,
            layers: 3,
            in_dim: 0,
            num_classes: d.num_classes,
            dropout: 0.0,
            batch_norm: false,
            jumping_knowledge: false,
            seed: cfg.seed,
        };
        let mut tc = paper_train_cfg(model, cfg.timing_epochs, cfg.seed);
        tc.cs = None;
        tc.label_aug = false;
        let run = train(&d, &part, cfg.cost_model(), &tc);
        let mb_per_epoch =
            run.total_sent_bytes as f64 / (1024.0 * 1024.0) / cfg.timing_epochs as f64;
        t.row(vec![
            name.to_string(),
            format!("{:.3}", part.cut_fraction(&d.graph)),
            format!("{:.3}", part.balance()),
            format!("{mb_per_epoch:.1}"),
            secs(run.avg_epoch_time()),
        ]);
    }
    t
}

/// The exactness experiment backing §2's claim: training losses and final
/// logits must agree across worker counts.
pub fn exactness(cfg: &ExpConfig) -> Table {
    let d = datasets::products_like(cfg.products_nodes.min(1500), cfg.seed);
    let model = ModelConfig {
        arch: Arch::GraphSage { hidden: 32 },
        mode: Mode::Sar,
        layers: 2,
        in_dim: 0,
        num_classes: d.num_classes,
        dropout: 0.0,
        batch_norm: true,
        jumping_knowledge: false,
        seed: cfg.seed,
    };
    let mut tc = paper_train_cfg(model, 6, cfg.seed);
    tc.cs = None;
    tc.label_aug = false;
    let reference = train(
        &d,
        &multilevel(&d.graph, 1, cfg.seed),
        cfg.cost_model(),
        &tc,
    );
    let mut t = Table::new(
        "Exactness — SAR training is independent of the worker count",
        &["workers", "final loss", "max |Δ logit| vs N=1"],
    );
    t.row(vec![
        "1".into(),
        format!("{:.6}", reference.losses.last().unwrap()),
        "0".into(),
    ]);
    for world in [2usize, 4, 8] {
        let run = train(
            &d,
            &multilevel(&d.graph, world, cfg.seed),
            cfg.cost_model(),
            &tc,
        );
        let delta = run
            .logits
            .data()
            .iter()
            .zip(reference.logits.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        t.row(vec![
            world.to_string(),
            format!("{:.6}", run.losses.last().unwrap()),
            format!("{delta:.2e}"),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        ExpConfig {
            products_nodes: 300,
            papers_nodes: 300,
            epochs: 2,
            timing_epochs: 2,
            ..ExpConfig::default()
        }
    }

    #[test]
    fn fig2_produces_rows() {
        let tables = fig2(&tiny());
        assert_eq!(tables[0].rows.len(), 6); // 3 head counts × 2 impls
        assert_eq!(tables[1].rows.len(), 3);
    }

    #[test]
    fn scaling_runs_all_modes() {
        let tables = scaling(
            Arch::GraphSage { hidden: 16 },
            Workload::Products,
            &[2, 4],
            &tiny(),
        );
        assert_eq!(tables[0].rows.len(), 4); // 2 worlds × 2 modes
    }

    #[test]
    fn softmax_ablation_shows_naive_overflow() {
        let t = ablation_softmax(&tiny());
        let rendered = t.render();
        assert!(
            rendered.contains("non-finite"),
            "naive kernel should overflow:\n{rendered}"
        );
    }
}
