#![warn(missing_docs)]

//! Benchmark harness reproducing every table and figure of the SAR paper.
//!
//! Each experiment in [`experiments`] regenerates one table or figure of
//! the paper's evaluation section on the synthetic OGB stand-in datasets
//! (see the workspace DESIGN.md §2 for the substitution rationale):
//!
//! | Paper artifact | Function | `repro` subcommand |
//! |---|---|---|
//! | Table 1 (accuracies) | [`experiments::table1`] | `table1` |
//! | Fig. 2 (fused kernels) | [`experiments::fig2`] | `fig2` |
//! | Fig. 3 (Sage/products) | [`experiments::scaling`] | `fig3` |
//! | Fig. 4 (GAT/products) | [`experiments::scaling`] | `fig4` |
//! | Fig. 5 (Sage/papers) | [`experiments::scaling`] | `fig5` |
//! | Fig. 6 (GAT/papers) | [`experiments::scaling`] | `fig6` |
//! | §3.4 prefetching | [`experiments::ablation_prefetch`] | `ablation-prefetch` |
//! | §3.4 stable softmax | [`experiments::ablation_softmax`] | `ablation-softmax` |
//! | §4.2 METIS choice | [`experiments::ablation_partition`] | `ablation-partition` |
//! | §2 exactness claim | [`experiments::exactness`] | `exactness` |
//!
//! Run everything with `cargo run --release -p sar-bench --bin repro -- all`.
//!
//! Epoch times are modeled as `max_p(compute CPU-seconds) +
//! max_p(simulated α–β communication seconds)`; peak memory is the real
//! per-worker-thread live tensor high-water mark. Default sizes target a
//! small CI machine; scale up with `--nodes`.
//!
//! Beyond the training experiments, [`kernelbench`] times the SAR
//! kernel family over a fixed seeded workload matrix and gates CI on the
//! committed `BENCH_kernels.json` perf trajectory (`repro kernelbench`).
//!
//! Besides the simulated in-process cluster, the harness can run real
//! multi-process training over TCP loopback: [`launcher`] spawns one
//! `sar-worker` OS process per rank, [`distrun`] is the per-rank
//! lifecycle (rebuild state from flags → rendezvous → train → gather),
//! and [`smoke`] holds the CI gate's workloads and ledger invariants,
//! shared verbatim between both backends.
//!
//! The serving tier gets the same treatment: [`serverun`] is the
//! per-rank lifecycle of a resident `sar-serve` cluster (rebuild state →
//! load checkpoint → rendezvous → front-end/worker loop), and
//! [`servebench`] drives it with a closed-loop client load, writing the
//! committed, CI-gated `BENCH_serve.json` latency/throughput artifact
//! (`repro servebench`).

pub mod compressbench;
pub mod distrun;
pub mod experiments;
pub mod kernelbench;
pub mod launcher;
pub mod outofcorebench;
pub mod report;
pub mod servebench;
pub mod serverun;
pub mod smoke;
