//! `repro kernelbench` — single-host kernel micro-benchmarks with a
//! committed, CI-gated performance trajectory.
//!
//! Times the SAR kernel family (sparse aggregation, edge softmax,
//! multi-head SpMM, fused/two-step GAT blocks, per-head projection and
//! the three dense matmul variants) over a fixed, seeded workload matrix
//! and writes a schema-versioned JSON report (`BENCH_kernels.json`).
//!
//! Raw GFLOP/s are machine-dependent, so the committed baseline is never
//! compared on absolute throughput. Instead each run calibrates the host
//! (an in-cache `axpy` loop as a peak-GFLOP/s proxy, a large streaming
//! `add_assign` as a memory-bandwidth proxy), derives a per-kernel
//! roofline `min(peak, bandwidth × arithmetic-intensity)`, and reports
//! the achieved fraction of that roofline. The CI gate compares these
//! *roofline ratios* against the committed baseline with a deliberately
//! generous tolerance ([`REL_TOLERANCE`] relative slack plus an
//! [`ABS_TOLERANCE`] absolute floor): the goal is to catch an
//! accidentally-deleted SIMD path or a quadratic regression, not 10%
//! noise. The gate *hard-fails* on a schema mismatch or a kernel-set
//! mismatch — both mean the baseline is stale and must be regenerated
//! with `repro kernelbench --out BENCH_kernels.json`.
//!
//! The FLOP and byte counts per kernel are documented estimates (see
//! EXPERIMENTS.md), fixed per schema version: they only need to be
//! *consistent* between the baseline and the checking run, which the
//! schema tag guarantees.
//!
//! Helper-thread CPU time is drained through
//! [`sar_tensor::pool::take_helper_cpu_us`] after each timed kernel, so
//! the reported `cpu_us` covers the whole pool, not just the timing
//! thread.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::hint::black_box;
use std::rc::Rc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sar_graph::fused::{self, OnlineAttnState};
use sar_graph::generators::erdos_renyi;
use sar_graph::ops;
use sar_tensor::init::randn;
use sar_tensor::{pool, simd};

/// Schema tag written into (and required from) `BENCH_kernels.json`.
/// Bump whenever the kernel set, the work models or the field layout
/// change; the CI gate refuses to compare across schema versions.
pub const SCHEMA: &str = "sar-kernelbench/v1";

/// Relative slack on the baseline roofline ratio: a kernel fails the
/// gate only below `baseline × (1 − REL_TOLERANCE) − ABS_TOLERANCE`.
/// Generous by design — shared CI runners are noisy and the gate exists
/// to catch structural regressions (a lost SIMD path, an accidental
/// rematerialization), not run-to-run jitter.
pub const REL_TOLERANCE: f64 = 0.5;

/// Absolute floor subtracted on top of the relative slack, so kernels
/// with tiny baseline ratios cannot fail on rounding.
pub const ABS_TOLERANCE: f64 = 0.02;

/// One timed kernel's results.
#[derive(Debug, Clone)]
pub struct KernelResult {
    /// Stable kernel identifier, e.g. `"spmm_sum/f32"`.
    pub name: String,
    /// Timed iterations (after one warm-up run).
    pub iters: usize,
    /// Best per-iteration wall time, microseconds.
    pub wall_us: f64,
    /// Mean per-iteration CPU time (timing thread + drained pool helper
    /// time), microseconds.
    pub cpu_us: f64,
    /// Achieved GFLOP/s at the best wall time, under this kernel's
    /// documented FLOP model.
    pub gflops: f64,
    /// Modeled arithmetic intensity, FLOPs per byte of traffic.
    pub ai: f64,
    /// Roofline estimate `min(peak, bandwidth × ai)`, GFLOP/s.
    pub roofline_gflops: f64,
    /// `gflops / roofline_gflops` — the machine-normalized figure the CI
    /// gate tracks.
    pub roofline_ratio: f64,
}

/// A full kernelbench run: calibration plus every kernel's results.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// The active SIMD dispatch label (`"avx2"` or `"scalar"`).
    pub simd: String,
    /// Kernel-pool thread count the run used.
    pub threads: usize,
    /// Calibrated single-thread peak-GFLOP/s proxy (in-cache `axpy`).
    pub peak_gflops: f64,
    /// Calibrated streaming-bandwidth proxy, GB/s (large `add_assign`).
    pub stream_gbs: f64,
    /// Per-kernel results, in workload-matrix order.
    pub kernels: Vec<KernelResult>,
}

// ----------------------------------------------------------------------
// Timing harness
// ----------------------------------------------------------------------

struct Timing {
    iters: usize,
    wall_us: f64,
    cpu_us: f64,
}

/// Times one kernel: a warm-up run, then iterations until the time
/// budget or iteration cap is reached (at least 3). The best wall time
/// is the throughput estimate; drained helper CPU time is folded into
/// the mean per-iteration CPU time.
fn time_case(run: &mut dyn FnMut(), quick: bool) -> Timing {
    run(); // warm-up: faults pages, fills the branch predictors
    let _ = pool::take_helper_cpu_us(); // discard warm-up helper time
    let (budget_us, max_iters) = if quick {
        (2_000.0, 5)
    } else {
        (100_000.0, 1_000)
    };
    let mut iters = 0usize;
    let mut total_us = 0.0f64;
    let mut best = f64::INFINITY;
    while iters < 3 || (total_us < budget_us && iters < max_iters) {
        let t = Instant::now();
        run();
        let us = t.elapsed().as_secs_f64() * 1e6;
        total_us += us;
        best = best.min(us);
        iters += 1;
    }
    let helper_us = pool::take_helper_cpu_us();
    Timing {
        iters,
        wall_us: best,
        cpu_us: (total_us + helper_us) / iters as f64,
    }
}

/// Best-of-N wall time for a closure, microseconds.
fn best_of(rounds: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e6);
    }
    best
}

/// Calibrates the host: returns `(peak_gflops, stream_gbs)`.
///
/// Both proxies run single-threaded through the *dispatching* SIMD entry
/// points, so a `--simd scalar` run is normalized against a scalar
/// roofline and its ratios stay comparable to an AVX2 run's.
fn calibrate(quick: bool) -> (f64, f64) {
    // Peak proxy: repeated axpy over an L1-resident pair of buffers.
    let len = 4096usize;
    let reps = if quick { 32 } else { 256 };
    let a = vec![1.000_001f32; len];
    let mut b = vec![1.0f32; len];
    let rounds = if quick { 3 } else { 20 };
    let best_us = best_of(rounds, || {
        for _ in 0..reps {
            simd::axpy(1.000_001, &a, black_box(&mut b));
        }
    });
    let peak_gflops = (2.0 * len as f64 * reps as f64) / (best_us * 1e3);

    // Stream proxy: add_assign over buffers far larger than L2.
    let slen = if quick { 1 << 18 } else { 1 << 22 };
    let src = vec![1.0e-30f32; slen];
    let mut dst = vec![0.0f32; slen];
    let best_us = best_of(if quick { 2 } else { 8 }, || {
        simd::add_assign(black_box(&mut dst), &src);
    });
    // Per element: read dst, read src, write dst.
    let stream_gbs = (3.0 * 4.0 * slen as f64) / (best_us * 1e3);
    (peak_gflops, stream_gbs)
}

// ----------------------------------------------------------------------
// Workload matrix
// ----------------------------------------------------------------------

/// One benchmark case: a named kernel closure plus its FLOP/byte model.
struct Case {
    name: String,
    flops: f64,
    bytes: f64,
    run: Box<dyn FnMut()>,
}

/// The graph-kernel cases: a seeded Erdős–Rényi graph (symmetrized, so
/// rows are sorted and the cache-blocked traversals engage), feature
/// widths 32 and 128 at 4 heads. The narrow width exercises the ragged
/// SIMD tails (head_dim 8), the wide one the steady-state lanes.
fn graph_cases(quick: bool) -> Vec<Case> {
    let n = if quick { 192 } else { 2048 };
    let m = 8 * n;
    let mut rng = StdRng::seed_from_u64(0x5A2C_0FFE);
    let g = Rc::new(erdos_renyi(n, m, &mut rng).symmetrize());
    let e = g.num_edges() as f64;
    let nn = n as f64;
    let heads = 4usize;
    let hh = heads as f64;
    let slope = 0.2f32;
    let mut cases: Vec<Case> = Vec::new();

    for &f in &[32usize, 128] {
        let ff = f as f64;
        let x = randn(&[n, f], 1.0, &mut rng);
        let grad = randn(&[n, f], 1.0, &mut rng);
        let scores = randn(&[g.num_edges(), heads], 1.0, &mut rng);
        let alpha = ops::edge_softmax(&g, &scores);
        let s_dst = randn(&[n, heads], 1.0, &mut rng);
        let s_src = randn(&[n, heads], 1.0, &mut rng);

        {
            let (g, x) = (Rc::clone(&g), x.clone());
            cases.push(Case {
                name: format!("spmm_sum/f{f}"),
                flops: e * ff,
                bytes: 4.0 * (e * ff + nn * ff + e),
                run: Box::new(move || {
                    black_box(ops::spmm_sum(&g, &x));
                }),
            });
        }
        {
            let (g, grad) = (Rc::clone(&g), grad.clone());
            cases.push(Case {
                name: format!("spmm_sum_backward/f{f}"),
                flops: e * ff,
                bytes: 4.0 * (e * ff + nn * ff + e),
                run: Box::new(move || {
                    black_box(ops::spmm_sum_backward(&g, &grad));
                }),
            });
        }
        {
            let (g, alpha, x) = (Rc::clone(&g), alpha.clone(), x.clone());
            cases.push(Case {
                name: format!("spmm_multihead/f{f}"),
                flops: 2.0 * e * ff,
                bytes: 4.0 * (e * (ff + hh) + nn * ff),
                run: Box::new(move || {
                    black_box(ops::spmm_multihead(&g, &alpha, &x));
                }),
            });
        }
        {
            let (g, s_dst, s_src, x) = (Rc::clone(&g), s_dst.clone(), s_src.clone(), x.clone());
            let d = f / heads;
            cases.push(Case {
                name: format!("gat_fused_forward/f{f}"),
                flops: e * hh * (2.0 * (d as f64) + 8.0),
                bytes: 4.0 * (e * (ff + 2.0 * hh) + nn * (ff + 3.0 * hh)),
                run: Box::new(move || {
                    let mut state = OnlineAttnState::new(g.num_rows(), heads, d);
                    fused::gat_fused_block_forward(&g, &s_dst, &s_src, &x, slope, &mut state);
                    black_box(state.num.data()[0]);
                }),
            });
        }

        // The remaining kernels are attention-shaped and not very
        // sensitive to feature width; benchmark them once at f = 128.
        if f != 128 {
            continue;
        }
        let d = f / heads;
        {
            let (g, scores) = (Rc::clone(&g), scores.clone());
            cases.push(Case {
                name: "edge_softmax".into(),
                flops: 5.0 * e * hh,
                bytes: 4.0 * (2.0 * e * hh + 2.0 * nn * hh),
                run: Box::new(move || {
                    black_box(ops::edge_softmax(&g, &scores));
                }),
            });
        }
        {
            let (g, s_dst, s_src) = (Rc::clone(&g), s_dst.clone(), s_src.clone());
            cases.push(Case {
                name: "gat_edge_scores".into(),
                flops: 4.0 * e * hh,
                bytes: 4.0 * (2.0 * nn * hh + e * hh + e),
                run: Box::new(move || {
                    black_box(ops::gat_edge_scores(&g, &s_dst, &s_src, slope));
                }),
            });
        }
        {
            let (g, alpha, x, grad) = (Rc::clone(&g), alpha.clone(), x.clone(), grad.clone());
            cases.push(Case {
                name: "spmm_multihead_backward".into(),
                flops: 4.0 * e * ff,
                bytes: 4.0 * (2.0 * e * (ff + hh) + 2.0 * nn * ff),
                run: Box::new(move || {
                    black_box(ops::spmm_multihead_backward(&g, &alpha, &x, &grad));
                }),
            });
        }
        {
            let (g, s_dst, s_src, x) = (Rc::clone(&g), s_dst.clone(), s_src.clone(), x.clone());
            cases.push(Case {
                name: "gat_twostep_forward".into(),
                flops: e * hh * (2.0 * (d as f64) + 8.0),
                bytes: 4.0 * (e * (ff + 4.0 * hh) + nn * (ff + 3.0 * hh)),
                run: Box::new(move || {
                    let mut state = OnlineAttnState::new(g.num_rows(), heads, d);
                    fused::gat_twostep_block_forward(&g, &s_dst, &s_src, &x, slope, &mut state);
                    black_box(state.num.data()[0]);
                }),
            });
        }
        {
            let a = randn(&[f], 1.0, &mut rng);
            let x = x.clone();
            cases.push(Case {
                name: "head_project".into(),
                flops: 2.0 * nn * ff,
                bytes: 4.0 * (nn * ff + nn * hh + ff),
                run: Box::new(move || {
                    black_box(ops::head_project(&x, &a, heads));
                }),
            });
        }
    }
    cases
}

/// The dense matmul cases exercising the k-panel blocking (`matmul`,
/// `matmul_tn`) and the fixed-tree SIMD dot (`matmul_nt`).
fn matmul_cases(quick: bool) -> Vec<Case> {
    let (m, k, n) = if quick { (48, 32, 32) } else { (384, 256, 256) };
    let mut rng = StdRng::seed_from_u64(0xD07);
    let a = randn(&[m, k], 1.0, &mut rng);
    let at = randn(&[k, m], 1.0, &mut rng);
    let b = randn(&[k, n], 1.0, &mut rng);
    let bt = randn(&[n, k], 1.0, &mut rng);
    let flops = 2.0 * m as f64 * k as f64 * n as f64;
    let bytes = 4.0 * (m as f64 * k as f64 + k as f64 * n as f64 + m as f64 * n as f64);
    let mk = |name: &str, run: Box<dyn FnMut()>| Case {
        name: format!("{name}/{m}x{k}x{n}"),
        flops,
        bytes,
        run,
    };
    vec![
        {
            let (a, b) = (a.clone(), b.clone());
            mk(
                "matmul",
                Box::new(move || {
                    black_box(a.matmul(&b));
                }),
            )
        },
        {
            let (at, b) = (at.clone(), b.clone());
            mk(
                "matmul_tn",
                Box::new(move || {
                    black_box(at.matmul_tn(&b));
                }),
            )
        },
        {
            let (a, bt) = (a.clone(), bt.clone());
            mk(
                "matmul_nt",
                Box::new(move || {
                    black_box(a.matmul_nt(&bt));
                }),
            )
        },
    ]
}

/// Runs the full workload matrix under the *current* SIMD mode and pool
/// thread count and returns the report. `quick` shrinks sizes and time
/// budgets for tests.
pub fn run_bench(quick: bool) -> BenchReport {
    let (peak_gflops, stream_gbs) = calibrate(quick);
    let mut kernels = Vec::new();
    let mut cases = graph_cases(quick);
    cases.extend(matmul_cases(quick));
    for case in &mut cases {
        let t = time_case(&mut case.run, quick);
        let gflops = case.flops / (t.wall_us * 1e3);
        let ai = case.flops / case.bytes;
        let roofline = peak_gflops.min(stream_gbs * ai);
        kernels.push(KernelResult {
            name: case.name.clone(),
            iters: t.iters,
            wall_us: t.wall_us,
            cpu_us: t.cpu_us,
            gflops,
            ai,
            roofline_gflops: roofline,
            roofline_ratio: gflops / roofline,
        });
    }
    BenchReport {
        simd: simd::dispatch_label().to_string(),
        threads: pool::threads(),
        peak_gflops,
        stream_gbs,
        kernels,
    }
}

// ----------------------------------------------------------------------
// JSON report
// ----------------------------------------------------------------------

fn fmt_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".into()
    }
}

impl BenchReport {
    /// Serializes the report as the schema-versioned
    /// `BENCH_kernels.json` document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": \"{SCHEMA}\",");
        let _ = writeln!(s, "  \"simd\": \"{}\",", self.simd);
        let _ = writeln!(s, "  \"threads\": {},", self.threads);
        let _ = writeln!(
            s,
            "  \"calibration\": {{\"peak_gflops\": {}, \"stream_gbs\": {}}},",
            fmt_num(self.peak_gflops),
            fmt_num(self.stream_gbs)
        );
        s.push_str("  \"kernels\": [\n");
        for (i, k) in self.kernels.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"name\": \"{}\", \"iters\": {}, \"wall_us\": {}, \"cpu_us\": {}, \
                 \"gflops\": {}, \"ai_flops_per_byte\": {}, \"roofline_gflops\": {}, \
                 \"roofline_ratio\": {}}}",
                k.name,
                k.iters,
                fmt_num(k.wall_us),
                fmt_num(k.cpu_us),
                fmt_num(k.gflops),
                fmt_num(k.ai),
                fmt_num(k.roofline_gflops),
                fmt_num(k.roofline_ratio)
            );
            s.push_str(if i + 1 < self.kernels.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Writes [`BenchReport::to_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors as strings.
    pub fn write_json(&self, path: &str) -> Result<(), String> {
        std::fs::write(path, self.to_json()).map_err(|e| format!("cannot write {path}: {e}"))
    }
}

// ----------------------------------------------------------------------
// Minimal JSON parser (the workspace is dependency-free by design)
// ----------------------------------------------------------------------

mod json {
    //! A minimal recursive-descent JSON parser — just enough to read the
    //! workspace's own hand-written benchmark artifacts back.

    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any JSON number, as `f64`.
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, insertion-ordered.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// Object field lookup.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }
        /// The value as a string, if it is one.
        pub fn str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }
        /// The value as a number, if it is one.
        pub fn num(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }
        /// The value as an array slice, if it is one.
        pub fn arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items),
                _ => None,
            }
        }
    }

    struct Parser<'a> {
        b: &'a [u8],
        i: usize,
        depth: usize,
    }

    const MAX_DEPTH: usize = 64;

    impl<'a> Parser<'a> {
        fn skip_ws(&mut self) {
            while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
                self.i += 1;
            }
        }

        fn peek(&mut self) -> Result<u8, String> {
            self.skip_ws();
            self.b
                .get(self.i)
                .copied()
                .ok_or_else(|| format!("unexpected end of input at byte {}", self.i))
        }

        fn expect(&mut self, c: u8) -> Result<(), String> {
            let got = self.peek()?;
            if got != c {
                return Err(format!(
                    "expected '{}' at byte {}, found '{}'",
                    c as char, self.i, got as char
                ));
            }
            self.i += 1;
            Ok(())
        }

        fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
            if self.b[self.i..].starts_with(word.as_bytes()) {
                self.i += word.len();
                Ok(v)
            } else {
                Err(format!("invalid literal at byte {}", self.i))
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                let c = *self
                    .b
                    .get(self.i)
                    .ok_or_else(|| "unterminated string".to_string())?;
                self.i += 1;
                match c {
                    b'"' => return Ok(out),
                    b'\\' => {
                        let e = *self
                            .b
                            .get(self.i)
                            .ok_or_else(|| "unterminated escape".to_string())?;
                        self.i += 1;
                        match e {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b't' => out.push('\t'),
                            b'r' => out.push('\r'),
                            b'b' => out.push('\u{8}'),
                            b'f' => out.push('\u{c}'),
                            b'u' => {
                                let hex = self
                                    .b
                                    .get(self.i..self.i + 4)
                                    .ok_or_else(|| "truncated \\u escape".to_string())?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex)
                                        .map_err(|_| "bad \\u escape".to_string())?,
                                    16,
                                )
                                .map_err(|_| "bad \\u escape".to_string())?;
                                self.i += 4;
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| "bad \\u code point".to_string())?,
                                );
                            }
                            other => {
                                return Err(format!("unknown escape \\{}", other as char));
                            }
                        }
                    }
                    _ if c >= 0x80 => {
                        // Re-assemble the full multi-byte UTF-8 sequence.
                        let start = self.i - 1;
                        while self.b.get(self.i).is_some_and(|&b| b & 0xC0 == 0x80) {
                            self.i += 1;
                        }
                        out.push_str(
                            std::str::from_utf8(&self.b[start..self.i]).unwrap_or("\u{fffd}"),
                        );
                    }
                    _ => out.push(c as char),
                }
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.i;
            while self
                .b
                .get(self.i)
                .is_some_and(|c| matches!(c, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
            {
                self.i += 1;
            }
            std::str::from_utf8(&self.b[start..self.i])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Value::Num)
                .ok_or_else(|| format!("invalid number at byte {start}"))
        }

        fn value(&mut self) -> Result<Value, String> {
            self.depth += 1;
            if self.depth > MAX_DEPTH {
                return Err("JSON nesting too deep".into());
            }
            let v = match self.peek()? {
                b'{' => {
                    self.i += 1;
                    let mut fields = Vec::new();
                    if self.peek()? == b'}' {
                        self.i += 1;
                    } else {
                        loop {
                            self.skip_ws();
                            let key = self.string()?;
                            self.expect(b':')?;
                            let val = self.value()?;
                            fields.push((key, val));
                            match self.peek()? {
                                b',' => self.i += 1,
                                b'}' => {
                                    self.i += 1;
                                    break;
                                }
                                c => {
                                    return Err(format!(
                                        "expected ',' or '}}' at byte {}, found '{}'",
                                        self.i, c as char
                                    ))
                                }
                            }
                        }
                    }
                    Value::Obj(fields)
                }
                b'[' => {
                    self.i += 1;
                    let mut items = Vec::new();
                    if self.peek()? == b']' {
                        self.i += 1;
                    } else {
                        loop {
                            items.push(self.value()?);
                            match self.peek()? {
                                b',' => self.i += 1,
                                b']' => {
                                    self.i += 1;
                                    break;
                                }
                                c => {
                                    return Err(format!(
                                        "expected ',' or ']' at byte {}, found '{}'",
                                        self.i, c as char
                                    ))
                                }
                            }
                        }
                    }
                    Value::Arr(items)
                }
                b'"' => Value::Str(self.string()?),
                b't' => self.literal("true", Value::Bool(true))?,
                b'f' => self.literal("false", Value::Bool(false))?,
                b'n' => self.literal("null", Value::Null)?,
                _ => self.number()?,
            };
            self.depth -= 1;
            Ok(v)
        }
    }

    /// Parses a complete JSON document.
    ///
    /// # Errors
    ///
    /// Returns a byte-offset-bearing message on malformed input.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            b: text.as_bytes(),
            i: 0,
            depth: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(format!("trailing bytes after JSON value at byte {}", p.i));
        }
        Ok(v)
    }
}

pub use json::parse as parse_json;
pub use json::Value as JsonValue;

// ----------------------------------------------------------------------
// The CI gate
// ----------------------------------------------------------------------

/// Compares a fresh run against the committed `BENCH_kernels.json`.
///
/// Returns the violations (empty = gate passes). Hard-fails on a schema
/// or kernel-set mismatch (the baseline is stale — regenerate it);
/// per-kernel roofline ratios fail only below
/// `baseline × (1 − REL_TOLERANCE) − ABS_TOLERANCE`.
#[must_use]
pub fn check_against(current: &BenchReport, baseline_text: &str) -> Vec<String> {
    let base = match json::parse(baseline_text) {
        Ok(b) => b,
        Err(e) => return vec![format!("baseline JSON parse error: {e}")],
    };
    match base.get("schema").and_then(JsonValue::str) {
        Some(s) if s == SCHEMA => {}
        Some(s) => {
            return vec![format!(
                "baseline schema \"{s}\" does not match this binary's \"{SCHEMA}\" — \
                 regenerate with `repro kernelbench --out BENCH_kernels.json`"
            )]
        }
        None => return vec!["baseline has no \"schema\" field".into()],
    }
    let mut violations = Vec::new();
    let mut base_ratios: BTreeMap<String, f64> = BTreeMap::new();
    for k in base
        .get("kernels")
        .and_then(JsonValue::arr)
        .unwrap_or_default()
    {
        if let (Some(name), Some(ratio)) = (
            k.get("name").and_then(JsonValue::str),
            k.get("roofline_ratio").and_then(JsonValue::num),
        ) {
            base_ratios.insert(name.to_string(), ratio);
        }
    }
    if base_ratios.is_empty() {
        return vec!["baseline has no kernels — regenerate it".into()];
    }
    let current_names: BTreeMap<&str, f64> = current
        .kernels
        .iter()
        .map(|k| (k.name.as_str(), k.roofline_ratio))
        .collect();
    for name in base_ratios.keys() {
        if !current_names.contains_key(name.as_str()) {
            violations.push(format!(
                "kernel \"{name}\" is in the baseline but not in this run — \
                 the workload matrix changed; regenerate the baseline"
            ));
        }
    }
    for (name, &ratio) in &current_names {
        let Some(&base_ratio) = base_ratios.get(*name) else {
            violations.push(format!(
                "kernel \"{name}\" is new (not in the baseline) — regenerate the baseline"
            ));
            continue;
        };
        if !ratio.is_finite() {
            violations.push(format!("kernel \"{name}\" produced a non-finite ratio"));
            continue;
        }
        let floor = base_ratio * (1.0 - REL_TOLERANCE) - ABS_TOLERANCE;
        if ratio < floor {
            violations.push(format!(
                "kernel \"{name}\" regressed: roofline ratio {ratio:.4} is below the \
                 gate floor {floor:.4} (baseline {base_ratio:.4}, tolerance \
                 −{:.0}% −{ABS_TOLERANCE})",
                REL_TOLERANCE * 100.0
            ));
        }
    }
    violations
}

/// Pretty-prints the report as an aligned table on stderr.
pub fn print_table(report: &BenchReport) {
    eprintln!(
        "[kernelbench] simd={} threads={} peak={:.2} GFLOP/s stream={:.2} GB/s",
        report.simd, report.threads, report.peak_gflops, report.stream_gbs
    );
    eprintln!(
        "{:<28} {:>6} {:>12} {:>12} {:>9} {:>7} {:>9} {:>7}",
        "kernel", "iters", "wall_us", "cpu_us", "GFLOP/s", "AI", "roofline", "ratio"
    );
    for k in &report.kernels {
        eprintln!(
            "{:<28} {:>6} {:>12.1} {:>12.1} {:>9.3} {:>7.3} {:>9.3} {:>7.3}",
            k.name,
            k.iters,
            k.wall_us,
            k.cpu_us,
            k.gflops,
            k.ai,
            k.roofline_gflops,
            k.roofline_ratio
        );
    }
}

// ----------------------------------------------------------------------
// BENCH_overlap.json invariants (the committed-copy CI diff)
// ----------------------------------------------------------------------

/// Identity of one smoke run inside `BENCH_overlap.json`.
fn overlap_run_key(run: &JsonValue) -> Result<String, String> {
    let s = |k: &str| {
        run.get(k)
            .and_then(JsonValue::str)
            .map(str::to_string)
            .ok_or_else(|| format!("run record is missing string field \"{k}\""))
    };
    let n = |k: &str| {
        run.get(k)
            .and_then(JsonValue::num)
            .ok_or_else(|| format!("run record is missing numeric field \"{k}\""))
    };
    // `simd` is optional for pre-SIMD artifacts; default matches the
    // historical behaviour.
    let simd = run
        .get("simd")
        .and_then(JsonValue::str)
        .unwrap_or("auto")
        .to_string();
    Ok(format!(
        "{}/{}/t{}/d{}/{}",
        s("experiment")?,
        s("transport")?,
        n("threads")?,
        n("prefetch_depth")?,
        simd
    ))
}

/// Diffs a freshly generated `BENCH_overlap.json` against the committed
/// copy. Timings legitimately vary run to run, so the comparison covers
/// only *structure and invariants*:
///
/// * the run set (experiment, transport, threads, prefetch-depth, simd)
///   must be identical in both files,
/// * each run's phase-name set must match the committed run's,
/// * every phase must satisfy `0 ≤ blocked_us ≤ wall_us` and
///   `cpu_us ≥ 0` — blocked time is a measured subset of wall time, so
///   a violation means the ledger itself is corrupt. Phases the runtime
///   does not wall-clock (`wall_us == 0`, e.g. `collective`) only need
///   their entries non-negative.
///
/// Returns the violations (empty = the artifact is consistent).
#[must_use]
pub fn overlap_check(current_text: &str, committed_text: &str) -> Vec<String> {
    let mut violations = Vec::new();
    let parse_runs = |label: &str, text: &str| -> Result<BTreeMap<String, JsonValue>, String> {
        let doc = json::parse(text).map_err(|e| format!("{label}: JSON parse error: {e}"))?;
        let runs = doc
            .get("runs")
            .and_then(JsonValue::arr)
            .ok_or_else(|| format!("{label}: no \"runs\" array"))?;
        let mut out = BTreeMap::new();
        for run in runs {
            let key = overlap_run_key(run).map_err(|e| format!("{label}: {e}"))?;
            out.insert(key, run.clone());
        }
        Ok(out)
    };
    let current = match parse_runs("current", current_text) {
        Ok(c) => c,
        Err(e) => return vec![e],
    };
    let committed = match parse_runs("committed", committed_text) {
        Ok(c) => c,
        Err(e) => return vec![e],
    };
    for key in committed.keys() {
        if !current.contains_key(key) {
            violations.push(format!(
                "run {key} is in the committed BENCH_overlap.json but was not produced \
                 — the smoke matrix changed; regenerate the committed copy"
            ));
        }
    }
    let phase_names = |run: &JsonValue| -> Vec<String> {
        run.get("overlap")
            .and_then(|o| o.get("phases"))
            .and_then(JsonValue::arr)
            .unwrap_or_default()
            .iter()
            .filter_map(|p| p.get("phase").and_then(JsonValue::str).map(str::to_string))
            .collect()
    };
    for (key, run) in &current {
        let Some(base) = committed.get(key) else {
            violations.push(format!(
                "run {key} is new (not in the committed BENCH_overlap.json) — \
                 regenerate the committed copy"
            ));
            continue;
        };
        let (mut cur_phases, mut base_phases) = (phase_names(run), phase_names(base));
        cur_phases.sort();
        base_phases.sort();
        if cur_phases != base_phases {
            violations.push(format!(
                "run {key}: phase set {cur_phases:?} differs from committed {base_phases:?}"
            ));
        }
        for p in run
            .get("overlap")
            .and_then(|o| o.get("phases"))
            .and_then(JsonValue::arr)
            .unwrap_or_default()
        {
            let name = p.get("phase").and_then(JsonValue::str).unwrap_or("?");
            let f = |k: &str| p.get(k).and_then(JsonValue::num);
            let (wall, blocked, cpu) = (f("wall_us"), f("blocked_us"), f("cpu_us"));
            match (wall, blocked, cpu) {
                (Some(w), Some(b), Some(c)) => {
                    if !(b >= 0.0 && w >= 0.0 && c >= 0.0) {
                        violations.push(format!(
                            "run {key} phase {name}: negative ledger entry \
                             (wall={w}, blocked={b}, cpu={c})"
                        ));
                    }
                    // Blocked time is measured inside the wall interval;
                    // allow a microscopic slack for summed rounding. A
                    // zero wall means the runtime never clocks the phase
                    // (the collective gather) — blocked alone is fine.
                    if w > 0.0 && b > w * (1.0 + 1e-9) + 1.0 {
                        violations.push(format!(
                            "run {key} phase {name}: blocked_us {b} exceeds wall_us {w} \
                             — the overlap ledger is inconsistent"
                        ));
                    }
                }
                _ => violations.push(format!(
                    "run {key} phase {name}: missing wall_us/blocked_us/cpu_us"
                )),
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        BenchReport {
            simd: "avx2".into(),
            threads: 1,
            peak_gflops: 10.0,
            stream_gbs: 20.0,
            kernels: vec![
                KernelResult {
                    name: "spmm_sum/f32".into(),
                    iters: 10,
                    wall_us: 100.0,
                    cpu_us: 110.0,
                    gflops: 2.0,
                    ai: 0.25,
                    roofline_gflops: 5.0,
                    roofline_ratio: 0.4,
                },
                KernelResult {
                    name: "matmul/384x256x256".into(),
                    iters: 5,
                    wall_us: 2000.0,
                    cpu_us: 2100.0,
                    gflops: 8.0,
                    ai: 60.0,
                    roofline_gflops: 10.0,
                    roofline_ratio: 0.8,
                },
            ],
        }
    }

    #[test]
    fn report_json_round_trips_through_own_parser() {
        let r = sample_report();
        let doc = json::parse(&r.to_json()).expect("own JSON must parse");
        assert_eq!(doc.get("schema").and_then(JsonValue::str), Some(SCHEMA));
        assert_eq!(doc.get("threads").and_then(JsonValue::num), Some(1.0));
        let kernels = doc.get("kernels").and_then(JsonValue::arr).unwrap();
        assert_eq!(kernels.len(), 2);
        assert_eq!(
            kernels[1].get("name").and_then(JsonValue::str),
            Some("matmul/384x256x256")
        );
        assert_eq!(
            kernels[0].get("roofline_ratio").and_then(JsonValue::num),
            Some(0.4)
        );
    }

    #[test]
    fn parser_handles_escapes_literals_and_rejects_garbage() {
        let v = json::parse(r#"{"a": "x\n\"y\"", "b": [true, false, null, -1.5e2]}"#).unwrap();
        assert_eq!(v.get("a").and_then(JsonValue::str), Some("x\n\"y\""));
        let b = v.get("b").and_then(JsonValue::arr).unwrap();
        assert_eq!(b[3].num(), Some(-150.0));
        assert!(json::parse("{\"a\": }").is_err());
        assert!(json::parse("[1, 2").is_err());
        assert!(json::parse("{} trailing").is_err());
    }

    #[test]
    fn check_passes_against_itself() {
        let r = sample_report();
        assert!(check_against(&r, &r.to_json()).is_empty());
    }

    #[test]
    fn check_fails_on_regression_within_tolerance_band() {
        let r = sample_report();
        let baseline = r.to_json();
        let mut slow = r.clone();
        // Within tolerance: half the baseline ratio is still allowed.
        slow.kernels[1].roofline_ratio = 0.45;
        assert!(check_against(&slow, &baseline).is_empty());
        // Beyond tolerance: must fail.
        slow.kernels[1].roofline_ratio = 0.1;
        let v = check_against(&slow, &baseline);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("matmul"), "{v:?}");
    }

    #[test]
    fn check_fails_on_schema_and_kernel_set_mismatch() {
        let r = sample_report();
        let stale = r.to_json().replace(SCHEMA, "sar-kernelbench/v0");
        assert!(check_against(&r, &stale)[0].contains("schema"));
        let mut extra = r.clone();
        extra.kernels.push(KernelResult {
            name: "brand_new".into(),
            ..r.kernels[0].clone()
        });
        assert!(check_against(&extra, &r.to_json())
            .iter()
            .any(|v| v.contains("brand_new")));
        let mut fewer = r.clone();
        fewer.kernels.pop();
        assert!(check_against(&fewer, &r.to_json())
            .iter()
            .any(|v| v.contains("matmul")));
        assert!(!check_against(&r, "not json at all").is_empty());
    }

    #[test]
    fn quick_bench_produces_finite_parseable_report() {
        let r = run_bench(true);
        assert!(!r.kernels.is_empty());
        for k in &r.kernels {
            assert!(k.wall_us > 0.0, "{}", k.name);
            assert!(k.gflops.is_finite(), "{}", k.name);
            assert!(k.roofline_ratio.is_finite(), "{}", k.name);
        }
        assert!(json::parse(&r.to_json()).is_ok());
        assert!(check_against(&r, &r.to_json()).is_empty());
    }

    const OVERLAP: &str = r#"{"runs": [
        {"experiment": "smoke-sage", "transport": "tcp", "threads": 1,
         "prefetch_depth": 0, "simd": "auto",
         "overlap": {"phases": [{"phase": "fetch", "wall_us": 10.0,
          "blocked_us": 4.0, "comm_us": 3.0, "cpu_us": 6.0}]}}
    ]}"#;

    #[test]
    fn overlap_check_accepts_consistent_and_flags_drift() {
        assert!(overlap_check(OVERLAP, OVERLAP).is_empty());
        // Timings may differ freely.
        let retimed = OVERLAP.replace("10.0", "99.0");
        assert!(overlap_check(&retimed, OVERLAP).is_empty());
        // A missing run is structural drift.
        let empty = r#"{"runs": []}"#;
        assert!(overlap_check(empty, OVERLAP)
            .iter()
            .any(|v| v.contains("not produced")));
        assert!(overlap_check(OVERLAP, empty)
            .iter()
            .any(|v| v.contains("new")));
        // blocked > wall is a corrupt ledger.
        let corrupt = OVERLAP.replace("\"blocked_us\": 4.0", "\"blocked_us\": 40.0");
        assert!(overlap_check(&corrupt, OVERLAP)
            .iter()
            .any(|v| v.contains("exceeds wall_us")));
        // ... unless the phase is one the runtime never wall-clocks
        // (wall_us == 0, like the collective gather): blocked alone is
        // legitimate there.
        let untimed = OVERLAP.replace("\"wall_us\": 10.0", "\"wall_us\": 0.0");
        assert!(overlap_check(&untimed, &untimed).is_empty());
    }
}
