//! `repro outofcorebench` — the out-of-core tiering benchmark with a
//! committed, CI-gated `BENCH_outofcore.json`.
//!
//! Two halves, both exercising the real `sar_tensor::tier` machinery:
//!
//! * **Sweep** — an out-of-core microbenchmark over the tier + staging
//!   primitives. A synthetic `[rows, F]` feature matrix is ingested into
//!   a budgeted [`TieredStore`] chunk by chunk (everything past the
//!   budget spills to the mmap arena as it arrives, so the matrix is
//!   never fully resident), then swept for several epochs with the same
//!   depth-`k` rotation schedule the trainer uses
//!   ([`sar_core::plan::fetch_steps`]) — `Fetch` steps become disk
//!   faults, `Consume` steps accumulate deterministically and put the
//!   chunk back. The graph scale grows 8× across the sweep while the
//!   budget stays fixed: peak resident tensor bytes must stay flat
//!   (within [`FLATNESS`]), and the result digest must be bitwise
//!   identical to an unbounded (never-spilling) store's.
//!
//! * **Parity** — end-to-end training runs of the smoke GAT workload
//!   with `--mem-budget` on vs off, across transports, thread counts,
//!   prefetch depths and exchange protocols. The two runs'
//!   [`RunReport::parity_digest`]s must be identical — spilling
//!   rematerialization inputs and stale-protocol cache blocks to disk
//!   cannot perturb training by a single bit.
//!
//! Following the `BENCH_kernels.json` precedent, the gate never compares
//! timings — elapsed times are recorded for human eyes only. It checks
//! schema/run-set identity, digest determinism (fresh vs committed),
//! spill/fault engagement, memory flatness and digest parity.

use std::collections::VecDeque;
use std::path::Path;

use sar_core::plan::{self, FetchStep};
use sar_tensor::tier::TieredStore;
use sar_tensor::{MemoryTracker, Tensor};

use crate::compressbench::fingerprint;
use crate::kernelbench::{parse_json, JsonValue};
use crate::report::RunReport;
use crate::{launcher, smoke};

/// Schema tag written into (and required from) `BENCH_outofcore.json`.
/// Bump whenever the sweep shape, the parity grid or the field layout
/// change; the gate refuses to compare across schema versions.
pub const SCHEMA: &str = "sar-outofcorebench/v1";

/// How far the largest sweep scale's peak resident bytes may exceed the
/// smallest scale's before the gate fails. The working set is
/// budget-derived, not graph-derived, so the ratio sits near 1 by
/// construction; 1.25 absorbs partial-chunk and allocator jitter.
pub const FLATNESS: f64 = 1.25;

/// Epochs of rotation sweeps per scale.
const SWEEP_EPOCHS: usize = 2;

/// The benchmark workload: everything needed to rebuild every run
/// deterministically.
#[derive(Debug, Clone)]
pub struct OocBenchConfig {
    /// Rows of the synthetic feature matrix at scale 1.
    pub base_rows: usize,
    /// Feature width of the synthetic matrix.
    pub feat_dim: usize,
    /// Resident-tensor budget (bytes) for the sweep's tiered store.
    pub budget_bytes: u64,
    /// Depth of the staging pipeline the sweep faults through.
    pub prefetch_depth: usize,
    /// Row multipliers swept (peak memory must stay flat across them).
    pub scales: Vec<usize>,
    /// Cluster size for the parity training runs.
    pub world: usize,
    /// Synthetic dataset node count for the parity training runs.
    pub nodes: usize,
    /// `--mem-budget` for the budgeted parity runs (bytes). Tight enough
    /// that both the stale cache blocks (tens of KiB each) and the GAT
    /// rematerialization inputs (a few KiB per layer) must spill.
    pub train_budget: u64,
    /// Seed for the parity workloads.
    pub seed: u64,
    /// Transports the parity grid runs (`"sim"`, `"tcp"`).
    pub transports: Vec<String>,
    /// Trim the sweep and skip the TCP parity cells for local iteration
    /// (the committed artifact is always generated at full scale).
    pub quick: bool,
}

impl Default for OocBenchConfig {
    fn default() -> Self {
        OocBenchConfig {
            base_rows: 2048,
            feat_dim: 64,
            budget_bytes: 96 * 1024,
            prefetch_depth: 2,
            scales: vec![1, 2, 4, 8],
            world: 4,
            nodes: 1200,
            train_budget: 8 * 1024,
            seed: 0,
            transports: vec!["sim".into(), "tcp".into()],
            quick: false,
        }
    }
}

/// One sweep scale's measured run.
#[derive(Debug, Clone)]
pub struct SweepRun {
    /// Row multiplier over `base_rows`.
    pub scale: usize,
    /// Total matrix rows at this scale.
    pub rows: usize,
    /// Chunk count the matrix was split into.
    pub chunks: usize,
    /// Rows per chunk (budget-derived, identical across scales).
    pub chunk_rows: usize,
    /// Peak resident tensor bytes over ingest + sweep (the gated value).
    pub peak_resident_bytes: u64,
    /// Bytes spilled to the mmap arena.
    pub spill_bytes: u64,
    /// Bytes faulted back from the arena.
    pub fault_bytes: u64,
    /// FNV-1a 64 over the accumulator's f32 bit patterns.
    pub digest: String,
    /// The same accumulation through an unbounded (never-spilling)
    /// store — must equal `digest`.
    pub unbounded_digest: String,
    /// Wall time, milliseconds — recorded for humans, never gated.
    pub elapsed_ms: f64,
}

/// One parity grid cell: the same training run with `--mem-budget` on
/// and off.
#[derive(Debug, Clone)]
pub struct ParityRun {
    /// `"sim"` or `"tcp"`.
    pub transport: String,
    /// Exchange protocol (`"exact"` exercises remat spilling, `"stale:<r>"`
    /// additionally spills the cached protocol blocks).
    pub protocol: String,
    /// Intra-worker kernel threads.
    pub threads: usize,
    /// Fetch-pipeline depth.
    pub prefetch_depth: usize,
    /// `--mem-budget` of the budgeted run (bytes).
    pub budget_bytes: u64,
    /// FNV-1a 64 fingerprint of the budgeted run's parity digest.
    pub digest_budget: String,
    /// Fingerprint of the unbudgeted (`--mem-budget 0`) run's digest —
    /// must equal `digest_budget`.
    pub digest_unbounded: String,
    /// Bytes the budgeted run spilled, summed over ranks and phases.
    pub spill_bytes: u64,
    /// Bytes the budgeted run faulted back.
    pub fault_bytes: u64,
}

/// A full outofcorebench run: the workload identity plus results.
#[derive(Debug, Clone)]
pub struct OocBenchReport {
    /// Sweep matrix rows at scale 1.
    pub base_rows: usize,
    /// Sweep matrix feature width.
    pub feat_dim: usize,
    /// Sweep store budget (bytes).
    pub budget_bytes: u64,
    /// Sweep staging depth.
    pub prefetch_depth: usize,
    /// Per-scale sweep runs, ascending scale.
    pub sweep: Vec<SweepRun>,
    /// Parity grid results, sim first, then tcp.
    pub parity: Vec<ParityRun>,
}

// ----------------------------------------------------------------------
// The out-of-core sweep
// ----------------------------------------------------------------------

/// Deterministic synthetic feature chunk: pure integer-derived f32
/// values, bitwise identical on every platform.
fn synth_chunk(global_row0: usize, rows: usize, f: usize) -> Tensor {
    let mut data = Vec::with_capacity(rows * f);
    for r in 0..rows {
        let i = global_row0 + r;
        for j in 0..f {
            data.push(((i * 31 + j * 7) % 97) as f32 * 0.015_625);
        }
    }
    Tensor::from_vec(&[rows, f], data)
}

/// Ingests the `[rows, f]` matrix into a store with the given budget and
/// sweeps it for [`SWEEP_EPOCHS`] rotations of the depth-`k` schedule.
/// Returns the accumulator digest; the caller reads the tier counters
/// and the memory peak around this call.
fn sweep_store(
    rows: usize,
    f: usize,
    chunk_rows: usize,
    k: usize,
    budget: u64,
) -> Result<String, String> {
    let err = |what: &str, e: sar_tensor::tier::TierError| format!("{what}: {e}");
    let mut store = TieredStore::new(budget).map_err(|e| err("store", e))?;
    let n = rows.div_ceil(chunk_rows);
    for c in 0..n {
        let r0 = c * chunk_rows;
        let nr = chunk_rows.min(rows - r0);
        store
            .put(c as u64, synth_chunk(r0, nr, f))
            .map_err(|e| err("ingest", e))?;
    }
    let mut acc = vec![0f32; f];
    for epoch in 0..SWEEP_EPOCHS {
        // A different perspective each epoch rotates the consumption
        // order, like a different rank's schedule.
        let p = epoch % n;
        let mut staged: VecDeque<(usize, Tensor)> = VecDeque::new();
        for step in plan::fetch_steps(n, p, k) {
            match step {
                FetchStep::GatherLocal => {
                    staged.push_back((p, store.take(p as u64).map_err(|e| err("gather", e))?));
                }
                // No peer to serve in the single-process sweep.
                FetchStep::Serve { .. } => {}
                FetchStep::Fetch { src, .. } => {
                    // The disk prefetch: faulting here, ahead of the
                    // consume, is what hides disk latency behind compute
                    // exactly like the network prefetch hides the wire.
                    staged.push_back((src, store.take(src as u64).map_err(|e| err("fault", e))?));
                }
                FetchStep::Consume { q } => {
                    let (id, t) = staged.pop_front().ok_or("staging queue underrun")?;
                    if id != q {
                        return Err(format!("consumed chunk {id}, schedule expected {q}"));
                    }
                    let d = t.data();
                    for r in 0..t.rows() {
                        for (j, a) in acc.iter_mut().enumerate() {
                            *a += d[r * f + j];
                        }
                    }
                    store.put(id as u64, t).map_err(|e| err("put-back", e))?;
                }
            }
        }
        if !staged.is_empty() {
            return Err(format!(
                "{} chunks left staged after the sweep",
                staged.len()
            ));
        }
    }
    let bits: String = acc.iter().map(|v| format!("{:08x}", v.to_bits())).collect();
    Ok(fingerprint(&bits))
}

/// Runs one sweep scale: the budgeted store (measured) and the unbounded
/// baseline (digest only).
fn run_scale(cfg: &OocBenchConfig, scale: usize) -> Result<SweepRun, String> {
    let f = cfg.feat_dim;
    let k = cfg.prefetch_depth;
    // Fit (k+2) staged chunks plus headroom for the accumulator and the
    // in-flight copy inside the budget, so the working set is
    // budget-derived and independent of the matrix size.
    let chunk_rows = ((cfg.budget_bytes as usize / (4 * f)) / (k + 4)).max(1);
    let rows = cfg.base_rows * scale;
    let chunks = rows.div_ceil(chunk_rows);
    eprintln!(
        "[outofcorebench] sweep: scale {scale} — {rows} x {f} rows in {chunks} chunks, \
         budget {} KiB, depth {k} ...",
        cfg.budget_bytes / 1024
    );
    let start = std::time::Instant::now();
    let _ = sar_tensor::tier::take_tier_counters();
    MemoryTracker::reset_peak();
    let before = MemoryTracker::stats().current_bytes;
    let digest = sweep_store(rows, f, chunk_rows, k, cfg.budget_bytes)?;
    let peak = MemoryTracker::stats().peak_bytes.saturating_sub(before) as u64;
    let (spill_bytes, fault_bytes, _) = sar_tensor::tier::take_tier_counters();
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    // The unbounded baseline holds every chunk resident — nothing ever
    // touches disk, so a digest match proves the round-trips exact.
    let unbounded_digest = sweep_store(rows, f, chunk_rows, k, u64::MAX)?;
    let _ = sar_tensor::tier::take_tier_counters();
    Ok(SweepRun {
        scale,
        rows,
        chunks,
        chunk_rows,
        peak_resident_bytes: peak,
        spill_bytes,
        fault_bytes,
        digest,
        unbounded_digest,
        elapsed_ms,
    })
}

// ----------------------------------------------------------------------
// The training parity grid
// ----------------------------------------------------------------------

/// One parity grid cell: `(protocol, threads, prefetch_depth)`.
type Cell = (&'static str, usize, usize);

/// The simulated-transport parity grid. GAT everywhere — its saved
/// softmax statistics are the rematerialization inputs that spill.
#[must_use]
pub fn sim_grid(quick: bool) -> Vec<Cell> {
    let mut g = vec![("stale:2", 1, 0), ("exact", 1, 2)];
    if !quick {
        g.push(("stale:2", 2, 2));
    }
    g
}

/// The TCP subset: one stale cell pins the multi-process path; the full
/// run adds an exact/threaded cell.
#[must_use]
pub fn tcp_grid(quick: bool) -> Vec<Cell> {
    if quick {
        return Vec::new();
    }
    vec![("stale:2", 1, 2), ("exact", 2, 0)]
}

fn cell_workload(
    cfg: &OocBenchConfig,
    (protocol, threads, depth): Cell,
    budget: u64,
) -> Result<crate::distrun::Workload, String> {
    let mut wl = smoke::workload("gat", cfg.nodes, cfg.seed)?;
    wl.protocol = protocol.to_string();
    wl.threads = threads;
    wl.prefetch_depth = depth;
    wl.mem_budget = budget;
    Ok(wl)
}

/// Sums a phase counter over every rank and phase row of a report.
fn report_sum(report: &RunReport, pick: impl Fn(&crate::report::PhaseRow) -> u64) -> u64 {
    report
        .workers
        .iter()
        .flat_map(|w| w.phases.iter())
        .map(&pick)
        .sum()
}

fn run_parity_sim(cfg: &OocBenchConfig, cell: Cell) -> Result<ParityRun, String> {
    let (protocol, threads, depth) = cell;
    let mut digests = Vec::new();
    let mut spill = 0;
    let mut fault = 0;
    for budget in [cfg.train_budget, 0] {
        let wl = cell_workload(cfg, cell, budget)?;
        let (dataset, part) = wl.build_data(cfg.world)?;
        let tcfg = wl.train_config(&dataset)?;
        eprintln!(
            "[outofcorebench] sim parity: gat protocol={protocol} threads={threads} \
             depth={depth} mem-budget={budget} ..."
        );
        let run = sar_core::train(&dataset, &part, sar_comm::CostModel::default(), &tcfg);
        let report = RunReport::from_train("outofcorebench", "gat", &wl.mode, &run);
        if budget > 0 {
            spill = report_sum(&report, |p| p.spill_bytes);
            fault = report_sum(&report, |p| p.fault_bytes);
        }
        digests.push(fingerprint(&report.parity_digest()));
    }
    Ok(ParityRun {
        transport: "sim".into(),
        protocol: protocol.into(),
        threads,
        prefetch_depth: depth,
        budget_bytes: cfg.train_budget,
        digest_budget: digests[0].clone(),
        digest_unbounded: digests[1].clone(),
        spill_bytes: spill,
        fault_bytes: fault,
    })
}

/// Sums one numeric field over every rank's phase rows of a gathered
/// `RunReport` JSON document.
fn json_phase_sum(doc: &JsonValue, key: &str) -> u64 {
    doc.get("workers")
        .and_then(JsonValue::arr)
        .unwrap_or_default()
        .iter()
        .flat_map(|w| w.get("phases").and_then(JsonValue::arr).unwrap_or_default())
        .filter_map(|row| row.get(key).and_then(JsonValue::num))
        .map(|v| v as u64)
        .sum()
}

fn run_parity_tcp(exe: &Path, cfg: &OocBenchConfig, cell: Cell) -> Result<ParityRun, String> {
    let (protocol, threads, depth) = cell;
    let mut digests = Vec::new();
    let mut spill = 0;
    let mut fault = 0;
    for budget in [cfg.train_budget, 0] {
        let wl = cell_workload(cfg, cell, budget)?;
        let uniq = format!(
            "{}-{}-t{threads}-d{depth}-b{budget}",
            std::process::id(),
            protocol.replace(':', "-")
        );
        let out = std::env::temp_dir().join(format!("sar-oocbench-{uniq}.json"));
        let digest_path = std::env::temp_dir().join(format!("sar-oocbench-{uniq}.digest"));
        let mut args = wl.to_args();
        args.extend([
            "--experiment".to_string(),
            format!("outofcorebench-{protocol}-b{budget}"),
            "--out".to_string(),
            out.display().to_string(),
            "--digest-out".to_string(),
            digest_path.display().to_string(),
        ]);
        eprintln!(
            "[outofcorebench] tcp parity: gat protocol={protocol} threads={threads} \
             depth={depth} mem-budget={budget} ..."
        );
        let result = (|| -> Result<(), String> {
            launcher::spawn_ranks(exe, cfg.world, &args)?;
            let d = std::fs::read_to_string(&digest_path)
                .map_err(|e| format!("rank 0 wrote no digest at {}: {e}", digest_path.display()))?;
            digests.push(fingerprint(&d));
            if budget > 0 {
                let text = std::fs::read_to_string(&out)
                    .map_err(|e| format!("rank 0 wrote no report at {}: {e}", out.display()))?;
                let doc = parse_json(&text).map_err(|e| format!("gathered report: {e}"))?;
                spill = json_phase_sum(&doc, "spill_bytes");
                fault = json_phase_sum(&doc, "fault_bytes");
            }
            Ok(())
        })();
        let _ = std::fs::remove_file(&out);
        let _ = std::fs::remove_file(&digest_path);
        result.map_err(|e| format!("{protocol}/t{threads}/d{depth}: {e}"))?;
    }
    Ok(ParityRun {
        transport: "tcp".into(),
        protocol: protocol.into(),
        threads,
        prefetch_depth: depth,
        budget_bytes: cfg.train_budget,
        digest_budget: digests[0].clone(),
        digest_unbounded: digests[1].clone(),
        spill_bytes: spill,
        fault_bytes: fault,
    })
}

/// Runs the full benchmark: the memory-flatness sweep, then the parity
/// grid (sim in-process, the TCP subset as real OS processes).
///
/// # Errors
///
/// Propagates store, workload, spawn and report-parsing failures, naming
/// the scale or grid cell.
pub fn run_oocbench(cfg: &OocBenchConfig) -> Result<OocBenchReport, String> {
    let scales: Vec<usize> = if cfg.quick {
        cfg.scales
            .iter()
            .copied()
            .filter(|&s| {
                s == *cfg.scales.first().unwrap_or(&1) || s == *cfg.scales.last().unwrap_or(&1)
            })
            .collect()
    } else {
        cfg.scales.clone()
    };
    let mut sweep = Vec::new();
    for scale in scales {
        sweep.push(run_scale(cfg, scale).map_err(|e| format!("sweep scale {scale}: {e}"))?);
    }
    let mut parity = Vec::new();
    if cfg.transports.iter().any(|t| t == "sim") {
        for cell in sim_grid(cfg.quick) {
            parity.push(run_parity_sim(cfg, cell)?);
        }
    }
    if cfg.transports.iter().any(|t| t == "tcp") && !cfg.quick {
        let exe = launcher::sibling_binary("sar-worker")?;
        for cell in tcp_grid(cfg.quick) {
            parity.push(run_parity_tcp(&exe, cfg, cell)?);
        }
    }
    Ok(OocBenchReport {
        base_rows: cfg.base_rows,
        feat_dim: cfg.feat_dim,
        budget_bytes: cfg.budget_bytes,
        prefetch_depth: cfg.prefetch_depth,
        sweep,
        parity,
    })
}

// ----------------------------------------------------------------------
// Serialization
// ----------------------------------------------------------------------

impl OocBenchReport {
    /// The report as the `BENCH_outofcore.json` document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\n  \"schema\": \"{SCHEMA}\",\n  \"base_rows\": {},\n  \"feat_dim\": {},\n  \
             \"budget_bytes\": {},\n  \"prefetch_depth\": {},\n  \"sweep\": [\n",
            self.base_rows, self.feat_dim, self.budget_bytes, self.prefetch_depth
        );
        for (i, r) in self.sweep.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"scale\": {}, \"rows\": {}, \"chunks\": {}, \"chunk_rows\": {}, \
                 \"peak_resident_bytes\": {}, \"spill_bytes\": {}, \"fault_bytes\": {}, \
                 \"digest\": \"{}\", \"unbounded_digest\": \"{}\", \"elapsed_ms\": {:.3}}}{}\n",
                r.scale,
                r.rows,
                r.chunks,
                r.chunk_rows,
                r.peak_resident_bytes,
                r.spill_bytes,
                r.fault_bytes,
                r.digest,
                r.unbounded_digest,
                r.elapsed_ms,
                if i + 1 < self.sweep.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n  \"parity\": [\n");
        for (i, r) in self.parity.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"transport\": \"{}\", \"protocol\": \"{}\", \"threads\": {}, \
                 \"prefetch_depth\": {}, \"budget_bytes\": {}, \"digest_budget\": \"{}\", \
                 \"digest_unbounded\": \"{}\", \"spill_bytes\": {}, \"fault_bytes\": {}}}{}\n",
                r.transport,
                r.protocol,
                r.threads,
                r.prefetch_depth,
                r.budget_bytes,
                r.digest_budget,
                r.digest_unbounded,
                r.spill_bytes,
                r.fault_bytes,
                if i + 1 < self.parity.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Writes the JSON document to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the IO failure, naming the path.
    pub fn write_json(&self, path: &str) -> Result<(), String> {
        std::fs::write(path, self.to_json()).map_err(|e| format!("cannot write {path}: {e}"))
    }
}

/// Parses a `BENCH_outofcore.json` document back into a report.
///
/// # Errors
///
/// Rejects malformed JSON or missing fields with a message naming the
/// field.
pub fn parse_report(text: &str) -> Result<OocBenchReport, String> {
    let doc = parse_json(text)?;
    let schema = doc.get("schema").and_then(JsonValue::str).unwrap_or("");
    if schema != SCHEMA {
        return Err(format!(
            "schema mismatch: committed \"{schema}\", current \"{SCHEMA}\""
        ));
    }
    let num = |v: &JsonValue, k: &str| -> Result<f64, String> {
        v.get(k)
            .and_then(JsonValue::num)
            .ok_or_else(|| format!("missing field {k}"))
    };
    let st = |v: &JsonValue, k: &str| -> Result<String, String> {
        v.get(k)
            .and_then(JsonValue::str)
            .map(str::to_string)
            .ok_or_else(|| format!("missing field {k}"))
    };
    let mut sweep = Vec::new();
    for r in doc
        .get("sweep")
        .and_then(JsonValue::arr)
        .unwrap_or_default()
    {
        sweep.push(SweepRun {
            scale: num(r, "scale")? as usize,
            rows: num(r, "rows")? as usize,
            chunks: num(r, "chunks")? as usize,
            chunk_rows: num(r, "chunk_rows")? as usize,
            peak_resident_bytes: num(r, "peak_resident_bytes")? as u64,
            spill_bytes: num(r, "spill_bytes")? as u64,
            fault_bytes: num(r, "fault_bytes")? as u64,
            digest: st(r, "digest")?,
            unbounded_digest: st(r, "unbounded_digest")?,
            elapsed_ms: num(r, "elapsed_ms")?,
        });
    }
    let mut parity = Vec::new();
    for r in doc
        .get("parity")
        .and_then(JsonValue::arr)
        .unwrap_or_default()
    {
        parity.push(ParityRun {
            transport: st(r, "transport")?,
            protocol: st(r, "protocol")?,
            threads: num(r, "threads")? as usize,
            prefetch_depth: num(r, "prefetch_depth")? as usize,
            budget_bytes: num(r, "budget_bytes")? as u64,
            digest_budget: st(r, "digest_budget")?,
            digest_unbounded: st(r, "digest_unbounded")?,
            spill_bytes: num(r, "spill_bytes")? as u64,
            fault_bytes: num(r, "fault_bytes")? as u64,
        });
    }
    Ok(OocBenchReport {
        base_rows: num(&doc, "base_rows")? as usize,
        feat_dim: num(&doc, "feat_dim")? as usize,
        budget_bytes: num(&doc, "budget_bytes")? as u64,
        prefetch_depth: num(&doc, "prefetch_depth")? as usize,
        sweep,
        parity,
    })
}

// ----------------------------------------------------------------------
// The gate
// ----------------------------------------------------------------------

/// Invariants a single report must satisfy on its own (applied to both
/// the fresh and the committed copy).
fn self_check(tag: &str, r: &OocBenchReport) -> Vec<String> {
    let mut v = Vec::new();
    if r.sweep.is_empty() {
        v.push(format!("{tag}: empty sweep"));
        return v;
    }
    for s in &r.sweep {
        if s.digest != s.unbounded_digest {
            v.push(format!(
                "{tag}: sweep scale {} digest {} != unbounded {} — the disk round-trip \
                 perturbed the result bits",
                s.scale, s.digest, s.unbounded_digest
            ));
        }
        if s.spill_bytes == 0 || s.fault_bytes == 0 {
            v.push(format!(
                "{tag}: sweep scale {} spilled {}B / faulted {}B — the budget never \
                 engaged the disk tier",
                s.scale, s.spill_bytes, s.fault_bytes
            ));
        }
    }
    let min_peak = r
        .sweep
        .iter()
        .map(|s| s.peak_resident_bytes)
        .min()
        .unwrap_or(0);
    let max_peak = r
        .sweep
        .iter()
        .map(|s| s.peak_resident_bytes)
        .max()
        .unwrap_or(0);
    let min_rows = r.sweep.iter().map(|s| s.rows).min().unwrap_or(0);
    let max_rows = r.sweep.iter().map(|s| s.rows).max().unwrap_or(0);
    if min_rows == 0 || max_rows < 4 * min_rows {
        v.push(format!(
            "{tag}: sweep only spans {min_rows}..{max_rows} rows — the flatness claim \
             needs at least 4x growth"
        ));
    }
    if min_peak == 0 || max_peak as f64 > min_peak as f64 * FLATNESS {
        v.push(format!(
            "{tag}: peak resident bytes grew {min_peak} -> {max_peak} across the sweep \
             (tolerance {FLATNESS}x) — out-of-core memory is not flat"
        ));
    }
    for p in &r.parity {
        let cell = format!(
            "{}/{} t{} d{}",
            p.transport, p.protocol, p.threads, p.prefetch_depth
        );
        if p.digest_budget != p.digest_unbounded {
            v.push(format!(
                "{tag}: parity {cell}: budgeted digest {} != unbudgeted {} — spilling \
                 changed training",
                p.digest_budget, p.digest_unbounded
            ));
        }
        if p.spill_bytes == 0 || p.fault_bytes == 0 {
            v.push(format!(
                "{tag}: parity {cell}: spilled {}B / faulted {}B under --mem-budget {} — \
                 the budget never engaged the disk tier",
                p.spill_bytes, p.fault_bytes, p.budget_bytes
            ));
        }
    }
    v
}

/// Diffs a fresh report against the committed artifact. Returns the
/// violations found (empty = gate passes). Never compares timings.
#[must_use]
pub fn check_against(current: &OocBenchReport, committed_text: &str) -> Vec<String> {
    let committed = match parse_report(committed_text) {
        Ok(c) => c,
        Err(e) => return vec![format!("committed artifact: {e}")],
    };
    let mut v = Vec::new();
    if (
        current.base_rows,
        current.feat_dim,
        current.budget_bytes,
        current.prefetch_depth,
    ) != (
        committed.base_rows,
        committed.feat_dim,
        committed.budget_bytes,
        committed.prefetch_depth,
    ) {
        v.push(
            "sweep configuration differs from the committed artifact — regenerate it with \
             `repro outofcorebench --out BENCH_outofcore.json`"
                .into(),
        );
    }
    let cur_set: Vec<_> = current
        .sweep
        .iter()
        .map(|s| (s.scale, s.rows, s.chunks))
        .collect();
    let com_set: Vec<_> = committed
        .sweep
        .iter()
        .map(|s| (s.scale, s.rows, s.chunks))
        .collect();
    if cur_set != com_set {
        v.push(format!(
            "sweep run set differs: current {cur_set:?} vs committed {com_set:?} — \
             regenerate the artifact"
        ));
    } else {
        // The sweep is pure integer-derived f32 arithmetic in a fixed
        // order: its digest is machine-independent and must not drift.
        for (c, k) in current.sweep.iter().zip(&committed.sweep) {
            if c.digest != k.digest {
                v.push(format!(
                    "sweep scale {}: digest {} != committed {} — the accumulation is no \
                     longer bitwise reproducible",
                    c.scale, c.digest, k.digest
                ));
            }
        }
    }
    let cell = |p: &ParityRun| {
        (
            p.transport.clone(),
            p.protocol.clone(),
            p.threads,
            p.prefetch_depth,
        )
    };
    let cur_cells: Vec<_> = current.parity.iter().map(cell).collect();
    let com_cells: Vec<_> = committed.parity.iter().map(cell).collect();
    if cur_cells != com_cells {
        v.push(format!(
            "parity run set differs: current {cur_cells:?} vs committed {com_cells:?} — \
             regenerate the artifact"
        ));
    }
    v.extend(self_check("current", current));
    v.extend(self_check("committed", &committed));
    v
}

/// Prints the human-readable summary tables.
pub fn print_table(report: &OocBenchReport) {
    use crate::report::Table;
    let mut t = Table::new(
        format!(
            "outofcorebench sweep — budget {} KiB, depth {}",
            report.budget_bytes / 1024,
            report.prefetch_depth
        ),
        &[
            "scale",
            "rows",
            "chunks",
            "peak KiB",
            "spill KiB",
            "fault KiB",
            "parity",
            "ms",
        ],
    );
    for s in &report.sweep {
        t.row(vec![
            s.scale.to_string(),
            s.rows.to_string(),
            s.chunks.to_string(),
            format!("{:.1}", s.peak_resident_bytes as f64 / 1024.0),
            format!("{:.1}", s.spill_bytes as f64 / 1024.0),
            format!("{:.1}", s.fault_bytes as f64 / 1024.0),
            (s.digest == s.unbounded_digest).to_string(),
            format!("{:.1}", s.elapsed_ms),
        ]);
    }
    t.print();
    let mut t = Table::new(
        "outofcorebench parity — --mem-budget on vs off".to_string(),
        &[
            "transport",
            "protocol",
            "threads",
            "depth",
            "spill KiB",
            "fault KiB",
            "parity",
        ],
    );
    for p in &report.parity {
        t.row(vec![
            p.transport.clone(),
            p.protocol.clone(),
            p.threads.to_string(),
            p.prefetch_depth.to_string(),
            format!("{:.1}", p.spill_bytes as f64 / 1024.0),
            format!("{:.1}", p.fault_bytes as f64 / 1024.0),
            (p.digest_budget == p.digest_unbounded).to_string(),
        ]);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_sweep(scale: usize, peak: u64) -> SweepRun {
        SweepRun {
            scale,
            rows: 2048 * scale,
            chunks: 32 * scale,
            chunk_rows: 64,
            peak_resident_bytes: peak,
            spill_bytes: 400_000,
            fault_bytes: 390_000,
            digest: format!("d{scale:015x}"),
            unbounded_digest: format!("d{scale:015x}"),
            elapsed_ms: 12.0,
        }
    }

    fn sample_parity() -> ParityRun {
        ParityRun {
            transport: "sim".into(),
            protocol: "stale:2".into(),
            threads: 1,
            prefetch_depth: 0,
            budget_bytes: 65536,
            digest_budget: "abcdabcdabcdabcd".into(),
            digest_unbounded: "abcdabcdabcdabcd".into(),
            spill_bytes: 123_456,
            fault_bytes: 120_000,
        }
    }

    fn sample_report() -> OocBenchReport {
        OocBenchReport {
            base_rows: 2048,
            feat_dim: 64,
            budget_bytes: 96 * 1024,
            prefetch_depth: 2,
            sweep: vec![
                sample_sweep(1, 100_000),
                sample_sweep(2, 101_000),
                sample_sweep(4, 102_000),
                sample_sweep(8, 103_000),
            ],
            parity: vec![sample_parity()],
        }
    }

    #[test]
    fn report_json_round_trips() {
        let r = sample_report();
        let parsed = parse_report(&r.to_json()).unwrap();
        assert_eq!(parsed.sweep.len(), 4);
        assert_eq!(parsed.sweep[3].rows, 2048 * 8);
        assert_eq!(parsed.sweep[0].digest, r.sweep[0].digest);
        assert_eq!(parsed.parity[0].protocol, "stale:2");
        assert_eq!(parsed.parity[0].spill_bytes, 123_456);
    }

    #[test]
    fn clean_report_passes_its_own_gate() {
        let r = sample_report();
        assert_eq!(check_against(&r, &r.to_json()), Vec::<String>::new());
    }

    #[test]
    fn memory_growth_fails_the_flatness_gate() {
        let mut r = sample_report();
        r.sweep[3].peak_resident_bytes = 200_000;
        let v = check_against(&r, &r.to_json());
        assert!(v.iter().any(|m| m.contains("not flat")), "{v:?}");
    }

    #[test]
    fn digest_divergence_fails_the_gate() {
        let mut r = sample_report();
        r.sweep[1].unbounded_digest = "ffffffffffffffff".into();
        let v = check_against(&r, &sample_report().to_json());
        assert!(v.iter().any(|m| m.contains("perturbed")), "{v:?}");
        let mut r = sample_report();
        r.parity[0].digest_unbounded = "ffffffffffffffff".into();
        let v = check_against(&r, &sample_report().to_json());
        assert!(v.iter().any(|m| m.contains("changed training")), "{v:?}");
    }

    #[test]
    fn idle_tier_fails_the_engagement_gate() {
        let mut r = sample_report();
        r.sweep[0].spill_bytes = 0;
        let v = check_against(&r, &sample_report().to_json());
        assert!(v.iter().any(|m| m.contains("never engaged")), "{v:?}");
        let mut r = sample_report();
        r.parity[0].fault_bytes = 0;
        let v = check_against(&r, &sample_report().to_json());
        assert!(v.iter().any(|m| m.contains("never engaged")), "{v:?}");
    }

    #[test]
    fn stale_artifact_fails_on_run_set_and_schema() {
        let r = sample_report();
        let mut fewer = r.clone();
        fewer.sweep.pop();
        let v = check_against(&fewer, &r.to_json());
        assert!(v.iter().any(|m| m.contains("run set differs")), "{v:?}");
        let stale = r.to_json().replace(SCHEMA, "sar-outofcorebench/v0");
        assert!(check_against(&r, &stale)[0].contains("schema"));
    }

    #[test]
    fn insufficient_scale_growth_fails_the_gate() {
        let mut r = sample_report();
        r.sweep.truncate(2); // 1x..2x only
        let v = check_against(&r, &r.to_json());
        assert!(v.iter().any(|m| m.contains("4x growth")), "{v:?}");
    }

    #[test]
    fn sweep_digest_drift_against_committed_fails() {
        let mut fresh = sample_report();
        fresh.sweep[2].digest = "1111111111111111".into();
        fresh.sweep[2].unbounded_digest = "1111111111111111".into();
        let v = check_against(&fresh, &sample_report().to_json());
        assert!(
            v.iter()
                .any(|m| m.contains("no longer bitwise reproducible")),
            "{v:?}"
        );
    }

    #[test]
    fn sweep_is_deterministic_and_budget_independent() {
        // Tiny end-to-end sweep through the real store: bounded (forcing
        // spills) and unbounded digests must agree, twice over.
        let a = sweep_store(256, 8, 16, 1, 2048).unwrap();
        let b = sweep_store(256, 8, 16, 1, 2048).unwrap();
        let c = sweep_store(256, 8, 16, 1, u64::MAX).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn grids_cover_both_protocol_families() {
        let sim = sim_grid(false);
        assert!(sim.iter().any(|(p, _, _)| p.starts_with("stale")));
        assert!(sim.iter().any(|(p, _, _)| *p == "exact"));
        assert!(!tcp_grid(false).is_empty());
        assert!(tcp_grid(true).is_empty());
        assert!(sim_grid(true).len() < sim.len());
    }
}
