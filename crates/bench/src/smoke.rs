//! The CI smoke gate, shared between transports.
//!
//! `repro smoke` runs scaled-down 4-worker GraphSage and GAT training
//! and checks the observability ledgers against the paper's
//! communication claims (Algorithm 2 cases 1 and 2). The workload
//! definitions and the invariant checks live here so the in-process
//! simulated backend (`repro smoke`) and the multi-process TCP backend
//! (`repro smoke --transport tcp`, which spawns one `sar-worker` process
//! per rank) gate on *exactly* the same program and the same rules —
//! any divergence between the backends then fails the same check.

use crate::distrun::Workload;
use crate::report::{mib, RunReport, Table};

/// Worker count for the smoke runs.
pub const WORLD: usize = 4;
/// Epoch count for the smoke runs.
pub const EPOCHS: usize = 3;
/// Architectures the smoke gate defines workloads for.
pub const MODELS: [&str; 2] = ["sage", "gat"];

/// The smoke workload for `"sage"` or `"gat"`. `nodes` and `seed` come
/// from the `repro` flags; everything else is pinned here.
///
/// # Errors
///
/// Rejects an architecture outside [`MODELS`] with a message listing the
/// supported names — surfaced at CLI parse time by `repro smoke --model`
/// instead of panicking mid-run.
pub fn workload(arch: &str, nodes: usize, seed: u64) -> Result<Workload, String> {
    let base = Workload {
        dataset: "products".into(),
        nodes,
        layers: 3,
        epochs: EPOCHS,
        lr: 0.01,
        dropout: 0.3,
        label_aug: true,
        aug_frac: 0.5,
        // No Correct & Smooth: its propagation rounds would fold extra
        // fetch traffic into the forward-fetch ledger and blur the
        // forward/backward volume comparison below.
        cs: false,
        prefetch_depth: 0,
        partitioner: "ml".into(),
        schedule: "constant".into(),
        seed,
        ..Workload::default()
    };
    match arch {
        "sage" => Ok(Workload {
            arch: "sage".into(),
            hidden: 64,
            mode: "sar".into(),
            ..base
        }),
        "gat" => Ok(Workload {
            arch: "gat".into(),
            hidden: 16,
            heads: 4,
            mode: "sar-fak".into(),
            ..base
        }),
        other => Err(format!(
            "unknown smoke model {other:?}; supported models: {}",
            MODELS.join(", ")
        )),
    }
}

/// The per-worker ledger table printed by the smoke gate.
pub fn ledger_table(report: &RunReport) -> Table {
    let mut t = Table::new(
        format!("{} — per-worker ledger (MiB received)", report.experiment),
        &[
            "rank",
            "fwd fetch",
            "bwd refetch",
            "grad routing",
            "collective",
            "peak MiB",
        ],
    );
    for w in &report.workers {
        t.row(vec![
            w.rank.to_string(),
            mib(w.phase_sum("forward_fetch", |p| p.recv_bytes) as usize),
            mib(w.phase_sum("backward_refetch", |p| p.recv_bytes) as usize),
            mib(w.phase_sum("grad_routing", |p| p.recv_bytes) as usize),
            mib(w.phase_sum("collective", |p| p.recv_bytes) as usize),
            mib(w.steady_peak_bytes),
        ]);
    }
    t
}

/// Checks a smoke run's report against the paper's ledger invariants.
/// Returns the violations found (empty = gate passes):
///
/// * any non-finite training loss;
/// * a rank that fetched zero forward bytes (the partition degenerated);
/// * `sage` — Algorithm 2 case 1: the backward pass must add **zero**
///   refetch traffic, sent or received;
/// * `gat` — Algorithm 2 case 2: each of the `epochs` backward passes
///   re-fetches exactly what one of the `epochs + 1` forward passes (the
///   extra one is evaluation) fetched, within 2%.
pub fn violations(report: &RunReport, epochs: usize) -> Vec<String> {
    let exp = &report.experiment;
    let mut violations = Vec::new();
    if report.has_non_finite_loss() {
        violations.push(format!(
            "{exp}: non-finite training loss {:?}",
            report.losses
        ));
    }
    for w in &report.workers {
        let fwd = w.phase_sum("forward_fetch", |p| p.recv_bytes);
        let refetch_recv = w.phase_sum("backward_refetch", |p| p.recv_bytes);
        let refetch_sent = w.phase_sum("backward_refetch", |p| p.sent_bytes);
        if fwd == 0 {
            violations.push(format!("{exp}: rank {} fetched zero forward bytes", w.rank));
        }
        match report.arch.as_str() {
            "sage" if refetch_recv + refetch_sent != 0 => {
                violations.push(format!(
                    "{exp}: rank {} sage backward refetched {refetch_recv}B recv / \
                     {refetch_sent}B sent (expected 0)",
                    w.rank
                ));
            }
            "gat" => {
                let expected = fwd as f64 * epochs as f64 / (epochs + 1) as f64;
                let rel = (refetch_recv as f64 - expected).abs() / expected.max(1.0);
                if refetch_recv == 0 || rel > 0.02 {
                    violations.push(format!(
                        "{exp}: rank {} gat refetched {refetch_recv}B, expected ~{expected:.0}B \
                         (rel err {rel:.4})",
                        w.rank
                    ));
                }
            }
            _ => {}
        }
    }
    violations
}

/// The first line on which two [`RunReport::parity_digest`] strings
/// disagree, as a one-line `baseline vs run` diff — or `None` when they
/// match. Digest lines are labeled (`losses …`, `w3 grad_routing/1 …`),
/// so the diff names exactly which loss or which rank's ledger diverged.
pub fn digest_diff(baseline: &str, run: &str) -> Option<String> {
    let mut b = baseline.lines();
    let mut r = run.lines();
    let mut line = 0usize;
    loop {
        line += 1;
        match (b.next(), r.next()) {
            (None, None) => return None,
            (lb, lr) if lb == lr => {}
            (lb, lr) => {
                return Some(format!(
                    "digest line {line}: baseline `{}` vs run `{}`",
                    lb.unwrap_or("<missing>"),
                    lr.unwrap_or("<missing>")
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{PhaseRow, WorkerProfile};

    fn profile(fwd: u64, refetch_recv: u64, refetch_sent: u64) -> WorkerProfile {
        let row = |phase: &'static str, recv: u64, sent: u64| PhaseRow {
            phase,
            layer: None,
            sent_bytes: sent,
            recv_bytes: recv,
            wire_sent_bytes: sent,
            wire_recv_bytes: recv,
            sent_messages: 0,
            recv_messages: 0,
            comm_us: 0.0,
            cpu_us: 0.0,
            wall_us: 0.0,
            blocked_us: 0.0,
            peak_tensor_bytes: 0,
            spill_bytes: 0,
            fault_bytes: 0,
            disk_blocked_us: 0.0,
        };
        WorkerProfile {
            rank: 0,
            steady_peak_bytes: 0,
            total_sent_bytes: 0,
            total_recv_bytes: 0,
            comm_us: 0.0,
            phases: vec![
                row("forward_fetch", fwd, fwd),
                row("backward_refetch", refetch_recv, refetch_sent),
            ],
        }
    }

    fn report(arch: &str, workers: Vec<WorkerProfile>) -> RunReport {
        RunReport {
            experiment: "t".into(),
            arch: arch.into(),
            mode: "sar".into(),
            world: workers.len(),
            losses: vec![1.0, 0.5],
            epoch_times: vec![0.1, 0.1],
            val_acc: 0.5,
            test_acc: 0.5,
            test_acc_cs: None,
            buffer_pool: None,
            workers,
        }
    }

    #[test]
    fn clean_sage_run_passes() {
        let r = report("sage", vec![profile(4000, 0, 0)]);
        assert!(violations(&r, EPOCHS).is_empty());
    }

    #[test]
    fn sage_refetch_is_flagged() {
        let r = report("sage", vec![profile(4000, 100, 0)]);
        let v = violations(&r, EPOCHS);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("sage backward refetched"));
    }

    #[test]
    fn gat_ratio_is_enforced() {
        // 3 backward refetches out of 4 forward fetches: exactly 3/4.
        let good = report("gat", vec![profile(4000, 3000, 3000)]);
        assert!(violations(&good, EPOCHS).is_empty());
        let bad = report("gat", vec![profile(4000, 1000, 1000)]);
        assert!(!violations(&bad, EPOCHS).is_empty());
    }

    #[test]
    fn nan_loss_and_zero_fetch_are_flagged() {
        let mut r = report("sage", vec![profile(0, 0, 0)]);
        r.losses = vec![f32::NAN];
        let v = violations(&r, EPOCHS);
        assert_eq!(v.len(), 2, "{v:?}");
    }

    #[test]
    fn smoke_workloads_pin_the_paper_configs() {
        let sage = workload("sage", 1500, 0).unwrap();
        assert_eq!((sage.arch.as_str(), sage.hidden), ("sage", 64));
        assert_eq!(sage.mode, "sar");
        let gat = workload("gat", 1500, 0).unwrap();
        assert_eq!((gat.hidden, gat.heads), (16, 4));
        assert_eq!(gat.mode, "sar-fak");
        for wl in [sage, gat] {
            assert_eq!(wl.epochs, EPOCHS);
            assert!(!wl.cs, "C&S would blur the volume comparison");
            assert_eq!(wl.schedule, "constant");
        }
    }

    #[test]
    fn unknown_smoke_model_is_a_listed_error_not_a_panic() {
        let err = workload("transformer", 1500, 0).unwrap_err();
        assert!(err.contains("transformer"), "{err}");
        assert!(err.contains("sage, gat"), "{err}");
    }

    #[test]
    fn digest_diff_names_the_first_divergent_line() {
        let base = "world 4\nlosses 3f800000\nw0 forward_fetch/0 sent=10 recv=10\n";
        assert_eq!(digest_diff(base, base), None);
        let run = "world 4\nlosses 3f800001\nw0 forward_fetch/0 sent=10 recv=10\n";
        let d = digest_diff(base, run).unwrap();
        assert!(
            d.contains("line 2") && d.contains("3f800000") && d.contains("3f800001"),
            "{d}"
        );
        assert!(!d.contains('\n'), "the diff must be a single line: {d}");
    }

    #[test]
    fn digest_diff_reports_truncated_digests() {
        let d = digest_diff("world 4\nlosses 0\n", "world 4\n").unwrap();
        assert!(d.contains("<missing>"), "{d}");
        // ...in either direction: a run digest with extra lines is just as
        // divergent as a truncated one.
        let d = digest_diff("world 4\n", "world 4\nlosses 0\n").unwrap();
        assert!(d.contains("<missing>") && d.contains("losses 0"), "{d}");
    }

    #[test]
    fn digest_diff_on_empty_digests() {
        // Two empty digests agree — vacuously, but deterministically.
        assert_eq!(digest_diff("", ""), None);
        // Empty vs non-empty diverges on line 1 with a `<missing>` side.
        let d = digest_diff("", "world 4\n").unwrap();
        assert!(d.contains("line 1") && d.contains("<missing>"), "{d}");
        let d = digest_diff("world 4\n", "").unwrap();
        assert!(d.contains("line 1") && d.contains("<missing>"), "{d}");
    }

    #[test]
    fn digest_diff_finds_divergence_on_the_last_line() {
        // Identical prefix, mismatch only at the very end: the diff must
        // point at the final line, not bail at EOF.
        let base = "world 2\nlosses 3f800000\nw1 grad_routing/1 sent=8 recv=8\n";
        let run = "world 2\nlosses 3f800000\nw1 grad_routing/1 sent=8 recv=9\n";
        let d = digest_diff(base, run).unwrap();
        assert!(d.contains("line 3"), "{d}");
        assert!(d.contains("recv=8") && d.contains("recv=9"), "{d}");
    }

    #[test]
    fn digest_diff_multi_line_context_stays_one_line() {
        // Several divergent lines: only the FIRST is reported, and the
        // report itself never spans lines (it is embedded in CI logs).
        let base = "world 2\nlosses aaaa\nw0 forward_fetch/0 sent=1 recv=1\n";
        let run = "world 2\nlosses bbbb\nw0 forward_fetch/0 sent=2 recv=2\n";
        let d = digest_diff(base, run).unwrap();
        assert!(d.contains("line 2") && d.contains("aaaa"), "{d}");
        assert!(!d.contains("forward_fetch"), "first divergence only: {d}");
        assert!(!d.contains('\n'), "{d}");
    }
}
