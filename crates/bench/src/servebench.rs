//! `repro servebench` — closed-loop serving benchmark with a committed,
//! CI-gated `BENCH_serve.json`.
//!
//! Spawns a real `sar-serve` cluster (one OS process per rank over TCP
//! loopback), writes a seeded checkpoint for the workers to load, then
//! drives the rank-0 front-end from closed-loop client threads: each
//! client connects, issues its deterministic query sequence, and only
//! sends the next request after the previous answer lands. Per-request
//! wall latency is recorded client-side; p50/p99 and QPS are derived
//! from the union of all clients' samples. After the load, one control
//! connection fetches the engine's cumulative counters and requests the
//! graceful shutdown that lets every rank exit.
//!
//! Following the `BENCH_kernels.json` precedent, the committed artifact
//! is never compared on absolute numbers — latency and QPS are
//! machine-dependent. The gate checks *structure and invariants*
//! instead:
//!
//! * schema identity (a mismatch means the artifact is stale —
//!   regenerate with `repro servebench --out BENCH_serve.json`),
//! * run-set identity (the architecture list must match),
//! * per run, in both the fresh and the committed report: QPS positive
//!   and finite, `0 < p50 ≤ p99`, every issued query answered, and the
//!   paper-facing acceptance bound — cumulative measured MFG fetch
//!   bytes strictly below what full-graph rotation forwards over the
//!   same batches would have fetched.

use std::path::Path;
use std::process::{Child, Command};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sar_serve::ServeClient;

use crate::kernelbench::{parse_json, JsonValue};

/// Schema tag written into (and required from) `BENCH_serve.json`.
/// Bump whenever the workload, the counters or the field layout change;
/// the gate refuses to compare across schema versions.
pub const SCHEMA: &str = "sar-servebench/v1";

/// The benchmark workload: everything needed to rebuild the cluster and
/// the client load deterministically.
#[derive(Debug, Clone)]
pub struct ServeBenchConfig {
    /// Cluster size (OS processes).
    pub world: usize,
    /// Synthetic products-like node count.
    pub nodes: usize,
    /// Architectures to benchmark, one run per entry.
    pub archs: Vec<String>,
    /// Closed-loop client connections.
    pub clients: usize,
    /// Requests each client issues.
    pub requests: usize,
    /// Node ids per query request.
    pub ids_per_request: usize,
    /// Front-end batch coalescing bound.
    pub max_batch: usize,
    /// Front-end batch coalescing delay, microseconds.
    pub max_delay_us: u64,
    /// Per-rank embedding-cache row budget.
    pub cache_rows: usize,
    /// Intra-rank kernel threads.
    pub threads: usize,
    /// SIMD dispatch mode the ranks run under.
    pub simd: String,
    /// Seed for the dataset, the parameters and the query streams.
    pub seed: u64,
}

impl Default for ServeBenchConfig {
    fn default() -> Self {
        ServeBenchConfig {
            world: 4,
            nodes: 900,
            archs: vec!["sage".into(), "gat".into()],
            clients: 3,
            requests: 20,
            ids_per_request: 8,
            max_batch: 16,
            max_delay_us: 1_000,
            cache_rows: 4096,
            threads: 1,
            simd: "auto".into(),
            seed: 0,
        }
    }
}

/// One architecture's measured serving run.
#[derive(Debug, Clone)]
pub struct ServeRun {
    /// Architecture name (`"sage"`, `"gcn"`, `"gat"`).
    pub arch: String,
    /// Closed-loop clients driving the front-end.
    pub clients: usize,
    /// Total requests issued across clients.
    pub requests: usize,
    /// Node ids per request.
    pub ids_per_request: usize,
    /// Requests per second over the whole load window.
    pub qps: f64,
    /// Median per-request latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile per-request latency, microseconds.
    pub p99_us: f64,
    /// Mean per-request latency, microseconds.
    pub mean_us: f64,
    /// Query batches the engine executed (coalescing merges requests).
    pub batches: u64,
    /// Individual node queries answered.
    pub queries: u64,
    /// Cumulative measured MFG fetch bytes across batches.
    pub fetch_bytes: u64,
    /// Per-batch full-graph forward fetch prediction — the ceiling
    /// `fetch_bytes` must stay strictly below `batches ×` this.
    pub full_forward_bytes: u64,
    /// Embedding-cache hits.
    pub cache_hits: u64,
    /// Embedding-cache misses.
    pub cache_misses: u64,
}

/// A full servebench run: the workload identity plus per-arch results.
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    /// Cluster size.
    pub world: usize,
    /// Dataset node count.
    pub nodes: usize,
    /// Kernel threads per rank.
    pub threads: usize,
    /// SIMD mode label the ranks ran under.
    pub simd: String,
    /// Per-architecture runs, in configured order.
    pub runs: Vec<ServeRun>,
}

// ----------------------------------------------------------------------
// Driving the cluster
// ----------------------------------------------------------------------

/// Spawns `world` `sar-serve` processes without waiting, so the caller
/// can drive the front-end while they run. The rendezvous file is fresh
/// per call; children inherit stdout/stderr.
fn spawn_cluster(
    exe: &Path,
    world: usize,
    common_args: &[String],
    rendezvous: &Path,
) -> Result<Vec<(usize, Child)>, String> {
    let _ = std::fs::remove_file(rendezvous);
    let mut children = Vec::with_capacity(world);
    for rank in 0..world {
        let mut cmd = Command::new(exe);
        cmd.arg("--rank")
            .arg(rank.to_string())
            .arg("--world")
            .arg(world.to_string())
            .arg("--rendezvous-file")
            .arg(rendezvous)
            .args(common_args);
        match cmd.spawn() {
            Ok(child) => children.push((rank, child)),
            Err(e) => {
                // Reap whatever already started before reporting.
                for (_, mut c) in children {
                    let _ = c.kill();
                    let _ = c.wait();
                }
                return Err(format!("rank {rank}: spawn failed: {e}"));
            }
        }
    }
    Ok(children)
}

/// Waits for every child, collecting non-zero exits.
fn wait_cluster(children: Vec<(usize, Child)>) -> Vec<String> {
    let mut failures = Vec::new();
    for (rank, mut child) in children {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => failures.push(format!("rank {rank} exited with {status}")),
            Err(e) => failures.push(format!("rank {rank}: wait failed: {e}")),
        }
    }
    failures
}

/// The deterministic id stream one client queries: uniform over the
/// node range, seeded per (run seed, client index) so re-runs replay
/// the exact same load.
fn client_ids(
    seed: u64,
    client: usize,
    requests: usize,
    per_req: usize,
    nodes: usize,
) -> Vec<Vec<u32>> {
    let mut rng = StdRng::seed_from_u64(seed ^ (0x5EED_C0DE + client as u64));
    (0..requests)
        .map(|_| {
            (0..per_req)
                .map(|_| rng.random_range(0..nodes as u32))
                .collect()
        })
        .collect()
}

/// A percentile over an ascending-sorted sample set (nearest-rank).
fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_us.len() as f64).ceil() as usize;
    sorted_us[rank.saturating_sub(1).min(sorted_us.len() - 1)]
}

/// Runs the closed-loop load against a live front-end: `clients`
/// threads, each replaying its deterministic query stream, then one
/// control connection for stats + shutdown. Returns the per-request
/// latencies (microseconds), the load window in seconds (first connect
/// to last answer — the stats/shutdown exchange is outside it), and the
/// engine's final counters.
fn drive_load(
    addr: &str,
    cfg: &ServeBenchConfig,
) -> Result<(Vec<f64>, f64, sar_serve::StatsSnapshot), String> {
    let started = Instant::now();
    let mut handles = Vec::with_capacity(cfg.clients);
    for c in 0..cfg.clients {
        let addr = addr.to_string();
        let ids = client_ids(cfg.seed, c, cfg.requests, cfg.ids_per_request, cfg.nodes);
        let expect_rows = cfg.ids_per_request;
        handles.push(std::thread::spawn(move || -> Result<Vec<f64>, String> {
            let mut client = ServeClient::connect(addr.as_str())
                .map_err(|e| format!("client {c}: connect: {e}"))?;
            client
                .set_timeout(Some(Duration::from_secs(120)))
                .map_err(|e| format!("client {c}: {e}"))?;
            let mut lat = Vec::with_capacity(ids.len());
            for req in &ids {
                let t = Instant::now();
                let logits = client
                    .query(req)
                    .map_err(|e| format!("client {c}: query: {e}"))?;
                lat.push(t.elapsed().as_secs_f64() * 1e6);
                if logits.rows() != expect_rows {
                    return Err(format!(
                        "client {c}: got {} logit rows for {expect_rows} queried ids",
                        logits.rows()
                    ));
                }
            }
            Ok(lat)
        }));
    }
    let mut latencies = Vec::with_capacity(cfg.clients * cfg.requests);
    let mut errors = Vec::new();
    for h in handles {
        match h.join() {
            Ok(Ok(lat)) => latencies.extend(lat),
            Ok(Err(e)) => errors.push(e),
            Err(_) => errors.push("a client thread panicked".into()),
        }
    }
    let wall = started.elapsed();

    // Stats + graceful shutdown go over their own connection, after the
    // load, so they never perturb the measured window. Shutdown must be
    // attempted even when clients failed — otherwise the cluster leaks.
    let control = (|| -> Result<sar_serve::StatsSnapshot, String> {
        let mut control =
            ServeClient::connect(addr).map_err(|e| format!("control connect: {e}"))?;
        control
            .set_timeout(Some(Duration::from_secs(120)))
            .map_err(|e| e.to_string())?;
        let stats = control.stats().map_err(|e| format!("stats: {e}"))?;
        control.shutdown().map_err(|e| format!("shutdown: {e}"))?;
        Ok(stats)
    })();
    let stats = match control {
        Ok(s) => s,
        Err(e) => {
            errors.push(e);
            sar_serve::StatsSnapshot::default()
        }
    };
    if !errors.is_empty() {
        return Err(errors.join("; "));
    }
    Ok((latencies, wall.as_secs_f64(), stats))
}

/// Benchmarks one architecture: spawn the cluster, drive the load, wait
/// for a clean exit, distill the run record.
fn bench_arch(exe: &Path, cfg: &ServeBenchConfig, arch: &str) -> Result<ServeRun, String> {
    let uniq = format!("{}-{arch}", std::process::id());
    let rendezvous = std::env::temp_dir().join(format!("sar-servebench-{uniq}.addr"));
    let client_addr = std::env::temp_dir().join(format!("sar-servebench-{uniq}.client"));
    let ckpt = std::env::temp_dir().join(format!("sar-servebench-{uniq}.ckpt"));
    let _ = std::fs::remove_file(&client_addr);

    // Write the checkpoint the workers load: the seeded deterministic
    // initialization for this exact (dataset, arch) pair, saved through
    // the real checkpoint codec so the serving path exercises a genuine
    // load-from-disk.
    {
        let workload = serve_workload(cfg, arch);
        let (dataset, _part) = workload.build_data(cfg.world)?;
        let model_cfg = crate::serverun::serve_model_config(&workload, &dataset)?;
        let params =
            crate::serverun::load_or_init_params(&model_cfg, &dataset, workload.label_aug, None)?;
        let f = std::fs::File::create(&ckpt)
            .map_err(|e| format!("cannot create checkpoint {}: {e}", ckpt.display()))?;
        sar_core::checkpoint::save_raw_params(&params, std::io::BufWriter::new(f))
            .map_err(|e| format!("cannot write checkpoint {}: {e}", ckpt.display()))?;
    }

    let mut args = serve_workload(cfg, arch).to_args();
    // `Workload::to_args` emits training-only flags too; `sar-serve`
    // accepts and ignores them so one flag vocabulary serves both
    // binaries.
    args.extend([
        "--checkpoint".to_string(),
        ckpt.display().to_string(),
        "--client-addr-file".to_string(),
        client_addr.display().to_string(),
        "--max-batch".to_string(),
        cfg.max_batch.to_string(),
        "--max-delay-us".to_string(),
        cfg.max_delay_us.to_string(),
        "--cache-rows".to_string(),
        cfg.cache_rows.to_string(),
    ]);
    eprintln!(
        "[servebench] {arch}: spawning {} rank processes, {} clients × {} requests × {} ids ...",
        cfg.world, cfg.clients, cfg.requests, cfg.ids_per_request
    );
    let children = spawn_cluster(exe, cfg.world, &args, &rendezvous)?;

    let result = (|| -> Result<ServeRun, String> {
        let addr = crate::launcher::read_rendezvous_addr(&client_addr, Duration::from_secs(60))
            .map_err(|e| format!("front-end never published its client address: {e}"))?;
        let (mut latencies, wall_secs, stats) = drive_load(&addr, cfg)?;
        latencies.sort_by(|a, b| a.total_cmp(b));
        let requests = latencies.len();
        let mean_us = latencies.iter().sum::<f64>() / requests.max(1) as f64;
        Ok(ServeRun {
            arch: arch.to_string(),
            clients: cfg.clients,
            requests,
            ids_per_request: cfg.ids_per_request,
            qps: requests as f64 / wall_secs.max(1e-9),
            p50_us: percentile(&latencies, 50.0),
            p99_us: percentile(&latencies, 99.0),
            mean_us,
            batches: stats.batches,
            queries: stats.queries,
            fetch_bytes: stats.fetch_bytes,
            full_forward_bytes: stats.full_forward_bytes,
            cache_hits: stats.cache_hits,
            cache_misses: stats.cache_misses,
        })
    })();

    let failures = wait_cluster(children);
    let _ = std::fs::remove_file(&rendezvous);
    let _ = std::fs::remove_file(&client_addr);
    let _ = std::fs::remove_file(&ckpt);
    match (result, failures.is_empty()) {
        (Ok(run), true) => Ok(run),
        (Ok(_), false) => Err(format!("{arch}: {}", failures.join("; "))),
        (Err(e), true) => Err(format!("{arch}: {e}")),
        (Err(e), false) => Err(format!("{arch}: {e}; {}", failures.join("; "))),
    }
}

/// The serving workload for one architecture (reuses the training
/// workload vocabulary; training-only fields are ignored by serving).
fn serve_workload(cfg: &ServeBenchConfig, arch: &str) -> crate::distrun::Workload {
    crate::distrun::Workload {
        dataset: "products".into(),
        nodes: cfg.nodes,
        arch: arch.to_string(),
        hidden: if arch == "gat" { 8 } else { 32 },
        heads: 4,
        mode: "sar".into(),
        layers: 2,
        seed: cfg.seed,
        threads: cfg.threads,
        simd: cfg.simd.clone(),
        ..crate::distrun::Workload::default()
    }
}

/// Runs the full benchmark: one cluster per configured architecture.
///
/// # Errors
///
/// Propagates spawn, protocol and rank-exit failures, naming the
/// architecture.
pub fn run_servebench(exe: &Path, cfg: &ServeBenchConfig) -> Result<ServeBenchReport, String> {
    let mut runs = Vec::with_capacity(cfg.archs.len());
    for arch in &cfg.archs {
        runs.push(bench_arch(exe, cfg, arch)?);
    }
    Ok(ServeBenchReport {
        world: cfg.world,
        nodes: cfg.nodes,
        threads: cfg.threads,
        simd: cfg.simd.clone(),
        runs,
    })
}

// ----------------------------------------------------------------------
// JSON report
// ----------------------------------------------------------------------

fn fmt_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".into()
    }
}

impl ServeBenchReport {
    /// Serializes the report as the schema-versioned `BENCH_serve.json`
    /// document.
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(2048);
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": \"{SCHEMA}\",");
        let _ = writeln!(s, "  \"world\": {},", self.world);
        let _ = writeln!(s, "  \"nodes\": {},", self.nodes);
        let _ = writeln!(s, "  \"threads\": {},", self.threads);
        let _ = writeln!(s, "  \"simd\": \"{}\",", self.simd);
        s.push_str("  \"runs\": [\n");
        for (i, r) in self.runs.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"arch\": \"{}\", \"clients\": {}, \"requests\": {}, \
                 \"ids_per_request\": {}, \"qps\": {}, \"p50_us\": {}, \"p99_us\": {}, \
                 \"mean_us\": {}, \"batches\": {}, \"queries\": {}, \"fetch_bytes\": {}, \
                 \"full_forward_bytes\": {}, \"cache_hits\": {}, \"cache_misses\": {}}}",
                r.arch,
                r.clients,
                r.requests,
                r.ids_per_request,
                fmt_num(r.qps),
                fmt_num(r.p50_us),
                fmt_num(r.p99_us),
                fmt_num(r.mean_us),
                r.batches,
                r.queries,
                r.fetch_bytes,
                r.full_forward_bytes,
                r.cache_hits,
                r.cache_misses
            );
            s.push_str(if i + 1 < self.runs.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Writes [`ServeBenchReport::to_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors as strings.
    pub fn write_json(&self, path: &str) -> Result<(), String> {
        std::fs::write(path, self.to_json()).map_err(|e| format!("cannot write {path}: {e}"))
    }
}

// ----------------------------------------------------------------------
// The CI gate
// ----------------------------------------------------------------------

/// Invariants one run record must satisfy, fresh or committed. Latency
/// and QPS magnitudes are machine-dependent and never compared — only
/// their internal consistency is.
fn run_invariants(label: &str, run: &JsonValue) -> Vec<String> {
    let mut violations = Vec::new();
    let num = |k: &str| run.get(k).and_then(JsonValue::num);
    let arch = run.get("arch").and_then(JsonValue::str).unwrap_or("?");
    let ctx = format!("{label} run {arch}");
    let Some(qps) = num("qps") else {
        return vec![format!("{ctx}: missing qps")];
    };
    if !(qps.is_finite() && qps > 0.0) {
        violations.push(format!("{ctx}: qps {qps} is not positive and finite"));
    }
    match (num("p50_us"), num("p99_us")) {
        (Some(p50), Some(p99)) => {
            if !(p50 > 0.0 && p99 >= p50) {
                violations.push(format!(
                    "{ctx}: latency percentiles are inconsistent (p50={p50}, p99={p99})"
                ));
            }
        }
        _ => violations.push(format!("{ctx}: missing latency percentiles")),
    }
    match (
        num("queries"),
        num("requests"),
        num("ids_per_request"),
        num("batches"),
    ) {
        (Some(q), Some(r), Some(ipr), Some(b)) => {
            if q < r {
                violations.push(format!(
                    "{ctx}: {q} queries answered for {r} requests — requests were dropped"
                ));
            }
            if q != r * ipr {
                violations.push(format!(
                    "{ctx}: {q} queries ≠ {r} requests × {ipr} ids — the ledger is inconsistent"
                ));
            }
            if !(b > 0.0 && b <= r) {
                violations.push(format!(
                    "{ctx}: {b} batches for {r} requests — coalescing can only merge, not split"
                ));
            }
            match (num("fetch_bytes"), num("full_forward_bytes")) {
                (Some(fetch), Some(full)) => {
                    if fetch <= 0.0 {
                        violations.push(format!("{ctx}: no fetch traffic recorded"));
                    }
                    if fetch >= full * b {
                        violations.push(format!(
                            "{ctx}: MFG fetch bytes {fetch} are not strictly below the \
                             full-graph forward ceiling {} ({full} × {b} batches) — \
                             per-query compute is not restricted",
                            full * b
                        ));
                    }
                }
                _ => violations.push(format!("{ctx}: missing fetch-byte counters")),
            }
        }
        _ => violations.push(format!("{ctx}: missing request/query/batch counters")),
    }
    violations
}

/// Compares a fresh report against the committed `BENCH_serve.json`.
///
/// Returns the violations (empty = gate passes). Hard-fails on a schema
/// or run-set mismatch (the artifact is stale — regenerate it); both
/// the fresh and the committed records must satisfy [`run_invariants`].
#[must_use]
pub fn check_against(current: &ServeBenchReport, committed_text: &str) -> Vec<String> {
    let committed = match parse_json(committed_text) {
        Ok(c) => c,
        Err(e) => return vec![format!("committed JSON parse error: {e}")],
    };
    match committed.get("schema").and_then(JsonValue::str) {
        Some(s) if s == SCHEMA => {}
        Some(s) => {
            return vec![format!(
                "committed schema \"{s}\" does not match this binary's \"{SCHEMA}\" — \
                 regenerate with `repro servebench --out BENCH_serve.json`"
            )]
        }
        None => return vec!["committed BENCH_serve.json has no \"schema\" field".into()],
    }
    let mut violations = Vec::new();
    let committed_runs = committed
        .get("runs")
        .and_then(JsonValue::arr)
        .unwrap_or_default();
    let committed_archs: Vec<&str> = committed_runs
        .iter()
        .filter_map(|r| r.get("arch").and_then(JsonValue::str))
        .collect();
    let current_archs: Vec<&str> = current.runs.iter().map(|r| r.arch.as_str()).collect();
    for arch in &committed_archs {
        if !current_archs.contains(arch) {
            violations.push(format!(
                "run \"{arch}\" is committed but was not produced — the workload changed; \
                 regenerate BENCH_serve.json"
            ));
        }
    }
    for arch in &current_archs {
        if !committed_archs.contains(arch) {
            violations.push(format!(
                "run \"{arch}\" is new (not committed) — regenerate BENCH_serve.json"
            ));
        }
    }
    for run in committed_runs {
        violations.extend(run_invariants("committed", run));
    }
    // The fresh report is validated through its own JSON so both sides
    // go through the identical field checks.
    match parse_json(&current.to_json()) {
        Ok(doc) => {
            for run in doc.get("runs").and_then(JsonValue::arr).unwrap_or_default() {
                violations.extend(run_invariants("current", run));
            }
        }
        Err(e) => violations.push(format!("current report does not serialize: {e}")),
    }
    violations
}

/// Pretty-prints the report as an aligned table on stderr.
pub fn print_table(report: &ServeBenchReport) {
    eprintln!(
        "[servebench] world={} nodes={} threads={} simd={}",
        report.world, report.nodes, report.threads, report.simd
    );
    eprintln!(
        "{:<6} {:>8} {:>9} {:>11} {:>11} {:>9} {:>12} {:>14} {:>7}",
        "arch", "requests", "qps", "p50_us", "p99_us", "batches", "fetch_B", "full_fwd_B", "hits"
    );
    for r in &report.runs {
        eprintln!(
            "{:<6} {:>8} {:>9.1} {:>11.1} {:>11.1} {:>9} {:>12} {:>14} {:>7}",
            r.arch,
            r.requests,
            r.qps,
            r.p50_us,
            r.p99_us,
            r.batches,
            r.fetch_bytes,
            r.full_forward_bytes * r.batches,
            r.cache_hits
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ServeBenchReport {
        ServeBenchReport {
            world: 4,
            nodes: 900,
            threads: 1,
            simd: "auto".into(),
            runs: vec![
                ServeRun {
                    arch: "sage".into(),
                    clients: 3,
                    requests: 60,
                    ids_per_request: 8,
                    qps: 250.0,
                    p50_us: 1500.0,
                    p99_us: 9000.0,
                    mean_us: 2000.0,
                    batches: 40,
                    queries: 480,
                    fetch_bytes: 100_000,
                    full_forward_bytes: 50_000,
                    cache_hits: 12,
                    cache_misses: 300,
                },
                ServeRun {
                    arch: "gat".into(),
                    clients: 3,
                    requests: 60,
                    ids_per_request: 8,
                    qps: 120.0,
                    p50_us: 3000.0,
                    p99_us: 15000.0,
                    mean_us: 4000.0,
                    batches: 35,
                    queries: 480,
                    fetch_bytes: 220_000,
                    full_forward_bytes: 90_000,
                    cache_hits: 4,
                    cache_misses: 400,
                },
            ],
        }
    }

    #[test]
    fn report_round_trips_and_passes_against_itself() {
        let r = sample_report();
        let doc = parse_json(&r.to_json()).expect("own JSON must parse");
        assert_eq!(doc.get("schema").and_then(JsonValue::str), Some(SCHEMA));
        assert_eq!(
            doc.get("runs").and_then(JsonValue::arr).map(<[_]>::len),
            Some(2)
        );
        assert!(check_against(&r, &r.to_json()).is_empty());
    }

    #[test]
    fn timings_may_drift_but_structure_may_not() {
        let r = sample_report();
        let committed = r.to_json();
        // Latency and QPS drift freely.
        let mut fast = r.clone();
        fast.runs[0].qps *= 50.0;
        fast.runs[0].p50_us /= 30.0;
        fast.runs[0].p99_us /= 30.0;
        assert!(check_against(&fast, &committed).is_empty());
        // A missing run is structural drift.
        let mut fewer = r.clone();
        fewer.runs.pop();
        assert!(check_against(&fewer, &committed)
            .iter()
            .any(|v| v.contains("not produced")));
        // A new run needs a regenerated artifact.
        let mut extra = r.clone();
        extra.runs.push(ServeRun {
            arch: "gcn".into(),
            ..r.runs[0].clone()
        });
        assert!(check_against(&extra, &committed)
            .iter()
            .any(|v| v.contains("new")));
        // Schema identity is hard.
        let stale = committed.replace(SCHEMA, "sar-servebench/v0");
        assert!(check_against(&r, &stale)[0].contains("schema"));
    }

    #[test]
    fn gate_rejects_unrestricted_compute_and_dropped_requests() {
        let r = sample_report();
        let committed = r.to_json();
        // MFG fetch at (or above) the full-forward ceiling = the
        // restriction is gone.
        let mut unrestricted = r.clone();
        unrestricted.runs[0].fetch_bytes =
            unrestricted.runs[0].full_forward_bytes * unrestricted.runs[0].batches;
        assert!(check_against(&unrestricted, &committed)
            .iter()
            .any(|v| v.contains("not restricted")));
        // Dropped queries are a correctness failure, not noise.
        let mut dropped = r.clone();
        dropped.runs[1].queries -= 8;
        assert!(check_against(&dropped, &committed)
            .iter()
            .any(|v| v.contains("inconsistent") || v.contains("dropped")));
        // A corrupt committed artifact must also fail.
        let corrupt = committed.replace("\"batches\": 40", "\"batches\": 0");
        assert!(check_against(&r, &corrupt)
            .iter()
            .any(|v| v.contains("coalescing")));
    }

    #[test]
    fn client_id_streams_are_deterministic_and_in_range() {
        let a = client_ids(7, 2, 5, 4, 100);
        let b = client_ids(7, 2, 5, 4, 100);
        assert_eq!(a, b);
        assert_ne!(a, client_ids(7, 3, 5, 4, 100));
        assert!(a.iter().flatten().all(|&id| id < 100));
        assert_eq!(a.len(), 5);
        assert!(a.iter().all(|req| req.len() == 4));
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let s: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&s, 50.0), 50.0);
        assert_eq!(percentile(&s, 99.0), 99.0);
        assert_eq!(percentile(&s, 100.0), 100.0);
        assert_eq!(percentile(&[42.0], 99.0), 42.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }
}
