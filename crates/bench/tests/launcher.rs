//! End-to-end launcher tests: spawn real `sar-worker` OS processes over
//! TCP loopback and check the gathered report, the smoke gate, and the
//! failure paths (a rank that can never rendezvous must exit with a
//! clear error, not hang).

use std::path::PathBuf;
use std::process::Command;

const WORKER: &str = env!("CARGO_BIN_EXE_sar-worker");

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sar-launcher-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn spawn_local_trains_across_four_processes_and_gates_on_smoke() {
    let dir = scratch_dir("sage");
    let json = dir.join("sage.json");
    let output = Command::new(WORKER)
        .args([
            "--spawn-local",
            "4",
            "--arch",
            "sage",
            "--mode",
            "sar",
            "--nodes",
            "300",
            "--epochs",
            "2",
            "--layers",
            "2",
            "--hidden",
            "16",
            "--dropout",
            "0",
            "--check",
            "smoke",
            "--experiment",
            "launcher-sage",
            "--out",
            json.to_str().unwrap(),
        ])
        .output()
        .expect("spawn sar-worker");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "sar-worker --spawn-local failed:\n{stderr}"
    );
    assert!(
        stderr.contains("all 4 ranks completed"),
        "missing completion line:\n{stderr}"
    );

    // Rank 0 gathered every rank's ledger and wrote the full report.
    let text = std::fs::read_to_string(&json).expect("rank 0 wrote the report JSON");
    assert!(text.contains("\"experiment\": \"launcher-sage\""));
    assert!(text.contains("\"world\": 4"));
    assert!(text.contains("\"losses\""));
    assert!(text.contains("\"forward_fetch\""));
    for rank in 0..4 {
        assert!(
            text.contains(&format!("\"rank\": {rank}")),
            "rank {rank} profile missing from gathered report"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rank_without_rendezvous_exits_with_error_instead_of_hanging() {
    let output = Command::new(WORKER)
        .args([
            "--rank",
            "1",
            "--world",
            "2",
            "--rendezvous-file",
            "/nonexistent-dir/never.addr",
            "--rendezvous-timeout-secs",
            "1",
            "--nodes",
            "64",
            "--epochs",
            "1",
        ])
        .output()
        .expect("spawn sar-worker");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("rendezvous file") && stderr.contains("rank 1"),
        "error must name the rank and the missing rendezvous:\n{stderr}"
    );
}

#[test]
fn bad_workload_flags_fail_fast_in_every_rank() {
    let output = Command::new(WORKER)
        .args([
            "--rank",
            "0",
            "--world",
            "1",
            "--rendezvous-file",
            std::env::temp_dir()
                .join("sar-launcher-badflags.addr")
                .to_str()
                .unwrap(),
            "--nodes",
            "64",
            "--arch",
            "transformer",
        ])
        .output()
        .expect("spawn sar-worker");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("unknown arch"), "{stderr}");
}
