//! Arrival-order fuzzing for the overlapped fetch pipeline.
//!
//! The depth-k pipeline stages out-of-order arrivals and accumulates in a
//! fixed rank order, so the *delivery* order of messages must never leak
//! into the results. This test wraps each backend's transport in a
//! shuffling shim that stashes incoming messages and releases them in a
//! pseudo-random order — preserving only the per-`(src, tag)` FIFO
//! guarantee real backends give — and asserts that the run's
//! `parity_digest()` (bitwise losses + per-worker byte ledgers) is
//! identical to the unshuffled sequential baseline at pipeline depths
//! {0, 1, 3}, on both the channel and the TCP backend.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

use sar_bench::distrun::{assemble_report, WorkerSummary};
use sar_comm::tcp::run_tcp_threads;
use sar_comm::{
    ChannelTransport, CostModel, Message, Payload, TcpOpts, Transport, TransportError, WorkerCtx,
};
use sar_core::{run_worker, Arch, DistGraph, Mode, ModelConfig, Shard, TrainConfig};
use sar_graph::{datasets, Dataset};
use sar_nn::LrSchedule;
use sar_partition::{multilevel, Partitioning};

const WORLD: usize = 4;
const RECV_TIMEOUT: Duration = Duration::from_secs(120);

/// Transport shim that delivers messages in a pseudo-random order.
///
/// Every incoming message is stashed; each `recv_any` picks a random
/// stashed message and delivers the *earliest* stashed message of that
/// message's `(src, tag)` stream — per-stream FIFO is the one ordering
/// guarantee the [`Transport`] contract makes, and the only one the
/// pipeline may rely on. Everything else (cross-peer order, cross-tag
/// order, arrival timing) is scrambled.
struct ShufflingTransport {
    inner: Box<dyn Transport>,
    stash: RefCell<Vec<Message>>,
    rng: Cell<u64>,
}

impl ShufflingTransport {
    fn new(inner: Box<dyn Transport>, seed: u64) -> Self {
        ShufflingTransport {
            inner,
            stash: RefCell::new(Vec::new()),
            rng: Cell::new(seed | 1),
        }
    }

    fn next_rand(&self) -> u64 {
        let s = self
            .rng
            .get()
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.rng.set(s);
        s >> 33
    }

    /// Pulls everything the inner transport has ready into the stash.
    fn drain_inner(&self) -> Result<(), TransportError> {
        while let Some(m) = self.inner.try_recv_any()? {
            self.stash.borrow_mut().push(m);
        }
        Ok(())
    }

    /// Removes a random stashed message, rewound to the front of its
    /// `(src, tag)` stream.
    fn pop_shuffled(&self) -> Option<Message> {
        let mut stash = self.stash.borrow_mut();
        if stash.is_empty() {
            return None;
        }
        let pick = self.next_rand() as usize % stash.len();
        let key = (stash[pick].src, stash[pick].tag);
        let first = stash
            .iter()
            .position(|m| (m.src, m.tag) == key)
            .expect("picked message is in the stash");
        Some(stash.remove(first))
    }
}

impl Transport for ShufflingTransport {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn world_size(&self) -> usize {
        self.inner.world_size()
    }

    fn clock(&self) -> sar_comm::Clock {
        self.inner.clock()
    }

    fn send(&self, dst: usize, tag: u64, payload: Payload) -> Result<(), TransportError> {
        self.inner.send(dst, tag, payload)
    }

    fn recv_any(&self, timeout: Duration) -> Result<Message, TransportError> {
        self.drain_inner()?;
        if let Some(m) = self.pop_shuffled() {
            return Ok(m);
        }
        let m = self.inner.recv_any(timeout)?;
        self.stash.borrow_mut().push(m);
        self.drain_inner()?;
        Ok(self
            .pop_shuffled()
            .expect("stash holds at least one message"))
    }

    fn try_recv_any(&self) -> Result<Option<Message>, TransportError> {
        self.drain_inner()?;
        Ok(self.pop_shuffled())
    }

    fn barrier(&self) -> Result<(), TransportError> {
        // Barriers are out-of-band on both backends; nothing to shuffle.
        self.inner.barrier()
    }
}

fn dataset() -> Dataset {
    datasets::products_like(300, 0)
}

fn config(depth: usize, d: &Dataset) -> TrainConfig {
    TrainConfig {
        model: ModelConfig {
            arch: Arch::GraphSage { hidden: 16 },
            mode: Mode::Sar,
            layers: 2,
            in_dim: 0, // set by the trainer
            num_classes: d.num_classes,
            dropout: 0.0,
            batch_norm: true,
            jumping_knowledge: false,
            seed: 7,
        },
        epochs: 2,
        lr: 0.01,
        schedule: LrSchedule::Constant,
        label_aug: true,
        aug_frac: 0.5,
        cs: None,
        prefetch_depth: depth,
        seed: 7,
        threads: 1,
        protocol: Default::default(),
        codec: Default::default(),
        mem_budget: 0,
    }
}

struct Fixture {
    graphs: Arc<Vec<Arc<DistGraph>>>,
    shards: Arc<Vec<Shard>>,
}

fn fixture(d: &Dataset, part: &Partitioning) -> Fixture {
    Fixture {
        graphs: Arc::new(
            DistGraph::build_all(&d.graph, part)
                .into_iter()
                .map(Arc::new)
                .collect(),
        ),
        shards: Arc::new(Shard::build_all(d, part)),
    }
}

/// A rank-distinct seed: runs differ per rank and per depth so the
/// shuffles are not accidentally correlated across the mesh.
fn rank_seed(rank: usize, depth: usize) -> u64 {
    0x9E37_79B9_7F4A_7C15 ^ ((depth as u64) << 32) ^ (rank as u64 + 1)
}

fn summarize(ctx: &WorkerCtx, report: sar_core::WorkerReport) -> WorkerSummary {
    WorkerSummary {
        epochs: report.epochs,
        val_acc: report.val_acc,
        test_acc: report.test_acc,
        test_acc_cs: report.test_acc_cs,
        steady_peak_bytes: report.steady_peak_bytes as u64,
        comm: ctx.stats(),
    }
}

fn digest(summaries: Vec<WorkerSummary>) -> String {
    assemble_report("fuzz", "sage", "sar", &summaries).parity_digest()
}

/// Runs training over the in-process channel mesh, optionally wrapping
/// each rank's transport in the shuffling shim.
fn run_sim(fx: &Fixture, depth: usize, shuffle: bool) -> String {
    let cfg = Arc::new(config(depth, &dataset()));
    let handles: Vec<_> = ChannelTransport::mesh(WORLD)
        .into_iter()
        .enumerate()
        .map(|(rank, t)| {
            let graphs = Arc::clone(&fx.graphs);
            let shards = Arc::clone(&fx.shards);
            let cfg = Arc::clone(&cfg);
            std::thread::spawn(move || {
                let transport: Box<dyn Transport> = if shuffle {
                    Box::new(ShufflingTransport::new(Box::new(t), rank_seed(rank, depth)))
                } else {
                    Box::new(t)
                };
                let ctx = Rc::new(WorkerCtx::new(
                    transport,
                    CostModel::default(),
                    RECV_TIMEOUT,
                ));
                let report = run_worker(
                    Rc::clone(&ctx),
                    Arc::clone(&graphs[rank]),
                    &shards[rank],
                    &cfg,
                );
                summarize(&ctx, report)
            })
        })
        .collect();
    digest(
        handles
            .into_iter()
            .map(|h| h.join().expect("sim worker panicked"))
            .collect(),
    )
}

/// Runs the same program over loopback TCP with every rank's transport
/// shuffled.
fn run_tcp_shuffled(fx: &Fixture, depth: usize) -> String {
    let graphs = Arc::clone(&fx.graphs);
    let shards = Arc::clone(&fx.shards);
    let cfg = Arc::new(config(depth, &dataset()));
    let summaries = run_tcp_threads(WORLD, TcpOpts::default(), move |transport| {
        let rank = transport.rank();
        let shim = ShufflingTransport::new(Box::new(transport), rank_seed(rank, depth));
        let ctx = Rc::new(WorkerCtx::new(
            Box::new(shim),
            CostModel::default(),
            RECV_TIMEOUT,
        ));
        let report = run_worker(
            Rc::clone(&ctx),
            Arc::clone(&graphs[rank]),
            &shards[rank],
            &cfg,
        );
        summarize(&ctx, report)
    });
    digest(summaries)
}

#[test]
fn shuffled_arrival_order_preserves_parity_digest_at_all_depths() {
    let d = dataset();
    let part = multilevel(&d.graph, WORLD, 0);
    let fx = fixture(&d, &part);

    // Unshuffled sequential run: the reference digest every combination
    // must reproduce bit for bit.
    let baseline = run_sim(&fx, 0, false);

    for depth in [0usize, 1, 3] {
        let sim = run_sim(&fx, depth, true);
        assert_eq!(
            sim, baseline,
            "sim backend diverged under shuffled delivery at depth {depth}"
        );
        let tcp = run_tcp_shuffled(&fx, depth);
        assert_eq!(
            tcp, baseline,
            "tcp backend diverged under shuffled delivery at depth {depth}"
        );
    }
}
