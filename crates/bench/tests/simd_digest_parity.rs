//! End-to-end determinism gate for the SIMD dispatch (DESIGN.md §11):
//! a full 4-worker simulated training run must produce the same
//! [`RunReport::parity_digest`] with the vector paths forced off
//! (`SimdMode::ForceScalar`) and with runtime dispatch (`SimdMode::Auto`).
//!
//! The digest pins per-epoch losses, accuracies and every worker's byte
//! ledgers, so a single differing bit anywhere in the model state would
//! surface here. Both architectures run so the SpMM family (sage) and
//! the fused attention family (gat / sar-fak) are each covered.
//!
//! The dispatch mode is process-global; everything lives in one test
//! function so concurrently running tests cannot interleave mode flips.

use sar_bench::distrun::Workload;
use sar_bench::experiments::ExpConfig;
use sar_bench::report::RunReport;
use sar_bench::smoke;
use sar_core::train;
use sar_tensor::simd::{set_mode, SimdMode};

fn digest(wl: &Workload, mode: SimdMode) -> String {
    set_mode(mode);
    let (dataset, part) = wl.build_data(smoke::WORLD).expect("build_data");
    let tcfg = wl.train_config(&dataset).expect("train_config");
    let run = train(&dataset, &part, ExpConfig::default().cost_model(), &tcfg);
    RunReport::from_train("simd-parity", &wl.arch, &wl.mode, &run).parity_digest()
}

#[test]
fn training_digest_is_identical_with_simd_forced_on_and_off() {
    for arch in smoke::MODELS {
        let wl = smoke::workload(arch, 400, 0).expect("smoke workload");
        let scalar = digest(&wl, SimdMode::ForceScalar);
        let auto = digest(&wl, SimdMode::Auto);
        set_mode(SimdMode::Auto);
        if let Some(diff) = smoke::digest_diff(&scalar, &auto) {
            panic!("{arch}: SIMD on/off digest divergence — {diff}");
        }
    }
}
