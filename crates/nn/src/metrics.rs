//! Classification metrics beyond plain accuracy: confusion matrices and
//! macro-averaged F1, with merge support for distributed evaluation.

use sar_tensor::Tensor;

/// A `C × C` confusion matrix: `counts[true][predicted]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<u64>,
    num_classes: usize,
}

impl ConfusionMatrix {
    /// An empty matrix over `num_classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if `num_classes == 0`.
    pub fn new(num_classes: usize) -> Self {
        assert!(num_classes > 0, "need at least one class");
        ConfusionMatrix {
            counts: vec![0; num_classes * num_classes],
            num_classes,
        }
    }

    /// Builds a matrix from logits, labels and a mask.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree or labels are out of range.
    pub fn from_logits(logits: &Tensor, labels: &[u32], mask: &[bool], num_classes: usize) -> Self {
        assert_eq!(logits.rows(), labels.len(), "labels length mismatch");
        assert_eq!(logits.rows(), mask.len(), "mask length mismatch");
        let mut m = ConfusionMatrix::new(num_classes);
        let pred = logits.argmax_rows();
        for i in 0..labels.len() {
            if mask[i] {
                m.record(labels[i], pred[i]);
            }
        }
        m
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if either class is out of range.
    pub fn record(&mut self, truth: u32, predicted: u32) {
        let c = self.num_classes;
        assert!(
            (truth as usize) < c && (predicted as usize) < c,
            "class out of range"
        );
        self.counts[truth as usize * c + predicted as usize] += 1;
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// `counts[true][predicted]`.
    pub fn count(&self, truth: usize, predicted: usize) -> u64 {
        self.counts[truth * self.num_classes + predicted]
    }

    /// Merges another worker's matrix into this one (distributed eval).
    ///
    /// # Panics
    ///
    /// Panics if class counts differ.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        assert_eq!(self.num_classes, other.num_classes, "class count mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// The raw counts, row-major by true class (for all-reduce payloads).
    pub fn as_flat(&self) -> Vec<f32> {
        self.counts.iter().map(|&c| c as f32).collect()
    }

    /// Rebuilds a matrix from an all-reduced flat payload.
    ///
    /// # Panics
    ///
    /// Panics if the length is not `num_classes²`.
    pub fn from_flat(flat: &[f32], num_classes: usize) -> Self {
        assert_eq!(flat.len(), num_classes * num_classes, "flat size mismatch");
        ConfusionMatrix {
            counts: flat.iter().map(|&c| c.round() as u64).collect(),
            num_classes,
        }
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.num_classes).map(|i| self.count(i, i)).sum();
        correct as f64 / total as f64
    }

    /// Per-class (precision, recall, F1); classes with no observations
    /// yield zeros.
    pub fn per_class_prf(&self) -> Vec<(f64, f64, f64)> {
        (0..self.num_classes)
            .map(|k| {
                let tp = self.count(k, k) as f64;
                let fp: f64 = (0..self.num_classes)
                    .filter(|&t| t != k)
                    .map(|t| self.count(t, k) as f64)
                    .sum();
                let fn_: f64 = (0..self.num_classes)
                    .filter(|&p| p != k)
                    .map(|p| self.count(k, p) as f64)
                    .sum();
                let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
                let recall = if tp + fn_ > 0.0 { tp / (tp + fn_) } else { 0.0 };
                let f1 = if precision + recall > 0.0 {
                    2.0 * precision * recall / (precision + recall)
                } else {
                    0.0
                };
                (precision, recall, f1)
            })
            .collect()
    }

    /// Macro-averaged F1 over classes that appear in the ground truth.
    pub fn macro_f1(&self) -> f64 {
        let prf = self.per_class_prf();
        let present: Vec<usize> = (0..self.num_classes)
            .filter(|&k| (0..self.num_classes).any(|p| self.count(k, p) > 0))
            .collect();
        if present.is_empty() {
            return 0.0;
        }
        present.iter().map(|&k| prf[k].2).sum::<f64>() / present.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let logits = Tensor::from_vec(&[3, 2], vec![5., 0., 0., 5., 5., 0.]);
        let m = ConfusionMatrix::from_logits(&logits, &[0, 1, 0], &[true; 3], 2);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.macro_f1(), 1.0);
        assert_eq!(m.count(0, 0), 2);
        assert_eq!(m.count(1, 1), 1);
    }

    #[test]
    fn confusion_counts_and_prf() {
        let mut m = ConfusionMatrix::new(2);
        // 3 true 0 (2 right, 1 wrong), 1 true 1 (wrong).
        m.record(0, 0);
        m.record(0, 0);
        m.record(0, 1);
        m.record(1, 0);
        assert_eq!(m.accuracy(), 0.5);
        let prf = m.per_class_prf();
        // Class 0: tp 2, fp 1, fn 1 → p=2/3, r=2/3.
        assert!((prf[0].0 - 2.0 / 3.0).abs() < 1e-9);
        assert!((prf[0].1 - 2.0 / 3.0).abs() < 1e-9);
        // Class 1: tp 0 → all zeros.
        assert_eq!(prf[1], (0.0, 0.0, 0.0));
    }

    #[test]
    fn merge_equals_joint_computation() {
        let mut a = ConfusionMatrix::new(3);
        a.record(0, 0);
        a.record(1, 2);
        let mut b = ConfusionMatrix::new(3);
        b.record(1, 2);
        b.record(2, 2);
        let mut joint = ConfusionMatrix::new(3);
        for m in [&a, &b] {
            joint.merge(m);
        }
        assert_eq!(joint.count(1, 2), 2);
        assert_eq!(joint.count(2, 2), 1);
        // Flat round-trip (the all-reduce path).
        let rebuilt = ConfusionMatrix::from_flat(&joint.as_flat(), 3);
        assert_eq!(rebuilt, joint);
    }

    #[test]
    fn macro_f1_ignores_absent_classes() {
        let mut m = ConfusionMatrix::new(5);
        m.record(0, 0);
        m.record(1, 1);
        // Classes 2..4 never appear as ground truth.
        assert_eq!(m.macro_f1(), 1.0);
    }

    #[test]
    fn mask_excludes_rows() {
        let logits = Tensor::from_vec(&[2, 2], vec![5., 0., 5., 0.]);
        let m = ConfusionMatrix::from_logits(&logits, &[0, 1], &[true, false], 2);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.count(1, 0), 0);
    }
}
