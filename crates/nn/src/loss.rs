//! Classification losses and metrics for node classification.

use sar_tensor::{Tensor, Var};

/// Masked cross-entropy: softmax over each row of `logits` followed by
/// negative log-likelihood averaged over the rows where `mask` is `true`.
///
/// When `normalizer` is `Some(m)`, divides by `m` instead of the local mask
/// count — distributed workers pass the *global* training-node count so
/// their per-worker losses sum to the exact full-batch loss.
///
/// # Panics
///
/// Panics if lengths disagree or a masked label is out of range.
pub fn cross_entropy_masked(
    logits: &Var,
    labels: &[u32],
    mask: &[bool],
    normalizer: Option<f32>,
) -> Var {
    logits
        .log_softmax_rows()
        .nll_masked(labels, mask, normalizer)
}

/// Counts correct argmax predictions among masked rows; returns
/// `(correct, total)` so distributed workers can sum both before dividing.
///
/// # Panics
///
/// Panics if lengths disagree.
pub fn correct_count(logits: &Tensor, labels: &[u32], mask: &[bool]) -> (usize, usize) {
    assert_eq!(logits.rows(), labels.len(), "labels length mismatch");
    assert_eq!(logits.rows(), mask.len(), "mask length mismatch");
    let pred = logits.argmax_rows();
    let mut correct = 0;
    let mut total = 0;
    for i in 0..labels.len() {
        if mask[i] {
            total += 1;
            if pred[i] == labels[i] {
                correct += 1;
            }
        }
    }
    (correct, total)
}

/// Masked accuracy in `[0, 1]` (0 when the mask is empty).
pub fn accuracy(logits: &Tensor, labels: &[u32], mask: &[bool]) -> f64 {
    let (correct, total) = correct_count(logits, labels, mask);
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_logits_give_low_loss_and_full_accuracy() {
        let logits = Tensor::from_vec(&[3, 2], vec![10., -10., -10., 10., 10., -10.]);
        let labels = vec![0u32, 1, 0];
        let mask = vec![true; 3];
        let loss = cross_entropy_masked(&Var::constant(logits.clone()), &labels, &mask, None);
        assert!(loss.value().item() < 1e-3);
        assert_eq!(accuracy(&logits, &labels, &mask), 1.0);
    }

    #[test]
    fn uniform_logits_give_log_c() {
        let logits = Tensor::zeros(&[5, 4]);
        let labels = vec![0u32; 5];
        let mask = vec![true; 5];
        let loss = cross_entropy_masked(&Var::constant(logits), &labels, &mask, None);
        assert!((loss.value().item() - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn mask_excludes_rows() {
        let logits = Tensor::from_vec(&[2, 2], vec![10., -10., 10., -10.]);
        let labels = vec![0u32, 1]; // second row is wrong but masked out
        let mask = vec![true, false];
        assert_eq!(accuracy(&logits, &labels, &mask), 1.0);
        let (c, t) = correct_count(&logits, &labels, &mask);
        assert_eq!((c, t), (1, 1));
    }

    #[test]
    fn empty_mask_is_zero_accuracy() {
        let logits = Tensor::zeros(&[2, 2]);
        assert_eq!(accuracy(&logits, &[0, 0], &[false, false]), 0.0);
    }

    #[test]
    fn gradient_only_on_masked_rows() {
        let x = Var::parameter(Tensor::zeros(&[3, 2]));
        let loss = cross_entropy_masked(&x, &[0, 1, 0], &[true, false, true], None);
        loss.backward();
        let g = x.grad().unwrap();
        assert!(g.row(0).iter().any(|&v| v != 0.0));
        assert!(g.row(1).iter().all(|&v| v == 0.0));
        assert!(g.row(2).iter().any(|&v| v != 0.0));
    }
}
