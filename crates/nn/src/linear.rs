//! Dense linear layer.

use rand::Rng;
use sar_tensor::{init, Var};

/// A dense layer `y = x W (+ b)` with Xavier-initialized weights.
///
/// # Example
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use sar_nn::Linear;
/// use sar_tensor::{Tensor, Var};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let lin = Linear::new(4, 2, true, &mut rng);
/// let x = Var::constant(Tensor::ones(&[3, 4]));
/// assert_eq!(lin.forward(&x).shape(), vec![3, 2]);
/// assert_eq!(lin.params().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Var,
    bias: Option<Var>,
}

impl Linear {
    /// Creates a layer mapping `in_dim → out_dim`.
    pub fn new(in_dim: usize, out_dim: usize, bias: bool, rng: &mut impl Rng) -> Self {
        Linear {
            weight: Var::parameter(init::xavier_uniform(in_dim, out_dim, rng)),
            bias: bias.then(|| Var::parameter(sar_tensor::Tensor::zeros(&[out_dim]))),
        }
    }

    /// Applies the layer.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != in_dim`.
    pub fn forward(&self, x: &Var) -> Var {
        let y = x.matmul(&self.weight);
        match &self.bias {
            Some(b) => y.add_bias(b),
            None => y,
        }
    }

    /// The weight matrix `[in_dim, out_dim]`.
    pub fn weight(&self) -> &Var {
        &self.weight
    }

    /// Trainable parameters (weight, then bias if present).
    pub fn params(&self) -> Vec<Var> {
        let mut p = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            p.push(b.clone());
        }
        p
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.weight.shape()[0]
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.weight.shape()[1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sar_tensor::{Tensor, Var};

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = StdRng::seed_from_u64(0);
        let lin = Linear::new(3, 5, true, &mut rng);
        let x = Var::constant(Tensor::zeros(&[2, 3]));
        let y = lin.forward(&x);
        assert_eq!(y.shape(), vec![2, 5]);
        // Zero input ⇒ output equals (zero-initialized) bias.
        assert!(y.value().allclose(&Tensor::zeros(&[2, 5]), 1e-6));
    }

    #[test]
    fn gradients_flow_to_weight_and_bias() {
        let mut rng = StdRng::seed_from_u64(1);
        let lin = Linear::new(3, 2, true, &mut rng);
        let x = Var::constant(Tensor::ones(&[4, 3]));
        lin.forward(&x).sum().backward();
        for p in lin.params() {
            let g = p.grad().expect("param must receive grad");
            assert!(g.max_abs() > 0.0);
        }
    }

    #[test]
    fn no_bias_has_one_param() {
        let mut rng = StdRng::seed_from_u64(2);
        let lin = Linear::new(3, 2, false, &mut rng);
        assert_eq!(lin.params().len(), 1);
        assert_eq!(lin.in_dim(), 3);
        assert_eq!(lin.out_dim(), 2);
    }
}
