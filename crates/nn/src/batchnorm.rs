//! Single-machine batch normalization over node features.
//!
//! The distributed variant (collective mean/variance across workers, §3.4
//! of the paper) lives in `sar-core`; this layer is the reference it is
//! tested against.

use sar_tensor::{Tensor, Var};

/// Batch normalization over the rows of a `[N, F]` node-feature matrix.
///
/// In training mode, normalizes with the batch mean/variance (biased, as
/// in PyTorch) and updates running statistics; in eval mode, uses the
/// running statistics.
#[derive(Debug, Clone)]
pub struct BatchNorm1d {
    gamma: Var,
    beta: Var,
    running_mean: Tensor,
    running_var: Tensor,
    momentum: f32,
    eps: f32,
}

impl BatchNorm1d {
    /// Creates a batch-norm layer over `dim` features.
    pub fn new(dim: usize) -> Self {
        BatchNorm1d {
            gamma: Var::parameter(Tensor::ones(&[dim])),
            beta: Var::parameter(Tensor::zeros(&[dim])),
            running_mean: Tensor::zeros(&[dim]),
            running_var: Tensor::ones(&[dim]),
            momentum: 0.1,
            eps: 1e-5,
        }
    }

    /// Normalizes `x` (`[N, F]`).
    ///
    /// # Panics
    ///
    /// Panics if `x` width differs from the layer dimension.
    pub fn forward(&mut self, x: &Var, training: bool) -> Var {
        let n = x.value().rows() as f32;
        if training {
            // Batch statistics as differentiable ops.
            let mean = x.sum_axis0().scale(1.0 / n);
            let centered = x.sub_row(&mean);
            let var = centered.mul(&centered).sum_axis0().scale(1.0 / n);
            // Track running stats outside the tape.
            {
                let m = self.momentum;
                let mean_t = mean.value_clone();
                let var_t = var.value_clone();
                self.running_mean = self.running_mean.scale(1.0 - m).add(&mean_t.scale(m));
                self.running_var = self.running_var.scale(1.0 - m).add(&var_t.scale(m));
            }
            let std = var.add_scalar(self.eps).sqrt();
            centered
                .div_row(&std)
                .mul_row(&self.gamma)
                .add_bias(&self.beta)
        } else {
            let inv_std = self.running_var.map(|v| 1.0 / (v + self.eps).sqrt());
            let x_hat = x
                .sub_row(&Var::constant(self.running_mean.clone()))
                .mul_row(&Var::constant(inv_std));
            x_hat.mul_row(&self.gamma).add_bias(&self.beta)
        }
    }

    /// Trainable parameters (`gamma`, `beta`).
    pub fn params(&self) -> Vec<Var> {
        vec![self.gamma.clone(), self.beta.clone()]
    }

    /// Current running mean (for tests and checkpointing).
    pub fn running_mean(&self) -> &Tensor {
        &self.running_mean
    }

    /// Current running variance.
    pub fn running_var(&self) -> &Tensor {
        &self.running_var
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sar_tensor::gradcheck::check_gradients;
    use sar_tensor::init;

    #[test]
    fn normalizes_to_zero_mean_unit_var() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut bn = BatchNorm1d::new(4);
        let x = Var::constant(init::randn(&[200, 4], 3.0, &mut rng).add_scalar(5.0));
        let y = bn.forward(&x, true);
        let yv = y.value_clone();
        let mean = yv.sum_axis0().scale(1.0 / 200.0);
        assert!(mean.max_abs() < 1e-4, "mean {:?}", mean.data());
        let var: f32 = yv.data().iter().map(|v| v * v).sum::<f32>() / 800.0;
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn gradcheck_through_batchnorm() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = init::randn(&[6, 3], 1.0, &mut rng);
        let w = Var::constant(init::randn(&[6, 3], 1.0, &mut rng));
        check_gradients(
            &[x],
            |vs| {
                let mut bn = BatchNorm1d::new(3);
                bn.forward(&vs[0], true).mul(&w).sum()
            },
            2e-2,
        );
    }

    #[test]
    fn eval_mode_uses_running_stats() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut bn = BatchNorm1d::new(2);
        // Feed many batches with mean 10 so running stats converge there.
        for _ in 0..200 {
            let x = Var::constant(init::randn(&[64, 2], 1.0, &mut rng).add_scalar(10.0));
            let _ = bn.forward(&x, true);
        }
        assert!((bn.running_mean().mean() - 10.0).abs() < 0.5);
        // In eval mode, inputs at 10 should map near zero.
        let x = Var::constant(Tensor::full(&[4, 2], 10.0));
        let y = bn.forward(&x, false);
        assert!(y.value().max_abs() < 0.5);
    }

    #[test]
    fn gamma_beta_receive_gradients() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut bn = BatchNorm1d::new(3);
        let x = Var::constant(init::randn(&[10, 3], 1.0, &mut rng));
        bn.forward(&x, true).sum().backward();
        for p in bn.params() {
            assert!(p.grad().is_some());
        }
    }
}
