//! Graph Attention Network layers (Eq. 3 of the paper), in both the
//! standard two-step formulation and the fused-attention-kernel (FAK)
//! formulation of §3.3.

use std::sync::Arc;

use rand::Rng;
use sar_graph::fused::{
    attn_grad_dot, gat_fused_block_backward, gat_fused_block_forward, OnlineAttnState,
};
use sar_graph::CsrGraph;
use sar_tensor::{init, no_grad, Function, Tensor, Var};

use crate::graph_autograd::{
    edge_softmax, gather_dst, gather_src, head_project, mean_heads, spmm_multihead,
};
use crate::linear::Linear;

/// Hyperparameters shared by [`GatLayer`] and [`FusedGatLayer`].
#[derive(Debug, Clone)]
pub struct GatConfig {
    /// Input feature dimension.
    pub in_dim: usize,
    /// Output dimension *per head*.
    pub head_dim: usize,
    /// Number of attention heads.
    pub heads: usize,
    /// LeakyReLU negative slope for attention logits (paper uses 0.2).
    pub slope: f32,
    /// `true`: concatenate heads (`[N, H*D]` output, hidden layers);
    /// `false`: average heads (`[N, D]` output, final layer).
    pub concat: bool,
    /// Apply a ReLU to the output (σ in Eq. 3); disable on the last layer.
    pub activation: bool,
}

impl GatConfig {
    /// Convenience constructor with the paper's defaults (slope 0.2,
    /// concatenated heads, activation on).
    pub fn new(in_dim: usize, head_dim: usize, heads: usize) -> Self {
        GatConfig {
            in_dim,
            head_dim,
            heads,
            slope: 0.2,
            concat: true,
            activation: true,
        }
    }

    /// Output width of a layer with this configuration.
    pub fn out_width(&self) -> usize {
        if self.concat {
            self.heads * self.head_dim
        } else {
            self.head_dim
        }
    }
}

/// Shared parameters of a GAT layer: the projection `W` and the split
/// attention vector (`a = [a_dst ‖ a_src]`, so
/// `aᵀ(z_i ‖ z_j) = a_dstᵀ z_i + a_srcᵀ z_j`).
#[derive(Debug, Clone)]
struct GatParams {
    lin: Linear,
    a_dst: Var,
    a_src: Var,
    cfg: GatConfig,
}

impl GatParams {
    fn new(cfg: GatConfig, rng: &mut impl Rng) -> Self {
        let width = cfg.heads * cfg.head_dim;
        let std = (2.0 / (cfg.head_dim as f32)).sqrt();
        GatParams {
            lin: Linear::new(cfg.in_dim, width, false, rng),
            a_dst: Var::parameter(init::randn(&[width], std, rng)),
            a_src: Var::parameter(init::randn(&[width], std, rng)),
            cfg: cfg.clone(),
        }
    }

    fn params(&self) -> Vec<Var> {
        let mut p = self.lin.params();
        p.push(self.a_dst.clone());
        p.push(self.a_src.clone());
        p
    }

    fn combine(&self, out: Var) -> Var {
        let out = if self.cfg.concat {
            out
        } else {
            mean_heads(&out, self.cfg.heads)
        };
        if self.cfg.activation {
            out.relu()
        } else {
            out
        }
    }
}

/// The standard (DGL-style) GAT layer.
///
/// Decomposed two-step attention, one primitive kernel per step as in a
/// generic message-passing framework: gather the per-edge destination and
/// source logits (`[E, H]` each), add, LeakyReLU, edge softmax — each step
/// writing its `[E, H]` result to memory and keeping it on the autograd
/// tape — then aggregate messages weighted by the coefficients. This is
/// the baseline whose runtime and peak memory Fig. 2 compares against the
/// fused kernel, which never materializes any of these tensors.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use rand::{rngs::StdRng, SeedableRng};
/// use sar_graph::CsrGraph;
/// use sar_nn::{GatConfig, GatLayer};
/// use sar_tensor::{Tensor, Var};
///
/// let g = Arc::new(CsrGraph::from_edges(3, &[(0, 1), (1, 2)]).with_self_loops());
/// let mut rng = StdRng::seed_from_u64(0);
/// let layer = GatLayer::new(GatConfig::new(4, 8, 2), &mut rng);
/// let h = Var::constant(Tensor::ones(&[3, 4]));
/// assert_eq!(layer.forward(&g, &h).shape(), vec![3, 16]);
/// ```
#[derive(Debug, Clone)]
pub struct GatLayer {
    p: GatParams,
}

impl GatLayer {
    /// Creates a standard GAT layer.
    pub fn new(cfg: GatConfig, rng: &mut impl Rng) -> Self {
        GatLayer {
            p: GatParams::new(cfg, rng),
        }
    }

    /// Applies the layer over graph `g`.
    ///
    /// # Panics
    ///
    /// Panics if `h` has the wrong width or row count.
    pub fn forward(&self, g: &Arc<CsrGraph>, h: &Var) -> Var {
        let cfg = &self.p.cfg;
        let z = self.p.lin.forward(h);
        let s_dst = head_project(&z, &self.p.a_dst, cfg.heads);
        let s_src = head_project(&z, &self.p.a_src, cfg.heads);
        // DGL-style primitive pipeline: u_add_v -> leaky_relu ->
        // edge_softmax, materializing one [E, H] tensor per step.
        let e_dst = gather_dst(g, &s_dst);
        let e_src = gather_src(g, &s_src);
        let scores = e_dst.add(&e_src).leaky_relu(cfg.slope);
        let alpha = edge_softmax(g, &scores);
        let out = spmm_multihead(g, &alpha, &z);
        self.p.combine(out)
    }

    /// Trainable parameters.
    pub fn params(&self) -> Vec<Var> {
        self.p.params()
    }

    /// The layer's configuration.
    pub fn config(&self) -> &GatConfig {
        &self.p.cfg
    }
}

/// The fused-attention-kernel GAT layer (§3.3).
///
/// Attention coefficients are computed on the fly inside a single fused
/// forward kernel (online stable softmax) and recomputed on the fly in the
/// fused backward kernel. The `[E, H]` coefficient tensor never exists;
/// only `O(N·H)` softmax statistics are saved — the memory profile Fig. 2b
/// measures.
#[derive(Debug, Clone)]
pub struct FusedGatLayer {
    p: GatParams,
}

struct FusedAttnFn {
    parents: Vec<Var>, // [z, s_dst, s_src]
    graph: Arc<CsrGraph>,
    slope: f32,
    heads: usize,
    max: Tensor,
    den: Tensor,
}

impl Function for FusedAttnFn {
    fn parents(&self) -> &[Var] {
        &self.parents
    }

    fn name(&self) -> &'static str {
        "fused_gat_attention"
    }

    fn backward(&self, grad_output: &Tensor, output: &Tensor) -> Vec<Option<Tensor>> {
        let (z, s_dst, s_src) = (&self.parents[0], &self.parents[1], &self.parents[2]);
        let grad_dot = attn_grad_dot(grad_output, output, self.heads);
        let mut d_s_dst = Tensor::zeros(&[self.graph.num_rows(), self.heads]);
        let grads = gat_fused_block_backward(
            &self.graph,
            &s_dst.value(),
            &s_src.value(),
            &z.value(),
            self.slope,
            &self.max,
            &self.den,
            grad_output,
            &grad_dot,
            &mut d_s_dst,
        );
        vec![Some(grads.d_x_src), Some(d_s_dst), Some(grads.d_s_src)]
    }
}

impl FusedGatLayer {
    /// Creates a fused GAT layer.
    pub fn new(cfg: GatConfig, rng: &mut impl Rng) -> Self {
        FusedGatLayer {
            p: GatParams::new(cfg, rng),
        }
    }

    /// Creates a fused layer sharing the parameters of a standard layer —
    /// used by tests and benchmarks to compare the two implementations on
    /// identical weights.
    pub fn from_standard(layer: &GatLayer) -> Self {
        FusedGatLayer { p: layer.p.clone() }
    }

    /// Applies the layer over graph `g` using the fused kernels.
    ///
    /// # Panics
    ///
    /// Panics if `h` has the wrong width or row count.
    pub fn forward(&self, g: &Arc<CsrGraph>, h: &Var) -> Var {
        let cfg = &self.p.cfg;
        let z = self.p.lin.forward(h);
        let s_dst = head_project(&z, &self.p.a_dst, cfg.heads);
        let s_src = head_project(&z, &self.p.a_src, cfg.heads);

        // Fused forward: streams all edges once, keeping only O(N·H)
        // softmax state; coefficients are never materialized.
        let (value, max, den) = no_grad(|| {
            let mut state = OnlineAttnState::new(g.num_rows(), cfg.heads, cfg.head_dim);
            gat_fused_block_forward(
                g,
                &s_dst.value(),
                &s_src.value(),
                &z.value(),
                cfg.slope,
                &mut state,
            );
            state.finalize_into()
        });

        let out = Var::from_function(
            value,
            FusedAttnFn {
                parents: vec![z, s_dst, s_src],
                graph: Arc::clone(g),
                slope: cfg.slope,
                heads: cfg.heads,
                max,
                den,
            },
        );
        self.p.combine(out)
    }

    /// Trainable parameters.
    pub fn params(&self) -> Vec<Var> {
        self.p.params()
    }

    /// The layer's configuration.
    pub fn config(&self) -> &GatConfig {
        &self.p.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sar_tensor::MemoryTracker;

    fn graph() -> Arc<CsrGraph> {
        Arc::new(
            CsrGraph::from_edges(
                6,
                &[
                    (0, 1),
                    (2, 1),
                    (3, 1),
                    (1, 0),
                    (4, 3),
                    (3, 4),
                    (5, 2),
                    (2, 5),
                ],
            )
            .with_self_loops(),
        )
    }

    fn input(rng: &mut StdRng) -> Var {
        Var::parameter(init::randn(&[6, 5], 1.0, rng))
    }

    #[test]
    fn standard_forward_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let layer = GatLayer::new(GatConfig::new(5, 3, 4), &mut rng);
        let h = input(&mut rng);
        assert_eq!(layer.forward(&graph(), &h).shape(), vec![6, 12]);

        let mut cfg = GatConfig::new(5, 3, 4);
        cfg.concat = false;
        let layer = GatLayer::new(cfg, &mut rng);
        assert_eq!(layer.forward(&graph(), &h).shape(), vec![6, 3]);
    }

    #[test]
    fn fused_matches_standard_forward() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut cfg = GatConfig::new(5, 4, 2);
        cfg.activation = false;
        let std_layer = GatLayer::new(cfg, &mut rng);
        let fused = FusedGatLayer::from_standard(&std_layer);
        let h = input(&mut rng);
        let g = graph();
        let a = std_layer.forward(&g, &h);
        let b = fused.forward(&g, &h);
        assert!(
            a.value().allclose(&b.value(), 1e-4),
            "fused and standard forward disagree"
        );
    }

    #[test]
    fn fused_matches_standard_gradients() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut cfg = GatConfig::new(4, 3, 2);
        cfg.activation = false;
        let std_layer = GatLayer::new(cfg, &mut rng);
        let fused = FusedGatLayer::from_standard(&std_layer);
        let g = graph();

        let h1 = Var::parameter(init::randn(&[6, 4], 1.0, &mut StdRng::seed_from_u64(3)));
        std_layer.forward(&g, &h1).sum().backward();
        let h2 = Var::parameter(h1.value_clone());
        // Parameters are shared; clear their grads between the two runs.
        for p in std_layer.params() {
            p.zero_grad();
        }
        fused.forward(&g, &h2).sum().backward();

        let g1 = h1.grad().expect("standard grad");
        let g2 = h2.grad().expect("fused grad");
        assert!(g1.allclose(&g2, 1e-3), "input grads disagree");
    }

    #[test]
    fn fused_param_grads_match_standard() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut cfg = GatConfig::new(4, 3, 2);
        cfg.activation = false;
        let g = graph();
        let h_val = init::randn(&[6, 4], 1.0, &mut rng);

        let std_layer = GatLayer::new(cfg.clone(), &mut StdRng::seed_from_u64(5));
        std_layer
            .forward(&g, &Var::constant(h_val.clone()))
            .sum()
            .backward();
        let std_grads: Vec<Tensor> = std_layer
            .params()
            .iter()
            .map(|p| p.grad().expect("grad"))
            .collect();

        let fused = FusedGatLayer::new(cfg, &mut StdRng::seed_from_u64(5));
        fused.forward(&g, &Var::constant(h_val)).sum().backward();
        for (i, p) in fused.params().iter().enumerate() {
            let fg = p.grad().expect("grad");
            assert!(fg.allclose(&std_grads[i], 1e-3), "param {i} grads disagree");
        }
    }

    #[test]
    fn fused_uses_less_forward_memory_on_dense_graphs() {
        // Many edges, few nodes: the [E, H] coefficient tensors dominate.
        let mut rng = StdRng::seed_from_u64(6);
        let edges: Vec<(u32, u32)> = (0..40u32)
            .flat_map(|i| (0..40u32).map(move |j| (i, j)))
            .collect();
        let g = Arc::new(CsrGraph::from_edges(40, &edges));
        let cfg = GatConfig::new(8, 4, 8);
        let std_layer = GatLayer::new(cfg, &mut rng);
        let fused = FusedGatLayer::from_standard(&std_layer);
        let h = Var::constant(init::randn(&[40, 8], 1.0, &mut rng));

        MemoryTracker::reset_peak();
        let base = MemoryTracker::stats().current_bytes;
        let out_std = std_layer.forward(&g, &h);
        let peak_std = MemoryTracker::stats().peak_bytes - base;
        drop(out_std);

        MemoryTracker::reset_peak();
        let base = MemoryTracker::stats().current_bytes;
        let out_fused = fused.forward(&g, &h);
        let peak_fused = MemoryTracker::stats().peak_bytes - base;
        drop(out_fused);

        assert!(
            peak_fused < peak_std / 2,
            "fused peak {peak_fused} should be well below standard peak {peak_std}"
        );
    }

    #[test]
    fn attention_rows_influence_output() {
        // Changing a source node's features must change its neighbors'
        // outputs (sanity: attention actually routes information).
        let mut rng = StdRng::seed_from_u64(7);
        let mut cfg = GatConfig::new(3, 2, 1);
        cfg.activation = false;
        let layer = GatLayer::new(cfg, &mut rng);
        let g = graph();
        let base = init::randn(&[6, 3], 1.0, &mut rng);
        let out1 = layer.forward(&g, &Var::constant(base.clone()));
        let mut changed = base.clone();
        changed.row_mut(0)[0] += 2.0;
        let out2 = layer.forward(&g, &Var::constant(changed));
        // Node 1 has 0 as an in-neighbor.
        let d: f32 = out1
            .value()
            .row(1)
            .iter()
            .zip(out2.value().row(1))
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(d > 1e-4, "neighbor output did not react to source change");
    }
}
