//! Differentiable wrappers around the sparse kernels of `sar-graph`.
//!
//! Each wrapper records a custom backward on the autograd tape. Graphs are
//! passed as `Arc<CsrGraph>` so the backward closures can hold them without
//! copying the topology.

use std::sync::Arc;

use sar_graph::{ops, CsrGraph};
use sar_tensor::{Function, Tensor, Var};

/// Differentiable sum aggregation `out[i] = Σ_{j ∈ N(i)} x[j]`.
///
/// # Panics
///
/// Panics if `x` rows differ from the graph's column count.
pub fn spmm_sum(g: &Arc<CsrGraph>, x: &Var) -> Var {
    let value = ops::spmm_sum(g, &x.value());
    let g = Arc::clone(g);
    Var::from_op(value, vec![x.clone()], "spmm_sum", move |grad| {
        vec![Some(ops::spmm_sum_backward(&g, grad))]
    })
}

/// Differentiable mean aggregation: sum aggregation divided by the
/// in-degree (isolated nodes output zero).
///
/// # Panics
///
/// Panics if `x` rows differ from the graph's column count.
pub fn spmm_mean(g: &Arc<CsrGraph>, x: &Var) -> Var {
    let inv_deg: Vec<f32> = g
        .in_degrees()
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d } else { 0.0 })
        .collect();
    let inv = Var::constant(Tensor::from_vec(&[g.num_rows()], inv_deg));
    spmm_sum(g, x).mul_col(&inv)
}

/// Differentiable per-edge attention scores
/// `e[e, h] = LeakyReLU(s_dst[dst(e), h] + s_src[src(e), h])`.
///
/// # Panics
///
/// Panics if shapes disagree with the graph.
pub fn gat_edge_scores(g: &Arc<CsrGraph>, s_dst: &Var, s_src: &Var, slope: f32) -> Var {
    let value = ops::gat_edge_scores(g, &s_dst.value(), &s_src.value(), slope);
    let graph = Arc::clone(g);
    let (sd, ss) = (s_dst.clone(), s_src.clone());
    Var::from_op(
        value,
        vec![s_dst.clone(), s_src.clone()],
        "gat_edge_scores",
        move |grad| {
            let (d_dst, d_src) =
                ops::gat_edge_scores_backward(&graph, &sd.value(), &ss.value(), slope, grad);
            vec![Some(d_dst), Some(d_src)]
        },
    )
}

/// Differentiable gather of source features per edge: `out[e] = x[src(e)]`
/// (`[E, F]`). Backward scatter-adds to the sources. One of the primitive
/// DGL-style edge operations whose materialized outputs the fused kernel
/// avoids.
///
/// # Panics
///
/// Panics if `x` rows differ from the graph's column count.
pub fn gather_src(g: &Arc<CsrGraph>, x: &Var) -> Var {
    let value = ops::gather_src(g, &x.value());
    let graph = Arc::clone(g);
    Var::from_op(value, vec![x.clone()], "gather_src", move |grad| {
        vec![Some(ops::scatter_edges_to_src(&graph, grad))]
    })
}

/// Differentiable gather of destination features per edge:
/// `out[e] = x[dst(e)]` (`[E, F]`). Backward scatter-adds to the
/// destinations.
///
/// # Panics
///
/// Panics if `x` rows differ from the graph's row count.
pub fn gather_dst(g: &Arc<CsrGraph>, x: &Var) -> Var {
    let value = ops::gather_dst(g, &x.value());
    let graph = Arc::clone(g);
    Var::from_op(value, vec![x.clone()], "gather_dst", move |grad| {
        vec![Some(ops::scatter_edges_to_dst(&graph, grad))]
    })
}

struct EdgeSoftmaxFn {
    parents: Vec<Var>,
    graph: Arc<CsrGraph>,
}

impl Function for EdgeSoftmaxFn {
    fn parents(&self) -> &[Var] {
        &self.parents
    }

    fn name(&self) -> &'static str {
        "edge_softmax"
    }

    fn backward(&self, grad_output: &Tensor, output: &Tensor) -> Vec<Option<Tensor>> {
        // The softmax gradient is expressed in terms of the output, which
        // the engine shares with us — no extra copy is saved at forward
        // time (matching DGL/PyTorch `save_for_backward`).
        vec![Some(ops::edge_softmax_backward(
            &self.graph,
            output,
            grad_output,
        ))]
    }
}

/// Differentiable edge softmax over each destination's incoming edges.
///
/// The `[E, H]` attention-coefficient tensor this produces lives on the
/// tape until backward — the memory cost the fused kernel (§3.3) avoids.
///
/// # Panics
///
/// Panics if `scores` does not have one row per edge.
pub fn edge_softmax(g: &Arc<CsrGraph>, scores: &Var) -> Var {
    let alpha = ops::edge_softmax(g, &scores.value());
    Var::from_function(
        alpha,
        EdgeSoftmaxFn {
            parents: vec![scores.clone()],
            graph: Arc::clone(g),
        },
    )
}

/// Differentiable multi-head attention-weighted aggregation.
///
/// # Panics
///
/// Panics if shapes are inconsistent (see
/// [`ops::spmm_multihead`]).
pub fn spmm_multihead(g: &Arc<CsrGraph>, alpha: &Var, x: &Var) -> Var {
    let value = ops::spmm_multihead(g, &alpha.value(), &x.value());
    let graph = Arc::clone(g);
    let (a, xv) = (alpha.clone(), x.clone());
    Var::from_op(
        value,
        vec![alpha.clone(), x.clone()],
        "spmm_multihead",
        move |grad| {
            let (d_alpha, d_x) =
                ops::spmm_multihead_backward(&graph, &a.value(), &xv.value(), grad);
            vec![Some(d_alpha), Some(d_x)]
        },
    )
}

/// Differentiable per-head projection `s[n, h] = Σ_k x[n, h*D+k] a[h*D+k]`.
///
/// # Panics
///
/// Panics if `a` length differs from `x.cols()` or is not divisible by
/// `heads`.
pub fn head_project(x: &Var, a: &Var, heads: usize) -> Var {
    let value = ops::head_project(&x.value(), &a.value(), heads);
    let (xv, av) = (x.clone(), a.clone());
    Var::from_op(
        value,
        vec![x.clone(), a.clone()],
        "head_project",
        move |grad| {
            let (d_x, d_a) = ops::head_project_backward(&xv.value(), &av.value(), heads, grad);
            vec![Some(d_x), Some(d_a)]
        },
    )
}

/// Averages the `heads` blocks of a `[N, H*D]` variable into `[N, D]` —
/// the head-combination used by a final GAT layer.
///
/// # Panics
///
/// Panics if the width is not divisible by `heads`.
pub fn mean_heads(x: &Var, heads: usize) -> Var {
    let hd = x.value().cols();
    assert_eq!(hd % heads, 0, "width {hd} not divisible by {heads} heads");
    let d = hd / heads;
    let n = x.value().rows();
    let mut out = vec![0.0f32; n * d];
    {
        let v = x.value();
        for i in 0..n {
            let row = v.row(i);
            for h in 0..heads {
                for k in 0..d {
                    out[i * d + k] += row[h * d + k] / heads as f32;
                }
            }
        }
    }
    let value = Tensor::from_vec(&[n, d], out);
    Var::from_op(value, vec![x.clone()], "mean_heads", move |grad| {
        let mut dx = Tensor::zeros(&[n, hd]);
        for i in 0..n {
            let g_row = grad.row(i);
            let dx_row = dx.row_mut(i);
            for h in 0..heads {
                for k in 0..d {
                    dx_row[h * d + k] = g_row[k] / heads as f32;
                }
            }
        }
        vec![Some(dx)]
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sar_tensor::gradcheck::check_gradients;
    use sar_tensor::init;

    fn graph() -> Arc<CsrGraph> {
        Arc::new(CsrGraph::from_edges(
            4,
            &[(1, 0), (2, 0), (0, 1), (3, 2), (2, 2), (1, 3)],
        ))
    }

    #[test]
    fn spmm_sum_gradcheck() {
        let g = graph();
        let x = init::randn(&[4, 3], 1.0, &mut StdRng::seed_from_u64(0));
        let w = Var::constant(init::randn(&[4, 3], 1.0, &mut StdRng::seed_from_u64(1)));
        check_gradients(&[x], |vs| spmm_sum(&g, &vs[0]).mul(&w).sum(), 1e-2);
    }

    #[test]
    fn spmm_mean_divides_by_degree() {
        let g = graph();
        let x = Var::constant(Tensor::ones(&[4, 1]));
        let m = spmm_mean(&g, &x);
        // Every non-isolated node should aggregate exactly 1.0.
        for i in 0..4 {
            let expect = if g.in_degree(i) > 0 { 1.0 } else { 0.0 };
            assert!((m.value().at(&[i, 0]) - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn edge_softmax_gradcheck() {
        let g = graph();
        let scores = init::randn(&[g.num_edges(), 2], 1.0, &mut StdRng::seed_from_u64(2));
        let w = Var::constant(init::randn(
            &[g.num_edges(), 2],
            1.0,
            &mut StdRng::seed_from_u64(3),
        ));
        check_gradients(&[scores], |vs| edge_softmax(&g, &vs[0]).mul(&w).sum(), 1e-2);
    }

    #[test]
    fn spmm_multihead_gradcheck() {
        let g = graph();
        let mut rng = StdRng::seed_from_u64(4);
        let alpha = init::randn(&[g.num_edges(), 2], 1.0, &mut rng);
        let x = init::randn(&[4, 4], 1.0, &mut rng);
        let w = Var::constant(init::randn(&[4, 4], 1.0, &mut rng));
        check_gradients(
            &[alpha, x],
            |vs| spmm_multihead(&g, &vs[0], &vs[1]).mul(&w).sum(),
            1e-2,
        );
    }

    #[test]
    fn head_project_gradcheck() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = init::randn(&[5, 6], 1.0, &mut rng);
        let a = init::randn(&[6], 1.0, &mut rng);
        let w = Var::constant(init::randn(&[5, 2], 1.0, &mut rng));
        check_gradients(
            &[x, a],
            |vs| head_project(&vs[0], &vs[1], 2).mul(&w).sum(),
            1e-2,
        );
    }

    #[test]
    fn gat_edge_scores_gradcheck() {
        let g = graph();
        // Seed chosen so no edge score lands near the leaky-relu kink at 0,
        // where finite differences straddle the nonsmooth point.
        let mut rng = StdRng::seed_from_u64(9);
        let s_dst = init::randn(&[4, 2], 1.0, &mut rng);
        let s_src = init::randn(&[4, 2], 1.0, &mut rng);
        let w = Var::constant(init::randn(&[g.num_edges(), 2], 1.0, &mut rng));
        check_gradients(
            &[s_dst, s_src],
            |vs| gat_edge_scores(&g, &vs[0], &vs[1], 0.2).mul(&w).sum(),
            2e-2,
        );
    }

    #[test]
    fn mean_heads_gradcheck_and_value() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = init::randn(&[3, 6], 1.0, &mut rng);
        let v = Var::constant(x.clone());
        let m = mean_heads(&v, 3);
        assert_eq!(m.shape(), vec![3, 2]);
        let manual = (x.at(&[0, 0]) + x.at(&[0, 2]) + x.at(&[0, 4])) / 3.0;
        assert!((m.value().at(&[0, 0]) - manual).abs() < 1e-6);
        let w = Var::constant(init::randn(&[3, 2], 1.0, &mut rng));
        check_gradients(&[x], |vs| mean_heads(&vs[0], 3).mul(&w).sum(), 1e-2);
    }
}
