#![warn(missing_docs)]

//! Neural-network layers for GNN training — the model zoo of the SAR
//! reproduction.
//!
//! Single-machine reference implementations of everything the paper
//! trains, built on `sar-tensor` autograd and `sar-graph` kernels:
//!
//! * [`Linear`] — dense layer.
//! * [`graph_autograd`] — differentiable wrappers around the sparse
//!   kernels (SpMM, edge softmax, multi-head weighted SpMM, …).
//! * [`GraphSageLayer`] — Eq. 2 of the paper (mean aggregation + residual
//!   weight).
//! * [`GatLayer`] — Eq. 3 in the standard two-step formulation that
//!   materializes `[E, H]` attention coefficients (the DGL baseline of
//!   Fig. 2).
//! * [`FusedGatLayer`] — the same layer using the fused attention kernel
//!   (FAK, §3.3): attention coefficients are computed on the fly in both
//!   passes and never stored.
//! * [`BatchNorm1d`] — single-machine batch normalization (the
//!   distributed variant lives in `sar-core`).
//! * [`Adam`] / [`Sgd`] + [`LrSchedule`] — optimizers.
//! * [`loss`] — masked cross-entropy and accuracy.
//! * [`correct_and_smooth`] — the C&S post-processing of Huang et al.
//!   2020, applied in the paper after training.

pub mod batchnorm;
pub mod cs;
pub mod gat;
pub mod graph_autograd;
pub mod linear;
pub mod loss;
pub mod metrics;
pub mod optim;
pub mod sage;

pub use batchnorm::BatchNorm1d;
pub use cs::{correct_and_smooth, CsConfig};
pub use gat::{FusedGatLayer, GatConfig, GatLayer};
pub use linear::Linear;
pub use metrics::ConfusionMatrix;
pub use optim::{clip_grad_norm, Adam, LrSchedule, Sgd};
pub use sage::GraphSageLayer;
