//! Optimizers and learning-rate schedules.

use sar_tensor::{Tensor, Var};

/// Rescales all gradients so their joint L2 norm is at most `max_norm`;
/// returns the pre-clipping norm.
///
/// Call after the (distributed) gradient all-reduce and before the
/// optimizer step. Deterministic given identical gradients, so replicated
/// workers stay in lockstep.
pub fn clip_grad_norm(params: &[Var], max_norm: f32) -> f32 {
    let mut sq = 0.0f32;
    for p in params {
        if let Some(g) = p.grad() {
            sq += g.sq_norm();
        }
    }
    let norm = sq.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params {
            if let Some(g) = p.grad() {
                p.zero_grad();
                p.accumulate_grad(&g.scale(scale));
            }
        }
    }
    norm
}

/// Learning-rate schedule, evaluated per epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant,
    /// Multiply by `gamma` every `every` epochs (the paper trains with a
    /// decaying learning rate).
    StepDecay {
        /// Decay period in epochs.
        every: usize,
        /// Multiplicative factor per period.
        gamma: f32,
    },
    /// Cosine decay from the base rate to `floor` over `total` epochs.
    Cosine {
        /// Total epochs of the schedule.
        total: usize,
        /// Final learning rate.
        floor: f32,
    },
}

impl LrSchedule {
    /// Learning rate at `epoch` given the base rate.
    pub fn lr_at(&self, base: f32, epoch: usize) -> f32 {
        match *self {
            LrSchedule::Constant => base,
            LrSchedule::StepDecay { every, gamma } => {
                base * gamma.powi((epoch / every.max(1)) as i32)
            }
            LrSchedule::Cosine { total, floor } => {
                let t = (epoch.min(total)) as f32 / total.max(1) as f32;
                floor + 0.5 * (base - floor) * (1.0 + (std::f32::consts::PI * t).cos())
            }
        }
    }
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug)]
pub struct Sgd {
    params: Vec<Var>,
    velocity: Vec<Tensor>,
    base_lr: f32,
    momentum: f32,
    schedule: LrSchedule,
    epoch: usize,
}

impl Sgd {
    /// Creates an SGD optimizer over `params`.
    pub fn new(params: Vec<Var>, lr: f32, momentum: f32) -> Self {
        let velocity = params.iter().map(|p| Tensor::zeros(&p.shape())).collect();
        Sgd {
            params,
            velocity,
            base_lr: lr,
            momentum,
            schedule: LrSchedule::Constant,
            epoch: 0,
        }
    }

    /// Attaches a learning-rate schedule.
    pub fn with_schedule(mut self, schedule: LrSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Clears all parameter gradients.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    /// Applies one update from the accumulated gradients.
    pub fn step(&mut self) {
        let lr = self.schedule.lr_at(self.base_lr, self.epoch);
        for (p, v) in self.params.iter().zip(&mut self.velocity) {
            if let Some(g) = p.grad() {
                *v = v.scale(self.momentum).add(&g);
                let delta = v.scale(lr);
                p.update_value(|value| {
                    let new = value.sub(&delta);
                    *value = new;
                });
            }
        }
    }

    /// Advances the schedule by one epoch.
    pub fn advance_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Current learning rate.
    pub fn current_lr(&self) -> f32 {
        self.schedule.lr_at(self.base_lr, self.epoch)
    }
}

/// Adam optimizer (Kingma & Ba 2015).
#[derive(Debug)]
pub struct Adam {
    params: Vec<Var>,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    base_lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: i32,
    weight_decay: f32,
    schedule: LrSchedule,
    epoch: usize,
}

impl Adam {
    /// Creates an Adam optimizer over `params` with the usual defaults
    /// (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
    pub fn new(params: Vec<Var>, lr: f32) -> Self {
        let m = params.iter().map(|p| Tensor::zeros(&p.shape())).collect();
        let v = params.iter().map(|p| Tensor::zeros(&p.shape())).collect();
        Adam {
            params,
            m,
            v,
            base_lr: lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            weight_decay: 0.0,
            schedule: LrSchedule::Constant,
            epoch: 0,
        }
    }

    /// Attaches a learning-rate schedule.
    pub fn with_schedule(mut self, schedule: LrSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Enables decoupled weight decay (AdamW, Loshchilov & Hutter):
    /// parameters shrink by `lr * decay` per step, independent of the
    /// gradient moments.
    pub fn with_weight_decay(mut self, decay: f32) -> Self {
        self.weight_decay = decay;
        self
    }

    /// Clears all parameter gradients.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    /// Applies one update from the accumulated gradients.
    pub fn step(&mut self) {
        self.t += 1;
        let lr = self.schedule.lr_at(self.base_lr, self.epoch);
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        for ((p, m), v) in self.params.iter().zip(&mut self.m).zip(&mut self.v) {
            if let Some(g) = p.grad() {
                *m = m.scale(self.beta1).add(&g.scale(1.0 - self.beta1));
                *v = v.scale(self.beta2).add(&g.mul(&g).scale(1.0 - self.beta2));
                let m_hat = m.scale(1.0 / bc1);
                let v_hat = v.scale(1.0 / bc2);
                let eps = self.eps;
                let update = m_hat.zip_map(&v_hat, |mh, vh| mh / (vh.sqrt() + eps));
                let decay = self.weight_decay;
                p.update_value(|value| {
                    let mut new = value.sub(&update.scale(lr));
                    if decay > 0.0 {
                        new = new.sub(&value.scale(lr * decay));
                    }
                    *value = new;
                });
            }
        }
    }

    /// Advances the schedule by one epoch.
    pub fn advance_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Current learning rate.
    pub fn current_lr(&self) -> f32 {
        self.schedule.lr_at(self.base_lr, self.epoch)
    }

    /// The optimized parameters.
    pub fn params(&self) -> &[Var] {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_converges_on_quadratic() {
        let x = Var::parameter(Tensor::scalar(0.0));
        let mut opt = Sgd::new(vec![x.clone()], 0.1, 0.0);
        for _ in 0..200 {
            opt.zero_grad();
            let loss = x.add_scalar(-3.0).mul(&x.add_scalar(-3.0)).sum();
            loss.backward();
            opt.step();
        }
        assert!((x.value().item() - 3.0).abs() < 1e-3);
    }

    #[test]
    fn sgd_momentum_accelerates() {
        let x = Var::parameter(Tensor::scalar(0.0));
        let mut opt = Sgd::new(vec![x.clone()], 0.02, 0.9);
        for _ in 0..100 {
            opt.zero_grad();
            let loss = x.add_scalar(-3.0).mul(&x.add_scalar(-3.0)).sum();
            loss.backward();
            opt.step();
        }
        assert!((x.value().item() - 3.0).abs() < 0.1);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let x = Var::parameter(Tensor::scalar(0.0));
        let mut opt = Adam::new(vec![x.clone()], 0.1);
        for _ in 0..500 {
            opt.zero_grad();
            let loss = x.add_scalar(-3.0).mul(&x.add_scalar(-3.0)).sum();
            loss.backward();
            opt.step();
        }
        assert!((x.value().item() - 3.0).abs() < 1e-2);
    }

    #[test]
    fn schedules_decay() {
        let s = LrSchedule::StepDecay {
            every: 10,
            gamma: 0.5,
        };
        assert_eq!(s.lr_at(1.0, 0), 1.0);
        assert_eq!(s.lr_at(1.0, 10), 0.5);
        assert_eq!(s.lr_at(1.0, 25), 0.25);
        let c = LrSchedule::Cosine {
            total: 100,
            floor: 0.0,
        };
        assert!((c.lr_at(1.0, 0) - 1.0).abs() < 1e-6);
        assert!((c.lr_at(1.0, 100) - 0.0).abs() < 1e-6);
        assert!(c.lr_at(1.0, 50) < 0.6);
    }

    #[test]
    fn clip_grad_norm_rescales() {
        let a = Var::parameter(Tensor::scalar(0.0));
        let b = Var::parameter(Tensor::scalar(0.0));
        a.accumulate_grad(&Tensor::scalar(3.0));
        b.accumulate_grad(&Tensor::scalar(4.0));
        let norm = clip_grad_norm(&[a.clone(), b.clone()], 1.0);
        assert!((norm - 5.0).abs() < 1e-6);
        assert!((a.grad().unwrap().item() - 0.6).abs() < 1e-6);
        assert!((b.grad().unwrap().item() - 0.8).abs() < 1e-6);
        // Below the threshold: untouched.
        let norm2 = clip_grad_norm(&[a.clone(), b.clone()], 10.0);
        assert!((norm2 - 1.0).abs() < 1e-6);
        assert!((a.grad().unwrap().item() - 0.6).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        // With zero gradients... Adam skips params without grads, so give
        // a tiny gradient and compare against no-decay.
        let run = |decay: f32| -> f32 {
            let x = Var::parameter(Tensor::scalar(10.0));
            let mut opt = Adam::new(vec![x.clone()], 0.1).with_weight_decay(decay);
            for _ in 0..10 {
                x.zero_grad();
                x.accumulate_grad(&Tensor::scalar(1e-12));
                opt.step();
            }
            let v = x.value().item();
            v
        };
        let plain = run(0.0);
        let decayed = run(0.1);
        assert!(
            decayed < plain,
            "decay must shrink the weight: {decayed} vs {plain}"
        );
    }

    #[test]
    fn step_without_grad_is_noop() {
        let x = Var::parameter(Tensor::scalar(1.0));
        let mut opt = Adam::new(vec![x.clone()], 0.1);
        opt.step();
        assert_eq!(x.value().item(), 1.0);
    }
}
