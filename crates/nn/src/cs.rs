//! Correct & Smooth post-processing (Huang et al. 2020).
//!
//! The paper boosts final accuracies by running C&S on the trained model's
//! outputs (Table 1's "+C&S" rows), implemented "within the same framework
//! as SAR since C&S involves iterative propagation of messages throughout
//! the graph that is similar to a GNN layer" — here the propagation reuses
//! the same SpMM kernels, and `sar-core` reuses this module's logic
//! distributedly. C&S has no trainable parameters and no backward pass.

use sar_graph::{ops, CsrGraph};
use sar_tensor::Tensor;

/// Correct & Smooth hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CsConfig {
    /// Propagation coefficient of the *correct* phase.
    pub alpha_correct: f32,
    /// Propagation coefficient of the *smooth* phase.
    pub alpha_smooth: f32,
    /// Iterations of the correct phase.
    pub iters_correct: usize,
    /// Iterations of the smooth phase.
    pub iters_smooth: usize,
    /// Scale applied to the propagated residual error.
    pub correction_scale: f32,
}

impl Default for CsConfig {
    fn default() -> Self {
        CsConfig {
            alpha_correct: 0.8,
            alpha_smooth: 0.8,
            iters_correct: 10,
            iters_smooth: 10,
            correction_scale: 1.0,
        }
    }
}

/// One step of symmetric-normalized propagation `D^{-1/2} A D^{-1/2} X`.
///
/// Isolated nodes propagate nothing and keep zero.
pub fn propagate_sym(graph: &CsrGraph, x: &Tensor, inv_sqrt_deg: &Tensor) -> Tensor {
    let scaled = x.mul_col_broadcast(inv_sqrt_deg);
    let agg = ops::spmm_sum(graph, &scaled);
    agg.mul_col_broadcast(inv_sqrt_deg)
}

/// Precomputes `deg^{-1/2}` for [`propagate_sym`].
pub fn inv_sqrt_degrees(graph: &CsrGraph) -> Tensor {
    let d: Vec<f32> = graph
        .in_degrees()
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
        .collect();
    Tensor::from_vec(&[graph.num_rows()], d)
}

/// Applies Correct & Smooth to base predictions.
///
/// * `probs` — `[N, C]` softmax outputs of the trained model.
/// * `labels`, `train_mask` — ground truth available for correction.
///
/// Returns the smoothed `[N, C]` scores (use `argmax_rows` for labels).
///
/// # Panics
///
/// Panics if shapes disagree or a train label is out of range.
pub fn correct_and_smooth(
    graph: &CsrGraph,
    probs: &Tensor,
    labels: &[u32],
    train_mask: &[bool],
    cfg: &CsConfig,
) -> Tensor {
    let n = probs.rows();
    let c = probs.cols();
    assert_eq!(labels.len(), n, "labels length mismatch");
    assert_eq!(train_mask.len(), n, "mask length mismatch");
    let inv_sqrt = inv_sqrt_degrees(graph);

    // ---- Correct: propagate the residual error of the training nodes.
    let mut e0 = Tensor::zeros(&[n, c]);
    for i in 0..n {
        if train_mask[i] {
            let y = labels[i] as usize;
            assert!(y < c, "label {y} out of range");
            let row = e0.row_mut(i);
            for (j, r) in row.iter_mut().enumerate() {
                *r = (if j == y { 1.0 } else { 0.0 }) - probs.at(&[i, j]);
            }
        }
    }
    let mut e = e0.clone();
    for _ in 0..cfg.iters_correct {
        let prop = propagate_sym(graph, &e, &inv_sqrt);
        e = e0
            .scale(1.0 - cfg.alpha_correct)
            .add(&prop.scale(cfg.alpha_correct));
    }
    let corrected = probs.add(&e.scale(cfg.correction_scale));

    // ---- Smooth: propagate with training labels clamped to ground truth.
    let mut g0 = corrected;
    for i in 0..n {
        if train_mask[i] {
            let y = labels[i] as usize;
            let row = g0.row_mut(i);
            for (j, r) in row.iter_mut().enumerate() {
                *r = if j == y { 1.0 } else { 0.0 };
            }
        }
    }
    let mut g = g0.clone();
    for _ in 0..cfg.iters_smooth {
        let prop = propagate_sym(graph, &g, &inv_sqrt);
        g = g0
            .scale(1.0 - cfg.alpha_smooth)
            .add(&prop.scale(cfg.alpha_smooth));
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::accuracy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sar_graph::datasets;

    #[test]
    fn propagation_preserves_constant_on_regular_graph() {
        // On a d-regular graph, D^{-1/2} A D^{-1/2} 1 = 1.
        let edges: Vec<(u32, u32)> = (0..6u32)
            .flat_map(|i| vec![(i, (i + 1) % 6), ((i + 1) % 6, i)])
            .collect();
        let g = CsrGraph::from_edges(6, &edges);
        let x = Tensor::ones(&[6, 2]);
        let y = propagate_sym(&g, &x, &inv_sqrt_degrees(&g));
        assert!(y.allclose(&x, 1e-5));
    }

    #[test]
    fn smoothing_clamps_train_labels() {
        // With pure-noise predictions, C&S should pull test nodes near
        // their (homophilous) neighborhood's labels.
        let d = datasets::products_like(600, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let noise = sar_tensor::init::uniform(&[600, d.num_classes], 0.0, 1.0, &mut rng);
        let probs = noise.softmax_rows();
        let before = accuracy(&probs, &d.labels, &d.test_mask);
        let after_scores = correct_and_smooth(
            &d.graph,
            &probs,
            &d.labels,
            &d.train_mask,
            &CsConfig::default(),
        );
        let after = accuracy(&after_scores, &d.labels, &d.test_mask);
        assert!(
            after > before + 0.05,
            "C&S should help noisy predictions: before {before:.3}, after {after:.3}"
        );
    }

    #[test]
    fn zero_iterations_is_near_identity_off_train() {
        let d = datasets::products_like(200, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let probs =
            sar_tensor::init::uniform(&[200, d.num_classes], 0.0, 1.0, &mut rng).softmax_rows();
        let cfg = CsConfig {
            iters_correct: 0,
            iters_smooth: 0,
            ..CsConfig::default()
        };
        let out = correct_and_smooth(&d.graph, &probs, &d.labels, &d.train_mask, &cfg);
        for i in 0..200 {
            if !d.train_mask[i] {
                for j in 0..d.num_classes {
                    assert!((out.at(&[i, j]) - probs.at(&[i, j])).abs() < 1e-5);
                }
            }
        }
    }
}
