//! GraphSage layer (Eq. 2 of the paper).

use std::sync::Arc;

use rand::Rng;
use sar_graph::CsrGraph;
use sar_tensor::Var;

use crate::graph_autograd::spmm_mean;
use crate::linear::Linear;

/// A GraphSage layer:
/// `h'_i = σ(W_res h_i + W (1/|N(i)|) Σ_{j ∈ N(i)} h_j)`.
///
/// Matches Eq. 2: messages are the linearly projected neighbor features
/// (`z_j = W h_j`), aggregated by mean, plus a residual projection of the
/// node's own features. The aggregation is *linear in z*, which is why SAR
/// needs no refetch in the backward pass (case 1 of Algorithm 2).
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use rand::{rngs::StdRng, SeedableRng};
/// use sar_graph::CsrGraph;
/// use sar_nn::GraphSageLayer;
/// use sar_tensor::{Tensor, Var};
///
/// let g = Arc::new(CsrGraph::from_edges(3, &[(0, 1), (1, 2)]).with_self_loops());
/// let mut rng = StdRng::seed_from_u64(0);
/// let layer = GraphSageLayer::new(4, 8, true, &mut rng);
/// let h = Var::constant(Tensor::ones(&[3, 4]));
/// assert_eq!(layer.forward(&g, &h).shape(), vec![3, 8]);
/// ```
#[derive(Debug, Clone)]
pub struct GraphSageLayer {
    lin_neigh: Linear,
    lin_res: Linear,
    activation: bool,
}

impl GraphSageLayer {
    /// Creates a layer mapping `in_dim → out_dim`. `activation` applies a
    /// ReLU (disable on the output layer).
    pub fn new(in_dim: usize, out_dim: usize, activation: bool, rng: &mut impl Rng) -> Self {
        GraphSageLayer {
            lin_neigh: Linear::new(in_dim, out_dim, false, rng),
            lin_res: Linear::new(in_dim, out_dim, true, rng),
            activation,
        }
    }

    /// Applies the layer over graph `g`.
    ///
    /// # Panics
    ///
    /// Panics if `h` has the wrong width or row count.
    pub fn forward(&self, g: &Arc<CsrGraph>, h: &Var) -> Var {
        let z = self.lin_neigh.forward(h);
        let agg = spmm_mean(g, &z);
        let out = agg.add(&self.lin_res.forward(h));
        if self.activation {
            out.relu()
        } else {
            out
        }
    }

    /// The neighbor-projection sub-layer (`W` in Eq. 2).
    pub fn lin_neigh(&self) -> &Linear {
        &self.lin_neigh
    }

    /// The residual sub-layer (`W_res` in Eq. 2).
    pub fn lin_res(&self) -> &Linear {
        &self.lin_res
    }

    /// Whether a ReLU is applied.
    pub fn has_activation(&self) -> bool {
        self.activation
    }

    /// Trainable parameters.
    pub fn params(&self) -> Vec<Var> {
        let mut p = self.lin_neigh.params();
        p.extend(self.lin_res.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sar_tensor::{init, Tensor};

    fn graph() -> Arc<CsrGraph> {
        Arc::new(CsrGraph::from_edges(4, &[(0, 1), (1, 0), (2, 3), (3, 2)]).with_self_loops())
    }

    #[test]
    fn forward_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let layer = GraphSageLayer::new(5, 7, true, &mut rng);
        let h = Var::constant(init::randn(&[4, 5], 1.0, &mut rng));
        assert_eq!(layer.forward(&graph(), &h).shape(), vec![4, 7]);
        assert_eq!(layer.params().len(), 3);
    }

    #[test]
    fn relu_clamps_when_enabled() {
        let mut rng = StdRng::seed_from_u64(1);
        let with = GraphSageLayer::new(3, 4, true, &mut rng);
        let h = Var::constant(init::randn(&[4, 3], 2.0, &mut rng));
        let out = with.forward(&graph(), &h);
        assert!(out.value().data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn gradients_reach_all_params() {
        let mut rng = StdRng::seed_from_u64(2);
        let layer = GraphSageLayer::new(3, 2, true, &mut rng);
        let h = Var::constant(Tensor::ones(&[4, 3]));
        layer.forward(&graph(), &h).sum().backward();
        for (i, p) in layer.params().iter().enumerate() {
            assert!(p.grad().is_some(), "param {i} got no grad");
        }
    }

    #[test]
    fn isolated_node_uses_only_residual() {
        // Graph where node 0 has no in-edges (and no self loop).
        let g = Arc::new(CsrGraph::from_edges(2, &[(0, 1)]));
        let mut rng = StdRng::seed_from_u64(3);
        let layer = GraphSageLayer::new(2, 2, false, &mut rng);
        let h = Var::constant(init::randn(&[2, 2], 1.0, &mut rng));
        let out = layer.forward(&g, &h);
        let res_only = layer.lin_res.forward(&h);
        for c in 0..2 {
            assert!((out.value().at(&[0, c]) - res_only.value().at(&[0, c])).abs() < 1e-6);
        }
    }
}
