//! Property-based tests of the layer zoo: the fused and standard GAT
//! layers must agree on arbitrary graphs and configurations, and layer
//! outputs must stay finite under extreme inputs.

use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sar_graph::generators::erdos_renyi;
use sar_nn::{FusedGatLayer, GatConfig, GatLayer, GraphSageLayer};
use sar_tensor::{init, Var};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fused_gat_matches_standard_on_random_configs(
        seed in 0u64..500,
        n in 4usize..20,
        m in 2usize..80,
        heads in 1usize..4,
        head_dim in 1usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = Arc::new(erdos_renyi(n, m, &mut rng).with_self_loops());
        let in_dim = 6;
        let mut cfg = GatConfig::new(in_dim, head_dim, heads);
        cfg.activation = false;
        let std_layer = GatLayer::new(cfg, &mut rng);
        let fused = FusedGatLayer::from_standard(&std_layer);
        let x = init::randn(&[n, in_dim], 1.0, &mut rng);

        let h1 = Var::parameter(x.clone());
        std_layer.forward(&g, &h1).sum().backward();
        for p in std_layer.params() {
            p.zero_grad();
        }
        let h2 = Var::parameter(x);
        fused.forward(&g, &h2).sum().backward();

        prop_assert!(
            h1.grad().unwrap().allclose(&h2.grad().unwrap(), 1e-3),
            "input grads diverge (seed {seed}, n {n}, m {m}, heads {heads})"
        );
    }

    #[test]
    fn gat_outputs_stay_finite_under_large_inputs(
        seed in 0u64..300,
        scale in 1.0f32..40.0,
    ) {
        // The edge softmax must stay stable however large the logits get.
        let mut rng = StdRng::seed_from_u64(seed);
        let g = Arc::new(erdos_renyi(12, 50, &mut rng).with_self_loops());
        let layer = GatLayer::new(GatConfig::new(4, 3, 2), &mut rng);
        let x = Var::constant(init::randn(&[12, 4], scale, &mut rng));
        let out = layer.forward(&g, &x);
        prop_assert!(out.value().data().iter().all(|v| v.is_finite()));
        let fused = FusedGatLayer::from_standard(&layer);
        let out_f = fused.forward(&g, &x);
        prop_assert!(out_f.value().data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn sage_layer_is_permutation_equivariant(seed in 0u64..300, n in 3usize..12) {
        // Relabeling nodes and permuting the input rows must permute the
        // output rows identically.
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi(n, 4 * n, &mut rng).with_self_loops();
        let layer = GraphSageLayer::new(5, 4, true, &mut rng);
        let x = init::randn(&[n, 5], 1.0, &mut rng);

        // Permutation: rotate labels by one.
        let perm: Vec<u32> = (0..n as u32).map(|i| (i + 1) % n as u32).collect();
        let edges_p: Vec<(u32, u32)> = g
            .iter_edges()
            .map(|(s, d)| (perm[s as usize], perm[d as usize]))
            .collect();
        let g_p = sar_graph::CsrGraph::from_edges(n, &edges_p);
        let mut x_p = sar_tensor::Tensor::zeros(&[n, 5]);
        for (i, &p) in perm.iter().enumerate() {
            x_p.row_mut(p as usize).copy_from_slice(x.row(i));
        }

        let out = layer.forward(&Arc::new(g), &Var::constant(x));
        let out_p = layer.forward(&Arc::new(g_p), &Var::constant(x_p));
        for (i, &p) in perm.iter().enumerate() {
            let a = out.value().row(i).to_vec();
            let b = out_p.value().row(p as usize).to_vec();
            for (va, vb) in a.iter().zip(&b) {
                prop_assert!((va - vb).abs() < 1e-4, "row {i} not equivariant");
            }
        }
    }
}
