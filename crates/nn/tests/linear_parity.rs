//! Bitwise 1-vs-N-thread parity for `Linear` forward and backward.
//!
//! `Linear` delegates to the row-parallel tensor matmuls; this pins the
//! full autograd path (forward matmul + `matmul_tn`/`matmul_nt` in the
//! backward) to be thread-count invariant end to end.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sar_nn::Linear;
use sar_tensor::{init, pool, Tensor, Var};

fn assert_bitwise_eq(a: &Tensor, b: &Tensor, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    for (k, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {k} diverges across thread counts: {x} vs {y}"
        );
    }
}

#[test]
fn linear_forward_backward_is_threadcount_invariant() {
    let layer = Linear::new(19, 11, true, &mut StdRng::seed_from_u64(1));
    let x = init::randn(&[53, 19], 1.0, &mut StdRng::seed_from_u64(2));
    let run = || {
        let input = Var::parameter(x.clone());
        let out = layer.forward(&input);
        out.sum().backward();
        let params = layer.params();
        let grads: Vec<Tensor> = std::iter::once(&input)
            .chain(params.iter())
            .map(|p| {
                let g = p.grad().expect("gradient must exist");
                p.zero_grad();
                g
            })
            .collect();
        (out.value_clone(), grads)
    };
    pool::set_threads(1);
    let (out_seq, grads_seq) = run();
    pool::set_threads(4);
    let (out_par, grads_par) = run();
    pool::set_threads(1);
    assert_bitwise_eq(&out_seq, &out_par, "linear output");
    assert_eq!(grads_seq.len(), grads_par.len());
    for (k, (a, b)) in grads_seq.iter().zip(&grads_par).enumerate() {
        assert_bitwise_eq(a, b, &format!("grad[{k}]"));
    }
}
