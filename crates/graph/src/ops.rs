//! Raw (non-differentiable) sparse message-passing kernels.
//!
//! All kernels operate on [`Tensor`]s and a [`CsrGraph`] (possibly a
//! bipartite SAR block). Autograd wrappers live in `sar-nn`; SAR's
//! sequential aggregation calls these kernels directly per block.
//!
//! Conventions:
//!
//! * Node features are `[num_nodes, F]`; multi-head features are
//!   `[num_nodes, H * D]` with head `h` occupying columns `h*D .. (h+1)*D`.
//! * Per-edge values are `[E, H]`, where edge `e` is the position in the
//!   CSR `indices` array (row-major by destination).
//!
//! # Parallelism and determinism
//!
//! Every kernel here is row-parallel over the worker's thread pool
//! ([`sar_tensor::pool`]): forward kernels chunk over *destination* rows
//! (each output row — and each destination's contiguous edge range — is
//! written by exactly one thread), while scatter-style backward kernels
//! chunk over *source* rows through a
//! [`ReverseIndex`](crate::ReverseIndex), whose per-source edge lists
//! ascend by CSR edge id — the exact order a sequential
//! destination-major sweep visits them. Per-row reductions therefore run
//! the same floating-point operations in the same order for any thread
//! count, so results are **bitwise identical** to the single-threaded
//! path (asserted in `tests/parallel_parity.rs`).
//!
//! # SIMD and cache blocking
//!
//! Inner contiguous-`f32` loops go through [`sar_tensor::simd`], whose
//! AVX2 and portable paths are bitwise identical by construction, so
//! vectorization never perturbs results. The SpMM traversals additionally
//! block the *streamed* operand (source features forward, destination
//! gradients backward) into cache-sized row panels: the outer loop walks
//! panels in ascending order and each row keeps a cursor into its
//! (ascending) edge list, so every row still accumulates its edges in
//! exactly the unblocked order — blocking changes locality, never bits
//! (asserted in `tests/simd_blocked_parity.rs`). Blocking is only taken
//! when [`CsrGraph::rows_sorted`] holds (always true for `from_edges*`
//! construction; verified once for `from_raw`).
//!
//! The `*_indexed` variants fuse SAR's local gather into the kernel: they
//! read operand row `j` through a row map (`x[map[j]]`) instead of
//! requiring the caller to materialize a gathered block first. They are
//! bitwise identical to gather-then-kernel because they read exactly the
//! same values in the same order.

use crate::CsrGraph;
use sar_tensor::pool::{parallel_for, SharedSlice};
use sar_tensor::{simd, Tensor};

/// Bytes of the streamed operand a cache panel may span before the panel
/// is cut; sized to sit comfortably inside a per-core L2 cache.
const SRC_PANEL_BYTES: usize = 256 * 1024;

/// Default panel height (in streamed-operand rows) for feature width `f`.
fn panel_rows(f: usize) -> usize {
    (SRC_PANEL_BYTES / (f.max(1) * std::mem::size_of::<f32>())).max(16)
}

// ----------------------------------------------------------------------
// SpMM (GraphSage-style sum aggregation)
// ----------------------------------------------------------------------

/// Sum aggregation: `out[i] = Σ_{j ∈ neighbors(i)} x[j]`.
///
/// # Panics
///
/// Panics if `x` has fewer rows than the graph has columns.
pub fn spmm_sum(g: &CsrGraph, x: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(&[g.num_rows(), x.cols()]);
    spmm_sum_into(g, x, &mut out);
    out
}

/// Sum aggregation accumulated into an existing output tensor.
///
/// This is the incremental form used by SAR's Algorithm 1: the accumulator
/// persists across per-partition blocks while the fetched features are
/// freed after each block.
///
/// # Panics
///
/// Panics if shapes are inconsistent with the graph.
pub fn spmm_sum_into(g: &CsrGraph, x: &Tensor, out: &mut Tensor) {
    assert_eq!(x.rows(), g.num_cols(), "x rows must equal graph columns");
    spmm_sum_into_impl(g, x, None, out, panel_rows(x.cols()));
}

/// Fused gather + sum aggregation: `out[i] += Σ_{j ∈ neighbors(i)}
/// x[map[j]]`.
///
/// Block column `j` reads row `map[j]` of `x` directly, so SAR's local
/// round consumes the resident feature tensor without materializing the
/// gathered `[num_cols, F]` block first. Bitwise identical to
/// `gather` + [`spmm_sum_into`]: the same values are read and accumulated
/// in the same order.
///
/// # Panics
///
/// Panics if `map` does not have one entry per graph column or any entry
/// is out of range for `x`.
pub fn spmm_sum_into_indexed(g: &CsrGraph, x: &Tensor, map: &[u32], out: &mut Tensor) {
    assert_eq!(map.len(), g.num_cols(), "one map entry per column required");
    assert!(
        map.iter().all(|&r| (r as usize) < x.rows()),
        "row map entry out of range"
    );
    spmm_sum_into_impl(g, x, Some(map), out, panel_rows(x.cols()));
}

/// [`spmm_sum_into`] with an explicit streamed-operand panel height —
/// exposed so parity tests can prove blocked == unblocked bitwise.
#[doc(hidden)]
pub fn spmm_sum_into_with_panel(g: &CsrGraph, x: &Tensor, out: &mut Tensor, panel: usize) {
    assert_eq!(x.rows(), g.num_cols(), "x rows must equal graph columns");
    spmm_sum_into_impl(g, x, None, out, panel);
}

fn spmm_sum_into_impl(
    g: &CsrGraph,
    x: &Tensor,
    map: Option<&[u32]>,
    out: &mut Tensor,
    panel: usize,
) {
    assert_eq!(out.rows(), g.num_rows(), "out rows must equal graph rows");
    assert_eq!(out.cols(), x.cols(), "feature width mismatch");
    let f = x.cols();
    let x_data = x.data();
    let indptr = g.indptr();
    let indices = g.indices();
    // Resolve a block column to its row in `x` (identity without a map).
    let row_of = |j: usize| map.map_or(j, |m| m[j] as usize);
    // Panels only preserve per-row accumulation order on sorted rows.
    let blocked = g.rows_sorted() && panel < g.num_cols();
    let out_s = SharedSlice::new(out.data_mut());
    parallel_for(g.num_rows(), 1, |lo, hi| {
        if !blocked {
            for i in lo..hi {
                let neighbors = g.neighbors(i);
                if neighbors.is_empty() {
                    continue;
                }
                // SAFETY: destination row `i` is in this chunk's exclusive
                // `lo..hi` range, so element ranges are disjoint across
                // threads.
                let out_row = unsafe { out_s.range_mut(i * f, (i + 1) * f) };
                for &j in neighbors {
                    let r = row_of(j as usize);
                    simd::add_assign(out_row, &x_data[r * f..(r + 1) * f]);
                }
            }
            return;
        }
        // Cache-blocked traversal: walk ascending source panels, each row
        // advancing a cursor through its ascending neighbor list — the
        // per-row edge visit order is exactly the unblocked one.
        let mut cursor: Vec<usize> = indptr[lo..hi].to_vec();
        let mut b0 = 0usize;
        while b0 < g.num_cols() {
            let b1 = (b0 + panel).min(g.num_cols());
            for i in lo..hi {
                let end = indptr[i + 1];
                let c = &mut cursor[i - lo];
                if *c >= end || (indices[*c] as usize) >= b1 {
                    continue;
                }
                // SAFETY: destination row `i` is in this chunk's exclusive
                // `lo..hi` range, so element ranges are disjoint across
                // threads.
                let out_row = unsafe { out_s.range_mut(i * f, (i + 1) * f) };
                while *c < end {
                    let j = indices[*c] as usize;
                    if j >= b1 {
                        break;
                    }
                    let r = row_of(j);
                    simd::add_assign(out_row, &x_data[r * f..(r + 1) * f]);
                    *c += 1;
                }
            }
            b0 = b1;
        }
    });
}

/// Backward of [`spmm_sum`] w.r.t. `x`: pushes each destination's gradient
/// to all of its sources — `dx[j] += Σ_{i : j ∈ neighbors(i)} grad_rows[i]`.
///
/// # Panics
///
/// Panics if `grad_rows` does not have `num_rows` rows.
pub fn spmm_sum_backward(g: &CsrGraph, grad_rows: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(&[g.num_cols(), grad_rows.cols()]);
    spmm_sum_backward_into(g, grad_rows, &mut out);
    out
}

/// Backward of [`spmm_sum`] accumulated into an existing gradient tensor.
///
/// # Panics
///
/// Panics if shapes are inconsistent with the graph.
pub fn spmm_sum_backward_into(g: &CsrGraph, grad_rows: &Tensor, out: &mut Tensor) {
    spmm_sum_backward_into_impl(g, grad_rows, out, panel_rows(grad_rows.cols()));
}

/// [`spmm_sum_backward_into`] with an explicit destination panel height —
/// exposed so parity tests can prove blocked == unblocked bitwise.
#[doc(hidden)]
pub fn spmm_sum_backward_into_with_panel(
    g: &CsrGraph,
    grad_rows: &Tensor,
    out: &mut Tensor,
    panel: usize,
) {
    spmm_sum_backward_into_impl(g, grad_rows, out, panel);
}

fn spmm_sum_backward_into_impl(g: &CsrGraph, grad_rows: &Tensor, out: &mut Tensor, panel: usize) {
    assert_eq!(grad_rows.rows(), g.num_rows(), "grad rows mismatch");
    assert_eq!(
        out.rows(),
        g.num_cols(),
        "out rows must equal graph columns"
    );
    assert_eq!(out.cols(), grad_rows.cols(), "feature width mismatch");
    let f = grad_rows.cols();
    // Scatter inverted: chunk over *source* rows so each gradient row has
    // exactly one writer; the reverse index's ascending-edge-id order per
    // source reproduces the sequential accumulation order bit for bit.
    // Edge ids are destination-major, so each source's destinations ascend
    // too — destination-panel blocking keeps the same per-source order.
    let rev = g.reverse_index();
    let grad = grad_rows.data();
    let blocked = panel < g.num_rows();
    let out_s = SharedSlice::new(out.data_mut());
    parallel_for(g.num_cols(), 1, |lo, hi| {
        if !blocked {
            for j in lo..hi {
                // SAFETY: source row `j` is in this chunk's exclusive
                // `lo..hi` range — exactly one writer per gradient row.
                let dst = unsafe { out_s.range_mut(j * f, (j + 1) * f) };
                for (i, _e) in rev.entries(j) {
                    simd::add_assign(dst, &grad[i * f..(i + 1) * f]);
                }
            }
            return;
        }
        // Cache-blocked: stream ascending panels of `grad_rows`, each
        // source advancing a cursor through its ascending entry list.
        let mut cursor: Vec<usize> = vec![0; hi - lo];
        let mut b0 = 0usize;
        while b0 < g.num_rows() {
            let b1 = (b0 + panel).min(g.num_rows());
            for j in lo..hi {
                let (dsts, _eids) = rev.entry_slices(j);
                let c = &mut cursor[j - lo];
                if *c >= dsts.len() || (dsts[*c] as usize) >= b1 {
                    continue;
                }
                // SAFETY: source row `j` is in this chunk's exclusive
                // `lo..hi` range — exactly one writer per gradient row.
                let dst = unsafe { out_s.range_mut(j * f, (j + 1) * f) };
                while *c < dsts.len() {
                    let i = dsts[*c] as usize;
                    if i >= b1 {
                        break;
                    }
                    simd::add_assign(dst, &grad[i * f..(i + 1) * f]);
                    *c += 1;
                }
            }
            b0 = b1;
        }
    });
}

// ----------------------------------------------------------------------
// Per-edge gathers / scatters (DGL-style primitives)
// ----------------------------------------------------------------------

/// Gathers source features per edge: `out[e] = x[src(e)]`, `[E, F]`.
///
/// # Panics
///
/// Panics if `x` rows differ from the graph's column count.
pub fn gather_src(g: &CsrGraph, x: &Tensor) -> Tensor {
    assert_eq!(x.rows(), g.num_cols(), "x rows must equal graph columns");
    x.gather_rows(g.indices())
}

/// Gathers destination features per edge: `out[e] = x[dst(e)]`, `[E, F]`.
///
/// # Panics
///
/// Panics if `x` rows differ from the graph's row count.
pub fn gather_dst(g: &CsrGraph, x: &Tensor) -> Tensor {
    assert_eq!(x.rows(), g.num_rows(), "x rows must equal graph rows");
    let f = x.cols();
    let mut out = Vec::with_capacity(g.num_edges() * f);
    for i in 0..g.num_rows() {
        for _ in g.neighbors(i) {
            out.extend_from_slice(x.row(i));
        }
    }
    Tensor::from_vec(&[g.num_edges(), f], out)
}

/// Scatter-adds per-edge values to their *source* nodes:
/// `out[j] = Σ_{e : src(e) = j} edge_vals[e]`. This is the backward of
/// [`gather_src`].
///
/// # Panics
///
/// Panics if `edge_vals` does not have one row per edge.
pub fn scatter_edges_to_src(g: &CsrGraph, edge_vals: &Tensor) -> Tensor {
    assert_eq!(edge_vals.rows(), g.num_edges(), "one row per edge required");
    let f = edge_vals.cols();
    let mut out = Tensor::zeros(&[g.num_cols(), f]);
    let rev = g.reverse_index();
    let ev = edge_vals.data();
    {
        let out_s = SharedSlice::new(out.data_mut());
        parallel_for(g.num_cols(), 1, |lo, hi| {
            for j in lo..hi {
                // SAFETY: source row `j` is in this chunk's exclusive
                // `lo..hi` range — one writer per output row.
                let dst = unsafe { out_s.range_mut(j * f, (j + 1) * f) };
                for (_i, e) in rev.entries(j) {
                    simd::add_assign(dst, &ev[e * f..(e + 1) * f]);
                }
            }
        });
    }
    out
}

/// Scatter-adds per-edge values to their *destination* nodes:
/// `out[i] = Σ_{e : dst(e) = i} edge_vals[e]`. This is the backward of
/// [`gather_dst`] and the reduction step of message passing.
///
/// # Panics
///
/// Panics if `edge_vals` does not have one row per edge.
pub fn scatter_edges_to_dst(g: &CsrGraph, edge_vals: &Tensor) -> Tensor {
    assert_eq!(edge_vals.rows(), g.num_edges(), "one row per edge required");
    let f = edge_vals.cols();
    let mut out = Tensor::zeros(&[g.num_rows(), f]);
    let indptr = g.indptr();
    let ev = edge_vals.data();
    {
        let out_s = SharedSlice::new(out.data_mut());
        parallel_for(g.num_rows(), 1, |lo, hi| {
            for i in lo..hi {
                // SAFETY: destination row `i` is in this chunk's exclusive
                // `lo..hi` range — one writer per output row.
                let out_row = unsafe { out_s.range_mut(i * f, (i + 1) * f) };
                for e in indptr[i]..indptr[i + 1] {
                    simd::add_assign(out_row, &ev[e * f..(e + 1) * f]);
                }
            }
        });
    }
    out
}

// ----------------------------------------------------------------------
// Edge softmax (standard two-step GAT path)
// ----------------------------------------------------------------------

/// Softmax of per-edge scores over each destination's incoming edges,
/// independently per head: `alpha[e, h] = softmax_{e ∈ in(i)}(scores[e, h])`.
///
/// Numerically stabilized with the per-destination maximum.
///
/// # Panics
///
/// Panics if `scores` does not have one row per edge.
// sar-check: deterministic(one-writer-per-row: per-destination denominators
// accumulate over that row's edge segment in fixed CSR order)
pub fn edge_softmax(g: &CsrGraph, scores: &Tensor) -> Tensor {
    assert_eq!(
        scores.rows(),
        g.num_edges(),
        "one score row per edge required"
    );
    let h = scores.cols();
    let mut out = scores.clone();
    let indptr = g.indptr();
    {
        // A destination's in-edges are contiguous in CSR order, so every
        // edge row belongs to exactly one destination's chunk.
        let out_s = SharedSlice::new(out.data_mut());
        parallel_for(g.num_rows(), 1, |lo, hi| {
            let mut maxs = vec![0.0f32; h];
            let mut denom = vec![0.0f32; h];
            for i in lo..hi {
                let (start, end) = (indptr[i], indptr[i + 1]);
                if start == end {
                    continue;
                }
                // SAFETY: destination `i`'s in-edges `start..end` are
                // contiguous in CSR order and owned by this chunk alone.
                let rows = unsafe { out_s.range_mut(start * h, end * h) };
                // Max and exp/denominator passes stay scalar (per-head
                // reductions in ascending edge order); the normalize pass
                // divides each contiguous [H] edge segment by the per-head
                // denominators through the SIMD divide — IEEE division is
                // correctly rounded, so vector and scalar divides agree
                // bitwise.
                maxs.fill(f32::NEG_INFINITY);
                denom.fill(0.0);
                for e in 0..end - start {
                    for (head, m) in maxs.iter_mut().enumerate() {
                        *m = m.max(rows[e * h + head]);
                    }
                }
                for e in 0..end - start {
                    for head in 0..h {
                        let v = (rows[e * h + head] - maxs[head]).exp();
                        rows[e * h + head] = v;
                        denom[head] += v;
                    }
                }
                for e in 0..end - start {
                    simd::div_assign(&mut rows[e * h..(e + 1) * h], &denom);
                }
            }
        });
    }
    out
}

/// Backward of [`edge_softmax`]: given `alpha` (the forward output) and the
/// upstream gradient, returns the gradient w.r.t. the raw scores.
///
/// # Panics
///
/// Panics if shapes are inconsistent.
// sar-check: deterministic(one-writer-per-row: the dot reduction walks each
// destination row's edge segment in fixed CSR order)
pub fn edge_softmax_backward(g: &CsrGraph, alpha: &Tensor, grad: &Tensor) -> Tensor {
    assert_eq!(alpha.shape(), grad.shape(), "alpha/grad shape mismatch");
    assert_eq!(alpha.rows(), g.num_edges(), "one row per edge required");
    let h = alpha.cols();
    let mut out = Tensor::zeros(&[g.num_edges(), h]);
    let indptr = g.indptr();
    let a_data = alpha.data();
    let g_data = grad.data();
    {
        let out_s = SharedSlice::new(out.data_mut());
        parallel_for(g.num_rows(), 1, |lo, hi| {
            for i in lo..hi {
                let (start, end) = (indptr[i], indptr[i + 1]);
                if start == end {
                    continue;
                }
                // SAFETY: destination `i`'s in-edges `start..end` are
                // contiguous in CSR order and owned by this chunk alone.
                let rows = unsafe { out_s.range_mut(start * h, end * h) };
                for head in 0..h {
                    let mut dot = 0.0f32;
                    for e in start..end {
                        dot += a_data[e * h + head] * g_data[e * h + head];
                    }
                    for e in start..end {
                        let a = a_data[e * h + head];
                        let gr = g_data[e * h + head];
                        rows[(e - start) * h + head] = a * (gr - dot);
                    }
                }
            }
        });
    }
    out
}

// ----------------------------------------------------------------------
// Multi-head weighted SpMM (standard GAT message reduction)
// ----------------------------------------------------------------------

/// Multi-head attention-weighted aggregation:
/// `out[i, h*D..] = Σ_{e=(j→i)} alpha[e, h] * x[j, h*D..]`.
///
/// This is the fused `u_mul_e` + sum reduction DGL applies after edge
/// softmax: per-edge messages are *not* materialized, but `alpha` is.
///
/// # Panics
///
/// Panics if `x.cols()` is not divisible by the head count of `alpha` or
/// shapes are inconsistent with the graph.
pub fn spmm_multihead(g: &CsrGraph, alpha: &Tensor, x: &Tensor) -> Tensor {
    assert_eq!(
        alpha.rows(),
        g.num_edges(),
        "one alpha row per edge required"
    );
    assert_eq!(x.rows(), g.num_cols(), "x rows must equal graph columns");
    let heads = alpha.cols();
    let hd = x.cols();
    assert_eq!(
        hd % heads,
        0,
        "feature width {hd} not divisible by {heads} heads"
    );
    let mut out = Tensor::zeros(&[g.num_rows(), hd]);
    spmm_multihead_into_panel(g, alpha, x, &mut out, panel_rows(hd));
    out
}

/// [`spmm_multihead`] with an explicit source panel height — exposed so
/// parity tests can prove blocked == unblocked bitwise.
#[doc(hidden)]
pub fn spmm_multihead_with_panel(g: &CsrGraph, alpha: &Tensor, x: &Tensor, panel: usize) -> Tensor {
    let mut out = Tensor::zeros(&[g.num_rows(), x.cols()]);
    spmm_multihead_into_panel(g, alpha, x, &mut out, panel);
    out
}

fn spmm_multihead_into_panel(
    g: &CsrGraph,
    alpha: &Tensor,
    x: &Tensor,
    out: &mut Tensor,
    panel: usize,
) {
    let heads = alpha.cols();
    let hd = x.cols();
    let d = hd / heads;
    let indptr = g.indptr();
    let indices = g.indices();
    let x_data = x.data();
    let a_data = alpha.data();
    let blocked = g.rows_sorted() && panel < g.num_cols();
    let out_s = SharedSlice::new(out.data_mut());
    // The per-edge body: weight each head's d-segment of the source row
    // into the destination row (SIMD axpy; mul + add, never fused).
    let apply = |out_row: &mut [f32], e: usize, j: usize| {
        let x_row = &x_data[j * hd..(j + 1) * hd];
        for head in 0..heads {
            let a = a_data[e * heads + head];
            if a == 0.0 {
                continue;
            }
            let lo_c = head * d;
            simd::axpy(a, &x_row[lo_c..lo_c + d], &mut out_row[lo_c..lo_c + d]);
        }
    };
    parallel_for(g.num_rows(), 1, |lo, hi| {
        if !blocked {
            for i in lo..hi {
                let (es, ee) = (indptr[i], indptr[i + 1]);
                if es == ee {
                    continue;
                }
                // SAFETY: destination row `i` is in this chunk's exclusive
                // `lo..hi` range — one writer per output row.
                let out_row = unsafe { out_s.range_mut(i * hd, (i + 1) * hd) };
                for (e, &src) in (es..ee).zip(&indices[es..ee]) {
                    apply(out_row, e, src as usize);
                }
            }
            return;
        }
        // Cache-blocked traversal over ascending source panels; per-row
        // cursors keep each destination's edge order unchanged.
        let mut cursor: Vec<usize> = indptr[lo..hi].to_vec();
        let mut b0 = 0usize;
        while b0 < g.num_cols() {
            let b1 = (b0 + panel).min(g.num_cols());
            for i in lo..hi {
                let end = indptr[i + 1];
                let c = &mut cursor[i - lo];
                if *c >= end || (indices[*c] as usize) >= b1 {
                    continue;
                }
                // SAFETY: destination row `i` is in this chunk's exclusive
                // `lo..hi` range — one writer per output row.
                let out_row = unsafe { out_s.range_mut(i * hd, (i + 1) * hd) };
                while *c < end {
                    let j = indices[*c] as usize;
                    if j >= b1 {
                        break;
                    }
                    apply(out_row, *c, j);
                    *c += 1;
                }
            }
            b0 = b1;
        }
    });
}

/// Backward of [`spmm_multihead`]: returns `(d_alpha, d_x)`.
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn spmm_multihead_backward(
    g: &CsrGraph,
    alpha: &Tensor,
    x: &Tensor,
    grad_out: &Tensor,
) -> (Tensor, Tensor) {
    let heads = alpha.cols();
    let hd = x.cols();
    let d = hd / heads;
    assert_eq!(grad_out.rows(), g.num_rows(), "grad rows mismatch");
    assert_eq!(grad_out.cols(), hd, "grad width mismatch");
    let mut d_alpha = Tensor::zeros(&[g.num_edges(), heads]);
    let mut d_x = Tensor::zeros(&[g.num_cols(), hd]);
    let indptr = g.indptr();
    let indices = g.indices();
    let x_data = x.data();
    let a_data = alpha.data();
    let grad_data = grad_out.data();
    // Pass 1 — destination-parallel: each edge's d_alpha row is owned by
    // its destination.
    {
        let da_s = SharedSlice::new(d_alpha.data_mut());
        parallel_for(g.num_rows(), 1, |lo, hi| {
            for i in lo..hi {
                let (es, ee) = (indptr[i], indptr[i + 1]);
                if es == ee {
                    continue;
                }
                let g_row = &grad_data[i * hd..(i + 1) * hd];
                // SAFETY: destination `i`'s in-edges `es..ee` are contiguous
                // in CSR order and owned by this chunk alone.
                let da_rows = unsafe { da_s.range_mut(es * heads, ee * heads) };
                for e in es..ee {
                    let j = indices[e] as usize;
                    let x_row = &x_data[j * hd..(j + 1) * hd];
                    for head in 0..heads {
                        let lo_c = head * d;
                        da_rows[(e - es) * heads + head] =
                            simd::dot(&g_row[lo_c..lo_c + d], &x_row[lo_c..lo_c + d]);
                    }
                }
            }
        });
    }
    // Pass 2 — source-parallel: each d_x row is owned by its source;
    // ascending edge ids reproduce the sequential accumulation order.
    let rev = g.reverse_index();
    {
        let dx_s = SharedSlice::new(d_x.data_mut());
        parallel_for(g.num_cols(), 1, |lo, hi| {
            for j in lo..hi {
                // SAFETY: source row `j` is in this chunk's exclusive
                // `lo..hi` range — one writer per gradient row.
                let dx_row = unsafe { dx_s.range_mut(j * hd, (j + 1) * hd) };
                for (i, e) in rev.entries(j) {
                    let g_row = &grad_data[i * hd..(i + 1) * hd];
                    for head in 0..heads {
                        let a = a_data[e * heads + head];
                        if a == 0.0 {
                            continue;
                        }
                        let lo_c = head * d;
                        simd::axpy(a, &g_row[lo_c..lo_c + d], &mut dx_row[lo_c..lo_c + d]);
                    }
                }
            }
        });
    }
    (d_alpha, d_x)
}

// ----------------------------------------------------------------------
// Per-head projection (attention logits)
// ----------------------------------------------------------------------

/// Per-head inner product with an attention vector:
/// `out[n, h] = Σ_k x[n, h*D + k] * a[h*D + k]`.
///
/// Computes GAT's `aᵀ z` terms; `a` is `[H*D]`.
///
/// # Panics
///
/// Panics if `x.cols() != a.len()` or not divisible by `heads`.
pub fn head_project(x: &Tensor, a: &Tensor, heads: usize) -> Tensor {
    head_project_impl(x, None, a, heads)
}

/// Fused gather + per-head projection: row `i` of the output is the
/// projection of `x[map[i]]`.
///
/// Lets SAR's local round compute a block's attention logits straight
/// from the resident feature tensor, skipping the gathered `[rows, H*D]`
/// copy. Bitwise identical to `gather` + [`head_project`].
///
/// # Panics
///
/// Panics if any map entry is out of range for `x`, or on the same shape
/// mismatches as [`head_project`].
pub fn head_project_indexed(x: &Tensor, map: &[u32], a: &Tensor, heads: usize) -> Tensor {
    assert!(
        map.iter().all(|&r| (r as usize) < x.rows()),
        "row map entry out of range"
    );
    head_project_impl(x, Some(map), a, heads)
}

fn head_project_impl(x: &Tensor, map: Option<&[u32]>, a: &Tensor, heads: usize) -> Tensor {
    let hd = x.cols();
    assert_eq!(a.numel(), hd, "attention vector length mismatch");
    assert_eq!(hd % heads, 0, "width {hd} not divisible by {heads} heads");
    let d = hd / heads;
    let n = map.map_or(x.rows(), <[u32]>::len);
    let row_of = |i: usize| map.map_or(i, |m| m[i] as usize);
    let mut out = vec![0.0f32; n * heads];
    let x_data = x.data();
    let a_data = a.data();
    {
        let out_s = SharedSlice::new(&mut out);
        parallel_for(n, 1, |lo, hi| {
            // SAFETY: chunks claim disjoint `lo..hi` row ranges, so element
            // ranges never overlap across threads.
            let rows = unsafe { out_s.range_mut(lo * heads, hi * heads) };
            for i in lo..hi {
                let r = row_of(i);
                let x_row = &x_data[r * hd..(r + 1) * hd];
                for h in 0..heads {
                    rows[(i - lo) * heads + h] =
                        simd::dot(&x_row[h * d..(h + 1) * d], &a_data[h * d..(h + 1) * d]);
                }
            }
        });
    }
    Tensor::from_vec(&[n, heads], out)
}

/// Backward of [`head_project`]: returns `(d_x, d_a)` given the upstream
/// gradient `[N, H]`.
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn head_project_backward(
    x: &Tensor,
    a: &Tensor,
    heads: usize,
    grad: &Tensor,
) -> (Tensor, Tensor) {
    head_project_backward_impl(x, None, a, heads, grad)
}

/// Backward of [`head_project_indexed`]: `grad` and the returned `d_x` are
/// *block-shaped* (`[map.len(), H*D]`), while reads of `x` go through the
/// row map — the gradient mirror of the fused local gather. Bitwise
/// identical to `gather` + [`head_project_backward`].
///
/// # Panics
///
/// Panics if any map entry is out of range for `x`, or on the same shape
/// mismatches as [`head_project_backward`].
pub fn head_project_backward_indexed(
    x: &Tensor,
    map: &[u32],
    a: &Tensor,
    heads: usize,
    grad: &Tensor,
) -> (Tensor, Tensor) {
    assert!(
        map.iter().all(|&r| (r as usize) < x.rows()),
        "row map entry out of range"
    );
    head_project_backward_impl(x, Some(map), a, heads, grad)
}

// sar-check: deterministic(fixed-rank-order: gradients reduce over rows in
// ascending index order on a single writer; no data-dependent reordering)
fn head_project_backward_impl(
    x: &Tensor,
    map: Option<&[u32]>,
    a: &Tensor,
    heads: usize,
    grad: &Tensor,
) -> (Tensor, Tensor) {
    let hd = x.cols();
    let d = hd / heads;
    let n = map.map_or(x.rows(), <[u32]>::len);
    let row_of = |i: usize| map.map_or(i, |m| m[i] as usize);
    assert_eq!(grad.rows(), n, "grad rows mismatch");
    assert_eq!(grad.cols(), heads, "grad heads mismatch");
    let mut d_x = Tensor::zeros(&[n, hd]);
    let mut d_a = Tensor::zeros(&[hd]);
    let x_data = x.data();
    let a_data = a.data();
    let g_data = grad.data();
    // Pass 1 — row-parallel d_x: every output row has one writer.
    {
        let dx_s = SharedSlice::new(d_x.data_mut());
        parallel_for(n, 1, |lo, hi| {
            for i in lo..hi {
                let g_row = &g_data[i * heads..(i + 1) * heads];
                // SAFETY: row `i` is in this chunk's exclusive `lo..hi`
                // range — one writer per gradient row.
                let dx_row = unsafe { dx_s.range_mut(i * hd, (i + 1) * hd) };
                for h in 0..heads {
                    let g = g_row[h];
                    if g == 0.0 {
                        continue;
                    }
                    simd::axpy(
                        g,
                        &a_data[h * d..(h + 1) * d],
                        &mut dx_row[h * d..(h + 1) * d],
                    );
                }
            }
        });
    }
    // Pass 2 — column-parallel d_a: each column accumulates over rows in
    // ascending order with the same `g == 0` skips as the sequential
    // sweep, so the reduction order is unchanged.
    {
        let da_s = SharedSlice::new(d_a.data_mut());
        parallel_for(hd, 1, |lo, hi| {
            // SAFETY: chunks claim disjoint column ranges `lo..hi` of the
            // flat `[H*D]` gradient — one writer per column.
            let cols = unsafe { da_s.range_mut(lo, hi) };
            for (c, slot) in (lo..hi).zip(cols.iter_mut()) {
                let h = c / d;
                let mut acc = 0.0f32;
                for i in 0..n {
                    let g = g_data[i * heads + h];
                    if g == 0.0 {
                        continue;
                    }
                    acc += g * x_data[row_of(i) * hd + c];
                }
                *slot = acc;
            }
        });
    }
    (d_x, d_a)
}

/// Per-edge multiplication of a `[E, H]` head tensor against `[E, H*D]`
/// messages is intentionally *not* provided: materializing `[E, H*D]`
/// per-edge messages is what both DGL and this reproduction avoid via
/// [`spmm_multihead`].
///
/// Builds per-edge raw attention scores
/// `e[e, h] = LeakyReLU(s_dst[dst(e), h] + s_src[src(e), h])` without
/// materializing gathered `[E, H]` inputs twice.
///
/// # Panics
///
/// Panics if shapes are inconsistent with the graph.
pub fn gat_edge_scores(g: &CsrGraph, s_dst: &Tensor, s_src: &Tensor, slope: f32) -> Tensor {
    assert_eq!(s_dst.rows(), g.num_rows(), "s_dst rows mismatch");
    assert_eq!(s_src.rows(), g.num_cols(), "s_src rows mismatch");
    assert_eq!(s_dst.cols(), s_src.cols(), "head count mismatch");
    let h = s_dst.cols();
    let mut out = vec![0.0f32; g.num_edges() * h];
    let indptr = g.indptr();
    let indices = g.indices();
    let sd = s_dst.data();
    let ss = s_src.data();
    {
        let out_s = SharedSlice::new(&mut out);
        parallel_for(g.num_rows(), 1, |lo, hi| {
            for i in lo..hi {
                let (es, ee) = (indptr[i], indptr[i + 1]);
                if es == ee {
                    continue;
                }
                // SAFETY: destination `i`'s in-edges `es..ee` are contiguous
                // in CSR order and owned by this chunk alone.
                let rows = unsafe { out_s.range_mut(es * h, ee * h) };
                let sd_row = &sd[i * h..(i + 1) * h];
                // Each edge's [H] segment is the elementwise sum of the
                // destination and source logit rows; the LeakyReLU is then
                // applied to the whole contiguous [run × H] slab. Both
                // steps are elementwise SIMD maps, bitwise identical to
                // the scalar expression per element.
                for e in es..ee {
                    let j = indices[e] as usize;
                    simd::add_into(
                        &mut rows[(e - es) * h..(e - es + 1) * h],
                        sd_row,
                        &ss[j * h..(j + 1) * h],
                    );
                }
                simd::leaky_relu(rows, slope);
            }
        });
    }
    Tensor::from_vec(&[g.num_edges(), h], out)
}

/// Backward of [`gat_edge_scores`]: returns `(d_s_dst, d_s_src)`.
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn gat_edge_scores_backward(
    g: &CsrGraph,
    s_dst: &Tensor,
    s_src: &Tensor,
    slope: f32,
    grad: &Tensor,
) -> (Tensor, Tensor) {
    let h = s_dst.cols();
    assert_eq!(grad.rows(), g.num_edges(), "grad rows mismatch");
    assert_eq!(grad.cols(), h, "grad heads mismatch");
    let mut d_dst = Tensor::zeros(&[g.num_rows(), h]);
    let mut d_src = Tensor::zeros(&[g.num_cols(), h]);
    let indptr = g.indptr();
    let indices = g.indices();
    let sd = s_dst.data();
    let ss = s_src.data();
    let g_data = grad.data();
    // Pass 1 — destination-parallel d_dst.
    {
        let dd_s = SharedSlice::new(d_dst.data_mut());
        parallel_for(g.num_rows(), 1, |lo, hi| {
            for i in lo..hi {
                let (es, ee) = (indptr[i], indptr[i + 1]);
                if es == ee {
                    continue;
                }
                // SAFETY: destination row `i` is in this chunk's exclusive
                // `lo..hi` range — one writer per output row.
                let dd_row = unsafe { dd_s.range_mut(i * h, (i + 1) * h) };
                for e in es..ee {
                    let j = indices[e] as usize;
                    for head in 0..h {
                        let u = sd[i * h + head] + ss[j * h + head];
                        let du = g_data[e * h + head] * if u > 0.0 { 1.0 } else { slope };
                        dd_row[head] += du;
                    }
                }
            }
        });
    }
    // Pass 2 — source-parallel d_src via the reverse index (ascending
    // edge ids keep the sequential accumulation order).
    let rev = g.reverse_index();
    {
        let ds_s = SharedSlice::new(d_src.data_mut());
        parallel_for(g.num_cols(), 1, |lo, hi| {
            for j in lo..hi {
                // SAFETY: source row `j` is in this chunk's exclusive
                // `lo..hi` range — one writer per gradient row.
                let ds_row = unsafe { ds_s.range_mut(j * h, (j + 1) * h) };
                for (i, e) in rev.entries(j) {
                    for head in 0..h {
                        let u = sd[i * h + head] + ss[j * h + head];
                        let du = g_data[e * h + head] * if u > 0.0 { 1.0 } else { slope };
                        ds_row[head] += du;
                    }
                }
            }
        });
    }
    (d_dst, d_src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sar_tensor::init;

    fn test_graph() -> CsrGraph {
        // 4 nodes: 1→0, 2→0, 0→1, 3→2, 2→2 (self loop)
        CsrGraph::from_edges(4, &[(1, 0), (2, 0), (0, 1), (3, 2), (2, 2)])
    }

    /// Dense adjacency of g as a [rows, cols] matrix (A[i][j] = 1 iff j→i).
    fn dense_adj(g: &CsrGraph) -> Tensor {
        let mut a = Tensor::zeros(&[g.num_rows(), g.num_cols()]);
        for i in 0..g.num_rows() {
            for &j in g.neighbors(i) {
                a.row_mut(i)[j as usize] += 1.0;
            }
        }
        a
    }

    #[test]
    fn spmm_sum_matches_dense() {
        let g = test_graph();
        let mut rng = StdRng::seed_from_u64(0);
        let x = init::randn(&[4, 3], 1.0, &mut rng);
        let sparse = spmm_sum(&g, &x);
        let dense = dense_adj(&g).matmul(&x);
        assert!(sparse.allclose(&dense, 1e-5));
    }

    #[test]
    fn spmm_backward_matches_transpose_dense() {
        let g = test_graph();
        let mut rng = StdRng::seed_from_u64(1);
        let grad = init::randn(&[4, 3], 1.0, &mut rng);
        let back = spmm_sum_backward(&g, &grad);
        let dense = dense_adj(&g).transpose().matmul(&grad);
        assert!(back.allclose(&dense, 1e-5));
    }

    #[test]
    fn spmm_into_accumulates_blocks() {
        // Splitting a graph's edges into two blocks and accumulating must
        // equal one-shot SpMM — the core identity behind SAR's Algorithm 1.
        let edges = [(1u32, 0u32), (2, 0), (0, 1), (3, 2), (2, 2)];
        let g_full = CsrGraph::from_edges(4, &edges);
        let g_a = CsrGraph::from_edges(4, &edges[..2]);
        let g_b = CsrGraph::from_edges(4, &edges[2..]);
        let mut rng = StdRng::seed_from_u64(2);
        let x = init::randn(&[4, 5], 1.0, &mut rng);
        let full = spmm_sum(&g_full, &x);
        let mut acc = Tensor::zeros(&[4, 5]);
        spmm_sum_into(&g_a, &x, &mut acc);
        spmm_sum_into(&g_b, &x, &mut acc);
        assert!(acc.allclose(&full, 1e-5));
    }

    #[test]
    fn gather_scatter_duality() {
        let g = test_graph();
        let mut rng = StdRng::seed_from_u64(3);
        let x = init::randn(&[4, 2], 1.0, &mut rng);
        let y = init::randn(&[g.num_edges(), 2], 1.0, &mut rng);
        // <gather_src(x), y> == <x, scatter_src(y)>  (adjointness)
        let lhs: f32 = gather_src(&g, &x).mul(&y).sum();
        let rhs: f32 = x.mul(&scatter_edges_to_src(&g, &y)).sum();
        assert!((lhs - rhs).abs() < 1e-4);
        let lhs2: f32 = gather_dst(&g, &x).mul(&y).sum();
        let rhs2: f32 = x.mul(&scatter_edges_to_dst(&g, &y)).sum();
        assert!((lhs2 - rhs2).abs() < 1e-4);
    }

    #[test]
    fn edge_softmax_rows_sum_to_one() {
        let g = test_graph();
        let mut rng = StdRng::seed_from_u64(4);
        let scores = init::randn(&[g.num_edges(), 3], 2.0, &mut rng);
        let alpha = edge_softmax(&g, &scores);
        for i in 0..g.num_rows() {
            let (s, e) = (g.indptr()[i], g.indptr()[i + 1]);
            if s == e {
                continue;
            }
            for h in 0..3 {
                let total: f32 = (s..e).map(|k| alpha.data()[k * 3 + h]).sum();
                assert!((total - 1.0).abs() < 1e-5, "dst {i} head {h}: {total}");
            }
        }
    }

    #[test]
    fn edge_softmax_is_shift_invariant_per_dst() {
        let g = test_graph();
        let mut rng = StdRng::seed_from_u64(5);
        let scores = init::randn(&[g.num_edges(), 2], 1.0, &mut rng);
        let mut shifted = scores.clone();
        // Shift all scores of dst 0's edges by a large constant.
        for e in g.indptr()[0]..g.indptr()[1] {
            for h in 0..2 {
                shifted.data_mut()[e * 2 + h] += 100.0;
            }
        }
        assert!(edge_softmax(&g, &scores).allclose(&edge_softmax(&g, &shifted), 1e-4));
    }

    #[test]
    fn spmm_multihead_matches_manual() {
        let g = test_graph();
        let heads = 2;
        let d = 3;
        let mut rng = StdRng::seed_from_u64(6);
        let x = init::randn(&[4, heads * d], 1.0, &mut rng);
        let alpha = init::randn(&[g.num_edges(), heads], 1.0, &mut rng);
        let out = spmm_multihead(&g, &alpha, &x);
        // Manual per-destination check.
        let mut expect = Tensor::zeros(&[4, heads * d]);
        let mut e = 0;
        for i in 0..4 {
            for &j in g.neighbors(i) {
                for h in 0..heads {
                    let a = alpha.data()[e * heads + h];
                    for k in 0..d {
                        expect.row_mut(i)[h * d + k] += a * x.row(j as usize)[h * d + k];
                    }
                }
                e += 1;
            }
        }
        assert!(out.allclose(&expect, 1e-5));
    }

    #[test]
    fn spmm_multihead_backward_is_adjoint() {
        let g = test_graph();
        let heads = 2;
        let mut rng = StdRng::seed_from_u64(7);
        let x = init::randn(&[4, heads * 2], 1.0, &mut rng);
        let alpha = init::randn(&[g.num_edges(), heads], 1.0, &mut rng);
        let grad = init::randn(&[4, heads * 2], 1.0, &mut rng);
        let (d_alpha, d_x) = spmm_multihead_backward(&g, &alpha, &x, &grad);
        // <out, grad> must equal <alpha, d_alpha> and <x, d_x> by linearity
        // in each argument.
        let out = spmm_multihead(&g, &alpha, &x);
        let lhs: f32 = out.mul(&grad).sum();
        assert!((lhs - alpha.mul(&d_alpha).sum()).abs() < 1e-3);
        assert!((lhs - x.mul(&d_x).sum()).abs() < 1e-3);
    }

    #[test]
    fn head_project_matches_manual_and_adjoint() {
        let heads = 2;
        let d = 3;
        let mut rng = StdRng::seed_from_u64(8);
        let x = init::randn(&[5, heads * d], 1.0, &mut rng);
        let a = init::randn(&[heads * d], 1.0, &mut rng);
        let s = head_project(&x, &a, heads);
        for i in 0..5 {
            for h in 0..heads {
                let manual: f32 = (0..d)
                    .map(|k| x.row(i)[h * d + k] * a.data()[h * d + k])
                    .sum();
                assert!((s.at(&[i, h]) - manual).abs() < 1e-5);
            }
        }
        let grad = init::randn(&[5, heads], 1.0, &mut rng);
        let (d_x, d_a) = head_project_backward(&x, &a, heads, &grad);
        let lhs: f32 = s.mul(&grad).sum();
        assert!((lhs - x.mul(&d_x).sum()).abs() < 1e-3);
        assert!((lhs - a.mul(&d_a).sum()).abs() < 1e-3);
    }

    #[test]
    fn gat_edge_scores_match_gather_formulation() {
        let g = test_graph();
        let mut rng = StdRng::seed_from_u64(9);
        let s_dst = init::randn(&[4, 2], 1.0, &mut rng);
        let s_src = init::randn(&[4, 2], 1.0, &mut rng);
        let slope = 0.2;
        let scores = gat_edge_scores(&g, &s_dst, &s_src, slope);
        let manual = gather_dst(&g, &s_dst)
            .add(&gather_src(&g, &s_src))
            .map(|u| if u > 0.0 { u } else { slope * u });
        assert!(scores.allclose(&manual, 1e-5));
    }

    #[test]
    fn gat_edge_scores_backward_is_adjoint_in_linear_region() {
        // With slope 1.0 the op is linear, so adjointness must hold exactly.
        let g = test_graph();
        let mut rng = StdRng::seed_from_u64(10);
        let s_dst = init::randn(&[4, 2], 1.0, &mut rng);
        let s_src = init::randn(&[4, 2], 1.0, &mut rng);
        let grad = init::randn(&[g.num_edges(), 2], 1.0, &mut rng);
        let scores = gat_edge_scores(&g, &s_dst, &s_src, 1.0);
        let (d_dst, d_src) = gat_edge_scores_backward(&g, &s_dst, &s_src, 1.0, &grad);
        let lhs: f32 = scores.mul(&grad).sum();
        let rhs = s_dst.mul(&d_dst).sum() + s_src.mul(&d_src).sum();
        assert!((lhs - rhs).abs() < 1e-3);
    }

    #[test]
    fn bipartite_spmm() {
        // 3 source columns feeding 2 destination rows.
        let g = CsrGraph::from_edges_bipartite(3, 2, &[(0, 0), (2, 0), (1, 1)]);
        let x = Tensor::from_vec(&[3, 1], vec![1.0, 10.0, 100.0]);
        let out = spmm_sum(&g, &x);
        assert_eq!(out.data(), &[101.0, 10.0]);
    }
}
