//! Raw (non-differentiable) sparse message-passing kernels.
//!
//! All kernels operate on [`Tensor`]s and a [`CsrGraph`] (possibly a
//! bipartite SAR block). Autograd wrappers live in `sar-nn`; SAR's
//! sequential aggregation calls these kernels directly per block.
//!
//! Conventions:
//!
//! * Node features are `[num_nodes, F]`; multi-head features are
//!   `[num_nodes, H * D]` with head `h` occupying columns `h*D .. (h+1)*D`.
//! * Per-edge values are `[E, H]`, where edge `e` is the position in the
//!   CSR `indices` array (row-major by destination).
//!
//! # Parallelism and determinism
//!
//! Every kernel here is row-parallel over the worker's thread pool
//! ([`sar_tensor::pool`]): forward kernels chunk over *destination* rows
//! (each output row — and each destination's contiguous edge range — is
//! written by exactly one thread), while scatter-style backward kernels
//! chunk over *source* rows through a
//! [`ReverseIndex`](crate::ReverseIndex), whose per-source edge lists
//! ascend by CSR edge id — the exact order a sequential
//! destination-major sweep visits them. Per-row reductions therefore run
//! the same floating-point operations in the same order for any thread
//! count, so results are **bitwise identical** to the single-threaded
//! path (asserted in `tests/parallel_parity.rs`).

use crate::CsrGraph;
use sar_tensor::pool::{parallel_for, SharedSlice};
use sar_tensor::Tensor;

// ----------------------------------------------------------------------
// SpMM (GraphSage-style sum aggregation)
// ----------------------------------------------------------------------

/// Sum aggregation: `out[i] = Σ_{j ∈ neighbors(i)} x[j]`.
///
/// # Panics
///
/// Panics if `x` has fewer rows than the graph has columns.
pub fn spmm_sum(g: &CsrGraph, x: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(&[g.num_rows(), x.cols()]);
    spmm_sum_into(g, x, &mut out);
    out
}

/// Sum aggregation accumulated into an existing output tensor.
///
/// This is the incremental form used by SAR's Algorithm 1: the accumulator
/// persists across per-partition blocks while the fetched features are
/// freed after each block.
///
/// # Panics
///
/// Panics if shapes are inconsistent with the graph.
pub fn spmm_sum_into(g: &CsrGraph, x: &Tensor, out: &mut Tensor) {
    assert_eq!(x.rows(), g.num_cols(), "x rows must equal graph columns");
    assert_eq!(out.rows(), g.num_rows(), "out rows must equal graph rows");
    assert_eq!(out.cols(), x.cols(), "feature width mismatch");
    let f = x.cols();
    let x_data = x.data();
    let out_s = SharedSlice::new(out.data_mut());
    parallel_for(g.num_rows(), 1, |lo, hi| {
        for i in lo..hi {
            let neighbors = g.neighbors(i);
            if neighbors.is_empty() {
                continue;
            }
            // SAFETY: destination row `i` is in this chunk's exclusive
            // `lo..hi` range, so element ranges are disjoint across threads.
            let out_row = unsafe { out_s.range_mut(i * f, (i + 1) * f) };
            for &j in neighbors {
                let x_row = &x_data[j as usize * f..(j as usize + 1) * f];
                for (o, &v) in out_row.iter_mut().zip(x_row) {
                    *o += v;
                }
            }
        }
    });
}

/// Backward of [`spmm_sum`] w.r.t. `x`: pushes each destination's gradient
/// to all of its sources — `dx[j] += Σ_{i : j ∈ neighbors(i)} grad_rows[i]`.
///
/// # Panics
///
/// Panics if `grad_rows` does not have `num_rows` rows.
pub fn spmm_sum_backward(g: &CsrGraph, grad_rows: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(&[g.num_cols(), grad_rows.cols()]);
    spmm_sum_backward_into(g, grad_rows, &mut out);
    out
}

/// Backward of [`spmm_sum`] accumulated into an existing gradient tensor.
///
/// # Panics
///
/// Panics if shapes are inconsistent with the graph.
pub fn spmm_sum_backward_into(g: &CsrGraph, grad_rows: &Tensor, out: &mut Tensor) {
    assert_eq!(grad_rows.rows(), g.num_rows(), "grad rows mismatch");
    assert_eq!(
        out.rows(),
        g.num_cols(),
        "out rows must equal graph columns"
    );
    assert_eq!(out.cols(), grad_rows.cols(), "feature width mismatch");
    let f = grad_rows.cols();
    // Scatter inverted: chunk over *source* rows so each gradient row has
    // exactly one writer; the reverse index's ascending-edge-id order per
    // source reproduces the sequential accumulation order bit for bit.
    let rev = g.reverse_index();
    let grad = grad_rows.data();
    let out_s = SharedSlice::new(out.data_mut());
    parallel_for(g.num_cols(), 1, |lo, hi| {
        for j in lo..hi {
            // SAFETY: source row `j` is in this chunk's exclusive `lo..hi`
            // range — exactly one writer per gradient row.
            let dst = unsafe { out_s.range_mut(j * f, (j + 1) * f) };
            for (i, _e) in rev.entries(j) {
                let g_row = &grad[i * f..(i + 1) * f];
                for (d, &v) in dst.iter_mut().zip(g_row) {
                    *d += v;
                }
            }
        }
    });
}

// ----------------------------------------------------------------------
// Per-edge gathers / scatters (DGL-style primitives)
// ----------------------------------------------------------------------

/// Gathers source features per edge: `out[e] = x[src(e)]`, `[E, F]`.
///
/// # Panics
///
/// Panics if `x` rows differ from the graph's column count.
pub fn gather_src(g: &CsrGraph, x: &Tensor) -> Tensor {
    assert_eq!(x.rows(), g.num_cols(), "x rows must equal graph columns");
    x.gather_rows(g.indices())
}

/// Gathers destination features per edge: `out[e] = x[dst(e)]`, `[E, F]`.
///
/// # Panics
///
/// Panics if `x` rows differ from the graph's row count.
pub fn gather_dst(g: &CsrGraph, x: &Tensor) -> Tensor {
    assert_eq!(x.rows(), g.num_rows(), "x rows must equal graph rows");
    let f = x.cols();
    let mut out = Vec::with_capacity(g.num_edges() * f);
    for i in 0..g.num_rows() {
        for _ in g.neighbors(i) {
            out.extend_from_slice(x.row(i));
        }
    }
    Tensor::from_vec(&[g.num_edges(), f], out)
}

/// Scatter-adds per-edge values to their *source* nodes:
/// `out[j] = Σ_{e : src(e) = j} edge_vals[e]`. This is the backward of
/// [`gather_src`].
///
/// # Panics
///
/// Panics if `edge_vals` does not have one row per edge.
pub fn scatter_edges_to_src(g: &CsrGraph, edge_vals: &Tensor) -> Tensor {
    assert_eq!(edge_vals.rows(), g.num_edges(), "one row per edge required");
    let f = edge_vals.cols();
    let mut out = Tensor::zeros(&[g.num_cols(), f]);
    let rev = g.reverse_index();
    let ev = edge_vals.data();
    {
        let out_s = SharedSlice::new(out.data_mut());
        parallel_for(g.num_cols(), 1, |lo, hi| {
            for j in lo..hi {
                // SAFETY: source row `j` is in this chunk's exclusive
                // `lo..hi` range — one writer per output row.
                let dst = unsafe { out_s.range_mut(j * f, (j + 1) * f) };
                for (_i, e) in rev.entries(j) {
                    for (d, &v) in dst.iter_mut().zip(&ev[e * f..(e + 1) * f]) {
                        *d += v;
                    }
                }
            }
        });
    }
    out
}

/// Scatter-adds per-edge values to their *destination* nodes:
/// `out[i] = Σ_{e : dst(e) = i} edge_vals[e]`. This is the backward of
/// [`gather_dst`] and the reduction step of message passing.
///
/// # Panics
///
/// Panics if `edge_vals` does not have one row per edge.
pub fn scatter_edges_to_dst(g: &CsrGraph, edge_vals: &Tensor) -> Tensor {
    assert_eq!(edge_vals.rows(), g.num_edges(), "one row per edge required");
    let f = edge_vals.cols();
    let mut out = Tensor::zeros(&[g.num_rows(), f]);
    let indptr = g.indptr();
    let ev = edge_vals.data();
    {
        let out_s = SharedSlice::new(out.data_mut());
        parallel_for(g.num_rows(), 1, |lo, hi| {
            for i in lo..hi {
                // SAFETY: destination row `i` is in this chunk's exclusive
                // `lo..hi` range — one writer per output row.
                let out_row = unsafe { out_s.range_mut(i * f, (i + 1) * f) };
                for e in indptr[i]..indptr[i + 1] {
                    for (o, &v) in out_row.iter_mut().zip(&ev[e * f..(e + 1) * f]) {
                        *o += v;
                    }
                }
            }
        });
    }
    out
}

// ----------------------------------------------------------------------
// Edge softmax (standard two-step GAT path)
// ----------------------------------------------------------------------

/// Softmax of per-edge scores over each destination's incoming edges,
/// independently per head: `alpha[e, h] = softmax_{e ∈ in(i)}(scores[e, h])`.
///
/// Numerically stabilized with the per-destination maximum.
///
/// # Panics
///
/// Panics if `scores` does not have one row per edge.
pub fn edge_softmax(g: &CsrGraph, scores: &Tensor) -> Tensor {
    assert_eq!(
        scores.rows(),
        g.num_edges(),
        "one score row per edge required"
    );
    let h = scores.cols();
    let mut out = scores.clone();
    let indptr = g.indptr();
    {
        // A destination's in-edges are contiguous in CSR order, so every
        // edge row belongs to exactly one destination's chunk.
        let out_s = SharedSlice::new(out.data_mut());
        parallel_for(g.num_rows(), 1, |lo, hi| {
            for i in lo..hi {
                let (start, end) = (indptr[i], indptr[i + 1]);
                if start == end {
                    continue;
                }
                // SAFETY: destination `i`'s in-edges `start..end` are
                // contiguous in CSR order and owned by this chunk alone.
                let rows = unsafe { out_s.range_mut(start * h, end * h) };
                for head in 0..h {
                    let mut max = f32::NEG_INFINITY;
                    for e in 0..end - start {
                        max = max.max(rows[e * h + head]);
                    }
                    let mut denom = 0.0f32;
                    for e in 0..end - start {
                        let v = (rows[e * h + head] - max).exp();
                        rows[e * h + head] = v;
                        denom += v;
                    }
                    for e in 0..end - start {
                        rows[e * h + head] /= denom;
                    }
                }
            }
        });
    }
    out
}

/// Backward of [`edge_softmax`]: given `alpha` (the forward output) and the
/// upstream gradient, returns the gradient w.r.t. the raw scores.
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn edge_softmax_backward(g: &CsrGraph, alpha: &Tensor, grad: &Tensor) -> Tensor {
    assert_eq!(alpha.shape(), grad.shape(), "alpha/grad shape mismatch");
    assert_eq!(alpha.rows(), g.num_edges(), "one row per edge required");
    let h = alpha.cols();
    let mut out = Tensor::zeros(&[g.num_edges(), h]);
    let indptr = g.indptr();
    let a_data = alpha.data();
    let g_data = grad.data();
    {
        let out_s = SharedSlice::new(out.data_mut());
        parallel_for(g.num_rows(), 1, |lo, hi| {
            for i in lo..hi {
                let (start, end) = (indptr[i], indptr[i + 1]);
                if start == end {
                    continue;
                }
                // SAFETY: destination `i`'s in-edges `start..end` are
                // contiguous in CSR order and owned by this chunk alone.
                let rows = unsafe { out_s.range_mut(start * h, end * h) };
                for head in 0..h {
                    let mut dot = 0.0f32;
                    for e in start..end {
                        dot += a_data[e * h + head] * g_data[e * h + head];
                    }
                    for e in start..end {
                        let a = a_data[e * h + head];
                        let gr = g_data[e * h + head];
                        rows[(e - start) * h + head] = a * (gr - dot);
                    }
                }
            }
        });
    }
    out
}

// ----------------------------------------------------------------------
// Multi-head weighted SpMM (standard GAT message reduction)
// ----------------------------------------------------------------------

/// Multi-head attention-weighted aggregation:
/// `out[i, h*D..] = Σ_{e=(j→i)} alpha[e, h] * x[j, h*D..]`.
///
/// This is the fused `u_mul_e` + sum reduction DGL applies after edge
/// softmax: per-edge messages are *not* materialized, but `alpha` is.
///
/// # Panics
///
/// Panics if `x.cols()` is not divisible by the head count of `alpha` or
/// shapes are inconsistent with the graph.
pub fn spmm_multihead(g: &CsrGraph, alpha: &Tensor, x: &Tensor) -> Tensor {
    assert_eq!(
        alpha.rows(),
        g.num_edges(),
        "one alpha row per edge required"
    );
    assert_eq!(x.rows(), g.num_cols(), "x rows must equal graph columns");
    let heads = alpha.cols();
    let hd = x.cols();
    assert_eq!(
        hd % heads,
        0,
        "feature width {hd} not divisible by {heads} heads"
    );
    let d = hd / heads;
    let mut out = Tensor::zeros(&[g.num_rows(), hd]);
    let indptr = g.indptr();
    let indices = g.indices();
    let x_data = x.data();
    let a_data = alpha.data();
    {
        let out_s = SharedSlice::new(out.data_mut());
        parallel_for(g.num_rows(), 1, |lo, hi| {
            for i in lo..hi {
                let (es, ee) = (indptr[i], indptr[i + 1]);
                if es == ee {
                    continue;
                }
                // SAFETY: destination row `i` is in this chunk's exclusive
                // `lo..hi` range — one writer per output row.
                let out_row = unsafe { out_s.range_mut(i * hd, (i + 1) * hd) };
                for e in es..ee {
                    let j = indices[e] as usize;
                    let x_row = &x_data[j * hd..(j + 1) * hd];
                    for head in 0..heads {
                        let a = a_data[e * heads + head];
                        if a == 0.0 {
                            continue;
                        }
                        let lo_c = head * d;
                        for c in lo_c..lo_c + d {
                            out_row[c] += a * x_row[c];
                        }
                    }
                }
            }
        });
    }
    out
}

/// Backward of [`spmm_multihead`]: returns `(d_alpha, d_x)`.
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn spmm_multihead_backward(
    g: &CsrGraph,
    alpha: &Tensor,
    x: &Tensor,
    grad_out: &Tensor,
) -> (Tensor, Tensor) {
    let heads = alpha.cols();
    let hd = x.cols();
    let d = hd / heads;
    assert_eq!(grad_out.rows(), g.num_rows(), "grad rows mismatch");
    assert_eq!(grad_out.cols(), hd, "grad width mismatch");
    let mut d_alpha = Tensor::zeros(&[g.num_edges(), heads]);
    let mut d_x = Tensor::zeros(&[g.num_cols(), hd]);
    let indptr = g.indptr();
    let indices = g.indices();
    let x_data = x.data();
    let a_data = alpha.data();
    let grad_data = grad_out.data();
    // Pass 1 — destination-parallel: each edge's d_alpha row is owned by
    // its destination.
    {
        let da_s = SharedSlice::new(d_alpha.data_mut());
        parallel_for(g.num_rows(), 1, |lo, hi| {
            for i in lo..hi {
                let (es, ee) = (indptr[i], indptr[i + 1]);
                if es == ee {
                    continue;
                }
                let g_row = &grad_data[i * hd..(i + 1) * hd];
                // SAFETY: destination `i`'s in-edges `es..ee` are contiguous
                // in CSR order and owned by this chunk alone.
                let da_rows = unsafe { da_s.range_mut(es * heads, ee * heads) };
                for e in es..ee {
                    let j = indices[e] as usize;
                    let x_row = &x_data[j * hd..(j + 1) * hd];
                    for head in 0..heads {
                        let lo_c = head * d;
                        let mut dot = 0.0f32;
                        for c in lo_c..lo_c + d {
                            dot += g_row[c] * x_row[c];
                        }
                        da_rows[(e - es) * heads + head] = dot;
                    }
                }
            }
        });
    }
    // Pass 2 — source-parallel: each d_x row is owned by its source;
    // ascending edge ids reproduce the sequential accumulation order.
    let rev = g.reverse_index();
    {
        let dx_s = SharedSlice::new(d_x.data_mut());
        parallel_for(g.num_cols(), 1, |lo, hi| {
            for j in lo..hi {
                // SAFETY: source row `j` is in this chunk's exclusive
                // `lo..hi` range — one writer per gradient row.
                let dx_row = unsafe { dx_s.range_mut(j * hd, (j + 1) * hd) };
                for (i, e) in rev.entries(j) {
                    let g_row = &grad_data[i * hd..(i + 1) * hd];
                    for head in 0..heads {
                        let a = a_data[e * heads + head];
                        if a == 0.0 {
                            continue;
                        }
                        let lo_c = head * d;
                        for c in lo_c..lo_c + d {
                            dx_row[c] += a * g_row[c];
                        }
                    }
                }
            }
        });
    }
    (d_alpha, d_x)
}

// ----------------------------------------------------------------------
// Per-head projection (attention logits)
// ----------------------------------------------------------------------

/// Per-head inner product with an attention vector:
/// `out[n, h] = Σ_k x[n, h*D + k] * a[h*D + k]`.
///
/// Computes GAT's `aᵀ z` terms; `a` is `[H*D]`.
///
/// # Panics
///
/// Panics if `x.cols() != a.len()` or not divisible by `heads`.
pub fn head_project(x: &Tensor, a: &Tensor, heads: usize) -> Tensor {
    let hd = x.cols();
    assert_eq!(a.numel(), hd, "attention vector length mismatch");
    assert_eq!(hd % heads, 0, "width {hd} not divisible by {heads} heads");
    let d = hd / heads;
    let n = x.rows();
    let mut out = vec![0.0f32; n * heads];
    let x_data = x.data();
    let a_data = a.data();
    {
        let out_s = SharedSlice::new(&mut out);
        parallel_for(n, 1, |lo, hi| {
            // SAFETY: chunks claim disjoint `lo..hi` row ranges, so element
            // ranges never overlap across threads.
            let rows = unsafe { out_s.range_mut(lo * heads, hi * heads) };
            for i in lo..hi {
                let x_row = &x_data[i * hd..(i + 1) * hd];
                for h in 0..heads {
                    let mut acc = 0.0f32;
                    for k in 0..d {
                        acc += x_row[h * d + k] * a_data[h * d + k];
                    }
                    rows[(i - lo) * heads + h] = acc;
                }
            }
        });
    }
    Tensor::from_vec(&[n, heads], out)
}

/// Backward of [`head_project`]: returns `(d_x, d_a)` given the upstream
/// gradient `[N, H]`.
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn head_project_backward(
    x: &Tensor,
    a: &Tensor,
    heads: usize,
    grad: &Tensor,
) -> (Tensor, Tensor) {
    let hd = x.cols();
    let d = hd / heads;
    let n = x.rows();
    assert_eq!(grad.rows(), n, "grad rows mismatch");
    assert_eq!(grad.cols(), heads, "grad heads mismatch");
    let mut d_x = Tensor::zeros(&[n, hd]);
    let mut d_a = Tensor::zeros(&[hd]);
    let x_data = x.data();
    let a_data = a.data();
    let g_data = grad.data();
    // Pass 1 — row-parallel d_x: every output row has one writer.
    {
        let dx_s = SharedSlice::new(d_x.data_mut());
        parallel_for(n, 1, |lo, hi| {
            for i in lo..hi {
                let g_row = &g_data[i * heads..(i + 1) * heads];
                // SAFETY: row `i` is in this chunk's exclusive `lo..hi`
                // range — one writer per gradient row.
                let dx_row = unsafe { dx_s.range_mut(i * hd, (i + 1) * hd) };
                for h in 0..heads {
                    let g = g_row[h];
                    if g == 0.0 {
                        continue;
                    }
                    for k in 0..d {
                        dx_row[h * d + k] += g * a_data[h * d + k];
                    }
                }
            }
        });
    }
    // Pass 2 — column-parallel d_a: each column accumulates over rows in
    // ascending order with the same `g == 0` skips as the sequential
    // sweep, so the reduction order is unchanged.
    {
        let da_s = SharedSlice::new(d_a.data_mut());
        parallel_for(hd, 1, |lo, hi| {
            // SAFETY: chunks claim disjoint column ranges `lo..hi` of the
            // flat `[H*D]` gradient — one writer per column.
            let cols = unsafe { da_s.range_mut(lo, hi) };
            for (c, slot) in (lo..hi).zip(cols.iter_mut()) {
                let h = c / d;
                let mut acc = 0.0f32;
                for i in 0..n {
                    let g = g_data[i * heads + h];
                    if g == 0.0 {
                        continue;
                    }
                    acc += g * x_data[i * hd + c];
                }
                *slot = acc;
            }
        });
    }
    (d_x, d_a)
}

/// Per-edge multiplication of a `[E, H]` head tensor against `[E, H*D]`
/// messages is intentionally *not* provided: materializing `[E, H*D]`
/// per-edge messages is what both DGL and this reproduction avoid via
/// [`spmm_multihead`].
///
/// Builds per-edge raw attention scores
/// `e[e, h] = LeakyReLU(s_dst[dst(e), h] + s_src[src(e), h])` without
/// materializing gathered `[E, H]` inputs twice.
///
/// # Panics
///
/// Panics if shapes are inconsistent with the graph.
pub fn gat_edge_scores(g: &CsrGraph, s_dst: &Tensor, s_src: &Tensor, slope: f32) -> Tensor {
    assert_eq!(s_dst.rows(), g.num_rows(), "s_dst rows mismatch");
    assert_eq!(s_src.rows(), g.num_cols(), "s_src rows mismatch");
    assert_eq!(s_dst.cols(), s_src.cols(), "head count mismatch");
    let h = s_dst.cols();
    let mut out = vec![0.0f32; g.num_edges() * h];
    let indptr = g.indptr();
    let indices = g.indices();
    let sd = s_dst.data();
    let ss = s_src.data();
    {
        let out_s = SharedSlice::new(&mut out);
        parallel_for(g.num_rows(), 1, |lo, hi| {
            for i in lo..hi {
                let (es, ee) = (indptr[i], indptr[i + 1]);
                if es == ee {
                    continue;
                }
                // SAFETY: destination `i`'s in-edges `es..ee` are contiguous
                // in CSR order and owned by this chunk alone.
                let rows = unsafe { out_s.range_mut(es * h, ee * h) };
                for e in es..ee {
                    let j = indices[e] as usize;
                    for head in 0..h {
                        let u = sd[i * h + head] + ss[j * h + head];
                        rows[(e - es) * h + head] = if u > 0.0 { u } else { slope * u };
                    }
                }
            }
        });
    }
    Tensor::from_vec(&[g.num_edges(), h], out)
}

/// Backward of [`gat_edge_scores`]: returns `(d_s_dst, d_s_src)`.
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn gat_edge_scores_backward(
    g: &CsrGraph,
    s_dst: &Tensor,
    s_src: &Tensor,
    slope: f32,
    grad: &Tensor,
) -> (Tensor, Tensor) {
    let h = s_dst.cols();
    assert_eq!(grad.rows(), g.num_edges(), "grad rows mismatch");
    assert_eq!(grad.cols(), h, "grad heads mismatch");
    let mut d_dst = Tensor::zeros(&[g.num_rows(), h]);
    let mut d_src = Tensor::zeros(&[g.num_cols(), h]);
    let indptr = g.indptr();
    let indices = g.indices();
    let sd = s_dst.data();
    let ss = s_src.data();
    let g_data = grad.data();
    // Pass 1 — destination-parallel d_dst.
    {
        let dd_s = SharedSlice::new(d_dst.data_mut());
        parallel_for(g.num_rows(), 1, |lo, hi| {
            for i in lo..hi {
                let (es, ee) = (indptr[i], indptr[i + 1]);
                if es == ee {
                    continue;
                }
                // SAFETY: destination row `i` is in this chunk's exclusive
                // `lo..hi` range — one writer per output row.
                let dd_row = unsafe { dd_s.range_mut(i * h, (i + 1) * h) };
                for e in es..ee {
                    let j = indices[e] as usize;
                    for head in 0..h {
                        let u = sd[i * h + head] + ss[j * h + head];
                        let du = g_data[e * h + head] * if u > 0.0 { 1.0 } else { slope };
                        dd_row[head] += du;
                    }
                }
            }
        });
    }
    // Pass 2 — source-parallel d_src via the reverse index (ascending
    // edge ids keep the sequential accumulation order).
    let rev = g.reverse_index();
    {
        let ds_s = SharedSlice::new(d_src.data_mut());
        parallel_for(g.num_cols(), 1, |lo, hi| {
            for j in lo..hi {
                // SAFETY: source row `j` is in this chunk's exclusive
                // `lo..hi` range — one writer per gradient row.
                let ds_row = unsafe { ds_s.range_mut(j * h, (j + 1) * h) };
                for (i, e) in rev.entries(j) {
                    for head in 0..h {
                        let u = sd[i * h + head] + ss[j * h + head];
                        let du = g_data[e * h + head] * if u > 0.0 { 1.0 } else { slope };
                        ds_row[head] += du;
                    }
                }
            }
        });
    }
    (d_dst, d_src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sar_tensor::init;

    fn test_graph() -> CsrGraph {
        // 4 nodes: 1→0, 2→0, 0→1, 3→2, 2→2 (self loop)
        CsrGraph::from_edges(4, &[(1, 0), (2, 0), (0, 1), (3, 2), (2, 2)])
    }

    /// Dense adjacency of g as a [rows, cols] matrix (A[i][j] = 1 iff j→i).
    fn dense_adj(g: &CsrGraph) -> Tensor {
        let mut a = Tensor::zeros(&[g.num_rows(), g.num_cols()]);
        for i in 0..g.num_rows() {
            for &j in g.neighbors(i) {
                a.row_mut(i)[j as usize] += 1.0;
            }
        }
        a
    }

    #[test]
    fn spmm_sum_matches_dense() {
        let g = test_graph();
        let mut rng = StdRng::seed_from_u64(0);
        let x = init::randn(&[4, 3], 1.0, &mut rng);
        let sparse = spmm_sum(&g, &x);
        let dense = dense_adj(&g).matmul(&x);
        assert!(sparse.allclose(&dense, 1e-5));
    }

    #[test]
    fn spmm_backward_matches_transpose_dense() {
        let g = test_graph();
        let mut rng = StdRng::seed_from_u64(1);
        let grad = init::randn(&[4, 3], 1.0, &mut rng);
        let back = spmm_sum_backward(&g, &grad);
        let dense = dense_adj(&g).transpose().matmul(&grad);
        assert!(back.allclose(&dense, 1e-5));
    }

    #[test]
    fn spmm_into_accumulates_blocks() {
        // Splitting a graph's edges into two blocks and accumulating must
        // equal one-shot SpMM — the core identity behind SAR's Algorithm 1.
        let edges = [(1u32, 0u32), (2, 0), (0, 1), (3, 2), (2, 2)];
        let g_full = CsrGraph::from_edges(4, &edges);
        let g_a = CsrGraph::from_edges(4, &edges[..2]);
        let g_b = CsrGraph::from_edges(4, &edges[2..]);
        let mut rng = StdRng::seed_from_u64(2);
        let x = init::randn(&[4, 5], 1.0, &mut rng);
        let full = spmm_sum(&g_full, &x);
        let mut acc = Tensor::zeros(&[4, 5]);
        spmm_sum_into(&g_a, &x, &mut acc);
        spmm_sum_into(&g_b, &x, &mut acc);
        assert!(acc.allclose(&full, 1e-5));
    }

    #[test]
    fn gather_scatter_duality() {
        let g = test_graph();
        let mut rng = StdRng::seed_from_u64(3);
        let x = init::randn(&[4, 2], 1.0, &mut rng);
        let y = init::randn(&[g.num_edges(), 2], 1.0, &mut rng);
        // <gather_src(x), y> == <x, scatter_src(y)>  (adjointness)
        let lhs: f32 = gather_src(&g, &x).mul(&y).sum();
        let rhs: f32 = x.mul(&scatter_edges_to_src(&g, &y)).sum();
        assert!((lhs - rhs).abs() < 1e-4);
        let lhs2: f32 = gather_dst(&g, &x).mul(&y).sum();
        let rhs2: f32 = x.mul(&scatter_edges_to_dst(&g, &y)).sum();
        assert!((lhs2 - rhs2).abs() < 1e-4);
    }

    #[test]
    fn edge_softmax_rows_sum_to_one() {
        let g = test_graph();
        let mut rng = StdRng::seed_from_u64(4);
        let scores = init::randn(&[g.num_edges(), 3], 2.0, &mut rng);
        let alpha = edge_softmax(&g, &scores);
        for i in 0..g.num_rows() {
            let (s, e) = (g.indptr()[i], g.indptr()[i + 1]);
            if s == e {
                continue;
            }
            for h in 0..3 {
                let total: f32 = (s..e).map(|k| alpha.data()[k * 3 + h]).sum();
                assert!((total - 1.0).abs() < 1e-5, "dst {i} head {h}: {total}");
            }
        }
    }

    #[test]
    fn edge_softmax_is_shift_invariant_per_dst() {
        let g = test_graph();
        let mut rng = StdRng::seed_from_u64(5);
        let scores = init::randn(&[g.num_edges(), 2], 1.0, &mut rng);
        let mut shifted = scores.clone();
        // Shift all scores of dst 0's edges by a large constant.
        for e in g.indptr()[0]..g.indptr()[1] {
            for h in 0..2 {
                shifted.data_mut()[e * 2 + h] += 100.0;
            }
        }
        assert!(edge_softmax(&g, &scores).allclose(&edge_softmax(&g, &shifted), 1e-4));
    }

    #[test]
    fn spmm_multihead_matches_manual() {
        let g = test_graph();
        let heads = 2;
        let d = 3;
        let mut rng = StdRng::seed_from_u64(6);
        let x = init::randn(&[4, heads * d], 1.0, &mut rng);
        let alpha = init::randn(&[g.num_edges(), heads], 1.0, &mut rng);
        let out = spmm_multihead(&g, &alpha, &x);
        // Manual per-destination check.
        let mut expect = Tensor::zeros(&[4, heads * d]);
        let mut e = 0;
        for i in 0..4 {
            for &j in g.neighbors(i) {
                for h in 0..heads {
                    let a = alpha.data()[e * heads + h];
                    for k in 0..d {
                        expect.row_mut(i)[h * d + k] += a * x.row(j as usize)[h * d + k];
                    }
                }
                e += 1;
            }
        }
        assert!(out.allclose(&expect, 1e-5));
    }

    #[test]
    fn spmm_multihead_backward_is_adjoint() {
        let g = test_graph();
        let heads = 2;
        let mut rng = StdRng::seed_from_u64(7);
        let x = init::randn(&[4, heads * 2], 1.0, &mut rng);
        let alpha = init::randn(&[g.num_edges(), heads], 1.0, &mut rng);
        let grad = init::randn(&[4, heads * 2], 1.0, &mut rng);
        let (d_alpha, d_x) = spmm_multihead_backward(&g, &alpha, &x, &grad);
        // <out, grad> must equal <alpha, d_alpha> and <x, d_x> by linearity
        // in each argument.
        let out = spmm_multihead(&g, &alpha, &x);
        let lhs: f32 = out.mul(&grad).sum();
        assert!((lhs - alpha.mul(&d_alpha).sum()).abs() < 1e-3);
        assert!((lhs - x.mul(&d_x).sum()).abs() < 1e-3);
    }

    #[test]
    fn head_project_matches_manual_and_adjoint() {
        let heads = 2;
        let d = 3;
        let mut rng = StdRng::seed_from_u64(8);
        let x = init::randn(&[5, heads * d], 1.0, &mut rng);
        let a = init::randn(&[heads * d], 1.0, &mut rng);
        let s = head_project(&x, &a, heads);
        for i in 0..5 {
            for h in 0..heads {
                let manual: f32 = (0..d)
                    .map(|k| x.row(i)[h * d + k] * a.data()[h * d + k])
                    .sum();
                assert!((s.at(&[i, h]) - manual).abs() < 1e-5);
            }
        }
        let grad = init::randn(&[5, heads], 1.0, &mut rng);
        let (d_x, d_a) = head_project_backward(&x, &a, heads, &grad);
        let lhs: f32 = s.mul(&grad).sum();
        assert!((lhs - x.mul(&d_x).sum()).abs() < 1e-3);
        assert!((lhs - a.mul(&d_a).sum()).abs() < 1e-3);
    }

    #[test]
    fn gat_edge_scores_match_gather_formulation() {
        let g = test_graph();
        let mut rng = StdRng::seed_from_u64(9);
        let s_dst = init::randn(&[4, 2], 1.0, &mut rng);
        let s_src = init::randn(&[4, 2], 1.0, &mut rng);
        let slope = 0.2;
        let scores = gat_edge_scores(&g, &s_dst, &s_src, slope);
        let manual = gather_dst(&g, &s_dst)
            .add(&gather_src(&g, &s_src))
            .map(|u| if u > 0.0 { u } else { slope * u });
        assert!(scores.allclose(&manual, 1e-5));
    }

    #[test]
    fn gat_edge_scores_backward_is_adjoint_in_linear_region() {
        // With slope 1.0 the op is linear, so adjointness must hold exactly.
        let g = test_graph();
        let mut rng = StdRng::seed_from_u64(10);
        let s_dst = init::randn(&[4, 2], 1.0, &mut rng);
        let s_src = init::randn(&[4, 2], 1.0, &mut rng);
        let grad = init::randn(&[g.num_edges(), 2], 1.0, &mut rng);
        let scores = gat_edge_scores(&g, &s_dst, &s_src, 1.0);
        let (d_dst, d_src) = gat_edge_scores_backward(&g, &s_dst, &s_src, 1.0, &grad);
        let lhs: f32 = scores.mul(&grad).sum();
        let rhs = s_dst.mul(&d_dst).sum() + s_src.mul(&d_src).sum();
        assert!((lhs - rhs).abs() < 1e-3);
    }

    #[test]
    fn bipartite_spmm() {
        // 3 source columns feeding 2 destination rows.
        let g = CsrGraph::from_edges_bipartite(3, 2, &[(0, 0), (2, 0), (1, 1)]);
        let x = Tensor::from_vec(&[3, 1], vec![1.0, 10.0, 100.0]);
        let out = spmm_sum(&g, &x);
        assert_eq!(out.data(), &[101.0, 10.0]);
    }
}
