#![warn(missing_docs)]

//! Graph substrate for the SAR reproduction — the DGL substitute.
//!
//! Provides:
//!
//! * [`CsrGraph`] — a compressed-sparse-row adjacency structure, possibly
//!   *bipartite* (rows = destination nodes, columns = source nodes). SAR's
//!   per-partition-pair blocks `G_{p,q}` are exactly such bipartite blocks,
//!   so the same kernels serve both single-machine and distributed paths.
//! * [`ops`] — raw sparse message-passing kernels on
//!   [`Tensor`](sar_tensor::Tensor)s: SpMM, edge score computation, edge
//!   softmax and their backward counterparts. Autograd wrappers live in
//!   `sar-nn`.
//! * [`generators`] — synthetic random graphs (Erdős–Rényi, R-MAT,
//!   degree-weighted stochastic block model).
//! * [`datasets`] — OGB stand-in node-classification datasets
//!   ([`datasets::products_like`], [`datasets::papers_like`]) with
//!   label-correlated features and train/val/test splits, replacing
//!   ogbn-products and ogbn-papers100M which cannot be downloaded here
//!   (see DESIGN.md §2).

mod csr;
pub mod datasets;
pub mod fused;
pub mod generators;
pub mod io;
pub mod ops;

pub use csr::{CsrGraph, ReverseIndex};
pub use datasets::Dataset;
