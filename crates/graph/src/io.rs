//! Graph and dataset (de)serialization.
//!
//! Two formats:
//!
//! * **Edge-list text** — one `src dst` pair per line with a `# nodes N`
//!   header; interoperable with the usual SNAP/OGB dumps, so real graphs
//!   can be dropped into the reproduction when available.
//! * **Binary** — a compact little-endian container for [`CsrGraph`]
//!   (magic `SARG`) and [`Dataset`] (magic `SARD`), used for caching
//!   generated stand-in datasets between benchmark runs.

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use sar_tensor::Tensor;

use crate::{CsrGraph, Dataset};

const GRAPH_MAGIC: &[u8; 4] = b"SARG";
const DATASET_MAGIC: &[u8; 4] = b"SARD";

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

// ----------------------------------------------------------------------
// Edge-list text format
// ----------------------------------------------------------------------

/// Writes `graph` as an edge-list text file: a `# nodes N` header followed
/// by one `src dst` pair per line.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_edge_list<W: Write>(graph: &CsrGraph, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# nodes {}", graph.num_nodes())?;
    for (s, d) in graph.iter_edges() {
        writeln!(w, "{s} {d}")?;
    }
    w.flush()
}

/// Reads an edge-list text stream produced by [`write_edge_list`] (or any
/// whitespace-separated `src dst` list; `#`-prefixed lines are comments,
/// and the node count is taken from a `# nodes N` header or inferred from
/// the maximum endpoint).
///
/// # Errors
///
/// Returns an error on malformed lines or I/O failure.
pub fn read_edge_list<R: Read>(reader: R) -> io::Result<CsrGraph> {
    let r = BufReader::new(reader);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut declared_nodes: Option<usize> = None;
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let mut it = rest.split_whitespace();
            if it.next() == Some("nodes") {
                let n = it
                    .next()
                    .ok_or_else(|| bad_data("missing node count in header"))?;
                declared_nodes = Some(n.parse().map_err(|_| bad_data("bad node count"))?);
            }
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>| -> io::Result<u32> {
            tok.ok_or_else(|| bad_data(format!("line {}: missing endpoint", lineno + 1)))?
                .parse()
                .map_err(|_| bad_data(format!("line {}: bad endpoint", lineno + 1)))
        };
        let s = parse(it.next())?;
        let d = parse(it.next())?;
        edges.push((s, d));
    }
    let n = declared_nodes.unwrap_or_else(|| {
        edges
            .iter()
            .map(|&(s, d)| s.max(d) as usize + 1)
            .max()
            .unwrap_or(0)
    });
    if edges
        .iter()
        .any(|&(s, d)| s as usize >= n || d as usize >= n)
    {
        return Err(bad_data("edge endpoint exceeds declared node count"));
    }
    Ok(CsrGraph::from_edges(n, &edges))
}

// ----------------------------------------------------------------------
// Binary container primitives
// ----------------------------------------------------------------------

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn write_u32s<W: Write>(w: &mut W, vs: &[u32]) -> io::Result<()> {
    write_u64(w, vs.len() as u64)?;
    for &v in vs {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn read_u32s<R: Read>(r: &mut R) -> io::Result<Vec<u32>> {
    let len = read_u64(r)? as usize;
    let mut out = Vec::with_capacity(len);
    let mut buf = [0u8; 4];
    for _ in 0..len {
        r.read_exact(&mut buf)?;
        out.push(u32::from_le_bytes(buf));
    }
    Ok(out)
}

fn write_f32s<W: Write>(w: &mut W, vs: &[f32]) -> io::Result<()> {
    write_u64(w, vs.len() as u64)?;
    for &v in vs {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn read_f32s<R: Read>(r: &mut R) -> io::Result<Vec<f32>> {
    let len = read_u64(r)? as usize;
    let mut out = Vec::with_capacity(len);
    let mut buf = [0u8; 4];
    for _ in 0..len {
        r.read_exact(&mut buf)?;
        out.push(f32::from_le_bytes(buf));
    }
    Ok(out)
}

fn write_mask<W: Write>(w: &mut W, mask: &[bool]) -> io::Result<()> {
    write_u64(w, mask.len() as u64)?;
    let bytes: Vec<u8> = mask.iter().map(|&b| b as u8).collect();
    w.write_all(&bytes)
}

fn read_mask<R: Read>(r: &mut R) -> io::Result<Vec<bool>> {
    let len = read_u64(r)? as usize;
    let mut bytes = vec![0u8; len];
    r.read_exact(&mut bytes)?;
    Ok(bytes.into_iter().map(|b| b != 0).collect())
}

// ----------------------------------------------------------------------
// Binary graph / dataset
// ----------------------------------------------------------------------

/// Writes a [`CsrGraph`] in the compact binary format.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_graph<W: Write>(graph: &CsrGraph, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(GRAPH_MAGIC)?;
    write_u64(&mut w, graph.num_rows() as u64)?;
    write_u64(&mut w, graph.num_cols() as u64)?;
    let indptr: Vec<u32> = graph.indptr().iter().map(|&v| v as u32).collect();
    write_u32s(&mut w, &indptr)?;
    write_u32s(&mut w, graph.indices())?;
    w.flush()
}

/// Reads a [`CsrGraph`] written by [`write_graph`].
///
/// # Errors
///
/// Returns an error on a bad magic number, malformed structure, or I/O
/// failure.
pub fn read_graph<R: Read>(reader: R) -> io::Result<CsrGraph> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != GRAPH_MAGIC {
        return Err(bad_data("not a SAR graph file"));
    }
    let rows = read_u64(&mut r)? as usize;
    let cols = read_u64(&mut r)? as usize;
    let indptr: Vec<usize> = read_u32s(&mut r)?.into_iter().map(|v| v as usize).collect();
    let indices = read_u32s(&mut r)?;
    if indptr.len() != rows + 1 {
        return Err(bad_data("indptr length mismatch"));
    }
    Ok(CsrGraph::from_raw(cols, indptr, indices))
}

/// Writes a full [`Dataset`] (graph, features, labels, splits) in the
/// compact binary format.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_dataset<W: Write>(dataset: &Dataset, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(DATASET_MAGIC)?;
    let name = dataset.name.as_bytes();
    write_u64(&mut w, name.len() as u64)?;
    w.write_all(name)?;
    write_u64(&mut w, dataset.num_classes as u64)?;
    write_u64(&mut w, dataset.feat_dim() as u64)?;
    write_f32s(&mut w, dataset.features.data())?;
    write_u32s(&mut w, &dataset.labels)?;
    write_mask(&mut w, &dataset.train_mask)?;
    write_mask(&mut w, &dataset.val_mask)?;
    write_mask(&mut w, &dataset.test_mask)?;
    w.flush()?;
    write_graph(&dataset.graph, writer_of(w)?)
}

fn writer_of<W: Write>(w: BufWriter<W>) -> io::Result<W> {
    w.into_inner().map_err(|e| e.into_error())
}

/// Reads a [`Dataset`] written by [`write_dataset`].
///
/// # Errors
///
/// Returns an error on a bad magic number, inconsistent sizes, or I/O
/// failure.
pub fn read_dataset<R: Read>(reader: R) -> io::Result<Dataset> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != DATASET_MAGIC {
        return Err(bad_data("not a SAR dataset file"));
    }
    let name_len = read_u64(&mut r)? as usize;
    let mut name = vec![0u8; name_len];
    r.read_exact(&mut name)?;
    let name = String::from_utf8(name).map_err(|_| bad_data("bad dataset name"))?;
    let num_classes = read_u64(&mut r)? as usize;
    let feat_dim = read_u64(&mut r)? as usize;
    let features = read_f32s(&mut r)?;
    let labels = read_u32s(&mut r)?;
    let train_mask = read_mask(&mut r)?;
    let val_mask = read_mask(&mut r)?;
    let test_mask = read_mask(&mut r)?;
    let graph = read_graph(&mut r)?;
    let n = graph.num_nodes();
    if labels.len() != n
        || train_mask.len() != n
        || val_mask.len() != n
        || test_mask.len() != n
        || (feat_dim > 0 && features.len() != n * feat_dim)
    {
        return Err(bad_data("dataset sizes are inconsistent"));
    }
    Ok(Dataset {
        graph,
        features: Tensor::from_vec(&[n, feat_dim], features),
        labels,
        train_mask,
        val_mask,
        test_mask,
        num_classes,
        name,
    })
}

/// Convenience: writes a dataset to a file path.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn save_dataset(dataset: &Dataset, path: impl AsRef<Path>) -> io::Result<()> {
    write_dataset(dataset, std::fs::File::create(path)?)
}

/// Convenience: reads a dataset from a file path.
///
/// # Errors
///
/// Returns any underlying I/O error or format error.
pub fn load_dataset(path: impl AsRef<Path>) -> io::Result<Dataset> {
    read_dataset(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;

    #[test]
    fn edge_list_round_trip() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (2, 3), (4, 0), (1, 1)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(&buf[..]).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn edge_list_infers_node_count_without_header() {
        let text = b"0 1\n3 2\n";
        let g = read_edge_list(&text[..]).unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn edge_list_rejects_garbage() {
        assert!(read_edge_list(&b"0 x\n"[..]).is_err());
        assert!(read_edge_list(&b"# nodes 1\n5 0\n"[..]).is_err());
    }

    #[test]
    fn binary_graph_round_trip() {
        let g = CsrGraph::from_edges_bipartite(7, 4, &[(6, 0), (2, 3), (0, 0)]);
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let back = read_graph(&buf[..]).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn binary_graph_rejects_wrong_magic() {
        let err = read_graph(&b"NOPE"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn dataset_round_trip() {
        let d = datasets::products_like(120, 5);
        let mut buf = Vec::new();
        write_dataset(&d, &mut buf).unwrap();
        let back = read_dataset(&buf[..]).unwrap();
        assert_eq!(back.graph, d.graph);
        assert_eq!(back.labels, d.labels);
        assert_eq!(back.train_mask, d.train_mask);
        assert_eq!(back.features, d.features);
        assert_eq!(back.num_classes, d.num_classes);
        assert_eq!(back.name, d.name);
    }

    #[test]
    fn dataset_file_round_trip() {
        let d = datasets::papers_like(60, 6);
        let path = std::env::temp_dir().join("sar_io_test_dataset.bin");
        save_dataset(&d, &path).unwrap();
        let back = load_dataset(&path).unwrap();
        assert_eq!(back.labels, d.labels);
        let _ = std::fs::remove_file(&path);
    }
}
