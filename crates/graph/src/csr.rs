//! Compressed-sparse-row adjacency, oriented for message passing.

/// A graph in compressed-sparse-row form, oriented **destination-major**:
/// row `i` lists the *source* nodes `j` of edges `j → i`. Aggregating over
/// `neighbors(i)` therefore aggregates a node's incoming messages, matching
/// Eq. 1 of the SAR paper.
///
/// The structure may be *bipartite*: `num_rows` destination nodes drawing
/// from `num_cols` source nodes. SAR's per-partition-pair blocks
/// `G_{p,q}` (edges from partition `q` into partition `p`) are bipartite
/// blocks whose column space is the array of features fetched from `q`.
/// For an ordinary graph, `num_rows == num_cols`.
///
/// # Example
///
/// ```
/// use sar_graph::CsrGraph;
///
/// // Edges: 0→1, 2→1, 1→0
/// let g = CsrGraph::from_edges(3, &[(0, 1), (2, 1), (1, 0)]);
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// assert_eq!(g.in_degree(1), 2);
/// assert_eq!(g.num_edges(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    num_rows: usize,
    num_cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    /// True when every row's neighbor list ascends — derived from the
    /// data at construction, and the precondition for the cache-blocked
    /// kernel traversals in `ops` (blocking by source range only
    /// preserves per-row accumulation order on sorted rows).
    rows_sorted: bool,
}

impl CsrGraph {
    /// Builds a square graph from `(src, dst)` edge pairs.
    ///
    /// Edges are grouped by destination and sorted by source; duplicates
    /// are kept (they act as weighted edges under sum aggregation).
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= num_nodes`.
    pub fn from_edges(num_nodes: usize, edges: &[(u32, u32)]) -> Self {
        Self::from_edges_bipartite(num_nodes, num_nodes, edges)
    }

    /// Builds a bipartite block from `(src, dst)` pairs where sources index
    /// a column space of size `num_cols` and destinations a row space of
    /// size `num_rows`.
    ///
    /// # Panics
    ///
    /// Panics if any source is `>= num_cols` or destination `>= num_rows`.
    pub fn from_edges_bipartite(num_cols: usize, num_rows: usize, edges: &[(u32, u32)]) -> Self {
        let mut counts = vec![0usize; num_rows];
        for &(s, d) in edges {
            assert!(
                (s as usize) < num_cols,
                "source {s} out of range ({num_cols} cols)"
            );
            assert!(
                (d as usize) < num_rows,
                "destination {d} out of range ({num_rows} rows)"
            );
            counts[d as usize] += 1;
        }
        let mut indptr = vec![0usize; num_rows + 1];
        for i in 0..num_rows {
            indptr[i + 1] = indptr[i] + counts[i];
        }
        let mut indices = vec![0u32; edges.len()];
        let mut cursor = indptr.clone();
        for &(s, d) in edges {
            indices[cursor[d as usize]] = s;
            cursor[d as usize] += 1;
        }
        for i in 0..num_rows {
            indices[indptr[i]..indptr[i + 1]].sort_unstable();
        }
        Self {
            num_rows,
            num_cols,
            indptr,
            indices,
            rows_sorted: true,
        }
    }

    /// Builds directly from raw CSR arrays.
    ///
    /// # Panics
    ///
    /// Panics if the arrays are inconsistent (wrong `indptr` length,
    /// non-monotone `indptr`, or out-of-range indices).
    pub fn from_raw(num_cols: usize, indptr: Vec<usize>, indices: Vec<u32>) -> Self {
        assert!(!indptr.is_empty(), "indptr must have at least one entry");
        let num_rows = indptr.len() - 1;
        assert_eq!(
            *indptr.last().unwrap(),
            indices.len(),
            "indptr/indices mismatch"
        );
        assert!(
            indptr.windows(2).all(|w| w[0] <= w[1]),
            "indptr must be monotone"
        );
        assert!(
            indices.iter().all(|&j| (j as usize) < num_cols),
            "column index out of range"
        );
        let rows_sorted = (0..num_rows).all(|i| {
            indices[indptr[i]..indptr[i + 1]]
                .windows(2)
                .all(|w| w[0] <= w[1])
        });
        Self {
            num_rows,
            num_cols,
            indptr,
            indices,
            rows_sorted,
        }
    }

    /// True when every row's neighbor list is ascending. Always holds for
    /// graphs built via [`CsrGraph::from_edges`] /
    /// [`CsrGraph::from_edges_bipartite`]; checked once at construction
    /// for [`CsrGraph::from_raw`].
    pub fn rows_sorted(&self) -> bool {
        self.rows_sorted
    }

    /// Number of destination (row) nodes.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of source (column) nodes.
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Number of nodes of a square graph.
    ///
    /// # Panics
    ///
    /// Panics if the graph is bipartite with `num_rows != num_cols`.
    pub fn num_nodes(&self) -> usize {
        assert_eq!(
            self.num_rows, self.num_cols,
            "num_nodes() on a bipartite block; use num_rows/num_cols"
        );
        self.num_rows
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.indices.len()
    }

    /// Sources of the edges into destination `i`, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn neighbors(&self, i: usize) -> &[u32] {
        &self.indices[self.indptr[i]..self.indptr[i + 1]]
    }

    /// In-degree of destination `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn in_degree(&self, i: usize) -> usize {
        self.indptr[i + 1] - self.indptr[i]
    }

    /// In-degrees of all destinations as `f32` (convenient for
    /// normalization tensors).
    pub fn in_degrees(&self) -> Vec<f32> {
        (0..self.num_rows)
            .map(|i| self.in_degree(i) as f32)
            .collect()
    }

    /// Out-degrees of all source nodes.
    pub fn out_degrees(&self) -> Vec<f32> {
        let mut deg = vec![0f32; self.num_cols];
        for &j in &self.indices {
            deg[j as usize] += 1.0;
        }
        deg
    }

    /// Raw `indptr` array (length `num_rows + 1`).
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Raw column-index array, grouped by row.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Iterates all edges as `(src, dst)` pairs.
    pub fn iter_edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.num_rows).flat_map(move |i| self.neighbors(i).iter().map(move |&j| (j, i as u32)))
    }

    /// The reverse graph: edge `j → i` becomes `i → j`. For a square graph
    /// this swaps in- and out-adjacency.
    pub fn reverse(&self) -> CsrGraph {
        let edges: Vec<(u32, u32)> = self.iter_edges().map(|(s, d)| (d, s)).collect();
        CsrGraph::from_edges_bipartite(self.num_rows, self.num_cols, &edges)
    }

    /// Returns a square graph with both edge directions present and
    /// duplicate edges removed (self-loops are kept as-is, deduplicated).
    ///
    /// # Panics
    ///
    /// Panics if the graph is bipartite.
    pub fn symmetrize(&self) -> CsrGraph {
        let n = self.num_nodes();
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(self.num_edges() * 2);
        for (s, d) in self.iter_edges() {
            edges.push((s, d));
            edges.push((d, s));
        }
        edges.sort_unstable();
        edges.dedup();
        CsrGraph::from_edges(n, &edges)
    }

    /// Returns a square graph with a self-loop added to every node that
    /// lacks one (so every node aggregates at least itself).
    ///
    /// # Panics
    ///
    /// Panics if the graph is bipartite.
    pub fn with_self_loops(&self) -> CsrGraph {
        let n = self.num_nodes();
        let mut edges: Vec<(u32, u32)> = self.iter_edges().collect();
        for i in 0..n as u32 {
            if !self.neighbors(i as usize).contains(&i) {
                edges.push((i, i));
            }
        }
        CsrGraph::from_edges(n, &edges)
    }

    /// `true` if for every edge `j → i` the edge `i → j` also exists.
    ///
    /// # Panics
    ///
    /// Panics if the graph is bipartite.
    pub fn is_symmetric(&self) -> bool {
        let _ = self.num_nodes();
        self.iter_edges()
            .all(|(s, d)| self.neighbors(s as usize).binary_search(&d).is_ok())
    }

    /// `true` if node `i` has no incoming edges.
    pub fn is_isolated_row(&self, i: usize) -> bool {
        self.in_degree(i) == 0
    }

    /// Builds the source-major [`ReverseIndex`] of this graph, preserving
    /// CSR edge ids. Unlike [`CsrGraph::reverse`] (which rebuilds a CSR
    /// and forgets which original edge each entry came from), the reverse
    /// index keeps, for every source column `j`, its edges **ascending by
    /// CSR edge id** — the order the destination-major kernels visit
    /// them. Scatter-style backward kernels parallelize over sources with
    /// it while reproducing the sequential accumulation order bit for
    /// bit.
    pub fn reverse_index(&self) -> ReverseIndex {
        let e_count = self.num_edges();
        let mut indptr = vec![0usize; self.num_cols + 1];
        for &j in &self.indices {
            indptr[j as usize + 1] += 1;
        }
        for k in 1..indptr.len() {
            indptr[k] += indptr[k - 1];
        }
        let mut cursor = indptr[..self.num_cols].to_vec();
        let mut dst = vec![0u32; e_count];
        let mut edge = vec![0u32; e_count];
        // Global edge ids ascend here, so each source's slice is filled in
        // ascending edge-id order.
        for i in 0..self.num_rows {
            for e in self.indptr[i]..self.indptr[i + 1] {
                let j = self.indices[e] as usize;
                let pos = cursor[j];
                cursor[j] += 1;
                dst[pos] = i as u32;
                edge[pos] = e as u32;
            }
        }
        ReverseIndex { indptr, dst, edge }
    }
}

/// Source-major companion of a [`CsrGraph`]: for every source column `j`,
/// the destinations and **original CSR edge ids** of its outgoing edges,
/// ascending by edge id. See [`CsrGraph::reverse_index`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReverseIndex {
    indptr: Vec<usize>,
    dst: Vec<u32>,
    edge: Vec<u32>,
}

impl ReverseIndex {
    /// Number of source columns indexed.
    pub fn num_sources(&self) -> usize {
        self.indptr.len() - 1
    }

    /// Out-degree of source `j`.
    pub fn out_degree(&self, j: usize) -> usize {
        self.indptr[j + 1] - self.indptr[j]
    }

    /// Raw slices of source `j`'s entries — `(destinations, edge ids)`,
    /// both ascending by edge id (and therefore by destination, since CSR
    /// edge ids are destination-major). This is the random-access form of
    /// [`ReverseIndex::entries`] used by the cache-blocked backward
    /// traversals, which keep a cursor into these slices per source.
    pub fn entry_slices(&self, j: usize) -> (&[u32], &[u32]) {
        let (lo, hi) = (self.indptr[j], self.indptr[j + 1]);
        (&self.dst[lo..hi], &self.edge[lo..hi])
    }

    /// Iterates source `j`'s edges as `(destination row, CSR edge id)`,
    /// ascending by edge id.
    pub fn entries(&self, j: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        let (lo, hi) = (self.indptr[j], self.indptr[j + 1]);
        self.dst[lo..hi]
            .iter()
            .zip(&self.edge[lo..hi])
            .map(|(&i, &e)| (i as usize, e as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> CsrGraph {
        // 0 → 1, 0 → 2, 1 → 3, 2 → 3
        CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn builds_and_indexes() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(3), &[1, 2]);
        assert_eq!(g.neighbors(0), &[] as &[u32]);
        assert!(g.is_isolated_row(0));
    }

    #[test]
    fn degrees() {
        let g = diamond();
        assert_eq!(g.in_degrees(), vec![0., 1., 1., 2.]);
        assert_eq!(g.out_degrees(), vec![2., 1., 1., 0.]);
    }

    #[test]
    fn reverse_swaps_directions() {
        let g = diamond();
        let r = g.reverse();
        assert_eq!(r.neighbors(0), &[1, 2]);
        assert_eq!(r.neighbors(3), &[] as &[u32]);
        assert_eq!(r.reverse(), g);
    }

    #[test]
    fn symmetrize_makes_symmetric() {
        let g = diamond();
        let s = g.symmetrize();
        assert!(s.is_symmetric());
        assert_eq!(s.num_edges(), 8);
        assert!(!g.is_symmetric());
    }

    #[test]
    fn self_loops_added_once() {
        let g = CsrGraph::from_edges(3, &[(0, 0), (1, 2)]);
        let s = g.with_self_loops();
        assert_eq!(s.num_edges(), 4); // existing loop on 0 kept, loops added to 1 and 2
        for i in 0..3 {
            assert!(s.neighbors(i).contains(&(i as u32)));
        }
    }

    #[test]
    fn bipartite_blocks() {
        // 5 source columns, 2 destination rows.
        let g = CsrGraph::from_edges_bipartite(5, 2, &[(4, 0), (1, 0), (3, 1)]);
        assert_eq!(g.num_rows(), 2);
        assert_eq!(g.num_cols(), 5);
        assert_eq!(g.neighbors(0), &[1, 4]);
    }

    #[test]
    fn iter_edges_round_trips() {
        let g = diamond();
        let edges: Vec<_> = g.iter_edges().collect();
        let g2 = CsrGraph::from_edges(4, &edges);
        assert_eq!(g, g2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_edges() {
        let _ = CsrGraph::from_edges(2, &[(0, 5)]);
    }

    #[test]
    fn from_raw_validates() {
        let g = CsrGraph::from_raw(3, vec![0, 1, 3], vec![2, 0, 1]);
        assert_eq!(g.num_rows(), 2);
        assert_eq!(g.neighbors(1), &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn from_raw_rejects_bad_indptr() {
        let _ = CsrGraph::from_raw(3, vec![0, 3, 2], vec![0, 1]);
    }
}
