//! Synthetic random-graph generators.
//!
//! These produce the topology of the OGB stand-in datasets (DESIGN.md §2):
//! heavy-tailed degree distributions (R-MAT / degree-weighted sampling) and
//! planted community structure (stochastic block models) so that the graph
//! exercises the same skew and cross-partition traffic patterns as
//! ogbn-products / ogbn-papers100M.

use rand::Rng;

use crate::CsrGraph;

/// Erdős–Rényi `G(n, m)`: `m` edges sampled uniformly with replacement.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn erdos_renyi(n: usize, m: usize, rng: &mut impl Rng) -> CsrGraph {
    assert!(n > 0, "graph must have at least one node");
    let edges: Vec<(u32, u32)> = (0..m)
        .map(|_| (rng.random_range(0..n) as u32, rng.random_range(0..n) as u32))
        .collect();
    CsrGraph::from_edges(n, &edges)
}

/// R-MAT recursive matrix graph (Chakrabarti et al.) with `2^scale` nodes
/// and `edge_factor * 2^scale` edges. The probabilities `(a, b, c)` (with
/// `d = 1 - a - b - c`) control degree skew; the classic Graph500 setting
/// is `(0.57, 0.19, 0.19)`.
///
/// # Panics
///
/// Panics if the probabilities are not a sub-distribution.
pub fn rmat(
    scale: u32,
    edge_factor: usize,
    a: f64,
    b: f64,
    c: f64,
    rng: &mut impl Rng,
) -> CsrGraph {
    assert!(
        a >= 0.0 && b >= 0.0 && c >= 0.0 && a + b + c <= 1.0,
        "invalid R-MAT probabilities"
    );
    let n = 1usize << scale;
    let m = edge_factor * n;
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let (mut x0, mut x1) = (0usize, n);
        let (mut y0, mut y1) = (0usize, n);
        while x1 - x0 > 1 {
            let r: f64 = rng.random();
            let (right, down) = if r < a {
                (false, false)
            } else if r < a + b {
                (true, false)
            } else if r < a + b + c {
                (false, true)
            } else {
                (true, true)
            };
            let xm = (x0 + x1) / 2;
            let ym = (y0 + y1) / 2;
            if right {
                x0 = xm;
            } else {
                x1 = xm;
            }
            if down {
                y0 = ym;
            } else {
                y1 = ym;
            }
        }
        edges.push((x0 as u32, y0 as u32));
    }
    CsrGraph::from_edges(n, &edges)
}

/// Degree-weighted stochastic block model.
///
/// Nodes carry power-law degree weights (`weight ∝ (i+1)^{-exponent}` after
/// a random shuffle) and a block label. Each of the `m` edges picks its
/// source by weight; the destination is drawn from the *same* block with
/// probability `homophily`, otherwise from the whole graph — in both cases
/// weighted by degree weight. The result combines community structure
/// (what METIS exploits, and what labels correlate with) with the skewed
/// degrees of real web-scale graphs.
///
/// Returns the graph and the per-node block assignment.
///
/// # Panics
///
/// Panics if `n == 0`, `blocks == 0` or `homophily ∉ [0, 1]`.
pub fn weighted_sbm(
    n: usize,
    m: usize,
    blocks: usize,
    homophily: f64,
    exponent: f64,
    rng: &mut impl Rng,
) -> (CsrGraph, Vec<u32>) {
    assert!(n > 0 && blocks > 0, "need nodes and blocks");
    assert!(
        (0.0..=1.0).contains(&homophily),
        "homophily must be in [0,1]"
    );
    // Block assignment: contiguous ranges shuffled via random offsets would
    // make partitioning trivial; assign uniformly at random instead.
    let labels: Vec<u32> = (0..n).map(|_| rng.random_range(0..blocks) as u32).collect();

    // Power-law degree weights, assigned in random order.
    let mut weights: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-exponent)).collect();
    // Fisher-Yates shuffle of weights.
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        weights.swap(i, j);
    }

    // Cumulative tables: global and per block.
    let cum_global = cumulative(&weights);
    let mut block_nodes: Vec<Vec<u32>> = vec![Vec::new(); blocks];
    for (i, &b) in labels.iter().enumerate() {
        block_nodes[b as usize].push(i as u32);
    }
    let block_cums: Vec<Vec<f64>> = block_nodes
        .iter()
        .map(|nodes| {
            cumulative(
                &nodes
                    .iter()
                    .map(|&i| weights[i as usize])
                    .collect::<Vec<_>>(),
            )
        })
        .collect();

    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let src = sample_cumulative(&cum_global, rng) as u32;
        let dst = if rng.random::<f64>() < homophily {
            let b = labels[src as usize] as usize;
            if block_nodes[b].is_empty() {
                sample_cumulative(&cum_global, rng) as u32
            } else {
                block_nodes[b][sample_cumulative(&block_cums[b], rng)]
            }
        } else {
            sample_cumulative(&cum_global, rng) as u32
        };
        edges.push((src, dst));
    }
    (CsrGraph::from_edges(n, &edges), labels)
}

fn cumulative(weights: &[f64]) -> Vec<f64> {
    let mut cum = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for &w in weights {
        acc += w;
        cum.push(acc);
    }
    cum
}

fn sample_cumulative(cum: &[f64], rng: &mut impl Rng) -> usize {
    let total = *cum.last().expect("non-empty weights");
    let r = rng.random::<f64>() * total;
    cum.partition_point(|&c| c < r).min(cum.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn erdos_renyi_has_requested_edges() {
        let mut rng = StdRng::seed_from_u64(0);
        let g = erdos_renyi(100, 500, &mut rng);
        assert_eq!(g.num_nodes(), 100);
        assert_eq!(g.num_edges(), 500);
    }

    #[test]
    fn rmat_is_skewed() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = rmat(10, 8, 0.57, 0.19, 0.19, &mut rng);
        assert_eq!(g.num_nodes(), 1024);
        assert_eq!(g.num_edges(), 8192);
        let mut degs = g.in_degrees();
        degs.sort_by(|a, b| b.partial_cmp(a).unwrap());
        // Top 1% of nodes should hold far more than 1% of edges.
        let top: f32 = degs[..10].iter().sum();
        assert!(
            top > 0.05 * g.num_edges() as f32,
            "R-MAT should be skewed; top-10 in-degree mass = {top}"
        );
    }

    #[test]
    fn weighted_sbm_is_homophilous() {
        let mut rng = StdRng::seed_from_u64(2);
        let (g, labels) = weighted_sbm(500, 5000, 5, 0.9, 0.5, &mut rng);
        let same: usize = g
            .iter_edges()
            .filter(|&(s, d)| labels[s as usize] == labels[d as usize])
            .count();
        let frac = same as f64 / g.num_edges() as f64;
        // 0.9 homophily + 1/5 chance for the random remainder ⇒ ≈ 0.92.
        assert!(frac > 0.8, "same-block edge fraction {frac}");
    }

    #[test]
    fn weighted_sbm_low_homophily_is_mixed() {
        let mut rng = StdRng::seed_from_u64(3);
        let (g, labels) = weighted_sbm(500, 5000, 5, 0.0, 0.5, &mut rng);
        let same: usize = g
            .iter_edges()
            .filter(|&(s, d)| labels[s as usize] == labels[d as usize])
            .count();
        let frac = same as f64 / g.num_edges() as f64;
        assert!((frac - 0.2).abs() < 0.1, "expected ≈ 1/blocks, got {frac}");
    }

    #[test]
    fn generators_are_deterministic_under_seed() {
        let g1 = erdos_renyi(50, 100, &mut StdRng::seed_from_u64(7));
        let g2 = erdos_renyi(50, 100, &mut StdRng::seed_from_u64(7));
        assert_eq!(g1, g2);
    }
}
