//! Synthetic node-classification datasets standing in for the OGB graphs.
//!
//! The paper evaluates on ogbn-products (2.5M nodes / 124M edges / 100
//! features / 47 classes) and ogbn-papers100M (111M nodes / 3.2B edges /
//! 128 features / 172 classes). Neither can be downloaded in this
//! environment, so [`products_like`] and [`papers_like`] generate graphs
//! with the same *shape*: heavy-tailed degrees, community structure that
//! correlates with class labels (so GNNs and Correct & Smooth actually
//! help), the same feature/class dimensions, and comparable edge density —
//! at a configurable node-count scale.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sar_tensor::{init, Tensor};

use crate::generators::weighted_sbm;
use crate::CsrGraph;

/// A node-classification dataset: graph, features, labels and splits.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Symmetric graph with self-loops, ready for message passing.
    pub graph: CsrGraph,
    /// Node features, `[n, feat_dim]`.
    pub features: Tensor,
    /// Class label per node.
    pub labels: Vec<u32>,
    /// Training-node mask.
    pub train_mask: Vec<bool>,
    /// Validation-node mask.
    pub val_mask: Vec<bool>,
    /// Test-node mask.
    pub test_mask: Vec<bool>,
    /// Number of classes.
    pub num_classes: usize,
    /// Human-readable name for reports.
    pub name: String,
}

impl Dataset {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Feature dimensionality.
    pub fn feat_dim(&self) -> usize {
        self.features.cols()
    }

    /// Count of `true` entries in a mask.
    pub fn mask_count(mask: &[bool]) -> usize {
        mask.iter().filter(|&&m| m).count()
    }

    /// Fraction of nodes whose label equals the most frequent label — the
    /// majority-class accuracy floor used in sanity tests.
    pub fn majority_class_fraction(&self) -> f64 {
        let mut counts = vec![0usize; self.num_classes];
        for &l in &self.labels {
            counts[l as usize] += 1;
        }
        *counts.iter().max().unwrap() as f64 / self.labels.len() as f64
    }
}

/// Configuration for [`synthetic`].
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Average (directed) degree before symmetrization.
    pub avg_degree: usize,
    /// Number of classes (= SBM blocks).
    pub num_classes: usize,
    /// Feature dimensionality.
    pub feat_dim: usize,
    /// Probability an edge stays inside its class block.
    pub homophily: f64,
    /// Power-law exponent of the degree weights.
    pub degree_exponent: f64,
    /// Ratio of class-centroid signal to noise in the features.
    pub feature_signal: f32,
    /// Fraction of nodes whose *observed* label is resampled uniformly at
    /// random (irreducible error, capping achievable accuracy as in real
    /// datasets; features and graph structure still follow the true
    /// community).
    pub label_noise: f64,
    /// Fractions of nodes in the train / val splits (test = remainder).
    pub train_frac: f64,
    /// Validation fraction.
    pub val_frac: f64,
    /// RNG seed.
    pub seed: u64,
    /// Dataset name for reports.
    pub name: String,
}

/// Generates a synthetic homophilous node-classification dataset.
///
/// Labels are the SBM blocks; features are a noisy class centroid, so both
/// the graph structure and the features carry label signal (as in OGB
/// product/citation graphs).
///
/// # Panics
///
/// Panics if fractions are invalid or the configuration is degenerate.
pub fn synthetic(cfg: &SyntheticConfig) -> Dataset {
    assert!(
        cfg.train_frac + cfg.val_frac < 1.0,
        "splits must leave test nodes"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let m = cfg.num_nodes * cfg.avg_degree;
    let (raw, true_blocks) = weighted_sbm(
        cfg.num_nodes,
        m,
        cfg.num_classes,
        cfg.homophily,
        cfg.degree_exponent,
        &mut rng,
    );
    // Message passing assumes each node sees its own features and messages
    // flow both ways, as in the OGB preprocessing used by the paper.
    let graph = raw.symmetrize().with_self_loops();

    // Class centroids and noisy features (driven by the TRUE community).
    let centroids = init::randn(&[cfg.num_classes, cfg.feat_dim], 1.0, &mut rng);
    let mut features = init::randn(&[cfg.num_nodes, cfg.feat_dim], 1.0, &mut rng);
    for (i, &block) in true_blocks.iter().enumerate() {
        let c = centroids.row(block as usize).to_vec();
        let row = features.row_mut(i);
        for (x, cv) in row.iter_mut().zip(c) {
            *x += cfg.feature_signal * cv;
        }
    }

    // Observed labels: the true community, except for a noise fraction
    // whose labels are irreducibly random.
    let labels: Vec<u32> = true_blocks
        .iter()
        .map(|&b| {
            if rng.random::<f64>() < cfg.label_noise {
                rng.random_range(0..cfg.num_classes) as u32
            } else {
                b
            }
        })
        .collect();

    // Random splits.
    let mut train_mask = vec![false; cfg.num_nodes];
    let mut val_mask = vec![false; cfg.num_nodes];
    let mut test_mask = vec![false; cfg.num_nodes];
    for i in 0..cfg.num_nodes {
        let r: f64 = rng.random();
        if r < cfg.train_frac {
            train_mask[i] = true;
        } else if r < cfg.train_frac + cfg.val_frac {
            val_mask[i] = true;
        } else {
            test_mask[i] = true;
        }
    }

    Dataset {
        graph,
        features,
        labels,
        train_mask,
        val_mask,
        test_mask,
        num_classes: cfg.num_classes,
        name: cfg.name.clone(),
    }
}

/// ogbn-products stand-in at `num_nodes` scale.
///
/// Matches the real dataset's feature dimension (100), class count (47),
/// edge density (average degree ≈ 50 after symmetrization) and its
/// relatively high label rate (8% train, like the 196k/2.45M OGB split).
pub fn products_like(num_nodes: usize, seed: u64) -> Dataset {
    synthetic(&SyntheticConfig {
        num_nodes,
        avg_degree: 30, // ≈48 after symmetrization + dedup
        num_classes: 47,
        feat_dim: 100,
        homophily: 0.8,
        degree_exponent: 0.2,
        feature_signal: 0.55,
        label_noise: 0.2,
        train_frac: 0.08,
        val_frac: 0.02,
        seed,
        name: format!("products-like(n={num_nodes})"),
    })
}

/// ogbn-papers100M stand-in at `num_nodes` scale.
///
/// Matches the real dataset's feature dimension (128), class count (172),
/// edge density (average degree ≈ 29) and its very low label rate (~1.4%
/// of nodes are labeled for training).
pub fn papers_like(num_nodes: usize, seed: u64) -> Dataset {
    synthetic(&SyntheticConfig {
        num_nodes,
        avg_degree: 16, // ≈29 after symmetrization + dedup
        num_classes: 172,
        feat_dim: 128,
        homophily: 0.75,
        degree_exponent: 0.3,
        feature_signal: 0.8,
        label_noise: 0.32,
        // The real dataset's 1.4% label rate leaves <1 labeled node per
        // class below ~50k nodes; the rate is raised at stand-in scale so
        // every class stays trainable (documented in EXPERIMENTS.md).
        train_frac: 0.06,
        val_frac: 0.02,
        seed,
        name: format!("papers-like(n={num_nodes})"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn products_like_shape() {
        let d = products_like(2000, 0);
        assert_eq!(d.num_nodes(), 2000);
        assert_eq!(d.feat_dim(), 100);
        assert_eq!(d.num_classes, 47);
        assert!(d.graph.is_symmetric());
        // Every node has a self loop.
        for i in 0..d.num_nodes() {
            assert!(d.graph.neighbors(i).contains(&(i as u32)));
        }
    }

    #[test]
    fn splits_partition_the_nodes() {
        let d = papers_like(1500, 1);
        for i in 0..d.num_nodes() {
            let count = d.train_mask[i] as u8 + d.val_mask[i] as u8 + d.test_mask[i] as u8;
            assert_eq!(count, 1, "node {i} must be in exactly one split");
        }
        let train = Dataset::mask_count(&d.train_mask);
        assert!(train > 0 && train < d.num_nodes() / 10);
    }

    #[test]
    fn features_carry_label_signal() {
        // A nearest-centroid classifier on the features must beat chance.
        let d = products_like(1000, 2);
        let mut centroids = vec![vec![0.0f32; d.feat_dim()]; d.num_classes];
        let mut counts = vec![0usize; d.num_classes];
        for i in 0..d.num_nodes() {
            let l = d.labels[i] as usize;
            counts[l] += 1;
            for (c, &x) in centroids[l].iter_mut().zip(d.features.row(i)) {
                *c += x;
            }
        }
        for (c, &n) in centroids.iter_mut().zip(&counts) {
            for v in c.iter_mut() {
                *v /= n.max(1) as f32;
            }
        }
        let mut correct = 0usize;
        for i in 0..d.num_nodes() {
            let row = d.features.row(i);
            let best = (0..d.num_classes)
                .min_by(|&a, &b| {
                    let da: f32 = centroids[a]
                        .iter()
                        .zip(row)
                        .map(|(c, x)| (c - x) * (c - x))
                        .sum();
                    let db: f32 = centroids[b]
                        .iter()
                        .zip(row)
                        .map(|(c, x)| (c - x) * (c - x))
                        .sum();
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
            if best == d.labels[i] as usize {
                correct += 1;
            }
        }
        let acc = correct as f64 / d.num_nodes() as f64;
        assert!(
            acc > 3.0 / 47.0,
            "nearest-centroid accuracy {acc} too close to chance"
        );
    }

    #[test]
    fn graph_is_homophilous() {
        let d = products_like(1000, 3);
        let same: usize = d
            .graph
            .iter_edges()
            .filter(|&(s, dst)| d.labels[s as usize] == d.labels[dst as usize])
            .count();
        let frac = same as f64 / d.graph.num_edges() as f64;
        // Observed labels carry 20% noise, so same-label edge fraction is
        // below the structural homophily but far above chance (1/47).
        assert!(frac > 0.3, "edge homophily {frac}");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = products_like(300, 9);
        let b = products_like(300, 9);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.features, b.features);
    }
}
