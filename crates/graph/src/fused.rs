//! Fused attention kernels (FAK) with online softmax — §3.3 of the paper.
//!
//! The standard (DGL-style) GAT implementation materializes the `[E, H]`
//! attention-coefficient tensor twice: once when computing edge softmax and
//! once when weighting messages. The fused kernels instead stream over a
//! destination's in-edges, maintaining a *numerically stable online
//! softmax* — a running per-(node, head) maximum `m`, denominator `den`,
//! and weighted numerator `num`. Whenever the maximum increases, the
//! accumulated numerator and denominator are rescaled by
//! `exp(old_max − new_max)` (§3.4 "Stable softmax"). Attention
//! coefficients are never written to memory.
//!
//! The kernels are *block-incremental*: [`OnlineAttnState`] persists across
//! calls, so SAR's Algorithm 1 can feed one fetched partition block
//! `G_{p,q}` at a time and free it, and a single call over the whole graph
//! implements the paper's single-host fused kernel (Fig. 2). The backward
//! kernel recomputes coefficients on the fly from the saved `(m, den)`
//! statistics — the recomputation SAR must do anyway during
//! rematerialization, which is why FAK "synergizes" with SAR.

//! Like `ops`, the kernels parallelize over destination rows (forward
//! and `d_s_dst`) and over source rows via
//! [`CsrGraph::reverse_index`] (the scatter-style `d_x_src` / `d_s_src`
//! passes), preserving each row's sequential reduction order so results
//! are bitwise identical across thread counts.

//! Inner loops over each head's `d`-wide feature segment run through the
//! bitwise-deterministic SIMD primitives of [`sar_tensor::simd`], and the
//! `*_indexed` kernel variants read source features through a row map
//! (`x[map[j]]`) so SAR's local round can aggregate straight out of the
//! resident feature tensor without materializing a gathered block.

use crate::CsrGraph;
use sar_tensor::pool::{parallel_for, SharedSlice};
use sar_tensor::{simd, Tensor};

/// Running online-softmax state for attention aggregation over
/// `rows` destination nodes with `heads` heads of dimension `head_dim`.
#[derive(Debug, Clone)]
pub struct OnlineAttnState {
    /// Accumulated weighted numerator, `[rows, H*D]`.
    pub num: Tensor,
    /// Accumulated softmax denominator, `[rows, H]`.
    pub den: Tensor,
    /// Running maximum of raw scores, `[rows, H]`.
    pub max: Tensor,
    heads: usize,
    head_dim: usize,
}

impl OnlineAttnState {
    /// Fresh state (max = −∞, denominators and numerators zero).
    pub fn new(rows: usize, heads: usize, head_dim: usize) -> Self {
        OnlineAttnState {
            num: Tensor::zeros(&[rows, heads * head_dim]),
            den: Tensor::zeros(&[rows, heads]),
            max: Tensor::full(&[rows, heads], f32::NEG_INFINITY),
            heads,
            head_dim,
        }
    }

    /// Number of attention heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Per-head feature dimension.
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Finalizes the aggregation: `out[i, h*D..] = num / den`, with
    /// isolated destinations (denominator 0) producing zeros.
    pub fn finalize(&self) -> Tensor {
        let mut out = self.num.clone();
        self.normalize(&mut out);
        out
    }

    /// Consumes the state, normalizing the numerator *in place* (no copy)
    /// and returning `(output, max, den)` — the statistics the backward
    /// pass needs to recompute attention coefficients.
    pub fn finalize_into(mut self) -> (Tensor, Tensor, Tensor) {
        let mut out = std::mem::replace(&mut self.num, Tensor::zeros(&[1]));
        self.normalize(&mut out);
        (out, self.max, self.den)
    }

    // sar-check: deterministic(one-writer-per-row: each destination row is
    // divided by its own denominator in a fixed sequential row loop)
    fn normalize(&self, out: &mut Tensor) {
        let rows = self.den.rows();
        let (h, d) = (self.heads, self.head_dim);
        for i in 0..rows {
            for head in 0..h {
                let den = self.den.at(&[i, head]);
                let row = out.row_mut(i);
                if den > 0.0 {
                    for k in 0..d {
                        row[head * d + k] /= den;
                    }
                } else {
                    for k in 0..d {
                        row[head * d + k] = 0.0;
                    }
                }
            }
        }
    }
}

/// Streams one block of edges through the online-softmax accumulator.
///
/// * `s_dst` — destination attention logits `aᵀ_dst z_i`, `[rows, H]`.
/// * `s_src` — source attention logits `aᵀ_src z_j`, `[cols, H]` (for a SAR
///   block these come from the fetched remote partition).
/// * `x_src` — source features, `[cols, H*D]`.
/// * `slope` — LeakyReLU negative slope.
///
/// Attention coefficients are computed on the fly and never stored.
///
/// # Panics
///
/// Panics if shapes disagree with the graph or the state.
pub fn gat_fused_block_forward(
    g: &CsrGraph,
    s_dst: &Tensor,
    s_src: &Tensor,
    x_src: &Tensor,
    slope: f32,
    state: &mut OnlineAttnState,
) {
    assert_eq!(x_src.rows(), g.num_cols(), "x_src rows mismatch");
    gat_fused_block_forward_impl(g, s_dst, s_src, x_src, None, slope, state);
}

/// [`gat_fused_block_forward`] with source features read through a row
/// map: block column `j` reads `x[map[j]]`. Used by SAR's fused local
/// round; bitwise identical to gathering the block first.
///
/// # Panics
///
/// Panics if `map` does not have one entry per graph column or any entry
/// is out of range for `x`.
pub fn gat_fused_block_forward_indexed(
    g: &CsrGraph,
    s_dst: &Tensor,
    s_src: &Tensor,
    x: &Tensor,
    map: &[u32],
    slope: f32,
    state: &mut OnlineAttnState,
) {
    assert_eq!(map.len(), g.num_cols(), "one map entry per column required");
    assert!(
        map.iter().all(|&r| (r as usize) < x.rows()),
        "row map entry out of range"
    );
    gat_fused_block_forward_impl(g, s_dst, s_src, x, Some(map), slope, state);
}

fn gat_fused_block_forward_impl(
    g: &CsrGraph,
    s_dst: &Tensor,
    s_src: &Tensor,
    x_src: &Tensor,
    map: Option<&[u32]>,
    slope: f32,
    state: &mut OnlineAttnState,
) {
    let (h, d) = (state.heads, state.head_dim);
    assert_eq!(s_dst.rows(), g.num_rows(), "s_dst rows mismatch");
    assert_eq!(s_src.rows(), g.num_cols(), "s_src rows mismatch");
    assert_eq!(s_dst.cols(), h, "s_dst heads mismatch");
    assert_eq!(x_src.cols(), h * d, "x_src width mismatch");
    assert_eq!(state.num.rows(), g.num_rows(), "state rows mismatch");

    let hd = h * d;
    let row_of = |j: usize| map.map_or(j, |m| m[j] as usize);
    let x_data = x_src.data();
    let s_dst_data = s_dst.data();
    let s_src_data = s_src.data();
    let indptr = g.indptr();
    let indices = g.indices();
    // Destination-parallel: each destination's (max, den, num) rows have
    // exactly one writer, and its edge stream keeps the sequential order,
    // so the online-softmax recurrence is thread-count-invariant.
    let num_s = SharedSlice::new(state.num.data_mut());
    let den_s = SharedSlice::new(state.den.data_mut());
    let max_s = SharedSlice::new(state.max.data_mut());
    parallel_for(g.num_rows(), 1, |lo, hi| {
        for i in lo..hi {
            let (es, ee) = (indptr[i], indptr[i + 1]);
            if es == ee {
                continue;
            }
            // Hoist this destination's accumulator rows out of the edge loop.
            // SAFETY: (all three) destination row `i` is in this chunk's
            // exclusive `lo..hi` range, so the max/den/num rows have
            // exactly one writer.
            let max_row = unsafe { max_s.range_mut(i * h, (i + 1) * h) };
            let den_row = unsafe { den_s.range_mut(i * h, (i + 1) * h) };
            let num_i = unsafe { num_s.range_mut(i * hd, (i + 1) * hd) };
            for &j_src in &indices[es..ee] {
                let j = j_src as usize;
                let r = row_of(j);
                let x_row = &x_data[r * hd..(r + 1) * hd];
                let s_src_row = &s_src_data[j * h..(j + 1) * h];
                for head in 0..h {
                    let u = s_dst_data[i * h + head] + s_src_row[head];
                    let e = if u > 0.0 { u } else { slope * u };
                    let m_old = max_row[head];
                    if e > m_old {
                        // Rescale accumulated numerator/denominator by
                        // exp(old_max - new_max) — the stable-softmax
                        // correction of §3.4.
                        let scale = if m_old == f32::NEG_INFINITY {
                            0.0
                        } else {
                            (m_old - e).exp()
                        };
                        max_row[head] = e;
                        den_row[head] *= scale;
                        simd::scale(&mut num_i[head * d..(head + 1) * d], scale);
                    }
                    let w = (e - max_row[head]).exp();
                    den_row[head] += w;
                    simd::axpy(
                        w,
                        &x_row[head * d..(head + 1) * d],
                        &mut num_i[head * d..(head + 1) * d],
                    );
                }
            }
        }
    });
}

/// A *numerically naive* variant of [`gat_fused_block_forward`] that
/// accumulates `exp(e)` without max tracking. Exists only for the
/// stable-softmax ablation (`repro ablation-softmax`): with large attention
/// logits it overflows to `inf`/`NaN` exactly as the paper warns.
// sar-check: deterministic(one-writer-per-row: sequential loop over
// destination rows, edges visited in fixed CSR order within each row)
pub fn gat_naive_block_forward(
    g: &CsrGraph,
    s_dst: &Tensor,
    s_src: &Tensor,
    x_src: &Tensor,
    slope: f32,
    state: &mut OnlineAttnState,
) {
    let (h, d) = (state.heads, state.head_dim);
    for i in 0..g.num_rows() {
        for &j in g.neighbors(i) {
            let j = j as usize;
            let x_row = &x_src.data()[j * h * d..(j + 1) * h * d];
            for head in 0..h {
                let u = s_dst.at(&[i, head]) + s_src.at(&[j, head]);
                let e = if u > 0.0 { u } else { slope * u };
                let w = e.exp(); // no stabilization
                state.den.row_mut(i)[head] += w;
                let num_row = state.num.row_mut(i);
                for k in 0..d {
                    num_row[head * d + k] += w * x_row[head * d + k];
                }
            }
        }
    }
}

/// Two-step (non-fused) variant of [`gat_fused_block_forward`]: first
/// *materializes* the block's `[E_block, H]` raw attention scores (one
/// memory write + read per coefficient, as in DGL's two-step GAT), then
/// streams them through the same online-softmax accumulator.
///
/// Numerically identical to the fused kernel; exists to reproduce the
/// runtime/memory gap between "SAR" and "SAR+FAK" in Figs. 4 and 6.
///
/// # Panics
///
/// Panics if shapes disagree with the graph or the state.
pub fn gat_twostep_block_forward(
    g: &CsrGraph,
    s_dst: &Tensor,
    s_src: &Tensor,
    x_src: &Tensor,
    slope: f32,
    state: &mut OnlineAttnState,
) {
    gat_twostep_block_forward_impl(g, s_dst, s_src, x_src, None, slope, state);
}

/// [`gat_twostep_block_forward`] with source features read through a row
/// map (`x[map[j]]`) — the two-step counterpart of
/// [`gat_fused_block_forward_indexed`].
///
/// # Panics
///
/// Panics if `map` does not have one entry per graph column or any entry
/// is out of range for `x`.
pub fn gat_twostep_block_forward_indexed(
    g: &CsrGraph,
    s_dst: &Tensor,
    s_src: &Tensor,
    x: &Tensor,
    map: &[u32],
    slope: f32,
    state: &mut OnlineAttnState,
) {
    assert_eq!(map.len(), g.num_cols(), "one map entry per column required");
    assert!(
        map.iter().all(|&r| (r as usize) < x.rows()),
        "row map entry out of range"
    );
    gat_twostep_block_forward_impl(g, s_dst, s_src, x, Some(map), slope, state);
}

fn gat_twostep_block_forward_impl(
    g: &CsrGraph,
    s_dst: &Tensor,
    s_src: &Tensor,
    x_src: &Tensor,
    map: Option<&[u32]>,
    slope: f32,
    state: &mut OnlineAttnState,
) {
    let (h, d) = (state.heads, state.head_dim);
    let hd = h * d;
    let row_of = |j: usize| map.map_or(j, |m| m[j] as usize);
    // Step 1: write all raw scores to memory.
    let scores = crate::ops::gat_edge_scores(g, s_dst, s_src, slope);
    // Step 2: read them back while aggregating, destination-parallel like
    // the fused kernel.
    let indptr = g.indptr();
    let indices = g.indices();
    let x_data = x_src.data();
    let scores_data = scores.data();
    let num_s = SharedSlice::new(state.num.data_mut());
    let den_s = SharedSlice::new(state.den.data_mut());
    let max_s = SharedSlice::new(state.max.data_mut());
    parallel_for(g.num_rows(), 1, |lo, hi| {
        for i in lo..hi {
            let (es, ee) = (indptr[i], indptr[i + 1]);
            if es == ee {
                continue;
            }
            // SAFETY: (all three) destination row `i` is in this chunk's
            // exclusive `lo..hi` range, so the max/den/num rows have
            // exactly one writer.
            let max_row = unsafe { max_s.range_mut(i * h, (i + 1) * h) };
            let den_row = unsafe { den_s.range_mut(i * h, (i + 1) * h) };
            let num_i = unsafe { num_s.range_mut(i * hd, (i + 1) * hd) };
            for e_id in es..ee {
                let r = row_of(indices[e_id] as usize);
                let x_row = &x_data[r * hd..(r + 1) * hd];
                for head in 0..h {
                    let e = scores_data[e_id * h + head];
                    let m_old = max_row[head];
                    if e > m_old {
                        let scale = if m_old == f32::NEG_INFINITY {
                            0.0
                        } else {
                            (m_old - e).exp()
                        };
                        max_row[head] = e;
                        den_row[head] *= scale;
                        simd::scale(&mut num_i[head * d..(head + 1) * d], scale);
                    }
                    let w = (e - max_row[head]).exp();
                    den_row[head] += w;
                    simd::axpy(
                        w,
                        &x_row[head * d..(head + 1) * d],
                        &mut num_i[head * d..(head + 1) * d],
                    );
                }
            }
        }
    });
}

/// Two-step variant of [`gat_fused_block_backward`]: re-materializes the
/// block's `[E_block, H]` scores and coefficients in memory before pushing
/// gradients (DGL-style), instead of recomputing them per edge on the fly.
///
/// # Panics
///
/// Panics if shapes are inconsistent.
#[allow(clippy::too_many_arguments)]
pub fn gat_twostep_block_backward(
    g: &CsrGraph,
    s_dst: &Tensor,
    s_src: &Tensor,
    x_src: &Tensor,
    slope: f32,
    max: &Tensor,
    den: &Tensor,
    grad_out: &Tensor,
    grad_dot: &Tensor,
    d_s_dst: &mut Tensor,
) -> FusedBlockGrads {
    assert_eq!(x_src.rows(), g.num_cols(), "x_src rows mismatch");
    gat_twostep_block_backward_impl(
        g, s_dst, s_src, x_src, None, slope, max, den, grad_out, grad_dot, d_s_dst,
    )
}

/// [`gat_twostep_block_backward`] with source features read through a row
/// map (`x[map[j]]`); gradients stay block-shaped.
///
/// # Panics
///
/// Panics if `map` does not have one entry per graph column or any entry
/// is out of range for `x`.
#[allow(clippy::too_many_arguments)]
pub fn gat_twostep_block_backward_indexed(
    g: &CsrGraph,
    s_dst: &Tensor,
    s_src: &Tensor,
    x: &Tensor,
    map: &[u32],
    slope: f32,
    max: &Tensor,
    den: &Tensor,
    grad_out: &Tensor,
    grad_dot: &Tensor,
    d_s_dst: &mut Tensor,
) -> FusedBlockGrads {
    assert_eq!(map.len(), g.num_cols(), "one map entry per column required");
    assert!(
        map.iter().all(|&r| (r as usize) < x.rows()),
        "row map entry out of range"
    );
    gat_twostep_block_backward_impl(
        g,
        s_dst,
        s_src,
        x,
        Some(map),
        slope,
        max,
        den,
        grad_out,
        grad_dot,
        d_s_dst,
    )
}

#[allow(clippy::too_many_arguments)]
fn gat_twostep_block_backward_impl(
    g: &CsrGraph,
    s_dst: &Tensor,
    s_src: &Tensor,
    x_src: &Tensor,
    map: Option<&[u32]>,
    slope: f32,
    max: &Tensor,
    den: &Tensor,
    grad_out: &Tensor,
    grad_dot: &Tensor,
    d_s_dst: &mut Tensor,
) -> FusedBlockGrads {
    let h = s_dst.cols();
    let hd = x_src.cols();
    let d = hd / h;
    let row_of = |j: usize| map.map_or(j, |m| m[j] as usize);
    let mut d_x_src = Tensor::zeros(&[g.num_cols(), hd]);
    let mut d_s_src = Tensor::zeros(&[g.num_cols(), h]);

    // Step 1: materialize raw scores and normalized coefficients
    // (destination-parallel: each edge row is owned by its destination).
    let scores = crate::ops::gat_edge_scores(g, s_dst, s_src, slope);
    let mut alpha = scores.clone();
    let indptr = g.indptr();
    let indices = g.indices();
    let scores_data = scores.data();
    let max_data = max.data();
    let den_data = den.data();
    {
        let alpha_s = SharedSlice::new(alpha.data_mut());
        parallel_for(g.num_rows(), 1, |lo, hi| {
            for i in lo..hi {
                let (es, ee) = (indptr[i], indptr[i + 1]);
                if es == ee {
                    continue;
                }
                // SAFETY: destination `i`'s in-edges `es..ee` are contiguous
                // in CSR order and owned by this chunk alone.
                let rows = unsafe { alpha_s.range_mut(es * h, ee * h) };
                for e_id in es..ee {
                    for head in 0..h {
                        let den_i = den_data[i * h + head];
                        let v = if den_i > 0.0 {
                            (scores_data[e_id * h + head] - max_data[i * h + head]).exp() / den_i
                        } else {
                            0.0
                        };
                        rows[(e_id - es) * h + head] = v;
                    }
                }
            }
        });
    }

    // Step 2: read coefficients back while pushing gradients — split into
    // a destination-parallel d_s_dst pass and a source-parallel
    // d_x_src / d_s_src pass over the reverse index (ascending edge ids
    // reproduce the sequential accumulation order).
    let x_data = x_src.data();
    let sd = s_dst.data();
    let ss = s_src.data();
    let alpha_data = alpha.data();
    let grad_data = grad_out.data();
    let grad_dot_data = grad_dot.data();
    {
        let dsd_s = SharedSlice::new(d_s_dst.data_mut());
        parallel_for(g.num_rows(), 1, |lo, hi| {
            for i in lo..hi {
                let (es, ee) = (indptr[i], indptr[i + 1]);
                if es == ee {
                    continue;
                }
                let g_row = &grad_data[i * hd..(i + 1) * hd];
                // SAFETY: destination row `i` is in this chunk's exclusive
                // `lo..hi` range — one writer per d_s_dst row.
                let dsd_row = unsafe { dsd_s.range_mut(i * h, (i + 1) * h) };
                for e_id in es..ee {
                    let j = indices[e_id] as usize;
                    let r = row_of(j);
                    let x_row = &x_data[r * hd..(r + 1) * hd];
                    for head in 0..h {
                        let a = alpha_data[e_id * h + head];
                        if a == 0.0 {
                            continue;
                        }
                        let dot_gx = simd::dot(
                            &g_row[head * d..(head + 1) * d],
                            &x_row[head * d..(head + 1) * d],
                        );
                        let de = a * (dot_gx - grad_dot_data[i * h + head]);
                        let u = sd[i * h + head] + ss[j * h + head];
                        let du = de * if u > 0.0 { 1.0 } else { slope };
                        dsd_row[head] += du;
                    }
                }
            }
        });
    }
    let rev = g.reverse_index();
    {
        let dx_s = SharedSlice::new(d_x_src.data_mut());
        let dss_s = SharedSlice::new(d_s_src.data_mut());
        parallel_for(g.num_cols(), 1, |lo, hi| {
            for j in lo..hi {
                // SAFETY: (both) source row `j` is in this chunk's exclusive
                // `lo..hi` range — one writer per d_x / d_s_src row.
                let dx_row = unsafe { dx_s.range_mut(j * hd, (j + 1) * hd) };
                let dss_row = unsafe { dss_s.range_mut(j * h, (j + 1) * h) };
                let r = row_of(j);
                let x_row = &x_data[r * hd..(r + 1) * hd];
                for (i, e_id) in rev.entries(j) {
                    let g_row = &grad_data[i * hd..(i + 1) * hd];
                    for head in 0..h {
                        let a = alpha_data[e_id * h + head];
                        if a == 0.0 {
                            continue;
                        }
                        let g_head = &g_row[head * d..(head + 1) * d];
                        simd::axpy(a, g_head, &mut dx_row[head * d..(head + 1) * d]);
                        let dot_gx = simd::dot(g_head, &x_row[head * d..(head + 1) * d]);
                        let de = a * (dot_gx - grad_dot_data[i * h + head]);
                        let u = sd[i * h + head] + ss[j * h + head];
                        let du = de * if u > 0.0 { 1.0 } else { slope };
                        dss_row[head] += du;
                    }
                }
            }
        });
    }
    FusedBlockGrads { d_x_src, d_s_src }
}

/// Per-(node, head) inner products `⟨grad_out, out⟩`, `[rows, H]` — the
/// softmax-backward correction term, precomputed once per backward pass.
pub fn attn_grad_dot(grad_out: &Tensor, out: &Tensor, heads: usize) -> Tensor {
    assert_eq!(grad_out.shape(), out.shape(), "grad/out shape mismatch");
    let rows = out.rows();
    let hd = out.cols();
    let d = hd / heads;
    let mut dot = vec![0.0f32; rows * heads];
    let g_data = grad_out.data();
    let o_data = out.data();
    {
        let dot_s = SharedSlice::new(&mut dot);
        parallel_for(rows, 1, |lo, hi| {
            // SAFETY: chunks claim disjoint `lo..hi` row ranges, so element
            // ranges never overlap across threads.
            let chunk = unsafe { dot_s.range_mut(lo * heads, hi * heads) };
            for i in lo..hi {
                let g_row = &g_data[i * hd..(i + 1) * hd];
                let o_row = &o_data[i * hd..(i + 1) * hd];
                for head in 0..heads {
                    chunk[(i - lo) * heads + head] = simd::dot(
                        &g_row[head * d..(head + 1) * d],
                        &o_row[head * d..(head + 1) * d],
                    );
                }
            }
        });
    }
    Tensor::from_vec(&[rows, heads], dot)
}

/// Gradient contributions of one block in the fused backward pass.
#[derive(Debug)]
pub struct FusedBlockGrads {
    /// Gradient w.r.t. the block's source features, `[cols, H*D]`.
    pub d_x_src: Tensor,
    /// Gradient w.r.t. the block's source attention logits, `[cols, H]`.
    pub d_s_src: Tensor,
}

/// Fused backward over one block: recomputes attention coefficients on the
/// fly from the saved softmax statistics `(max, den)` and the layer output
/// `out`, and pushes gradients to the block's sources.
///
/// For SAR, `x_src`/`s_src` are the *re-fetched* remote features (case 2 of
/// Algorithm 2) and the returned [`FusedBlockGrads`] are sent back to the
/// owning worker; `d_s_dst` accumulates locally across blocks.
///
/// `grad_dot` must be [`attn_grad_dot`]`(grad_out, out, heads)`.
///
/// # Panics
///
/// Panics if shapes are inconsistent.
#[allow(clippy::too_many_arguments)]
pub fn gat_fused_block_backward(
    g: &CsrGraph,
    s_dst: &Tensor,
    s_src: &Tensor,
    x_src: &Tensor,
    slope: f32,
    max: &Tensor,
    den: &Tensor,
    grad_out: &Tensor,
    grad_dot: &Tensor,
    d_s_dst: &mut Tensor,
) -> FusedBlockGrads {
    assert_eq!(x_src.rows(), g.num_cols(), "x_src rows mismatch");
    gat_fused_block_backward_impl(
        g, s_dst, s_src, x_src, None, slope, max, den, grad_out, grad_dot, d_s_dst,
    )
}

/// [`gat_fused_block_backward`] with source features read through a row
/// map (`x[map[j]]`). The returned gradients are still block-shaped
/// (`[cols, …]`) — only the *reads* are indirect.
///
/// # Panics
///
/// Panics if `map` does not have one entry per graph column or any entry
/// is out of range for `x`.
#[allow(clippy::too_many_arguments)]
pub fn gat_fused_block_backward_indexed(
    g: &CsrGraph,
    s_dst: &Tensor,
    s_src: &Tensor,
    x: &Tensor,
    map: &[u32],
    slope: f32,
    max: &Tensor,
    den: &Tensor,
    grad_out: &Tensor,
    grad_dot: &Tensor,
    d_s_dst: &mut Tensor,
) -> FusedBlockGrads {
    assert_eq!(map.len(), g.num_cols(), "one map entry per column required");
    assert!(
        map.iter().all(|&r| (r as usize) < x.rows()),
        "row map entry out of range"
    );
    gat_fused_block_backward_impl(
        g,
        s_dst,
        s_src,
        x,
        Some(map),
        slope,
        max,
        den,
        grad_out,
        grad_dot,
        d_s_dst,
    )
}

#[allow(clippy::too_many_arguments)]
fn gat_fused_block_backward_impl(
    g: &CsrGraph,
    s_dst: &Tensor,
    s_src: &Tensor,
    x_src: &Tensor,
    map: Option<&[u32]>,
    slope: f32,
    max: &Tensor,
    den: &Tensor,
    grad_out: &Tensor,
    grad_dot: &Tensor,
    d_s_dst: &mut Tensor,
) -> FusedBlockGrads {
    let h = s_dst.cols();
    let hd = x_src.cols();
    let d = hd / h;
    assert_eq!(grad_out.rows(), g.num_rows(), "grad rows mismatch");
    assert_eq!(d_s_dst.rows(), g.num_rows(), "d_s_dst rows mismatch");
    let mut d_x_src = Tensor::zeros(&[g.num_cols(), hd]);
    let mut d_s_src = Tensor::zeros(&[g.num_cols(), h]);

    let row_of = |j: usize| map.map_or(j, |m| m[j] as usize);
    let x_data = x_src.data();
    let s_dst_data = s_dst.data();
    let s_src_data = s_src.data();
    let max_data = max.data();
    let den_data = den.data();
    let grad_dot_data = grad_dot.data();
    let indptr = g.indptr();
    let indices = g.indices();
    let grad_data = grad_out.data();
    // Pass 1 — destination-parallel d_s_dst: recompute each edge's
    // coefficient and softmax correction on the fly (the rematerialization
    // SAR does anyway).
    {
        let dsd_s = SharedSlice::new(d_s_dst.data_mut());
        parallel_for(g.num_rows(), 1, |lo, hi| {
            for i in lo..hi {
                let (es, ee) = (indptr[i], indptr[i + 1]);
                if es == ee {
                    continue;
                }
                let g_row = &grad_data[i * hd..(i + 1) * hd];
                // SAFETY: destination row `i` is in this chunk's exclusive
                // `lo..hi` range — one writer per d_s_dst row.
                let dsd_row = unsafe { dsd_s.range_mut(i * h, (i + 1) * h) };
                for &j_src in &indices[es..ee] {
                    let j = j_src as usize;
                    let r = row_of(j);
                    let x_row = &x_data[r * hd..(r + 1) * hd];
                    for head in 0..h {
                        let u = s_dst_data[i * h + head] + s_src_data[j * h + head];
                        let e = if u > 0.0 { u } else { slope * u };
                        let den_i = den_data[i * h + head];
                        if den_i <= 0.0 {
                            continue;
                        }
                        let alpha = (e - max_data[i * h + head]).exp() / den_i;
                        let g_head = &g_row[head * d..(head + 1) * d];
                        let x_head = &x_row[head * d..(head + 1) * d];
                        let dot_gx = simd::dot(g_head, x_head);
                        // Softmax path: de = α (⟨g, x_j⟩ − ⟨g, out_i⟩).
                        let de = alpha * (dot_gx - grad_dot_data[i * h + head]);
                        let du = de * if u > 0.0 { 1.0 } else { slope };
                        dsd_row[head] += du;
                    }
                }
            }
        });
    }
    // Pass 2 — source-parallel d_x_src / d_s_src via the reverse index;
    // ascending edge ids per source keep the sequential accumulation
    // order, and the recomputed per-edge quantities are bitwise the same
    // expressions as pass 1's.
    let rev = g.reverse_index();
    {
        let dx_s = SharedSlice::new(d_x_src.data_mut());
        let dss_s = SharedSlice::new(d_s_src.data_mut());
        parallel_for(g.num_cols(), 1, |lo, hi| {
            for j in lo..hi {
                // SAFETY: (both) source row `j` is in this chunk's exclusive
                // `lo..hi` range — one writer per d_x / d_s_src row.
                let dx_j = unsafe { dx_s.range_mut(j * hd, (j + 1) * hd) };
                let dss_row = unsafe { dss_s.range_mut(j * h, (j + 1) * h) };
                let r = row_of(j);
                let x_row = &x_data[r * hd..(r + 1) * hd];
                for (i, _e) in rev.entries(j) {
                    let g_row = &grad_data[i * hd..(i + 1) * hd];
                    for head in 0..h {
                        let u = s_dst_data[i * h + head] + s_src_data[j * h + head];
                        let e = if u > 0.0 { u } else { slope * u };
                        let den_i = den_data[i * h + head];
                        if den_i <= 0.0 {
                            continue;
                        }
                        // Recompute the attention coefficient on the fly.
                        let alpha = (e - max_data[i * h + head]).exp() / den_i;
                        // Value path: d x_j += α g_i.
                        let g_head = &g_row[head * d..(head + 1) * d];
                        let x_head = &x_row[head * d..(head + 1) * d];
                        simd::axpy(alpha, g_head, &mut dx_j[head * d..(head + 1) * d]);
                        let dot_gx = simd::dot(g_head, x_head);
                        let de = alpha * (dot_gx - grad_dot_data[i * h + head]);
                        let du = de * if u > 0.0 { 1.0 } else { slope };
                        dss_row[head] += du;
                    }
                }
            }
        });
    }
    FusedBlockGrads { d_x_src, d_s_src }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sar_tensor::init;

    fn graph() -> CsrGraph {
        CsrGraph::from_edges(5, &[(0, 1), (2, 1), (3, 1), (1, 0), (4, 3), (3, 4), (0, 0)])
    }

    /// Reference GAT aggregation via the standard two-step path.
    fn reference_forward(
        g: &CsrGraph,
        s_dst: &Tensor,
        s_src: &Tensor,
        x: &Tensor,
        slope: f32,
    ) -> Tensor {
        let scores = ops::gat_edge_scores(g, s_dst, s_src, slope);
        let alpha = ops::edge_softmax(g, &scores);
        ops::spmm_multihead(g, &alpha, x)
    }

    #[test]
    fn fused_forward_matches_standard() {
        let g = graph();
        let (h, d) = (2, 3);
        let mut rng = StdRng::seed_from_u64(0);
        let s_dst = init::randn(&[5, h], 1.0, &mut rng);
        let s_src = init::randn(&[5, h], 1.0, &mut rng);
        let x = init::randn(&[5, h * d], 1.0, &mut rng);
        let mut state = OnlineAttnState::new(5, h, d);
        gat_fused_block_forward(&g, &s_dst, &s_src, &x, 0.2, &mut state);
        let fused = state.finalize();
        let reference = reference_forward(&g, &s_dst, &s_src, &x, 0.2);
        assert!(fused.allclose(&reference, 1e-4), "fused != standard");
    }

    #[test]
    fn fused_forward_is_block_incremental() {
        // Splitting the edges into two blocks must give the same result —
        // the property SAR's Algorithm 1 relies on for attention models.
        let edges = [(0u32, 1u32), (2, 1), (3, 1), (1, 0), (4, 3), (3, 4), (0, 0)];
        let g_full = CsrGraph::from_edges(5, &edges);
        let g_a = CsrGraph::from_edges(5, &edges[..3]);
        let g_b = CsrGraph::from_edges(5, &edges[3..]);
        let (h, d) = (2, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let s_dst = init::randn(&[5, h], 2.0, &mut rng);
        let s_src = init::randn(&[5, h], 2.0, &mut rng);
        let x = init::randn(&[5, h * d], 1.0, &mut rng);

        let mut full = OnlineAttnState::new(5, h, d);
        gat_fused_block_forward(&g_full, &s_dst, &s_src, &x, 0.2, &mut full);
        let mut blocks = OnlineAttnState::new(5, h, d);
        gat_fused_block_forward(&g_a, &s_dst, &s_src, &x, 0.2, &mut blocks);
        gat_fused_block_forward(&g_b, &s_dst, &s_src, &x, 0.2, &mut blocks);
        assert!(full.finalize().allclose(&blocks.finalize(), 1e-4));
    }

    #[test]
    fn stable_softmax_survives_huge_logits() {
        let g = graph();
        let (h, d) = (1, 2);
        let mut rng = StdRng::seed_from_u64(2);
        // Logits of +60 per endpoint ⇒ edge scores of 120 ⇒ exp overflows
        // f32 (max finite exp argument ≈ 88.7) without stabilization. Use
        // constants rather than randn so the premise cannot depend on the
        // RNG stream.
        let s_dst = Tensor::from_vec(&[5, h], vec![60.0; 5 * h]);
        let s_src = Tensor::from_vec(&[5, h], vec![60.0; 5 * h]);
        let x = init::randn(&[5, h * d], 1.0, &mut rng);
        let mut stable = OnlineAttnState::new(5, h, d);
        gat_fused_block_forward(&g, &s_dst, &s_src, &x, 0.2, &mut stable);
        let out = stable.finalize();
        assert!(
            out.data().iter().all(|v| v.is_finite()),
            "stable kernel produced non-finite values"
        );

        let mut naive = OnlineAttnState::new(5, h, d);
        gat_naive_block_forward(&g, &s_dst, &s_src, &x, 0.2, &mut naive);
        let out_naive = naive.finalize();
        assert!(
            out_naive.data().iter().any(|v| !v.is_finite()),
            "naive kernel should overflow on huge logits (the ablation premise)"
        );
    }

    #[test]
    fn fused_backward_matches_standard_backward() {
        let g = graph();
        let (h, d) = (2, 3);
        let mut rng = StdRng::seed_from_u64(3);
        let s_dst = init::randn(&[5, h], 1.0, &mut rng);
        let s_src = init::randn(&[5, h], 1.0, &mut rng);
        let x = init::randn(&[5, h * d], 1.0, &mut rng);
        let slope = 0.2;
        let grad_out = init::randn(&[5, h * d], 1.0, &mut rng);

        // Standard path gradients.
        let scores = ops::gat_edge_scores(&g, &s_dst, &s_src, slope);
        let alpha = ops::edge_softmax(&g, &scores);
        let (d_alpha, d_x_std) = ops::spmm_multihead_backward(&g, &alpha, &x, &grad_out);
        let d_scores = ops::edge_softmax_backward(&g, &alpha, &d_alpha);
        let (d_sdst_std, d_ssrc_std) =
            ops::gat_edge_scores_backward(&g, &s_dst, &s_src, slope, &d_scores);

        // Fused path gradients.
        let mut state = OnlineAttnState::new(5, h, d);
        gat_fused_block_forward(&g, &s_dst, &s_src, &x, slope, &mut state);
        let out = state.finalize();
        let grad_dot = attn_grad_dot(&grad_out, &out, h);
        let mut d_sdst_fused = Tensor::zeros(&[5, h]);
        let grads = gat_fused_block_backward(
            &g,
            &s_dst,
            &s_src,
            &x,
            slope,
            &state.max,
            &state.den,
            &grad_out,
            &grad_dot,
            &mut d_sdst_fused,
        );

        assert!(grads.d_x_src.allclose(&d_x_std, 1e-4), "d_x mismatch");
        assert!(
            grads.d_s_src.allclose(&d_ssrc_std, 1e-4),
            "d_s_src mismatch"
        );
        assert!(d_sdst_fused.allclose(&d_sdst_std, 1e-4), "d_s_dst mismatch");
    }

    #[test]
    fn twostep_matches_fused_forward_and_backward() {
        let g = graph();
        let (h, d) = (2, 3);
        let mut rng = StdRng::seed_from_u64(11);
        let s_dst = init::randn(&[5, h], 1.0, &mut rng);
        let s_src = init::randn(&[5, h], 1.0, &mut rng);
        let x = init::randn(&[5, h * d], 1.0, &mut rng);
        let grad_out = init::randn(&[5, h * d], 1.0, &mut rng);
        let slope = 0.2;

        let mut fused = OnlineAttnState::new(5, h, d);
        gat_fused_block_forward(&g, &s_dst, &s_src, &x, slope, &mut fused);
        let mut two = OnlineAttnState::new(5, h, d);
        gat_twostep_block_forward(&g, &s_dst, &s_src, &x, slope, &mut two);
        assert!(fused.finalize().allclose(&two.finalize(), 1e-5));

        let out = fused.finalize();
        let grad_dot = attn_grad_dot(&grad_out, &out, h);
        let mut dsd_a = Tensor::zeros(&[5, h]);
        let ga = gat_fused_block_backward(
            &g, &s_dst, &s_src, &x, slope, &fused.max, &fused.den, &grad_out, &grad_dot, &mut dsd_a,
        );
        let mut dsd_b = Tensor::zeros(&[5, h]);
        let gb = gat_twostep_block_backward(
            &g, &s_dst, &s_src, &x, slope, &two.max, &two.den, &grad_out, &grad_dot, &mut dsd_b,
        );
        assert!(ga.d_x_src.allclose(&gb.d_x_src, 1e-5));
        assert!(ga.d_s_src.allclose(&gb.d_s_src, 1e-5));
        assert!(dsd_a.allclose(&dsd_b, 1e-5));
    }

    #[test]
    fn isolated_nodes_produce_zero_output_and_grads() {
        // Node 2 has no in-edges in this graph.
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 0)]);
        let (h, d) = (1, 2);
        let mut rng = StdRng::seed_from_u64(4);
        let s_dst = init::randn(&[3, h], 1.0, &mut rng);
        let s_src = init::randn(&[3, h], 1.0, &mut rng);
        let x = init::randn(&[3, h * d], 1.0, &mut rng);
        let mut state = OnlineAttnState::new(3, h, d);
        gat_fused_block_forward(&g, &s_dst, &s_src, &x, 0.2, &mut state);
        let out = state.finalize();
        assert_eq!(out.row(2), &[0.0, 0.0]);
        let grad_out = init::randn(&[3, h * d], 1.0, &mut rng);
        let grad_dot = attn_grad_dot(&grad_out, &out, h);
        let mut d_sdst = Tensor::zeros(&[3, h]);
        let grads = gat_fused_block_backward(
            &g,
            &s_dst,
            &s_src,
            &x,
            0.2,
            &state.max,
            &state.den,
            &grad_out,
            &grad_dot,
            &mut d_sdst,
        );
        assert_eq!(d_sdst.row(2), &[0.0]);
        assert!(grads.d_x_src.data().iter().all(|v| v.is_finite()));
    }
}
