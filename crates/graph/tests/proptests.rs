//! Property-based tests of the sparse kernels and fused attention against
//! dense references, on randomly generated graphs.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sar_graph::fused::{
    attn_grad_dot, gat_fused_block_backward, gat_fused_block_forward, OnlineAttnState,
};
use sar_graph::{generators::erdos_renyi, ops, CsrGraph};
use sar_tensor::{init, Tensor};

fn dense_adj(g: &CsrGraph) -> Tensor {
    let mut a = Tensor::zeros(&[g.num_rows(), g.num_cols()]);
    for i in 0..g.num_rows() {
        for &j in g.neighbors(i) {
            a.row_mut(i)[j as usize] += 1.0;
        }
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn spmm_matches_dense(seed in 0u64..500, n in 3usize..20, m in 1usize..60, f in 1usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi(n, m, &mut rng);
        let x = init::randn(&[n, f], 1.0, &mut rng);
        let sparse = ops::spmm_sum(&g, &x);
        let dense = dense_adj(&g).matmul(&x);
        prop_assert!(sparse.allclose(&dense, 1e-4));
    }

    #[test]
    fn spmm_backward_is_adjoint(seed in 0u64..500, n in 3usize..20, m in 1usize..60) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi(n, m, &mut rng);
        let x = init::randn(&[n, 3], 1.0, &mut rng);
        let y = init::randn(&[n, 3], 1.0, &mut rng);
        // <Ax, y> == <x, Aᵀy>
        let lhs: f32 = ops::spmm_sum(&g, &x).mul(&y).sum();
        let rhs: f32 = x.mul(&ops::spmm_sum_backward(&g, &y)).sum();
        prop_assert!((lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()));
    }

    #[test]
    fn edge_splitting_preserves_spmm(seed in 0u64..500, n in 4usize..16, m in 4usize..50, split in 0usize..50) {
        // Any split of the edge set into two blocks must aggregate to the
        // same result — the algebraic heart of SAR.
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi(n, m, &mut rng);
        let edges: Vec<(u32, u32)> = g.iter_edges().collect();
        let k = split % (edges.len() + 1);
        let g_a = CsrGraph::from_edges(n, &edges[..k]);
        let g_b = CsrGraph::from_edges(n, &edges[k..]);
        let x = init::randn(&[n, 4], 1.0, &mut rng);
        let full = ops::spmm_sum(&g, &x);
        let mut acc = Tensor::zeros(&[n, 4]);
        ops::spmm_sum_into(&g_a, &x, &mut acc);
        ops::spmm_sum_into(&g_b, &x, &mut acc);
        prop_assert!(acc.allclose(&full, 1e-4));
    }

    #[test]
    fn fused_attention_matches_two_step_reference(seed in 0u64..300, n in 3usize..14, m in 1usize..40, heads in 1usize..4) {
        let d = 3;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi(n, m, &mut rng);
        let s_dst = init::randn(&[n, heads], 1.0, &mut rng);
        let s_src = init::randn(&[n, heads], 1.0, &mut rng);
        let x = init::randn(&[n, heads * d], 1.0, &mut rng);
        let mut state = OnlineAttnState::new(n, heads, d);
        gat_fused_block_forward(&g, &s_dst, &s_src, &x, 0.2, &mut state);
        let fused = state.finalize();
        let scores = ops::gat_edge_scores(&g, &s_dst, &s_src, 0.2);
        let alpha = ops::edge_softmax(&g, &scores);
        let reference = ops::spmm_multihead(&g, &alpha, &x);
        prop_assert!(fused.allclose(&reference, 1e-3));
    }

    #[test]
    fn fused_attention_block_order_is_irrelevant(seed in 0u64..300, n in 4usize..12, m in 5usize..40) {
        // Feeding blocks in any order gives the same online-softmax result.
        let (heads, d) = (2, 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi(n, m, &mut rng);
        let edges: Vec<(u32, u32)> = g.iter_edges().collect();
        let mid = edges.len() / 2;
        let g_a = CsrGraph::from_edges(n, &edges[..mid]);
        let g_b = CsrGraph::from_edges(n, &edges[mid..]);
        let s_dst = init::randn(&[n, heads], 2.0, &mut rng);
        let s_src = init::randn(&[n, heads], 2.0, &mut rng);
        let x = init::randn(&[n, heads * d], 1.0, &mut rng);

        let run = |blocks: [&CsrGraph; 2]| {
            let mut st = OnlineAttnState::new(n, heads, d);
            for b in blocks {
                gat_fused_block_forward(b, &s_dst, &s_src, &x, 0.2, &mut st);
            }
            st.finalize()
        };
        prop_assert!(run([&g_a, &g_b]).allclose(&run([&g_b, &g_a]), 1e-3));
    }

    #[test]
    fn fused_backward_is_adjoint_on_value_path(seed in 0u64..200, n in 3usize..10, m in 1usize..30) {
        // With all attention logits equal (uniform α), the aggregation is
        // linear in x, so <out, g> == <x, d_x> exactly.
        let (heads, d) = (2, 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi(n, m, &mut rng);
        let s_dst = Tensor::zeros(&[n, heads]);
        let s_src = Tensor::zeros(&[n, heads]);
        let x = init::randn(&[n, heads * d], 1.0, &mut rng);
        let grad = init::randn(&[n, heads * d], 1.0, &mut rng);
        let mut st = OnlineAttnState::new(n, heads, d);
        gat_fused_block_forward(&g, &s_dst, &s_src, &x, 0.2, &mut st);
        let out = st.finalize();
        let grad_dot = attn_grad_dot(&grad, &out, heads);
        let mut dsd = Tensor::zeros(&[n, heads]);
        let grads = gat_fused_block_backward(
            &g, &s_dst, &s_src, &x, 0.2, &st.max, &st.den, &grad, &grad_dot, &mut dsd,
        );
        let lhs: f32 = out.mul(&grad).sum();
        let rhs: f32 = x.mul(&grads.d_x_src).sum();
        prop_assert!((lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()), "lhs {lhs} rhs {rhs}");
    }

    #[test]
    fn symmetrize_and_self_loops_invariants(seed in 0u64..500, n in 2usize..20, m in 0usize..60) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi(n, m, &mut rng);
        let s = g.symmetrize();
        prop_assert!(s.is_symmetric());
        let sl = s.with_self_loops();
        for i in 0..n {
            prop_assert!(sl.neighbors(i).contains(&(i as u32)));
        }
        // Symmetrize is idempotent.
        prop_assert_eq!(s.symmetrize(), s);
    }

    #[test]
    fn reverse_is_involution(seed in 0u64..500, n in 2usize..20, m in 0usize..60) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi(n, m, &mut rng);
        prop_assert_eq!(g.reverse().reverse(), g);
    }

    #[test]
    fn gather_scatter_edge_duality(seed in 0u64..300, n in 3usize..15, m in 1usize..40) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi(n, m, &mut rng);
        let x = init::randn(&[n, 2], 1.0, &mut rng);
        let e = init::randn(&[g.num_edges(), 2], 1.0, &mut rng);
        let lhs: f32 = ops::gather_src(&g, &x).mul(&e).sum();
        let rhs: f32 = x.mul(&ops::scatter_edges_to_src(&g, &e)).sum();
        prop_assert!((lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()));
        let lhs2: f32 = ops::gather_dst(&g, &x).mul(&e).sum();
        let rhs2: f32 = x.mul(&ops::scatter_edges_to_dst(&g, &e)).sum();
        prop_assert!((lhs2 - rhs2).abs() < 1e-3 * (1.0 + lhs2.abs()));
    }
}
