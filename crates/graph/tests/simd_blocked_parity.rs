//! Bitwise parity proofs for the SIMD dispatch and cache-blocked CSR
//! traversal (DESIGN.md §11).
//!
//! Two independent claims are checked, each via `f32::to_bits` so that
//! `-0.0`/`0.0` and NaN payload differences cannot hide behind `==`:
//!
//! 1. **SIMD vs scalar** — every kernel produces identical bits under
//!    `SimdMode::Auto` (AVX2 where available) and `SimdMode::ForceScalar`,
//!    because the scalar fallback mirrors the vector paths' fixed 8-lane
//!    accumulation tree exactly. Feature widths include ragged tails
//!    (not a multiple of the 8-lane width) and the graphs include
//!    isolated nodes (empty CSR rows).
//! 2. **Blocked vs unblocked** — the `*_with_panel` entry points produce
//!    identical bits for a tiny panel and an effectively-infinite one,
//!    because destination-panel blocking preserves each row's
//!    ascending-edge-id accumulation order.
//!
//! The dispatch mode is process-global, so everything that flips it lives
//! in ONE test function (tests in a binary run concurrently); the panel
//! tests vary only arguments and are safe as separate functions.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sar_graph::fused::{gat_fused_block_forward, gat_twostep_block_forward, OnlineAttnState};
use sar_graph::generators::erdos_renyi;
use sar_graph::ops;
use sar_graph::CsrGraph;
use sar_tensor::init::randn;
use sar_tensor::simd::{set_mode, SimdMode};
use sar_tensor::Tensor;

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

/// Dense-ish graph plus a sparse one whose 96 rows outnumber its 50
/// edges, guaranteeing isolated destinations and isolated sources.
fn graphs() -> Vec<(CsrGraph, &'static str)> {
    let mut rng = StdRng::seed_from_u64(7);
    vec![
        (erdos_renyi(128, 1024, &mut rng).symmetrize(), "dense"),
        (erdos_renyi(96, 50, &mut rng), "isolated-nodes"),
    ]
}

/// Runs every SIMD-dispatched kernel once and returns all output bits,
/// labelled so a mismatch names the offending kernel.
fn run_all_kernels() -> Vec<(String, Vec<u32>)> {
    let mut out = Vec::new();
    for (g, gname) in graphs() {
        let n = g.num_rows();
        let c = g.num_cols();
        let e = g.num_edges();
        // 7 and 13 exercise the ragged scalar tail after the 8-lane body;
        // 32 exercises the pure vector path.
        for f in [7usize, 13, 32] {
            let mut rng = StdRng::seed_from_u64((f as u64) << 8 | 1);
            let x = randn(&[c, f], 1.0, &mut rng);
            let grad = randn(&[n, f], 1.0, &mut rng);
            let fwd = ops::spmm_sum(&g, &x);
            let bwd = ops::spmm_sum_backward(&g, &grad);
            out.push((format!("{gname}/spmm_sum/f{f}"), bits(&fwd)));
            out.push((format!("{gname}/spmm_sum_backward/f{f}"), bits(&bwd)));
        }
        // Head dims 5 (ragged) and 8 (full lane) per head.
        let heads = 4;
        for d in [5usize, 8] {
            let hd = heads * d;
            let mut rng = StdRng::seed_from_u64((d as u64) << 16 | 2);
            let x = randn(&[c, hd], 1.0, &mut rng);
            let a = randn(&[hd], 1.0, &mut rng);
            let s_dst = randn(&[n, heads], 1.0, &mut rng);
            let s_src = randn(&[c, heads], 1.0, &mut rng);
            let grad = randn(&[n, hd], 1.0, &mut rng);

            let proj = ops::head_project(&x, &a, heads);
            out.push((format!("{gname}/head_project/d{d}"), bits(&proj)));

            let scores = ops::gat_edge_scores(&g, &s_dst, &s_src, 0.2);
            assert_eq!(scores.rows(), e);
            out.push((format!("{gname}/gat_edge_scores/d{d}"), bits(&scores)));

            let alpha = ops::edge_softmax(&g, &scores);
            out.push((format!("{gname}/edge_softmax/d{d}"), bits(&alpha)));

            let mh = ops::spmm_multihead(&g, &alpha, &x);
            out.push((format!("{gname}/spmm_multihead/d{d}"), bits(&mh)));

            let (d_alpha, d_x) = ops::spmm_multihead_backward(&g, &alpha, &x, &grad);
            out.push((
                format!("{gname}/spmm_multihead_backward/alpha/d{d}"),
                bits(&d_alpha),
            ));
            out.push((
                format!("{gname}/spmm_multihead_backward/x/d{d}"),
                bits(&d_x),
            ));

            let mut fused = OnlineAttnState::new(n, heads, d);
            gat_fused_block_forward(&g, &s_dst, &s_src, &x, 0.2, &mut fused);
            out.push((format!("{gname}/gat_fused/d{d}"), bits(&fused.finalize())));

            let mut two = OnlineAttnState::new(n, heads, d);
            gat_twostep_block_forward(&g, &s_dst, &s_src, &x, 0.2, &mut two);
            out.push((format!("{gname}/gat_twostep/d{d}"), bits(&two.finalize())));
        }
    }
    // Odd matmul dims leave ragged tails in all three layouts.
    let (m, k, nn) = (13usize, 27, 9);
    let mut rng = StdRng::seed_from_u64(3);
    let a = randn(&[m, k], 1.0, &mut rng);
    let b = randn(&[k, nn], 1.0, &mut rng);
    let a_t = randn(&[k, m], 1.0, &mut rng);
    let b_nt = randn(&[nn, k], 1.0, &mut rng);
    out.push(("matmul".into(), bits(&a.matmul(&b))));
    out.push(("matmul_tn".into(), bits(&a_t.matmul_tn(&b))));
    out.push(("matmul_nt".into(), bits(&a.matmul_nt(&b_nt))));
    out
}

/// Claim 1: identical bits with the vector paths forced off and on. One
/// function because `SimdMode` is process-global.
#[test]
fn simd_and_scalar_paths_agree_bitwise() {
    set_mode(SimdMode::ForceScalar);
    let scalar = run_all_kernels();
    set_mode(SimdMode::Auto);
    let auto = run_all_kernels();
    assert_eq!(scalar.len(), auto.len());
    for ((name_s, bits_s), (name_a, bits_a)) in scalar.iter().zip(auto.iter()) {
        assert_eq!(name_s, name_a);
        assert_eq!(bits_s, bits_a, "SIMD/scalar divergence in {name_s}");
    }
}

/// Claim 2 for the forward SpMM: a 1-row and a 7-row panel match the
/// unblocked traversal bit for bit, including on empty rows.
#[test]
fn blocked_spmm_sum_matches_unblocked_bitwise() {
    for (g, gname) in graphs() {
        for f in [7usize, 32] {
            let mut rng = StdRng::seed_from_u64(11);
            let x = randn(&[g.num_cols(), f], 1.0, &mut rng);
            let mut base = Tensor::zeros(&[g.num_rows(), f]);
            ops::spmm_sum_into_with_panel(&g, &x, &mut base, usize::MAX);
            for panel in [1usize, 7] {
                let mut blocked = Tensor::zeros(&[g.num_rows(), f]);
                ops::spmm_sum_into_with_panel(&g, &x, &mut blocked, panel);
                assert_eq!(
                    bits(&base),
                    bits(&blocked),
                    "spmm_sum {gname} f={f} panel={panel}"
                );
            }
        }
    }
}

/// Claim 2 for the backward SpMM scatter.
#[test]
fn blocked_spmm_sum_backward_matches_unblocked_bitwise() {
    for (g, gname) in graphs() {
        for f in [7usize, 32] {
            let mut rng = StdRng::seed_from_u64(13);
            let grad = randn(&[g.num_rows(), f], 1.0, &mut rng);
            let mut base = Tensor::zeros(&[g.num_cols(), f]);
            ops::spmm_sum_backward_into_with_panel(&g, &grad, &mut base, usize::MAX);
            for panel in [1usize, 7] {
                let mut blocked = Tensor::zeros(&[g.num_cols(), f]);
                ops::spmm_sum_backward_into_with_panel(&g, &grad, &mut blocked, panel);
                assert_eq!(
                    bits(&base),
                    bits(&blocked),
                    "spmm_sum_backward {gname} f={f} panel={panel}"
                );
            }
        }
    }
}

/// Claim 2 for the attention-weighted multi-head SpMM.
#[test]
fn blocked_spmm_multihead_matches_unblocked_bitwise() {
    let heads = 4;
    for (g, gname) in graphs() {
        for d in [5usize, 8] {
            let mut rng = StdRng::seed_from_u64(17);
            let x = randn(&[g.num_cols(), heads * d], 1.0, &mut rng);
            let scores = randn(&[g.num_edges(), heads], 1.0, &mut rng);
            let alpha = ops::edge_softmax(&g, &scores);
            let base = ops::spmm_multihead_with_panel(&g, &alpha, &x, usize::MAX);
            for panel in [1usize, 7] {
                let blocked = ops::spmm_multihead_with_panel(&g, &alpha, &x, panel);
                assert_eq!(
                    bits(&base),
                    bits(&blocked),
                    "spmm_multihead {gname} d={d} panel={panel}"
                );
            }
        }
    }
}
