//! Bitwise 1-vs-N-thread parity for every parallelized kernel.
//!
//! The kernels in `ops` and `fused` chunk work across the worker's thread
//! pool such that every output row has exactly one writer and every
//! per-row reduction runs in the sequential visit order (see DESIGN.md
//! §8). That design claim is only worth anything if it is *checked*:
//! each test here runs a kernel once with `pool::set_threads(1)` and once
//! with `pool::set_threads(4)` on the same inputs and asserts the outputs
//! are equal **bit for bit** — not approximately, `to_bits()` equal.
//!
//! The test graph deliberately contains isolated destinations (no
//! in-edges) and isolated sources (no out-edges): degree-0 rows are where
//! chunk boundaries and empty edge ranges meet, and where mean/softmax
//! normalizers can divide by zero.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sar_graph::{fused, ops, CsrGraph};
use sar_tensor::{init, pool, Tensor};

/// A few hundred nodes, random edges, with guaranteed degree-0 rows:
/// nodes `0` and `1` receive no edges (isolated destinations) and node
/// `n - 1` sends none (isolated source).
fn test_graph(n: usize, m: usize, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let edges: Vec<(u32, u32)> = (0..m)
        .map(|_| {
            (
                rng.random_range(0..n - 1) as u32,
                rng.random_range(2..n) as u32,
            )
        })
        .collect();
    CsrGraph::from_edges(n, &edges)
}

fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    pool::set_threads(n);
    let out = f();
    pool::set_threads(1);
    out
}

fn assert_bitwise_eq(a: &Tensor, b: &Tensor, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    for (k, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {k} diverges across thread counts: {x} vs {y}"
        );
    }
}

/// Runs `f` at 1 and 4 threads and asserts every returned tensor matches
/// bitwise.
fn assert_parity(what: &str, f: impl Fn() -> Vec<Tensor>) {
    let seq = with_threads(1, &f);
    let par = with_threads(4, &f);
    assert_eq!(seq.len(), par.len());
    assert!(pool::threads() <= 1, "thread count must be restored");
    for (k, (a, b)) in seq.iter().zip(&par).enumerate() {
        assert_bitwise_eq(a, b, &format!("{what}[{k}]"));
        assert!(
            a.data().iter().all(|v| v.is_finite()),
            "{what}[{k}]: non-finite values"
        );
    }
}

const N: usize = 257; // odd on purpose: uneven chunk boundaries
const M: usize = 1900;

#[test]
fn spmm_sum_parity() {
    let g = test_graph(N, M, 1);
    let x = init::randn(&[N, 13], 1.0, &mut StdRng::seed_from_u64(2));
    assert_parity("spmm_sum", || vec![ops::spmm_sum(&g, &x)]);
}

#[test]
fn spmm_sum_backward_parity() {
    let g = test_graph(N, M, 3);
    let grad = init::randn(&[N, 13], 1.0, &mut StdRng::seed_from_u64(4));
    assert_parity("spmm_sum_backward", || {
        vec![ops::spmm_sum_backward(&g, &grad)]
    });
}

#[test]
fn scatter_edges_parity() {
    let g = test_graph(N, M, 5);
    let ev = init::randn(&[g.num_edges(), 7], 1.0, &mut StdRng::seed_from_u64(6));
    assert_parity("scatter_edges", || {
        vec![
            ops::scatter_edges_to_src(&g, &ev),
            ops::scatter_edges_to_dst(&g, &ev),
        ]
    });
}

#[test]
fn edge_softmax_parity() {
    let g = test_graph(N, M, 7);
    let mut rng = StdRng::seed_from_u64(8);
    let scores = init::randn(&[g.num_edges(), 4], 3.0, &mut rng);
    let grad = init::randn(&[g.num_edges(), 4], 1.0, &mut rng);
    assert_parity("edge_softmax", || {
        let alpha = ops::edge_softmax(&g, &scores);
        let d_scores = ops::edge_softmax_backward(&g, &alpha, &grad);
        vec![alpha, d_scores]
    });
}

#[test]
fn spmm_multihead_parity() {
    let g = test_graph(N, M, 9);
    let mut rng = StdRng::seed_from_u64(10);
    let (h, d) = (4, 5);
    let alpha = ops::edge_softmax(&g, &init::randn(&[g.num_edges(), h], 1.0, &mut rng));
    let x = init::randn(&[N, h * d], 1.0, &mut rng);
    let grad = init::randn(&[N, h * d], 1.0, &mut rng);
    assert_parity("spmm_multihead", || {
        let out = ops::spmm_multihead(&g, &alpha, &x);
        let (d_alpha, d_x) = ops::spmm_multihead_backward(&g, &alpha, &x, &grad);
        vec![out, d_alpha, d_x]
    });
}

#[test]
fn head_project_parity() {
    let mut rng = StdRng::seed_from_u64(11);
    let (h, d) = (4, 6);
    let x = init::randn(&[N, h * d], 1.0, &mut rng);
    let a = init::randn(&[h * d], 1.0, &mut rng);
    let grad = init::randn(&[N, h], 1.0, &mut rng);
    assert_parity("head_project", || {
        let out = ops::head_project(&x, &a, h);
        let (d_x, d_a) = ops::head_project_backward(&x, &a, h, &grad);
        vec![out, d_x, d_a]
    });
}

#[test]
fn gat_edge_scores_parity() {
    let g = test_graph(N, M, 12);
    let mut rng = StdRng::seed_from_u64(13);
    let h = 3;
    let s_dst = init::randn(&[N, h], 1.0, &mut rng);
    let s_src = init::randn(&[N, h], 1.0, &mut rng);
    let grad = init::randn(&[g.num_edges(), h], 1.0, &mut rng);
    assert_parity("gat_edge_scores", || {
        let scores = ops::gat_edge_scores(&g, &s_dst, &s_src, 0.2);
        let (d_dst, d_src) = ops::gat_edge_scores_backward(&g, &s_dst, &s_src, 0.2, &grad);
        vec![scores, d_dst, d_src]
    });
}

/// Shared inputs for the fused/two-step GAT block tests.
struct GatBlock {
    g: CsrGraph,
    s_dst: Tensor,
    s_src: Tensor,
    x: Tensor,
    grad_out: Tensor,
    h: usize,
    d: usize,
}

fn gat_block(seed: u64) -> GatBlock {
    let g = test_graph(N, M, seed);
    let mut rng = StdRng::seed_from_u64(seed + 100);
    let (h, d) = (4, 5);
    GatBlock {
        s_dst: init::randn(&[g.num_rows(), h], 1.0, &mut rng),
        s_src: init::randn(&[g.num_cols(), h], 1.0, &mut rng),
        x: init::randn(&[g.num_cols(), h * d], 1.0, &mut rng),
        grad_out: init::randn(&[g.num_rows(), h * d], 1.0, &mut rng),
        g,
        h,
        d,
    }
}

#[test]
fn fused_gat_block_parity() {
    let b = gat_block(14);
    assert_parity("fused_gat_block", || {
        let mut state = fused::OnlineAttnState::new(b.g.num_rows(), b.h, b.d);
        fused::gat_fused_block_forward(&b.g, &b.s_dst, &b.s_src, &b.x, 0.2, &mut state);
        let (out, max, den) = state.finalize_into();
        let grad_dot = fused::attn_grad_dot(&b.grad_out, &out, b.h);
        let mut d_s_dst = Tensor::zeros(&[b.g.num_rows(), b.h]);
        let grads = fused::gat_fused_block_backward(
            &b.g,
            &b.s_dst,
            &b.s_src,
            &b.x,
            0.2,
            &max,
            &den,
            &b.grad_out,
            &grad_dot,
            &mut d_s_dst,
        );
        vec![out, grad_dot, d_s_dst, grads.d_x_src, grads.d_s_src]
    });
}

#[test]
fn twostep_gat_block_parity() {
    let b = gat_block(15);
    assert_parity("twostep_gat_block", || {
        let mut state = fused::OnlineAttnState::new(b.g.num_rows(), b.h, b.d);
        fused::gat_twostep_block_forward(&b.g, &b.s_dst, &b.s_src, &b.x, 0.2, &mut state);
        let (out, max, den) = state.finalize_into();
        let grad_dot = fused::attn_grad_dot(&b.grad_out, &out, b.h);
        let mut d_s_dst = Tensor::zeros(&[b.g.num_rows(), b.h]);
        let grads = fused::gat_twostep_block_backward(
            &b.g,
            &b.s_dst,
            &b.s_src,
            &b.x,
            0.2,
            &max,
            &den,
            &b.grad_out,
            &grad_dot,
            &mut d_s_dst,
        );
        vec![out, grad_dot, d_s_dst, grads.d_x_src, grads.d_s_src]
    });
}

#[test]
fn isolated_destinations_produce_zero_rows() {
    // Nodes 0 and 1 have no in-edges: sum aggregation and the fused GAT
    // block (denominator 0) must yield all-zero — not NaN — output rows,
    // at any thread count.
    let b = gat_block(16);
    for threads in [1, 4] {
        with_threads(threads, || {
            let summed = ops::spmm_sum(&b.g, &b.x);
            let mut state = fused::OnlineAttnState::new(b.g.num_rows(), b.h, b.d);
            fused::gat_fused_block_forward(&b.g, &b.s_dst, &b.s_src, &b.x, 0.2, &mut state);
            let attn = state.finalize();
            for iso in [0usize, 1] {
                assert!(b.g.is_isolated_row(iso));
                assert!(summed.row(iso).iter().all(|&v| v == 0.0));
                assert!(attn.row(iso).iter().all(|&v| v == 0.0));
            }
            assert!(attn.data().iter().all(|v| v.is_finite()));
        });
    }
}
