//! `sar-check` — the workspace's static-analysis gate.
//!
//! ```text
//! sar-check [--all] [--protocol] [--sched] [--lint] [--taint] [--ledger]
//!           [--root DIR] [--report FILE.json] [--baseline FILE.json]
//!           [--annotate]
//! ```
//!
//! With no pass flag (or `--all`) every pass runs. Exit status is 0 only
//! when every selected pass is clean — findings are hard failures, the
//! `-D warnings` discipline. `--report` writes the machine-readable proof
//! report (the CI artifact); `--baseline` diffs the fresh report against a
//! committed one and fails if any proof obligation was silently dropped;
//! `--annotate` additionally prints findings as GitHub workflow-command
//! annotations (`::error file=…,line=…::…`); `--root` points the
//! source-reading passes at a workspace checkout (default: the current
//! directory, falling back to the manifest's grandparent when run via
//! `cargo run -p sar-check`).

use std::path::PathBuf;
use std::process::ExitCode;

use sar_check::{ledgercheck, lint, protocol, reportio, sched, taint, Report};

/// The CI sweep: every world size and pipeline depth the paper's
/// experiments cover, both communication models, a 2-layer step.
const SWEEP_NS: &[usize] = &[2, 3, 4, 5, 6, 7, 8];
const SWEEP_KS: &[usize] = &[0, 1, 2, 3];
const SWEEP_LAYERS: usize = 2;

fn usage() -> ! {
    eprintln!(
        "usage: sar-check [--all] [--protocol] [--sched] [--lint] [--taint] \
         [--ledger] [--root DIR] [--report FILE.json] \
         [--baseline FILE.json] [--annotate]"
    );
    std::process::exit(2);
}

/// Splits a `file.rs:NN` location into (file, line) for annotations.
/// Protocol/sched locations (model coordinates) have no line — those
/// annotate without a position.
fn split_location(location: &str) -> Option<(&str, &str)> {
    let (file, line) = location.rsplit_once(':')?;
    if file.ends_with(".rs") && line.bytes().all(|b| b.is_ascii_digit()) {
        Some((file, line))
    } else {
        None
    }
}

fn main() -> ExitCode {
    let mut run_protocol = false;
    let mut run_sched = false;
    let mut run_lint = false;
    let mut run_taint = false;
    let mut run_ledger = false;
    let mut root: Option<PathBuf> = None;
    let mut report_path: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut annotate = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--all" => {
                run_protocol = true;
                run_sched = true;
                run_lint = true;
                run_taint = true;
                run_ledger = true;
            }
            "--protocol" => run_protocol = true,
            "--sched" => run_sched = true,
            "--lint" => run_lint = true,
            "--taint" => run_taint = true,
            "--ledger" => run_ledger = true,
            "--annotate" => annotate = true,
            "--root" => root = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--report" => {
                report_path = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())));
            }
            "--baseline" => {
                baseline_path = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("sar-check: unknown argument `{other}`");
                usage();
            }
        }
    }
    if !(run_protocol || run_sched || run_lint || run_taint || run_ledger) {
        run_protocol = true;
        run_sched = true;
        run_lint = true;
        run_taint = true;
        run_ledger = true;
    }

    let root = root.unwrap_or_else(|| {
        let cwd = PathBuf::from(".");
        if cwd.join("crates").is_dir() {
            cwd
        } else {
            // Running via `cargo run -p sar-check` from somewhere else:
            // the workspace is two levels above this crate's manifest.
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("..")
                .join("..")
        }
    });

    let mut report = Report { passes: Vec::new() };
    if run_protocol {
        println!(
            "sar-check: protocol — sweeping N∈{SWEEP_NS:?} × K∈{SWEEP_KS:?}, \
             case1+case2, {SWEEP_LAYERS} layers"
        );
        report
            .passes
            .push(protocol::sweep(SWEEP_NS, SWEEP_KS, SWEEP_LAYERS));
    }
    if run_sched {
        println!("sar-check: sched — exploring all interleavings of 3 concurrency models");
        report.passes.push(sched::check_all());
    }
    if run_lint {
        println!("sar-check: lint — scanning {}", root.display());
        report.passes.push(lint::run(&root));
    }
    if run_taint {
        println!("sar-check: taint — determinism dataflow over digest-bearing hot paths");
        report.passes.push(taint::run(&root));
    }
    if run_ledger {
        println!("sar-check: ledger — send/recv charge conservation + codec symmetry");
        report.passes.push(ledgercheck::run(&root));
    }

    for pass in &report.passes {
        let stats: Vec<String> = pass
            .stats
            .iter()
            .map(|(name, value)| format!("{name}={value}"))
            .collect();
        println!(
            "sar-check: {} — {} finding(s) [{}]",
            pass.pass,
            pass.findings.len(),
            stats.join(", ")
        );
        for finding in &pass.findings {
            println!("  {finding}");
            if annotate {
                // GitHub workflow-command annotation; shows inline on the PR.
                match split_location(&finding.location) {
                    Some((file, line)) => println!(
                        "::error file={file},line={line},title=sar-check {}::{}",
                        finding.rule, finding.message
                    ),
                    None => println!(
                        "::error title=sar-check {} at {}::{}",
                        finding.rule, finding.location, finding.message
                    ),
                }
            }
        }
    }

    let mut baseline_failed = false;
    if let Some(path) = baseline_path {
        match std::fs::read_to_string(&path) {
            Ok(text) => match reportio::check_baseline(&report, &text) {
                Ok(drops) if drops.is_empty() => {
                    println!(
                        "sar-check: baseline {} holds — no proof obligations dropped",
                        path.display()
                    );
                }
                Ok(drops) => {
                    baseline_failed = true;
                    for drop in &drops {
                        eprintln!("sar-check: baseline: {drop}");
                        if annotate {
                            println!("::error title=sar-check baseline::{drop}");
                        }
                    }
                }
                Err(e) => {
                    eprintln!("sar-check: cannot parse baseline {}: {e}", path.display());
                    baseline_failed = true;
                }
            },
            Err(e) => {
                eprintln!("sar-check: cannot read baseline {}: {e}", path.display());
                baseline_failed = true;
            }
        }
    }

    if let Some(path) = report_path {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("sar-check: cannot write report {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("sar-check: report written to {}", path.display());
    }

    if report.clean() && !baseline_failed {
        println!("sar-check: all passes clean");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "sar-check: FAILED with {} finding(s){}",
            report.total_findings(),
            if baseline_failed {
                " (baseline regression)"
            } else {
                ""
            }
        );
        ExitCode::FAILURE
    }
}
