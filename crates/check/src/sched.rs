//! Pass 2: the exhaustive interleaving checker.
//!
//! A loom-style deterministic scheduler: each concurrency model exposes
//! its threads as sequences of *atomic steps* (one step = one critical
//! section or one atomic RMW, exactly the granularity the real code gets
//! from its `Mutex`/`AtomicUsize`), and [`explore`] runs a depth-first
//! search over **every** interleaving of those steps, pruning states it
//! has already visited. Each reached state is checked against the model's
//! invariant; a state where no thread can run but the system is not done
//! is a stall — a deadlock or lost wakeup. Violations come back with the
//! exact thread schedule that produced them, so they reproduce.
//!
//! Three models mirror the workspace's hand-rolled concurrency:
//!
//! * [`BufferPool`] — `sar_comm::buffer`: TCP writer threads recycling
//!   pooled send buffers concurrently with the worker taking them.
//!   Invariant: a buffer is never in the pool twice and never both owned
//!   and pooled (no double-recycle).
//! * [`WriterQueue`] — the bounded TCP writer queue: producer blocks when
//!   full, consumer blocks when empty, close drains. Invariants: FIFO
//!   delivery, nothing lost at close, and no stall (a blocked producer
//!   and blocked consumer at once would be a lost wakeup).
//! * [`ChunkClaim`] — `pool::parallel_for`'s atomic chunk claiming that
//!   makes `SharedSlice` writes disjoint. Invariant: every chunk written
//!   exactly once (no aliased rows, none skipped).
//!
//! Each model carries a `seed_*` switch that injects the bug its
//! invariant exists to catch, so tests can prove the checker actually
//! finds it.

use std::collections::HashSet;
use std::hash::Hash;

use crate::{Finding, PassReport};

/// A small concurrent state machine whose interleavings are explored
/// exhaustively.
pub trait Model {
    /// Global state: thread program counters plus shared memory. Must be
    /// hashable so visited states are pruned.
    type State: Clone + Eq + Hash;

    /// Model name used in report locations.
    fn name(&self) -> &'static str;
    /// The initial state.
    fn init(&self) -> Self::State;
    /// Number of threads.
    fn threads(&self) -> usize;
    /// Whether thread `t` can take its next atomic step in `state`. A
    /// thread that has finished is not enabled.
    fn enabled(&self, state: &Self::State, t: usize) -> bool;
    /// Executes thread `t`'s next atomic step. Only called when enabled.
    fn step(&self, state: &mut Self::State, t: usize);
    /// Whether every thread has run to completion.
    fn done(&self, state: &Self::State) -> bool;
    /// The safety invariant, checked at every reached state; `Err`
    /// describes the violation.
    ///
    /// # Errors
    ///
    /// A human-readable description of the violated invariant.
    fn check(&self, state: &Self::State) -> Result<(), String>;
}

/// Outcome of exhaustively exploring one model.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Distinct states reached.
    pub states: u64,
    /// Complete interleavings (paths reaching `done`).
    pub complete_runs: u64,
    /// Violations, each with the schedule that produced it.
    pub findings: Vec<Finding>,
}

/// Explores every interleaving of `model` (bounded by `max_steps` per
/// path as a runaway backstop) and returns what it found. The search is
/// depth-first with visited-state pruning, so it terminates on any
/// finite-state model and still covers *all* reachable states.
#[must_use]
pub fn explore<M: Model>(model: &M, max_steps: usize) -> Exploration {
    let mut result = Exploration {
        states: 0,
        complete_runs: 0,
        findings: Vec::new(),
    };
    let mut visited: HashSet<M::State> = HashSet::new();
    // DFS stack of (state, schedule-so-far).
    let mut stack: Vec<(M::State, Vec<usize>)> = vec![(model.init(), Vec::new())];

    while let Some((state, trace)) = stack.pop() {
        if !visited.insert(state.clone()) {
            continue;
        }
        result.states += 1;

        if let Err(violation) = model.check(&state) {
            result.findings.push(Finding {
                rule: "invariant".into(),
                location: format!("{} after schedule {trace:?}", model.name()),
                message: violation,
            });
            // Don't explore past a broken state — its successors would
            // re-report the same root cause.
            continue;
        }

        if model.done(&state) {
            result.complete_runs += 1;
            continue;
        }

        if trace.len() >= max_steps {
            result.findings.push(Finding {
                rule: "bounded-depth".into(),
                location: format!("{} after schedule {trace:?}", model.name()),
                message: format!("path exceeded {max_steps} steps without completing"),
            });
            continue;
        }

        let enabled: Vec<usize> = (0..model.threads())
            .filter(|&t| model.enabled(&state, t))
            .collect();
        if enabled.is_empty() {
            result.findings.push(Finding {
                rule: "no-stall".into(),
                location: format!("{} after schedule {trace:?}", model.name()),
                message: "no thread can make progress but the system is not done \
                          (deadlock or lost wakeup)"
                    .into(),
            });
            continue;
        }
        for t in enabled {
            let mut next = state.clone();
            model.step(&mut next, t);
            let mut next_trace = trace.clone();
            next_trace.push(t);
            stack.push((next, next_trace));
        }
    }
    result
}

// ---------------------------------------------------------------------
// Model 1: the recycled buffer pool.
// ---------------------------------------------------------------------

/// Models `sar_comm::buffer`: `recyclers` threads (the TCP writer
/// threads) each recycle one distinct buffer into the shared pool while a
/// taker thread takes `takes` buffers. Every pool operation is one atomic
/// step, matching the real code's single `Mutex` around the pool.
#[derive(Debug, Clone)]
pub struct BufferPool {
    /// Writer threads recycling one buffer each.
    pub recyclers: usize,
    /// Buffers the taker thread takes.
    pub takes: usize,
    /// Pool capacity (`MAX_POOLED` in the real code).
    pub capacity: usize,
    /// Seed the double-recycle bug: each recycler recycles its buffer
    /// *twice* (as if a writer thread recycled a buffer it no longer
    /// owned). The invariant must catch it.
    pub seed_double_recycle: bool,
}

/// State of [`BufferPool`]: which buffers sit in the pool, how far each
/// thread has progressed.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BufferPoolState {
    /// Buffer ids currently in the pool (push/pop order preserved).
    pool: Vec<usize>,
    /// Per-recycler progress: how many recycle calls it has made (0, 1,
    /// or 2 when seeded).
    recycled: Vec<u8>,
    /// Buffers the taker has taken so far.
    taken: u8,
}

impl Model for BufferPool {
    type State = BufferPoolState;

    fn name(&self) -> &'static str {
        "buffer-pool"
    }

    fn init(&self) -> BufferPoolState {
        BufferPoolState {
            pool: Vec::new(),
            recycled: vec![0; self.recyclers],
            taken: 0,
        }
    }

    fn threads(&self) -> usize {
        // Recyclers plus the taker.
        self.recyclers + 1
    }

    fn enabled(&self, s: &BufferPoolState, t: usize) -> bool {
        if t < self.recyclers {
            let target: u8 = if self.seed_double_recycle { 2 } else { 1 };
            s.recycled[t] < target
        } else {
            // The taker never blocks: an empty pool means a fresh
            // allocation (a pool miss), exactly like `take_f32`.
            (s.taken as usize) < self.takes
        }
    }

    fn step(&self, s: &mut BufferPoolState, t: usize) {
        if t < self.recyclers {
            s.recycled[t] += 1;
            // `recycle_f32` drops the buffer when the pool is full.
            if s.pool.len() < self.capacity {
                s.pool.push(t);
            }
        } else {
            s.taken += 1;
            // Pool hit pops; a miss allocates fresh (no state change).
            s.pool.pop();
        }
    }

    fn done(&self, s: &BufferPoolState) -> bool {
        (0..self.threads()).all(|t| !self.enabled(s, t))
    }

    fn check(&self, s: &BufferPoolState) -> Result<(), String> {
        for (i, &id) in s.pool.iter().enumerate() {
            if s.pool[i + 1..].contains(&id) {
                return Err(format!(
                    "buffer {id} is in the pool twice (double-recycle): pool={:?}",
                    s.pool
                ));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Model 2: the bounded writer queue.
// ---------------------------------------------------------------------

/// Models a TCP peer's bounded writer queue (`sync_channel` in
/// `tcp.rs`): the sender thread enqueues `items` frames then closes; the
/// writer thread dequeues until the queue is closed *and* drained. Steps
/// are atomic queue operations (the channel's internal lock).
#[derive(Debug, Clone)]
pub struct WriterQueue {
    /// Frames the producer sends before closing.
    pub items: usize,
    /// Queue bound (`writer_queue` in `TcpOptions`).
    pub capacity: usize,
    /// Seed the drain bug: the consumer exits as soon as it observes
    /// `closed`, even with frames still queued — frames are lost.
    pub seed_drop_on_close: bool,
}

/// State of [`WriterQueue`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WriterQueueState {
    /// Frames in the queue (by sequence number).
    queue: Vec<u8>,
    /// Frames produced so far.
    produced: u8,
    /// Whether the producer has closed the queue.
    closed: bool,
    /// Frames consumed, in consumption order.
    consumed: Vec<u8>,
    /// Whether the consumer has exited.
    consumer_exited: bool,
}

impl Model for WriterQueue {
    type State = WriterQueueState;

    fn name(&self) -> &'static str {
        "writer-queue"
    }

    fn init(&self) -> WriterQueueState {
        WriterQueueState {
            queue: Vec::new(),
            produced: 0,
            closed: false,
            consumed: Vec::new(),
            consumer_exited: false,
        }
    }

    fn threads(&self) -> usize {
        2
    }

    fn enabled(&self, s: &WriterQueueState, t: usize) -> bool {
        match t {
            // Producer: send while below capacity, then close once.
            0 => {
                if (s.produced as usize) < self.items {
                    s.queue.len() < self.capacity
                } else {
                    !s.closed
                }
            }
            // Consumer: pop when non-empty; observe close when empty.
            _ => {
                if s.consumer_exited {
                    false
                } else if self.seed_drop_on_close && s.closed {
                    // Seeded bug: ready to bail out regardless of queue
                    // contents.
                    true
                } else {
                    !s.queue.is_empty() || s.closed
                }
            }
        }
    }

    fn step(&self, s: &mut WriterQueueState, t: usize) {
        match t {
            0 => {
                if (s.produced as usize) < self.items {
                    s.queue.push(s.produced);
                    s.produced += 1;
                } else {
                    s.closed = true;
                }
            }
            _ => {
                if self.seed_drop_on_close && s.closed {
                    s.consumer_exited = true;
                } else if s.queue.is_empty() {
                    // Closed and drained: exit.
                    s.consumer_exited = true;
                } else {
                    s.consumed.push(s.queue.remove(0));
                }
            }
        }
    }

    fn done(&self, s: &WriterQueueState) -> bool {
        s.closed && s.consumer_exited
    }

    fn check(&self, s: &WriterQueueState) -> Result<(), String> {
        // FIFO: consumed sequence numbers are 0, 1, 2, …
        for (i, &seq) in s.consumed.iter().enumerate() {
            if seq as usize != i {
                return Err(format!(
                    "frames reordered: consumed {:?}, expected FIFO",
                    s.consumed
                ));
            }
        }
        // Nothing lost at close: once the consumer exits, every produced
        // frame must have been consumed.
        if s.consumer_exited && s.consumed.len() != self.items {
            return Err(format!(
                "writer exited with {} of {} frames delivered ({} lost in the queue)",
                s.consumed.len(),
                self.items,
                self.items - s.consumed.len()
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Model 3: atomic chunk claiming over a SharedSlice.
// ---------------------------------------------------------------------

/// Models `pool::parallel_for`'s dispatch: `threads` workers claim chunk
/// indices from a shared counter and write disjoint ranges of a
/// `SharedSlice`. With `seed_racy_claim`, the claim is split into a
/// non-atomic read + write-back pair — the textbook lost-update race —
/// and the aliased-write invariant must catch two threads writing one
/// chunk.
#[derive(Debug, Clone)]
pub struct ChunkClaim {
    /// Worker threads.
    pub threads: usize,
    /// Chunks to claim and write.
    pub chunks: usize,
    /// Seed the race: claim via separate load and store instead of one
    /// atomic fetch-add.
    pub seed_racy_claim: bool,
}

/// State of [`ChunkClaim`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ChunkClaimState {
    /// The shared claim counter (`Dispatch.next`).
    next: u8,
    /// How many times each chunk has been written.
    written: Vec<u8>,
    /// Per-thread: claim loaded but not yet stored back (seeded mode).
    loaded: Vec<Option<u8>>,
    /// Per-thread: finished.
    finished: Vec<bool>,
}

impl Model for ChunkClaim {
    type State = ChunkClaimState;

    fn name(&self) -> &'static str {
        "chunk-claim"
    }

    fn init(&self) -> ChunkClaimState {
        ChunkClaimState {
            next: 0,
            written: vec![0; self.chunks],
            loaded: vec![None; self.threads],
            finished: vec![false; self.threads],
        }
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn enabled(&self, s: &ChunkClaimState, t: usize) -> bool {
        !s.finished[t]
    }

    fn step(&self, s: &mut ChunkClaimState, t: usize) {
        if self.seed_racy_claim {
            match s.loaded[t] {
                // Step A of the seeded race: load the counter.
                None => {
                    if (s.next as usize) < self.chunks {
                        s.loaded[t] = Some(s.next);
                    } else {
                        s.finished[t] = true;
                    }
                }
                // Step B: store back the increment and write the chunk —
                // another thread may have loaded the same value between A
                // and B.
                Some(claim) => {
                    s.next = claim + 1;
                    s.written[claim as usize] += 1;
                    s.loaded[t] = None;
                }
            }
        } else {
            // One atomic fetch-add claims the chunk; the subsequent write
            // is to a range no other thread can claim.
            if (s.next as usize) < self.chunks {
                let claim = s.next;
                s.next += 1;
                s.written[claim as usize] += 1;
            } else {
                s.finished[t] = true;
            }
        }
    }

    fn done(&self, s: &ChunkClaimState) -> bool {
        s.finished.iter().all(|&f| f)
    }

    fn check(&self, s: &ChunkClaimState) -> Result<(), String> {
        if let Some(chunk) = s.written.iter().position(|&w| w > 1) {
            return Err(format!(
                "chunk {chunk} written {} times — two threads claimed the same \
                 SharedSlice range (aliased row writes)",
                s.written[chunk]
            ));
        }
        if self.done(s) {
            if let Some(chunk) = s.written.iter().position(|&w| w == 0) {
                return Err(format!("chunk {chunk} never written"));
            }
        }
        Ok(())
    }
}

/// Runs all three production models exhaustively and folds the results
/// into one [`PassReport`].
#[must_use]
pub fn check_all() -> PassReport {
    let mut report = PassReport::new("sched");
    let pool = BufferPool {
        recyclers: 3,
        takes: 3,
        capacity: 2,
        seed_double_recycle: false,
    };
    let queue = WriterQueue {
        items: 4,
        capacity: 2,
        seed_drop_on_close: false,
    };
    let claim = ChunkClaim {
        threads: 3,
        chunks: 4,
        seed_racy_claim: false,
    };
    for exploration in [explore(&pool, 64), explore(&queue, 64), explore(&claim, 64)] {
        report.bump("states_explored", exploration.states);
        report.bump("complete_interleavings", exploration.complete_runs);
        report.findings.extend(exploration.findings);
    }
    report.bump("models_checked", 3);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn production_models_are_clean() {
        let report = check_all();
        assert!(report.clean(), "sched found: {:#?}", report.findings);
        let states = report
            .stats
            .iter()
            .find(|(name, _)| name == "states_explored")
            .map(|(_, v)| *v)
            .unwrap_or(0);
        assert!(states > 100, "suspiciously small exploration: {states}");
    }

    #[test]
    fn seeded_double_recycle_is_caught_with_schedule() {
        let model = BufferPool {
            recyclers: 2,
            takes: 2,
            capacity: 4,
            seed_double_recycle: true,
        };
        let result = explore(&model, 64);
        let finding = result
            .findings
            .iter()
            .find(|f| f.message.contains("double-recycle"))
            .expect("double-recycle must be caught");
        assert!(
            finding.location.contains("schedule"),
            "finding should carry the reproducing schedule: {finding}"
        );
    }

    #[test]
    fn seeded_drop_on_close_loses_frames() {
        let model = WriterQueue {
            items: 3,
            capacity: 2,
            seed_drop_on_close: true,
        };
        let result = explore(&model, 64);
        assert!(
            result.findings.iter().any(|f| f.message.contains("lost")),
            "lost frames must be caught: {:#?}",
            result.findings
        );
    }

    #[test]
    fn seeded_racy_claim_aliases_chunks() {
        let model = ChunkClaim {
            threads: 2,
            chunks: 2,
            seed_racy_claim: true,
        };
        let result = explore(&model, 64);
        assert!(
            result
                .findings
                .iter()
                .any(|f| f.message.contains("aliased")),
            "aliased writes must be caught: {:#?}",
            result.findings
        );
    }

    #[test]
    fn exploration_visits_multiple_interleavings() {
        let model = WriterQueue {
            items: 2,
            capacity: 1,
            seed_drop_on_close: false,
        };
        let result = explore(&model, 64);
        assert!(result.findings.is_empty());
        assert!(result.complete_runs >= 1);
        assert!(result.states > 5);
    }
}
