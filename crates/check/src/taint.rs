//! Pass 4: the determinism-taint verifier.
//!
//! The workspace's central correctness claim — `parity_digest()` is
//! bitwise identical at any `{threads, prefetch depth, transport, codec,
//! memory budget}` — is only as strong as the absence of nondeterminism
//! sources on the digest-bearing hot paths. This pass makes that absence
//! a static property instead of a test matrix. It computes the call-graph
//! closure (over [`crate::ast`]) of the digest-bearing roots — the graph
//! kernels, `seq_agg`, the wire codec, the rotation worker, the serve
//! engine's MFG path, and the tiered store — restricted to the hot-path
//! file set, and rejects three source classes inside that closure:
//!
//! * **`taint-unordered-iter`** — iterating a `HashMap`/`HashSet`
//!   (`.iter()`, `.keys()`, `.values()`, `.drain()`, `for … in map`):
//!   iteration order varies per process, so any fold over it is
//!   nondeterministic. Keyed access (`get`/`insert`/`remove`) is fine.
//! * **`taint-time-source`** — `Instant::now`, `SystemTime::now`,
//!   `clock_gettime`, thread identity, `available_parallelism`: values
//!   that differ across runs. Metering counters legitimately read clocks
//!   but must never feed the digest — each such site carries a reviewed
//!   annotation saying so.
//! * **`taint-unordered-accum`** — float `+=`/`-=`/`*=`/`/=` targets:
//!   float addition is non-associative, so accumulation is deterministic
//!   only under a fixed order. Every accumulating function must state its
//!   ordering argument (one writer per row, fixed rank order, sequential
//!   loop) in an annotation.
//!
//! The exemption vocabulary is `// sar-check: deterministic(<why>)` — on
//! the flagged line (or its contiguous comment block) for iteration/time
//! sites, or on the `fn` declaration to approve every accumulation in
//! that function. Annotations are *not* waivers: a waiver mutes a style
//! rule, an annotation records a reviewed determinism argument that this
//! pass counts and reports. The taint lattice is deliberately shallow —
//! `untyped ⊑ deterministic ⊑ tainted` — with unresolvable types staying
//! `untyped` (never flagged): the pass under-approximates typing but
//! never silently drops a *typed* source.

use std::path::Path;

use crate::ast::{line_of, Annotation, Workspace};
use crate::{Finding, PassReport};

/// Files whose every function is digest-bearing from the first
/// instruction: the kernels, the autograd aggregation ops, the wire
/// codec, and the spill tier.
const ROOT_FILES: &[&str] = &[
    "crates/graph/src/ops.rs",
    "crates/graph/src/fused.rs",
    "crates/tensor/src/simd.rs",
    "crates/core/src/seq_agg.rs",
    "crates/comm/src/codec.rs",
    "crates/tensor/src/tier.rs",
];

/// Digest-bearing functions on mixed files (the rest of those files is
/// config/reporting surface).
const ROOT_FNS: &[(&str, &str)] = &[
    ("crates/core/src/worker.rs", "fetch_rounds"),
    ("crates/core/src/worker.rs", "exchange_grads"),
    ("crates/core/src/worker.rs", "replay_tiered"),
    ("crates/core/src/worker.rs", "serve"),
    ("crates/core/src/worker.rs", "receive_block"),
    ("crates/core/src/worker.rs", "try_receive_block"),
    ("crates/core/src/worker.rs", "gather_pooled"),
    ("crates/serve/src/engine.rs", "run_batch"),
    ("crates/serve/src/engine.rs", "build_mfg"),
    ("crates/serve/src/engine.rs", "forward_mfg"),
    ("crates/serve/src/engine.rs", "gather_results"),
    ("crates/comm/src/ctx.rs", "try_send"),
    ("crates/comm/src/ctx.rs", "send"),
    ("crates/comm/src/ctx.rs", "send_nowait"),
    ("crates/comm/src/ctx.rs", "recv"),
    ("crates/comm/src/ctx.rs", "try_recv"),
    ("crates/comm/src/ctx.rs", "recv_tagged_any"),
    ("crates/comm/src/ctx.rs", "encode_for_wire"),
    ("crates/comm/src/ctx.rs", "decode_arrival"),
];

/// The hot-path file set the closure may descend into. Names outside this
/// set resolve to nothing: the boundary is explicit, not accidental.
const HOT_FILES: &[&str] = &[
    "crates/graph/src/ops.rs",
    "crates/graph/src/fused.rs",
    "crates/graph/src/csr.rs",
    "crates/tensor/src/simd.rs",
    "crates/tensor/src/tensor.rs",
    "crates/tensor/src/pool.rs",
    "crates/tensor/src/tier.rs",
    "crates/core/src/seq_agg.rs",
    "crates/core/src/worker.rs",
    "crates/serve/src/engine.rs",
    "crates/comm/src/codec.rs",
    "crates/comm/src/ctx.rs",
    "crates/comm/src/buffer.rs",
];

/// Hash-collection methods whose result order is unordered.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "retain",
];

/// Substrings identifying run-varying value sources in blanked code.
const TIME_SOURCES: &[&str] = &[
    "Instant::now",
    "SystemTime::now",
    "clock_gettime",
    "thread::current",
    "ThreadId",
    "available_parallelism",
];

/// Whether `rel` is inside the hot-path descent set.
fn is_hot(rel: &str) -> bool {
    HOT_FILES.contains(&rel)
}

/// Runs the pass over a workspace checkout.
#[must_use]
pub fn run(root: &Path) -> PassReport {
    run_ws(&Workspace::load(root))
}

/// Identifier tokens (start offset, text) of a blanked body — local copy
/// of the tokenizer so the pass stays independent of `ast` internals.
fn tokens(src: &str) -> Vec<(usize, &str)> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'_' || b.is_ascii_alphabetic() {
            let start = i;
            while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                i += 1;
            }
            out.push((start, &src[start..i]));
        } else if b.is_ascii_digit() {
            while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    out
}

/// First non-whitespace byte at or after `from`.
fn next_nonspace(src: &str, from: usize) -> Option<(usize, u8)> {
    src.as_bytes()[from..]
        .iter()
        .enumerate()
        .find(|(_, b)| !b.is_ascii_whitespace())
        .map(|(off, &b)| (from + off, b))
}

/// Float-typed parameter names parsed out of a blanked signature.
fn float_params(sig: &str) -> Vec<String> {
    let Some(open) = sig.find('(') else {
        return Vec::new();
    };
    let mut depth = 0i32;
    let mut close = sig.len();
    for (i, b) in sig.bytes().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    close = i;
                    break;
                }
            }
            _ => {}
        }
    }
    let mut out = Vec::new();
    for part in split_top_level(&sig[open + 1..close], b',') {
        if let Some((name, ty)) = part.split_once(':') {
            if ty.contains("f32") || ty.contains("f64") {
                let name = name.trim().trim_start_matches("mut ").trim();
                if !name.is_empty() {
                    out.push(name.to_string());
                }
            }
        }
    }
    out
}

/// Splits `text` on `sep` at angle/paren/bracket depth zero.
fn split_top_level(text: &str, sep: u8) -> Vec<&str> {
    let bytes = text.as_bytes();
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'<' | b'(' | b'[' => depth += 1,
            b'>' | b')' | b']' => depth -= 1,
            b if b == sep && depth == 0 => {
                parts.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&text[start..]);
    parts
}

/// Runs the pass over an in-memory workspace model (the mutation-test
/// entry point).
#[must_use]
pub fn run_ws(ws: &Workspace) -> PassReport {
    let mut report = PassReport::new("taint");

    // Root set.
    let mut roots: Vec<usize> = Vec::new();
    for (idx, file) in ws.files.iter().enumerate() {
        if ROOT_FILES.contains(&file.rel.as_str()) {
            roots.extend(ws.files[idx].fns.iter().copied());
        }
    }
    for &(rel, name) in ROOT_FNS {
        for &fi in ws.fns_by_name(name) {
            if ws.file_of(fi).rel == rel {
                roots.push(fi);
            }
        }
    }
    roots.sort_unstable();
    roots.dedup();
    report.bump("taint_roots", roots.len() as u64);

    let closure = ws.closure(&roots, |f| is_hot(&f.rel));
    report.bump("fns_checked", closure.len() as u64);
    let files_in_closure = {
        let mut fs: Vec<usize> = closure.iter().map(|&fi| ws.fns[fi].file).collect();
        fs.sort_unstable();
        fs.dedup();
        fs.len()
    };
    report.bump("files_in_closure", files_in_closure as u64);

    let mut annotations_honored = 0u64;
    for &fi in &closure {
        let f = &ws.fns[fi];
        let file = &ws.files[f.file];
        let fn_accum_exempt = ws.annotation_at(file, f.line, "deterministic");
        let mut used_fn_exempt = false;

        let body_line = |off: usize| line_of(&file.line_starts, f.body_offset + off);
        let toks = tokens(&f.body);

        // Rule: taint-time-source.
        for needle in TIME_SOURCES {
            let mut from = 0;
            while let Some(pos) = f.body[from..].find(needle) {
                let off = from + pos;
                from = off + needle.len();
                report.bump("time_sites_checked", 1);
                let line = body_line(off);
                if let Some(a) = ws.annotation_at(file, line, "deterministic") {
                    let _: &Annotation = a;
                    annotations_honored += 1;
                    continue;
                }
                report.findings.push(Finding {
                    rule: "taint-time-source".into(),
                    location: format!("{}:{line}", file.rel),
                    message: format!(
                        "`{needle}` inside digest-bearing fn `{}` — a run-varying value \
                         on a hot path; if it only feeds metering counters, say so with \
                         `// sar-check: deterministic(metering: …)`",
                        f.name
                    ),
                });
            }
        }

        // Rule: taint-unordered-iter.
        for (ti, &(start, text)) in toks.iter().enumerate() {
            if !file.hash_names.iter().any(|n| n == text) {
                continue;
            }
            let end = start + text.len();
            // `for … in map` (tokens skip `&`/`&mut` sigils).
            let for_loop = ti > 0 && toks[ti - 1].1 == "in";
            // `map.iter()` / `map.drain(…)` / `map.keys()` …
            let method_iter = next_nonspace(&f.body, end).is_some_and(|(dot, b)| {
                b == b'.'
                    && toks.get(ti + 1).is_some_and(|&(mstart, m)| {
                        mstart > dot
                            && ITER_METHODS.contains(&m)
                            && next_nonspace(&f.body, mstart + m.len())
                                .is_some_and(|(_, b)| b == b'(')
                    })
            });
            if !(for_loop || method_iter) {
                continue;
            }
            report.bump("iter_sites_checked", 1);
            let line = body_line(start);
            if ws.annotation_at(file, line, "deterministic").is_some() {
                annotations_honored += 1;
                continue;
            }
            report.findings.push(Finding {
                rule: "taint-unordered-iter".into(),
                location: format!("{}:{line}", file.rel),
                message: format!(
                    "iteration over hash collection `{text}` inside digest-bearing \
                     fn `{}` — HashMap/HashSet order varies per process; use keyed \
                     access, an ordered structure, or annotate the reviewed \
                     determinism argument",
                    f.name
                ),
            });
        }

        // Rule: taint-unordered-accum.
        let mut float_names: Vec<String> = file.float_names.clone();
        float_names.extend(float_params(&f.sig));
        let bytes = f.body.as_bytes();
        for i in 0..bytes.len().saturating_sub(1) {
            let op = matches!(bytes[i], b'+' | b'-' | b'*' | b'/') && bytes[i + 1] == b'=';
            // Exclude `==`-adjacent forms (`!=`, `<=`…) by construction and
            // `->`/`=>`-like sequences by requiring `=` not followed by `=`.
            if !op || bytes.get(i + 2) == Some(&b'=') {
                continue;
            }
            report.bump("accum_sites_checked", 1);
            // LHS: the statement fragment before the operator.
            let stmt_start = f.body[..i]
                .rfind(['\n', ';', '{', '}'])
                .map_or(0, |p| p + 1);
            let lhs = &f.body[stmt_start..i];
            let lhs_floats = tokens(lhs)
                .iter()
                .any(|(_, t)| float_names.iter().any(|n| n == t));
            if !lhs_floats {
                continue;
            }
            let line = body_line(i);
            if fn_accum_exempt.is_some() {
                used_fn_exempt = true;
                continue;
            }
            if ws.annotation_at(file, line, "deterministic").is_some() {
                annotations_honored += 1;
                continue;
            }
            report.findings.push(Finding {
                rule: "taint-unordered-accum".into(),
                location: format!("{}:{line}", file.rel),
                message: format!(
                    "float accumulation `{}=` in digest-bearing fn `{}` without a \
                     determinism annotation — float addition is non-associative; \
                     state the ordering argument with \
                     `// sar-check: deterministic(…)` on the fn",
                    bytes[i] as char, f.name
                ),
            });
        }
        if used_fn_exempt {
            annotations_honored += 1;
        }
    }
    report.bump("deterministic_annotations", annotations_honored);
    report
}

/// Re-exported for the workspace test: whether `rel` is a taint root
/// file (pins the root set against accidental module moves).
#[must_use]
pub fn is_root_file(rel: &str) -> bool {
    ROOT_FILES.contains(&rel)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings_for(sources: &[(&str, &str)]) -> Vec<Finding> {
        run_ws(&Workspace::from_sources(sources)).findings
    }

    #[test]
    fn hash_iteration_in_root_is_flagged_and_annotation_exempts() {
        let bad = "\
fn spmm_sum(g: usize) {
    let order = HashMap::new();
    for (k, v) in order {
        consume(k, v);
    }
}
";
        let findings = findings_for(&[("crates/graph/src/ops.rs", bad)]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "taint-unordered-iter");

        let annotated = "\
fn spmm_sum(g: usize) {
    let order = HashMap::new();
    // sar-check: deterministic(singleton map — one entry by construction)
    for (k, v) in order {
        consume(k, v);
    }
}
";
        assert!(findings_for(&[("crates/graph/src/ops.rs", annotated)]).is_empty());
    }

    #[test]
    fn keyed_hash_access_is_not_flagged() {
        let src = "\
fn encode_block(id: u64) {
    let cache = HashMap::new();
    let hit = cache.get(&id);
    cache.insert(id, 1);
    cache.remove(&id);
    let _ = hit;
}
";
        assert!(findings_for(&[("crates/comm/src/codec.rs", src)]).is_empty());
    }

    #[test]
    fn time_source_reached_through_call_graph_is_flagged() {
        // The violation sits in a helper one call-edge away from the
        // root, in another hot file — proving the closure traversal.
        let root = "fn fetch_rounds() { stamp(); }\n";
        let helper = "fn stamp() { let t = Instant::now(); consume(t); }\n";
        let findings = findings_for(&[
            ("crates/core/src/worker.rs", root),
            ("crates/tensor/src/pool.rs", helper),
        ]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "taint-time-source");
        assert!(findings[0]
            .location
            .starts_with("crates/tensor/src/pool.rs"));

        // Outside the hot-file set the helper is beyond the documented
        // boundary and not analyzed.
        let outside = findings_for(&[
            ("crates/core/src/worker.rs", root),
            ("crates/bench/src/smoke.rs", helper),
        ]);
        assert!(outside.is_empty(), "{outside:?}");
    }

    #[test]
    fn metering_annotation_exempts_time_source() {
        let src = "\
fn replay_tiered() {
    // sar-check: deterministic(metering: feeds disk_blocked_us only, never the digest)
    let begin = Instant::now();
    consume(begin);
}
";
        let report = run_ws(&Workspace::from_sources(&[(
            "crates/core/src/worker.rs",
            src,
        )]));
        assert!(report.clean(), "{:?}", report.findings);
        let honored = report
            .stats
            .iter()
            .find(|(n, _)| n == "deterministic_annotations")
            .map(|(_, v)| *v);
        assert_eq!(honored, Some(1));
    }

    #[test]
    fn unannotated_float_accumulation_is_flagged_fn_annotation_approves() {
        let bad = "\
fn edge_softmax(scores: &mut [f32]) {
    let mut denom = 0.0;
    for s in scores.iter() {
        denom += s;
    }
    consume(denom);
}
";
        let findings = findings_for(&[("crates/graph/src/ops.rs", bad)]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "taint-unordered-accum");

        let approved = "\
// sar-check: deterministic(sequential edge loop — one thread per row, fixed edge order)
fn edge_softmax(scores: &mut [f32]) {
    let mut denom = 0.0;
    for s in scores.iter() {
        denom += s;
    }
    consume(denom);
}
";
        assert!(findings_for(&[("crates/graph/src/ops.rs", approved)]).is_empty());
    }

    #[test]
    fn integer_accumulation_is_untyped_and_never_flagged() {
        let src = "\
fn gather_src(n: usize) {
    let mut count = 0usize;
    for i in 0..n {
        count += i;
    }
    consume(count);
}
";
        assert!(findings_for(&[("crates/graph/src/ops.rs", src)]).is_empty());
    }
}
