//! Pass 3: the workspace invariant linter.
//!
//! A token-level source pass (comments and string literals are blanked
//! first, so matches are real code) over `crates/*/src/**/*.rs` enforcing
//! the project rules the compiler cannot:
//!
//! * `no-panic-path` — no `unwrap()`, `expect()`, `assert!`,
//!   `assert_eq!`, `assert_ne!` in `sar-comm` sources,
//!   `core/src/worker.rs`, or the spill tier `tensor/src/tier.rs`
//!   (outside `#[cfg(test)]`): hot paths report through typed errors
//!   (`TransportError`, `TierError`), or `panic!` with a rank-naming
//!   message at documented panicking entry points. `debug_assert*` is
//!   exempt — it compiles out of release builds.
//! * `safety-comment` — every `unsafe` occurrence (except `unsafe fn`
//!   declarations, which document their contract in a `# Safety` doc
//!   section) carries a `// SAFETY:` comment on the same line or just
//!   above it. Blocks that touch `std::arch` SIMD intrinsics (an `_mm*`
//!   call, an `arch::` path, or a dispatch into the `avx2::` module) or
//!   memory-mapped file IO (`mmap`/`munmap`/`msync`, or any `libc::`
//!   call) are held to a stricter standard: the SAFETY comment is
//!   mandatory and the rule *cannot be waived* for them — a mis-stated
//!   target-feature contract or a stale mapping is undefined behaviour,
//!   not a style choice.
//! * `phase-scope` — any function in `sar-core` that calls the
//!   communication context (`ctx.send_nowait`, `ctx.try_recv`, …) must
//!   open a `phase_scope` (or inspect `current_phase`), so every byte is
//!   attributed to a ledger phase.
//! * `no-unbounded-channel` — no `channel()` / `unbounded()`
//!   construction: queues are bounded so backpressure is explicit. Sites
//!   that are unbounded *by design* (e.g. transport inboxes, where the
//!   send-never-blocks invariant is what makes the rotation schedule
//!   deadlock-free) carry a waiver comment.
//!
//! Any rule can be waived for one line with
//! `// sar-check: allow(<rule>) — <reason>` on that line or the line
//! above; the reason is part of the workspace's audit trail.
//!
//! Waivers are themselves audited (`unused-waiver`): one that no longer
//! suppresses any finding — because the offending code moved, the rule
//! stopped firing there, or it names an unwaivable rule — is a lint
//! error. Only plain `//` comments count as waivers; doc comments and
//! string literals mentioning the syntax (like these docs) do not.

use std::fs;
use std::path::{Path, PathBuf};

use crate::{Finding, PassReport};

/// Replaces comments and string/char literals with spaces (newlines
/// preserved) so token scans never match inside text.
#[must_use]
pub fn blank_comments_and_strings(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0;
    let blank = |out: &mut Vec<u8>, b: u8| out.push(if b == b'\n' { b'\n' } else { b' ' });
    while i < bytes.len() {
        match bytes[i] {
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    blank(&mut out, bytes[i]);
                    i += 1;
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let mut depth = 1;
                blank(&mut out, bytes[i]);
                blank(&mut out, bytes[i + 1]);
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if i + 1 < bytes.len() && bytes[i] == b'/' && bytes[i + 1] == b'*' {
                        depth += 1;
                        blank(&mut out, bytes[i]);
                        blank(&mut out, bytes[i + 1]);
                        i += 2;
                    } else if i + 1 < bytes.len() && bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        depth -= 1;
                        blank(&mut out, bytes[i]);
                        blank(&mut out, bytes[i + 1]);
                        i += 2;
                    } else {
                        blank(&mut out, bytes[i]);
                        i += 1;
                    }
                }
            }
            b'r' if i + 1 < bytes.len() && (bytes[i + 1] == b'"' || bytes[i + 1] == b'#') => {
                // Raw string r"…" / r#"…"#.
                let start = i;
                let mut j = i + 1;
                let mut hashes = 0;
                while j < bytes.len() && bytes[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if j < bytes.len() && bytes[j] == b'"' {
                    j += 1;
                    'raw: while j < bytes.len() {
                        if bytes[j] == b'"' {
                            let mut k = j + 1;
                            let mut seen = 0;
                            while k < bytes.len() && bytes[k] == b'#' && seen < hashes {
                                seen += 1;
                                k += 1;
                            }
                            if seen == hashes {
                                j = k;
                                break 'raw;
                            }
                        }
                        j += 1;
                    }
                    for &b in &bytes[start..j.min(bytes.len())] {
                        blank(&mut out, b);
                    }
                    i = j;
                } else {
                    out.push(bytes[i]);
                    i += 1;
                }
            }
            b'"' => {
                blank(&mut out, bytes[i]);
                i += 1;
                while i < bytes.len() {
                    if bytes[i] == b'\\' && i + 1 < bytes.len() {
                        blank(&mut out, bytes[i]);
                        blank(&mut out, bytes[i + 1]);
                        i += 2;
                    } else if bytes[i] == b'"' {
                        blank(&mut out, bytes[i]);
                        i += 1;
                        break;
                    } else {
                        blank(&mut out, bytes[i]);
                        i += 1;
                    }
                }
            }
            b'\'' => {
                // Char literal vs lifetime: a literal closes within a few
                // bytes ('x' or '\n'); a lifetime has no closing quote.
                let is_char = if i + 2 < bytes.len() && bytes[i + 1] == b'\\' {
                    bytes[i + 3..].first() == Some(&b'\'')
                        || bytes[i + 2..].iter().take(6).any(|&b| b == b'\'')
                } else {
                    i + 2 < bytes.len() && bytes[i + 2] == b'\''
                };
                if is_char {
                    let mut j = i + 1;
                    if j < bytes.len() && bytes[j] == b'\\' {
                        j += 2;
                        while j < bytes.len() && bytes[j] != b'\'' {
                            j += 1;
                        }
                    } else {
                        while j < bytes.len() && bytes[j] != b'\'' {
                            j += 1;
                        }
                    }
                    for &b in &bytes[i..=j.min(bytes.len() - 1)] {
                        blank(&mut out, b);
                    }
                    i = j + 1;
                } else {
                    out.push(bytes[i]);
                    i += 1;
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Additionally blanks every `#[cfg(test)]`-gated item (the attribute's
/// following block), so test-only code is exempt from the rules.
#[must_use]
pub fn blank_test_items(blanked: &str) -> String {
    let mut out = blanked.as_bytes().to_vec();
    let mut from = 0;
    while let Some(pos) = blanked[from..].find("#[cfg(test)]") {
        let attr = from + pos;
        // Find the opening brace of the gated item and blank through its
        // matching close.
        let mut depth = 0usize;
        let mut started = false;
        let bytes = blanked.as_bytes();
        let mut j = attr;
        while j < bytes.len() {
            match bytes[j] {
                b'{' => {
                    depth += 1;
                    started = true;
                }
                b'}' => {
                    depth = depth.saturating_sub(1);
                    if started && depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let end = (j + 1).min(bytes.len());
        for b in &mut out[attr..end] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
        from = end;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// An identifier token and its byte offset in the blanked source.
struct Token<'a> {
    text: &'a str,
    start: usize,
    end: usize,
}

/// Scans `src` (already blanked) for identifier tokens.
fn identifiers(src: &str) -> Vec<Token<'_>> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'_' || b.is_ascii_alphabetic() {
            let start = i;
            while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                i += 1;
            }
            tokens.push(Token {
                text: &src[start..i],
                start,
                end: i,
            });
        } else if b.is_ascii_digit() {
            // Skip numeric literals (and their suffixes) whole.
            while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    tokens
}

/// The full `{ … }` block starting at the first non-space byte at or
/// after `from`, if that byte opens a block (brace-matched on blanked
/// source).
fn block_at(code: &str, from: usize) -> Option<&str> {
    let (open, b) = next_nonspace(code, from)?;
    if b != b'{' {
        return None;
    }
    let bytes = code.as_bytes();
    let mut depth = 0usize;
    let mut k = open;
    while k < bytes.len() {
        match bytes[k] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&code[open..=k]);
                }
            }
            _ => {}
        }
        k += 1;
    }
    None
}

/// Whether an `unsafe` block body reaches `std::arch` SIMD territory:
/// a raw `_mm*` intrinsic, an `arch::` path, or a call into the
/// workspace's `avx2::` dispatch module.
fn is_simd_unsafe(body: &str) -> bool {
    body.contains("_mm") || body.contains("arch::") || body.contains("avx2::")
}

/// Whether an `unsafe` block body reaches memory-mapped file IO: an
/// `mmap`/`munmap`/`msync` call or any other raw `libc::` call. A wrong
/// mapping contract (length, aliasing, lifetime past `munmap`) is
/// undefined behaviour that no test can reliably catch, so these blocks
/// are held to the same unwaivable standard as SIMD dispatch.
fn is_mmap_unsafe(body: &str) -> bool {
    body.contains("mmap") || body.contains("msync") || body.contains("libc::")
}

/// First non-whitespace byte at or after `from`.
fn next_nonspace(src: &str, from: usize) -> Option<(usize, u8)> {
    src.as_bytes()[from..]
        .iter()
        .enumerate()
        .find(|(_, b)| !b.is_ascii_whitespace())
        .map(|(off, &b)| (from + off, b))
}

/// 1-based line number of byte `offset`.
fn line_of(line_starts: &[usize], offset: usize) -> usize {
    match line_starts.binary_search(&offset) {
        Ok(idx) => idx + 1,
        Err(idx) => idx,
    }
}

/// Whether `line` (1-based) carries a waiver for `rule` on itself or the
/// line above, in the *raw* source.
/// One `// sar-check: allow(<rule>)` waiver comment, with use tracking:
/// a waiver that no longer suppresses any finding is itself a lint error
/// (`unused-waiver`), so the audit trail cannot rot as code moves.
struct Waiver {
    /// 1-based line of the waiver comment.
    line: usize,
    /// The waived rule name.
    rule: String,
    /// Whether this waiver suppressed at least one finding.
    used: bool,
}

/// Every waiver of one file. Collected from plain `//` comments only —
/// `///` / `//!` doc prose *mentioning* the syntax (like this module's
/// own docs) is never a waiver, and neither is a string literal.
struct Waivers {
    entries: Vec<Waiver>,
}

impl Waivers {
    fn collect(raw: &str, line_starts: &[usize]) -> Waivers {
        let mut entries = Vec::new();
        for (start, end) in crate::ast::comment_spans(raw) {
            let text = &raw[start..end];
            let Some(pos) = text.find("sar-check: allow(") else {
                continue;
            };
            let rest = &text[pos + "sar-check: allow(".len()..];
            let Some(close) = rest.find(')') else {
                continue;
            };
            let rule = rest[..close].trim().to_string();
            if rule.is_empty() {
                continue;
            }
            entries.push(Waiver {
                line: line_of(line_starts, start),
                rule,
                used: false,
            });
        }
        Waivers { entries }
    }

    /// Whether a waiver for `rule` covers the flagged `line` — on the
    /// line itself, or anywhere in the contiguous comment block directly
    /// above it (multi-line reasons are encouraged). Marks every covering
    /// waiver as used.
    fn check(&mut self, raw_lines: &[&str], line: usize, rule: &str) -> bool {
        let mut covering = vec![line];
        let mut l = line.saturating_sub(1);
        while l >= 1 && l <= raw_lines.len() && raw_lines[l - 1].trim_start().starts_with("//") {
            covering.push(l);
            l -= 1;
        }
        let mut hit = false;
        for w in &mut self.entries {
            if w.rule == rule && covering.contains(&w.line) {
                w.used = true;
                hit = true;
            }
        }
        hit
    }
}

/// One source file prepared for linting.
struct SourceFile {
    /// Path relative to the workspace root (display form).
    rel: String,
    /// Raw text (for SAFETY comments and waivers).
    raw: String,
    /// Comments/strings blanked, test items blanked.
    code: String,
    /// Byte offset of each line start in both `raw` and `code` (equal
    /// lengths by construction).
    line_starts: Vec<usize>,
}

impl SourceFile {
    fn load(root: &Path, path: &Path) -> Option<SourceFile> {
        let raw = fs::read_to_string(path).ok()?;
        let code = blank_test_items(&blank_comments_and_strings(&raw));
        let mut line_starts = vec![0usize];
        for (i, b) in raw.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .display()
            .to_string()
            .replace('\\', "/");
        Some(SourceFile {
            rel,
            raw,
            code,
            line_starts,
        })
    }

    fn raw_lines(&self) -> Vec<&str> {
        self.raw.lines().collect()
    }
}

/// Recursively collects `.rs` files under `dir`.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Whether the `no-panic-path` rule applies to this file: all of
/// `sar-comm`'s sources, the worker hot path in `sar-core`, and the
/// resident serving tier (a panicking rank strands every peer of the
/// rotation mid-protocol, and a serving cluster must outlive bad
/// requests by construction).
fn panic_rule_applies(rel: &str) -> bool {
    rel.starts_with("crates/comm/src/")
        || rel == "crates/core/src/worker.rs"
        || rel.starts_with("crates/serve/src/")
        || rel == "crates/tensor/src/tier.rs"
}

/// Whether the `phase-scope` rule applies: `sar-core` and `sar-serve`
/// sources (the serving engine's MFG exchange is ledger-audited the
/// same way training is — unattributed traffic would corrupt the
/// fetch-byte acceptance bound).
fn phase_rule_applies(rel: &str) -> bool {
    rel.starts_with("crates/core/src/") || rel.starts_with("crates/serve/src/")
}

/// The comm-context methods that must run under a phase scope.
const CTX_COMM_CALLS: &[&str] = &["send_nowait", "try_recv", "send", "recv_tagged_any"];

fn lint_file(file: &SourceFile, report: &mut PassReport) {
    let raw_lines = file.raw_lines();
    let tokens = identifiers(&file.code);
    let mut waivers = Waivers::collect(&file.raw, &file.line_starts);

    for (idx, token) in tokens.iter().enumerate() {
        let line = line_of(&file.line_starts, token.start);
        let here = || format!("{}:{line}", file.rel);

        // Rule: no-panic-path.
        if panic_rule_applies(&file.rel) {
            let next = next_nonspace(&file.code, token.end).map(|(_, b)| b);
            let is_call = matches!(token.text, "unwrap" | "expect") && next == Some(b'(');
            let is_macro =
                matches!(token.text, "assert" | "assert_eq" | "assert_ne") && next == Some(b'!');
            if (is_call || is_macro) && !waivers.check(&raw_lines, line, "no-panic-path") {
                report.findings.push(Finding {
                    rule: "no-panic-path".into(),
                    location: here(),
                    message: format!(
                        "`{}{}` on a comm hot path — return a typed TransportError \
                         (or panic! with a rank-naming message at a documented \
                         panicking entry point)",
                        token.text,
                        if is_macro { "!" } else { "()" }
                    ),
                });
            }
        }

        // Rule: safety-comment.
        if token.text == "unsafe" {
            let next_is_fn = tokens
                .get(idx + 1)
                .is_some_and(|t| t.text == "fn" || t.text == "extern");
            if !next_is_fn {
                // Accept a SAFETY: comment on the same line or within the
                // 8 raw lines above (one comment may cover a short
                // cluster of adjacent unsafe ops).
                let covered = (line.saturating_sub(8)..=line).any(|l| {
                    l >= 1 && l <= raw_lines.len() && raw_lines[l - 1].contains("SAFETY:")
                });
                let body = block_at(&file.code, token.end);
                let simd = body.is_some_and(is_simd_unsafe);
                let mmap = body.is_some_and(is_mmap_unsafe);
                if simd || mmap {
                    // `std::arch` blocks assert a target-feature contract
                    // and mmap blocks assert a mapping contract; no
                    // waiver can substitute for stating it.
                    if !covered {
                        let (what, contract) = if simd {
                            ("`std::arch` SIMD intrinsics", "CPU-feature")
                        } else {
                            ("mmap/file-IO calls", "mapping")
                        };
                        report.findings.push(Finding {
                            rule: "safety-comment".into(),
                            location: here(),
                            message: format!(
                                "`unsafe` block with {what} without a `// SAFETY:` \
                                 comment — state the {contract} contract; this rule \
                                 cannot be waived for such blocks"
                            ),
                        });
                    }
                } else if !covered && !waivers.check(&raw_lines, line, "safety-comment") {
                    report.findings.push(Finding {
                        rule: "safety-comment".into(),
                        location: here(),
                        message: "`unsafe` without a `// SAFETY:` comment justifying \
                                  why the contract holds"
                            .into(),
                    });
                }
            }
        }

        // Rule: no-unbounded-channel.
        if matches!(token.text, "unbounded" | "channel") {
            let after = next_nonspace(&file.code, token.end);
            // A construction site: `channel(...)` or `channel::<T>(...)`.
            // Path segments (`channel::unbounded`, `use …::channel::{…}`)
            // are not flagged — their callsites are.
            let is_ctor = match after {
                Some((_, b'(')) => true,
                Some((pos, b':')) => {
                    file.code.as_bytes().get(pos + 1) == Some(&b':')
                        && file.code.as_bytes().get(pos + 2) == Some(&b'<')
                }
                _ => false,
            };
            if is_ctor && !waivers.check(&raw_lines, line, "no-unbounded-channel") {
                report.findings.push(Finding {
                    rule: "no-unbounded-channel".into(),
                    location: here(),
                    message: format!(
                        "`{}` constructs an unbounded queue — use a bounded channel, \
                         or waive with `// sar-check: allow(no-unbounded-channel)` \
                         and a reason if unboundedness is load-bearing",
                        token.text
                    ),
                });
            }
        }
    }

    // Rule: phase-scope — function granularity.
    if phase_rule_applies(&file.rel) {
        for (name, line, body) in functions(&file.code, &file.line_starts) {
            let normalized: String = body.chars().filter(|c| !c.is_whitespace()).collect();
            let comm_call = CTX_COMM_CALLS
                .iter()
                .find(|call| normalized.contains(&format!("ctx.{call}(")));
            if let Some(call) = comm_call {
                let scoped =
                    normalized.contains("phase_scope(") || normalized.contains("current_phase(");
                if !scoped && !waivers.check(&raw_lines, line, "phase-scope") {
                    report.findings.push(Finding {
                        rule: "phase-scope".into(),
                        location: format!("{}:{line}", file.rel),
                        message: format!(
                            "fn `{name}` calls `ctx.{call}` without opening a \
                             phase_scope — its bytes would be ledgered as Other"
                        ),
                    });
                }
            }
        }
    }

    // Rule: unused-waiver. A waiver that suppressed nothing this run is
    // dead — the offending code moved, the rule stopped firing here, or
    // it waives an unwaivable rule — and a dead waiver is a latent hole:
    // code drifting back under it would be silently exempted.
    report.bump("waivers_tracked", waivers.entries.len() as u64);
    for w in &waivers.entries {
        if !w.used {
            report.findings.push(Finding {
                rule: "unused-waiver".into(),
                location: format!("{}:{}", file.rel, w.line),
                message: format!(
                    "waiver `allow({})` no longer suppresses any finding — delete \
                     it (or fix the rule name) so the audit trail stays honest",
                    w.rule
                ),
            });
        }
    }
}

/// Extracts `(name, line, body)` for every `fn` in blanked source, by
/// brace matching from the declaration.
fn functions<'a>(code: &'a str, line_starts: &[usize]) -> Vec<(String, usize, &'a str)> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for token in identifiers(code) {
        if token.text != "fn" {
            continue;
        }
        let Some(name) = identifiers(&code[token.end..]).into_iter().next() else {
            continue;
        };
        let name_text = name.text.to_string();
        // Find the body's opening brace, skipping the signature. A `;`
        // before any `{` means a bodyless declaration (trait method).
        let mut j = token.end;
        let mut angle = 0i32;
        let mut paren = 0i32;
        let mut open = None;
        while j < bytes.len() {
            match bytes[j] {
                b'<' => angle += 1,
                b'>' => angle -= 1,
                b'(' => paren += 1,
                b')' => paren -= 1,
                b';' if paren == 0 && angle <= 0 => break,
                b'{' if paren == 0 => {
                    open = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(open) = open else {
            continue;
        };
        let mut depth = 0usize;
        let mut k = open;
        while k < bytes.len() {
            match bytes[k] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        out.push((
            name_text,
            line_of(line_starts, token.start),
            &code[open..k.min(bytes.len())],
        ));
    }
    out
}

/// Runs the linter over `root` (the workspace checkout) and reports every
/// finding. Scans `crates/*/src/**/*.rs`; `vendor/` (API stand-ins for
/// the offline build) and `target/` are never scanned.
#[must_use]
pub fn run(root: &Path) -> PassReport {
    let mut report = PassReport::new("lint");
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map(|entries| entries.flatten().map(|e| e.path()).collect())
        .unwrap_or_default();
    crate_dirs.sort();
    let mut files = Vec::new();
    for dir in crate_dirs {
        rust_files(&dir.join("src"), &mut files);
    }
    for path in files {
        let Some(file) = SourceFile::load(root, &path) else {
            continue;
        };
        report.bump("files_scanned", 1);
        lint_file(&file, &mut report);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_module_is_on_the_no_panic_path() {
        // The wire codec runs inside every encoded send/recv; a panic
        // there strands the peer mid-rotation exactly like a transport
        // panic would. Pin it (and the rest of sar-comm) to the rule so
        // a future module move cannot silently drop the coverage.
        assert!(panic_rule_applies("crates/comm/src/codec.rs"));
        assert!(panic_rule_applies("crates/comm/src/transport.rs"));
        assert!(!panic_rule_applies("crates/bench/src/compressbench.rs"));
    }

    #[test]
    fn spill_tier_is_on_the_no_panic_path() {
        // The spill IO path runs under every fault/evict during training;
        // an `unwrap` there turns a full disk into a mesh-wide abort with
        // no rank-naming diagnostic. Pin the tier module to the rule.
        assert!(panic_rule_applies("crates/tensor/src/tier.rs"));
        assert!(!panic_rule_applies("crates/tensor/src/memory.rs"));
    }

    #[test]
    fn blanking_preserves_line_structure() {
        let src = "let a = \"un//wrap()\"; // unwrap()\nlet b = 1;\n";
        let blanked = blank_comments_and_strings(src);
        assert_eq!(blanked.lines().count(), src.lines().count());
        assert!(!blanked.contains("unwrap"));
        assert!(blanked.contains("let b = 1;"));
    }

    #[test]
    fn char_literals_and_lifetimes_survive() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let blanked = blank_comments_and_strings(src);
        assert!(blanked.contains("'a str"));
        assert!(!blanked.contains("'x'"));
    }

    #[test]
    fn test_items_are_exempt() {
        let src =
            "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn b() { y.unwrap(); }\n}\n";
        let code = blank_test_items(&blank_comments_and_strings(src));
        assert!(code.contains("x.unwrap"));
        assert!(!code.contains("y.unwrap"));
    }

    fn mem_file(rel: &str, raw: &str) -> SourceFile {
        let code = blank_test_items(&blank_comments_and_strings(raw));
        let mut line_starts = vec![0usize];
        for (i, b) in raw.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        SourceFile {
            rel: rel.into(),
            raw: raw.into(),
            code,
            line_starts,
        }
    }

    fn lint_source(raw: &str) -> Vec<Finding> {
        let mut report = PassReport::new("lint");
        lint_file(&mem_file("crates/x/src/a.rs", raw), &mut report);
        report.findings
    }

    #[test]
    fn simd_unsafe_blocks_require_safety_and_ignore_waivers() {
        // A waiver does NOT silence the rule for a std::arch block — and
        // since it suppressed nothing, the waiver itself is flagged dead.
        let waived = "fn f() {\n\
                      // sar-check: allow(safety-comment) — trust me\n\
                      unsafe { avx2::add_assign(dst, src) };\n}\n";
        let findings = lint_source(waived);
        assert_eq!(
            findings
                .iter()
                .filter(|f| f.rule == "safety-comment")
                .count(),
            1,
            "{findings:?}"
        );
        assert!(findings
            .iter()
            .any(|f| f.rule == "safety-comment" && f.message.contains("SIMD")));
        assert!(findings.iter().any(|f| f.rule == "unused-waiver"));

        // Raw intrinsics are also recognized.
        let raw_intrinsic = "fn g() { unsafe { core::arch::x86_64::_mm256_setzero_ps() }; }\n";
        assert_eq!(lint_source(raw_intrinsic).len(), 1);

        // A SAFETY comment satisfies the rule.
        let covered = "fn f() {\n\
                       // SAFETY: dispatch guarded by detect_avx2().\n\
                       unsafe { avx2::add_assign(dst, src) };\n}\n";
        assert!(lint_source(covered).is_empty());

        // Non-SIMD unsafe blocks can still be waived as before.
        let generic = "fn f() {\n\
                       // sar-check: allow(safety-comment) — audited\n\
                       unsafe { ptr.read() };\n}\n";
        assert!(lint_source(generic).is_empty());
    }

    #[test]
    fn mmap_unsafe_blocks_require_safety_and_ignore_waivers() {
        // A waiver does NOT silence the rule for a mapped-IO block: the
        // mapping contract (bounds, aliasing, lifetime) must be stated.
        let waived = "fn f() {\n\
                      // sar-check: allow(safety-comment) — trust me\n\
                      unsafe { libc::munmap(self.base, self.cap) };\n}\n";
        let findings = lint_source(waived);
        assert_eq!(
            findings
                .iter()
                .filter(|f| f.rule == "safety-comment")
                .count(),
            1,
            "{findings:?}"
        );
        let safety = findings
            .iter()
            .find(|f| f.rule == "safety-comment")
            .unwrap();
        assert!(safety.message.contains("mmap"));
        assert!(safety.message.contains("mapping"));
        assert!(findings.iter().any(|f| f.rule == "unused-waiver"));

        // Any raw libc call is held to the same standard.
        let raw_libc = "fn g() { let p = unsafe { libc::mmap(core::ptr::null_mut(), \
                        len, prot, flags, fd, 0) }; }\n";
        assert_eq!(lint_source(raw_libc).len(), 1);

        // A SAFETY comment satisfies the rule.
        let covered = "fn f() {\n\
                       // SAFETY: base/cap come from a successful mmap of this fd;\n\
                       // no views outlive the store (checked by the borrow above).\n\
                       unsafe { libc::munmap(self.base, self.cap) };\n}\n";
        assert!(lint_source(covered).is_empty());
    }

    #[test]
    fn waivers_are_audited_in_both_directions() {
        // Direction 1: a waiver that suppresses a real finding is "used" and
        // produces no output at all — neither the waived rule nor the audit.
        let used = "fn f(tx: Sender<u8>) {\n\
                    // sar-check: allow(no-unbounded-channel) — drained every tick\n\
                    let (tx, rx) = std::sync::mpsc::channel();\n}\n";
        assert!(lint_source(used).is_empty(), "{:?}", lint_source(used));

        // Direction 2: a waiver that suppresses nothing (here: misspelled
        // rule name, so the real finding fires AND the waiver is dead) is
        // itself reported, anchored at the waiver's own line.
        let stale = "fn f(tx: Sender<u8>) {\n\
                     // sar-check: allow(no-unbounded-chanel) — typo'd rule\n\
                     let (tx, rx) = std::sync::mpsc::channel();\n}\n";
        let findings = lint_source(stale);
        let dead: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == "unused-waiver")
            .collect();
        assert_eq!(dead.len(), 1, "{findings:?}");
        assert!(dead[0].location.ends_with(":2"), "{:?}", dead[0].location);
        assert!(dead[0].message.contains("no-unbounded-chanel"));
        // ...and the unwaived rule still fires.
        assert!(findings
            .iter()
            .any(|f| f.rule == "no-unbounded-channel" && f.location.ends_with(":3")));

        // A waiver inside a doc comment or string literal is documentation,
        // not a live waiver — it is never collected, so never "unused".
        let doc_only = "/// Use `// sar-check: allow(no-unbounded-channel)` to waive.\n\
                        fn f() {}\n";
        assert!(lint_source(doc_only).is_empty());
    }

    #[test]
    fn functions_are_extracted_with_bodies() {
        let code = "impl A { fn one(&self) -> usize { self.x } }\nfn two() { call(); }\n";
        let fns = functions(code, &[0]);
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].0, "one");
        assert!(fns[1].2.contains("call()"));
    }
}
