//! A lightweight whole-workspace Rust source model for the dataflow
//! passes ([`crate::taint`], [`crate::ledgercheck`]).
//!
//! This is *not* a Rust parser — it is a deliberately small item/function/
//! block extractor over comment-and-string-blanked source (reusing the
//! linter's blanking machinery), plus a name-based call graph. The
//! workspace is offline, so depending on `rustc` internals or `syn` is not
//! an option; the model over-approximates instead: a call `foo(…)`
//! resolves to *every* workspace function named `foo`. Passes that walk
//! the graph therefore see a superset of the true reachable set, which is
//! the safe direction for taint-style analyses (nothing real escapes; the
//! cost is that an exempting annotation may occasionally be demanded on a
//! function only spuriously reachable).
//!
//! Beyond functions and calls the model extracts **annotations**: workspace
//! comments of the form `sar-check: <key>(<argument>)` attached to a line
//! or to the declaration they precede. The taint pass consumes
//! `deterministic(<why>)` annotations — a reviewed claim that a flagged
//! construct is deterministic (one writer per row, fixed rank order,
//! metering-only time) — which are deliberately distinct from lint
//! waivers (`allow(<rule>)`): a waiver silences a style rule, an
//! annotation states a proof obligation discharged by review.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};

use crate::lint::{blank_comments_and_strings, blank_test_items};

/// A `sar-check: <key>(<arg>)` comment found in a source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Annotation {
    /// Annotation kind (e.g. `deterministic`). Never `allow` — waivers
    /// belong to the linter.
    pub key: String,
    /// The parenthesized argument: the reviewed justification.
    pub arg: String,
    /// 1-based line the annotation comment sits on.
    pub line: usize,
}

/// One function extracted from a source file.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Bare function name (no path, no impl qualifier).
    pub name: String,
    /// Index of the declaring file in [`Workspace::files`].
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Blanked signature text between `fn` and the body's `{`.
    pub sig: String,
    /// Blanked body text, braces included.
    pub body: String,
    /// Byte offset of the body's opening brace in the file's blanked code.
    pub body_offset: usize,
    /// Bare names this body calls (`ident(` and `.ident(` sites), deduped.
    pub calls: Vec<String>,
}

/// One source file in the model.
#[derive(Debug, Clone)]
pub struct FileInfo {
    /// Path relative to the workspace root.
    pub rel: String,
    /// Raw text (annotations, waivers, SAFETY comments live here).
    pub raw: String,
    /// Comments/strings blanked and `#[cfg(test)]` items blanked.
    pub code: String,
    /// Byte offset of each line start (shared by `raw` and `code`).
    pub line_starts: Vec<usize>,
    /// Indices into [`Workspace::fns`] of the functions declared here.
    pub fns: Vec<usize>,
    /// Every `sar-check:` annotation in the file (key ≠ `allow`).
    pub annotations: Vec<Annotation>,
    /// Identifiers declared with a float-bearing type anywhere in the
    /// file (`name: f32`, `name: &mut [f32]`, `name: Vec<f64>`, …) —
    /// struct fields and parameters merged, an over-approximation used to
    /// type `+=` targets.
    pub float_names: Vec<String>,
    /// Identifiers declared with a `HashMap`/`HashSet` type anywhere in
    /// the file — used to type iteration receivers.
    pub hash_names: Vec<String>,
}

/// The whole-workspace model: every file, every function, and a
/// name-based call graph.
#[derive(Debug, Default)]
pub struct Workspace {
    /// All scanned files.
    pub files: Vec<FileInfo>,
    /// All extracted functions.
    pub fns: Vec<FnInfo>,
    by_name: HashMap<String, Vec<usize>>,
}

/// Keywords that look like call heads but are not calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "match", "while", "for", "loop", "return", "in", "as", "fn", "let", "move", "else",
    "unsafe", "ref", "mut", "dyn", "impl", "where", "use", "pub", "crate", "self", "Self", "super",
    "break", "continue",
];

/// 1-based line number of byte `offset` given sorted line starts.
#[must_use]
pub fn line_of(line_starts: &[usize], offset: usize) -> usize {
    match line_starts.binary_search(&offset) {
        Ok(idx) => idx + 1,
        Err(idx) => idx,
    }
}

/// Identifier tokens (text, start offset) of blanked source.
fn tokens(src: &str) -> Vec<(usize, &str)> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'_' || b.is_ascii_alphabetic() {
            let start = i;
            while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                i += 1;
            }
            out.push((start, &src[start..i]));
        } else if b.is_ascii_digit() {
            // Skip numeric literals (and suffixes) whole.
            while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    out
}

/// First non-whitespace byte at or after `from`.
fn next_nonspace(src: &str, from: usize) -> Option<(usize, u8)> {
    src.as_bytes()[from..]
        .iter()
        .enumerate()
        .find(|(_, b)| !b.is_ascii_whitespace())
        .map(|(off, &b)| (from + off, b))
}

/// Spans of plain `//` line comments (excluding `///` and `//!` doc
/// comments, which are prose, not directives) in raw source.
#[must_use]
pub fn comment_spans(raw: &str) -> Vec<(usize, usize)> {
    let bytes = raw.as_bytes();
    let mut spans = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                let doc = matches!(bytes.get(i + 2), Some(&b'/') | Some(&b'!'));
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                if !doc {
                    spans.push((start, i));
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'r' if matches!(bytes.get(i + 1), Some(&b'"') | Some(&b'#')) => {
                // Raw string r"…" / r#"…"# — skip to the matching close.
                let mut j = i + 1;
                let mut hashes = 0usize;
                while j < bytes.len() && bytes[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if bytes.get(j) == Some(&b'"') {
                    j += 1;
                    while j < bytes.len() {
                        if bytes[j] == b'"' {
                            let mut k = j + 1;
                            let mut seen = 0usize;
                            while k < bytes.len() && bytes[k] == b'#' && seen < hashes {
                                seen += 1;
                                k += 1;
                            }
                            if seen == hashes {
                                j = k;
                                break;
                            }
                        }
                        j += 1;
                    }
                    i = j;
                } else {
                    i += 1;
                }
            }
            b'"' => {
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
            }
            b'\'' => {
                // Char literal vs lifetime: a literal closes within a few
                // bytes; a lifetime has no closing quote.
                let is_char = if bytes.get(i + 1) == Some(&b'\\') {
                    bytes[i + 2..].iter().take(6).any(|&b| b == b'\'')
                } else {
                    bytes.get(i + 2) == Some(&b'\'')
                };
                if is_char {
                    i += 2;
                    while i < bytes.len() && bytes[i] != b'\'' {
                        i += 1;
                    }
                    i += 1;
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    spans
}

/// Parses every `sar-check: <key>(<arg>)` directive (key ≠ `allow`) out of
/// the file's plain comments.
fn parse_annotations(raw: &str, line_starts: &[usize]) -> Vec<Annotation> {
    let mut out = Vec::new();
    for (start, end) in comment_spans(raw) {
        let text = &raw[start..end];
        let Some(pos) = text.find("sar-check:") else {
            continue;
        };
        let rest = text[pos + "sar-check:".len()..].trim_start();
        let Some(open) = rest.find('(') else {
            continue;
        };
        let key = rest[..open].trim();
        if key.is_empty()
            || key == "allow"
            || !key
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            continue;
        }
        // The rationale may wrap onto following comment lines; the close
        // paren is then not on this line. Take what is here — only the key
        // carries checker semantics, the arg is the human-reviewed why.
        let arg = match rest.rfind(')') {
            Some(close) if close > open => &rest[open + 1..close],
            _ => rest[open + 1..].trim_end(),
        };
        out.push(Annotation {
            key: key.to_string(),
            arg: arg.to_string(),
            line: line_of(line_starts, start),
        });
    }
    out
}

/// Whether a declared type / initializer text is float-bearing.
fn is_float_type(text: &str) -> bool {
    text.contains("f32") || text.contains("f64")
}

/// Whether a declared type / initializer text is an unordered hash
/// collection.
fn is_hash_type(text: &str) -> bool {
    text.contains("HashMap") || text.contains("HashSet")
}

/// Collects `name: Type` declarations (fields and parameters alike) whose
/// type text is float-bearing or hash-typed. Line-based heuristic over
/// blanked code: good enough for the workspace's rustfmt'd layout.
fn collect_typed_names(code: &str) -> (Vec<String>, Vec<String>) {
    let mut float_names = Vec::new();
    let mut hash_names = Vec::new();
    for line in code.lines() {
        let trimmed = line.trim_start();
        // `let [mut] name = HashMap::new()` / `let mut acc = 0.0f32;`
        if let Some(rest) = trimmed.strip_prefix("let ") {
            let rest = rest.strip_prefix("mut ").unwrap_or(rest);
            let name: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if name.is_empty() {
                continue;
            }
            let tail = &rest[name.len()..];
            if is_hash_type(tail) {
                hash_names.push(name.clone());
            }
            // Float if typed so, initialized with a float literal, or
            // bound to a known float accessor of the tensor types.
            let float_hint = [
                ".row_mut(",
                ".data_mut(",
                ".as_mut_slice(",
                ".row(",
                ".data(",
            ]
            .iter()
            .any(|h| tail.contains(h));
            if is_float_type(tail) || has_float_literal(tail) || float_hint {
                float_names.push(name);
            }
            continue;
        }
        // `name: Type,` — struct fields and fn parameters.
        let name: String = trimmed
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if name.is_empty() {
            continue;
        }
        let tail = trimmed[name.len()..].trim_start();
        // Require a type-position colon (not `::` path separator).
        if let Some(ty) = tail.strip_prefix(':') {
            if ty.starts_with(':') {
                continue;
            }
            if is_hash_type(ty) {
                hash_names.push(name.clone());
            }
            if is_float_type(ty) {
                float_names.push(name);
            }
        }
    }
    float_names.sort();
    float_names.dedup();
    hash_names.sort();
    hash_names.dedup();
    (float_names, hash_names)
}

/// Whether `text` contains a float literal (`0.0`, `1.5e-3`, …).
#[must_use]
pub fn has_float_literal(text: &str) -> bool {
    let bytes = text.as_bytes();
    bytes.iter().enumerate().any(|(i, &b)| {
        b == b'.'
            && i > 0
            && bytes[i - 1].is_ascii_digit()
            && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
    })
}

/// Extracts every `fn` (name, decl line, signature, body, calls) from
/// blanked code. Bodyless declarations (trait methods) are skipped.
fn extract_fns(code: &str, line_starts: &[usize]) -> Vec<(String, usize, String, usize, String)> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for (start, text) in tokens(code) {
        if text != "fn" {
            continue;
        }
        // `fn` must be a standalone keyword (tokens() guarantees word
        // boundaries, but reject `fn` inside a path like `fn_ptr` — the
        // tokenizer already splits on `_`-joined words correctly).
        let after = start + 2;
        let Some((name_start, name)) = tokens(&code[after..])
            .into_iter()
            .next()
            .map(|(off, t)| (after + off, t.to_string()))
        else {
            continue;
        };
        // The name must directly follow `fn` (only whitespace between).
        if code[after..name_start]
            .bytes()
            .any(|b| !b.is_ascii_whitespace())
        {
            continue;
        }
        // Walk the signature to the body's `{` (a `;` first ⇒ bodyless).
        let mut j = name_start;
        let mut paren = 0i32;
        let mut open = None;
        while j < bytes.len() {
            match bytes[j] {
                b'(' => paren += 1,
                b')' => paren -= 1,
                b';' if paren == 0 => break,
                b'{' if paren == 0 => {
                    open = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(open) = open else { continue };
        let mut depth = 0usize;
        let mut k = open;
        while k < bytes.len() {
            match bytes[k] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        let body_end = (k + 1).min(bytes.len());
        let sig_start = name_start + name.len();
        out.push((
            name,
            line_of(line_starts, start),
            code[sig_start..open].to_string(),
            open,
            code[open..body_end].to_string(),
        ));
    }
    out
}

/// Bare call names in a blanked body: `ident(` and `.ident(` sites,
/// excluding keywords, macro invocations (`ident!`), and the body's own
/// nested `fn` names.
fn extract_calls(body: &str) -> Vec<String> {
    let mut calls = Vec::new();
    let toks = tokens(body);
    for (idx, &(start, text)) in toks.iter().enumerate() {
        if NON_CALL_KEYWORDS.contains(&text) {
            continue;
        }
        // Skip the name in a nested `fn name(` declaration. Macro
        // invocations (`ident!`) fail the `(`-follows test on their own.
        if idx > 0 && toks[idx - 1].1 == "fn" {
            continue;
        }
        if next_nonspace(body, start + text.len()).is_some_and(|(_, b)| b == b'(') {
            calls.push(text.to_string());
        }
    }
    calls.sort();
    calls.dedup();
    calls
}

impl Workspace {
    /// Builds the model from in-memory `(relative path, source)` pairs —
    /// the mutation-test entry point.
    #[must_use]
    pub fn from_sources(sources: &[(&str, &str)]) -> Workspace {
        let mut ws = Workspace::default();
        for &(rel, raw) in sources {
            ws.add_file(rel.to_string(), raw.to_string());
        }
        ws
    }

    /// Builds the model from a workspace checkout, scanning
    /// `crates/*/src/**/*.rs` exactly as the linter does.
    #[must_use]
    pub fn load(root: &Path) -> Workspace {
        let mut ws = Workspace::default();
        let crates_dir = root.join("crates");
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
            .map(|entries| entries.flatten().map(|e| e.path()).collect())
            .unwrap_or_default();
        crate_dirs.sort();
        let mut files = Vec::new();
        for dir in crate_dirs {
            rust_files(&dir.join("src"), &mut files);
        }
        for path in files {
            let Ok(raw) = fs::read_to_string(&path) else {
                continue;
            };
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .display()
                .to_string()
                .replace('\\', "/");
            ws.add_file(rel, raw);
        }
        ws
    }

    fn add_file(&mut self, rel: String, raw: String) {
        let code = blank_test_items(&blank_comments_and_strings(&raw));
        let mut line_starts = vec![0usize];
        for (i, b) in raw.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let annotations = parse_annotations(&raw, &line_starts);
        let (float_names, hash_names) = collect_typed_names(&code);
        let file_idx = self.files.len();
        let mut fn_indices = Vec::new();
        for (name, line, sig, body_offset, body) in extract_fns(&code, &line_starts) {
            let fn_idx = self.fns.len();
            let calls = extract_calls(&body);
            self.by_name.entry(name.clone()).or_default().push(fn_idx);
            self.fns.push(FnInfo {
                name,
                file: file_idx,
                line,
                sig,
                body,
                body_offset,
                calls,
            });
            fn_indices.push(fn_idx);
        }
        self.files.push(FileInfo {
            rel,
            raw,
            code,
            line_starts,
            fns: fn_indices,
            annotations,
            float_names,
            hash_names,
        });
    }

    /// Every function named `name`, across all files.
    #[must_use]
    pub fn fns_by_name(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The file declaring function `fi`.
    #[must_use]
    pub fn file_of(&self, fi: usize) -> &FileInfo {
        &self.files[self.fns[fi].file]
    }

    /// Breadth-first call-graph closure from `roots`, descending only
    /// into functions whose declaring file satisfies `allowed`. Returns
    /// function indices in deterministic (BFS, index-sorted) order.
    #[must_use]
    pub fn closure(&self, roots: &[usize], allowed: impl Fn(&FileInfo) -> bool) -> Vec<usize> {
        let mut seen = vec![false; self.fns.len()];
        let mut queue: Vec<usize> = Vec::new();
        for &r in roots {
            if !seen[r] {
                seen[r] = true;
                queue.push(r);
            }
        }
        let mut head = 0;
        while head < queue.len() {
            let fi = queue[head];
            head += 1;
            let mut targets: Vec<usize> = self.fns[fi]
                .calls
                .iter()
                .flat_map(|name| self.fns_by_name(name).iter().copied())
                .filter(|&t| !seen[t] && allowed(self.file_of(t)))
                .collect();
            targets.sort_unstable();
            targets.dedup();
            for t in targets {
                seen[t] = true;
                queue.push(t);
            }
        }
        queue.sort_unstable();
        queue
    }

    /// The annotation with `key` covering `line` of file `file`: on the
    /// line itself or in the contiguous comment/attribute block directly
    /// above it.
    #[must_use]
    pub fn annotation_at<'a>(
        &'a self,
        file: &'a FileInfo,
        line: usize,
        key: &str,
    ) -> Option<&'a Annotation> {
        let raw_lines: Vec<&str> = file.raw.lines().collect();
        let hit = |l: usize| {
            file.annotations
                .iter()
                .find(|a| a.line == l && a.key == key)
        };
        if let Some(a) = hit(line) {
            return Some(a);
        }
        let mut l = line.saturating_sub(1);
        while l >= 1 && l <= raw_lines.len() {
            let t = raw_lines[l - 1].trim_start();
            if t.starts_with("//") || t.starts_with("#[") {
                if let Some(a) = hit(l) {
                    return Some(a);
                }
                l -= 1;
            } else {
                break;
            }
        }
        None
    }
}

/// Recursively collects `.rs` files under `dir`, sorted for determinism.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fns_and_calls_are_extracted() {
        let ws = Workspace::from_sources(&[(
            "crates/x/src/a.rs",
            "fn root() { helper(1); other.method(); }\nfn helper(v: usize) -> usize { v }\n",
        )]);
        assert_eq!(ws.fns.len(), 2);
        assert_eq!(ws.fns[0].name, "root");
        assert_eq!(
            ws.fns[0].calls,
            vec!["helper".to_string(), "method".to_string()]
        );
        assert_eq!(ws.fns[1].sig.trim(), "(v: usize) -> usize");
    }

    #[test]
    fn call_closure_follows_names_and_respects_file_filter() {
        let ws = Workspace::from_sources(&[
            ("crates/x/src/a.rs", "fn root() { helper(); }\n"),
            (
                "crates/x/src/b.rs",
                "fn helper() { deep(); }\nfn deep() {}\n",
            ),
            (
                "crates/y/src/c.rs",
                "fn deep() { excluded(); }\nfn excluded() {}\n",
            ),
        ]);
        let roots = ws.fns_by_name("root").to_vec();
        let all = ws.closure(&roots, |_| true);
        assert_eq!(all.len(), 5, "both `deep`s and `excluded` resolve");
        let scoped = ws.closure(&roots, |f| f.rel.starts_with("crates/x/"));
        let names: Vec<&str> = scoped.iter().map(|&fi| ws.fns[fi].name.as_str()).collect();
        assert_eq!(names, vec!["root", "helper", "deep"]);
    }

    #[test]
    fn annotations_are_parsed_from_plain_comments_only() {
        let src = "\
//! Doc prose: `sar-check: deterministic(not this)` is ignored.
// sar-check: deterministic(one writer per row)
fn kernel() {}
fn plain() {
    let s = \"sar-check: deterministic(in a string)\";
    let _ = s;
}
";
        let ws = Workspace::from_sources(&[("crates/x/src/a.rs", src)]);
        let file = &ws.files[0];
        assert_eq!(file.annotations.len(), 1);
        assert_eq!(file.annotations[0].key, "deterministic");
        assert_eq!(file.annotations[0].arg, "one writer per row");
        let kernel_line = ws.fns[0].line;
        assert!(ws
            .annotation_at(file, kernel_line, "deterministic")
            .is_some());
        let plain_line = ws.fns[1].line;
        assert!(ws
            .annotation_at(file, plain_line, "deterministic")
            .is_none());
    }

    #[test]
    fn typed_names_capture_floats_and_hash_collections() {
        let src = "\
struct S {
    acc: Vec<f32>,
    pending: HashMap<u64, usize>,
}
fn f() {
    let mut dot = 0.0;
    let mut count = 0usize;
    let seen = HashSet::new();
    let _ = (dot, count, seen);
}
";
        let ws = Workspace::from_sources(&[("crates/x/src/a.rs", src)]);
        let file = &ws.files[0];
        assert!(file.float_names.contains(&"acc".to_string()));
        assert!(file.float_names.contains(&"dot".to_string()));
        assert!(!file.float_names.contains(&"count".to_string()));
        assert!(file.hash_names.contains(&"pending".to_string()));
        assert!(file.hash_names.contains(&"seen".to_string()));
    }

    #[test]
    fn comment_spans_skip_doc_comments_and_strings() {
        let src = "/// doc\n//! inner\n// plain\nlet s = \"// not a comment\";\n";
        let spans = comment_spans(src);
        assert_eq!(spans.len(), 1);
        assert_eq!(&src[spans[0].0..spans[0].1], "// plain");
    }
}
