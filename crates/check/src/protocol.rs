//! Pass 1: the protocol verifier.
//!
//! Builds, for every rank at once, the full symbolic send/recv/barrier
//! program of one training step — forward fetch rounds plus backward
//! gradient routing, in both of the paper's communication models — from
//! the *same* pure schedules ([`sar_core::plan`]) that
//! [`Worker`](sar_core::Worker) executes, then proves three properties by
//! exhaustive symbolic execution:
//!
//! * **Matching** — every send is consumed by exactly one receive with
//!   the same `(src, dst, tag)`; nothing is left in flight at the end.
//! * **Deadlock-freedom** — the program set runs to completion. Sends are
//!   non-blocking (both transports queue them without waiting) and each
//!   `(src, dst, tag)` triple is unique within an exchange, so the
//!   simulation is confluent: one maximal run completing proves *every*
//!   schedule completes, and a stall identifies a genuine wait-cycle,
//!   which is reported rank by rank.
//! * **Residency** — at most `min(K, N−1) + 1 ≤ K + 1` fetched blocks are
//!   staged per worker at any step; with the local partition that is the
//!   paper's `(K+2)/N` memory bound.
//! * **Out-of-core residency** — the communication-free stale-epoch
//!   replay out of the disk tier ([`build_tiered_program`], mirroring
//!   `Worker::replay_tiered`) walks the *same* depth-K schedule with
//!   `Fetch` reinterpreted as a disk fault and `Serve` as a no-op, and
//!   keeps at most `min(K, N−1) + 2 ≤ K + 2` blocks in RAM (staged
//!   blocks plus the accumulator) with the remainder spilled: every
//!   fault hits a block actually on disk, every faulted block returns to
//!   the tier after consumption, and every source rank is consumed
//!   exactly once in rotation order.

use std::collections::{HashMap, VecDeque};

use sar_core::plan::{self, FetchStep, GradStep};

use crate::{Finding, PassReport};

/// Which of the paper's two communication models the backward pass uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseModel {
    /// Case 1 (GraphSage): the backward pass routes gradients only — no
    /// refetch of remote features.
    Case1,
    /// Case 2 (GAT): the backward pass refetches remote features (to
    /// rematerialize attention) *and* routes gradients.
    Case2,
}

impl CaseModel {
    /// Stable name used in report locations.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CaseModel::Case1 => "case1",
            CaseModel::Case2 => "case2",
        }
    }
}

/// One symbolic operation of a rank's communication program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Non-blocking send to `dst` under `tag`.
    Send {
        /// Destination rank.
        dst: usize,
        /// Message tag.
        tag: u64,
    },
    /// Blocking receive from `src` under `tag`. Whether the received
    /// payload counts against residency is expressed by a following
    /// [`Op::Stage`] — fetched feature blocks are staged, routed gradient
    /// blocks are accumulated immediately and are not.
    Recv {
        /// Source rank.
        src: usize,
        /// Message tag.
        tag: u64,
    },
    /// Stage a block (the round-0 local gather, or a just-fetched remote
    /// block) — residency +1.
    Stage,
    /// Consume the oldest staged block — residency −1.
    Consume,
    /// Synchronize with all ranks (epoch boundary).
    Barrier {
        /// Barrier sequence number; must agree across ranks.
        id: u64,
    },
}

/// One rank's complete program for a training step.
#[derive(Debug, Clone)]
pub struct Program {
    /// The rank executing `ops`.
    pub rank: usize,
    /// Operations in program order.
    pub ops: Vec<Op>,
}

/// Appends the ops of one pipelined fetch exchange (Algorithm 1) to
/// `ops`, translating the pure plan one step at a time.
fn push_fetch_exchange(ops: &mut Vec<Op>, n: usize, p: usize, k: usize, tag: u64) {
    for step in plan::fetch_steps(n, p, k) {
        match step {
            FetchStep::GatherLocal => ops.push(Op::Stage),
            FetchStep::Serve { dst, .. } => ops.push(Op::Send { dst, tag }),
            FetchStep::Fetch { src, .. } => {
                ops.push(Op::Recv { src, tag });
                ops.push(Op::Stage);
            }
            FetchStep::Consume { .. } => ops.push(Op::Consume),
        }
    }
}

/// Appends the ops of one gradient-routing exchange (Algorithm 2).
fn push_grad_exchange(ops: &mut Vec<Op>, n: usize, p: usize, tag: u64) {
    for step in plan::grad_steps(n, p) {
        match step {
            GradStep::AccumulateLocal => {}
            GradStep::Send { dst } => ops.push(Op::Send { dst, tag }),
            GradStep::Recv { src } => ops.push(Op::Recv { src, tag }),
        }
    }
}

/// Builds every rank's program for one `layers`-layer training step in
/// the given communication model, with pipeline depth `k`. Tags are
/// allocated the way [`Worker`](sar_core::Worker) allocates them — one
/// fresh tag per exchange, in SPMD order, so all ranks agree.
#[must_use]
pub fn build_programs(n: usize, k: usize, model: CaseModel, layers: usize) -> Vec<Program> {
    (0..n)
        .map(|p| {
            let mut ops = Vec::new();
            let mut tag = 0u64;
            // Forward: one fetch exchange per layer.
            for _ in 0..layers {
                push_fetch_exchange(&mut ops, n, p, k, tag);
                tag += 1;
            }
            // Backward, deepest layer first.
            for _ in 0..layers {
                if model == CaseModel::Case2 {
                    // Rematerialization refetch (runs the same rotation
                    // exchange under the BackwardRefetch phase).
                    push_fetch_exchange(&mut ops, n, p, k, tag);
                    tag += 1;
                }
                push_grad_exchange(&mut ops, n, p, tag);
                tag += 1;
            }
            // Epoch boundary.
            ops.push(Op::Barrier { id: 0 });
            Program { rank: p, ops }
        })
        .collect()
}

/// What the symbolic execution measured on a clean run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProofStats {
    /// Total sends executed across ranks.
    pub sends: u64,
    /// Total receives executed across ranks.
    pub recvs: u64,
    /// Maximum staged blocks resident on any rank at any step.
    pub peak_staged: usize,
    /// Total operations executed.
    pub steps: u64,
}

/// Symbolically executes `programs` and checks matching, deadlock-freedom
/// and the staged-block bound (`peak ≤ staged_bound`). Returns the run's
/// measurements plus every violated property.
///
/// Accepts *arbitrary* programs — not just ones from [`build_programs`] —
/// so seeding a violation (dropping a recv, say) demonstrably fails.
#[must_use]
pub fn verify(n: usize, programs: &[Program], staged_bound: usize) -> (ProofStats, Vec<Finding>) {
    let mut findings = Vec::new();
    let mut stats = ProofStats::default();
    let mut pc = vec![0usize; programs.len()];
    let mut staged = vec![0usize; programs.len()];
    // In-flight (src, dst, tag) → multiplicity.
    let mut inflight: HashMap<(usize, usize, u64), u64> = HashMap::new();

    let location = |p: usize, i: usize| format!("rank {p} op {i}");

    loop {
        let mut progressed = false;
        for (idx, prog) in programs.iter().enumerate() {
            let p = prog.rank;
            // Run this rank to its next blocking point.
            while let Some(&op) = prog.ops.get(pc[idx]) {
                match op {
                    Op::Send { dst, tag } => {
                        if dst >= n {
                            findings.push(Finding {
                                rule: "matched-send-recv".into(),
                                location: location(p, pc[idx]),
                                message: format!("send to rank {dst} outside world of {n}"),
                            });
                        }
                        *inflight.entry((p, dst, tag)).or_insert(0) += 1;
                        stats.sends += 1;
                    }
                    Op::Recv { src, tag } => {
                        match inflight.get_mut(&(src, p, tag)) {
                            Some(count) => {
                                *count -= 1;
                                if *count == 0 {
                                    inflight.remove(&(src, p, tag));
                                }
                                stats.recvs += 1;
                            }
                            // Message not in flight yet: block here.
                            None => break,
                        }
                    }
                    Op::Stage => {
                        staged[idx] += 1;
                        stats.peak_staged = stats.peak_staged.max(staged[idx]);
                    }
                    Op::Consume => {
                        if staged[idx] == 0 {
                            findings.push(Finding {
                                rule: "residency-bound".into(),
                                location: location(p, pc[idx]),
                                message: "consume with no staged block (pipeline underrun)".into(),
                            });
                        } else {
                            staged[idx] -= 1;
                        }
                    }
                    // Barriers are resolved globally below.
                    Op::Barrier { .. } => break,
                }
                pc[idx] += 1;
                stats.steps += 1;
                progressed = true;
                if staged[idx] > staged_bound {
                    findings.push(Finding {
                        rule: "residency-bound".into(),
                        location: location(p, pc[idx]),
                        message: format!(
                            "{} staged blocks resident, bound is {staged_bound} \
                             (min(K, N-1) + 1)",
                            staged[idx]
                        ),
                    });
                }
            }
        }

        // Barrier resolution: all ranks waiting at a barrier with one id
        // advance together.
        let at_barrier: Vec<Option<u64>> = programs
            .iter()
            .enumerate()
            .map(|(idx, prog)| match prog.ops.get(pc[idx]) {
                Some(Op::Barrier { id }) => Some(*id),
                _ => None,
            })
            .collect();
        if at_barrier.iter().all(Option::is_some) && !at_barrier.is_empty() {
            let ids: Vec<u64> = at_barrier.iter().map(|id| id.expect("checked")).collect();
            if ids.windows(2).all(|w| w[0] == w[1]) {
                for (idx, _) in programs.iter().enumerate() {
                    pc[idx] += 1;
                    stats.steps += 1;
                }
                progressed = true;
            } else {
                findings.push(Finding {
                    rule: "deadlock-free".into(),
                    location: "barrier".into(),
                    message: format!("ranks wait at different barriers: ids {ids:?}"),
                });
                return (stats, findings);
            }
        }

        let done = programs
            .iter()
            .enumerate()
            .all(|(idx, prog)| pc[idx] >= prog.ops.len());
        if done {
            break;
        }
        if !progressed {
            // Global stall: reconstruct the wait graph for the report.
            for (idx, prog) in programs.iter().enumerate() {
                if let Some(&op) = prog.ops.get(pc[idx]) {
                    let why = match op {
                        Op::Recv { src, tag } => {
                            let peer_state = programs
                                .iter()
                                .enumerate()
                                .find(|(_, q)| q.rank == src)
                                .map(|(qidx, q)| {
                                    if pc[qidx] >= q.ops.len() {
                                        format!("rank {src} already terminated")
                                    } else {
                                        format!("rank {src} is blocked at op {}", pc[qidx])
                                    }
                                })
                                .unwrap_or_else(|| format!("rank {src} has no program"));
                            format!(
                                "blocked on recv(src={src}, tag={tag}) — never sent; {peer_state}"
                            )
                        }
                        Op::Barrier { id } => {
                            format!("blocked at barrier {id} while some rank never arrives")
                        }
                        other => format!("stuck before {other:?}"),
                    };
                    findings.push(Finding {
                        rule: "deadlock-free".into(),
                        location: location(prog.rank, pc[idx]),
                        message: why,
                    });
                }
            }
            return (stats, findings);
        }
    }

    // Completion with messages still in flight = unmatched sends.
    let mut leftover: Vec<(&(usize, usize, u64), &u64)> = inflight.iter().collect();
    leftover.sort();
    for (&(src, dst, tag), &count) in leftover {
        findings.push(Finding {
            rule: "matched-send-recv".into(),
            location: format!("rank {src} -> rank {dst}"),
            message: format!(
                "{count} message(s) with tag {tag} sent by rank {src} but never \
                 received by rank {dst}"
            ),
        });
    }

    for (idx, prog) in programs.iter().enumerate() {
        if staged[idx] != 0 {
            findings.push(Finding {
                rule: "residency-bound".into(),
                location: format!("rank {}", prog.rank),
                message: format!("{} staged block(s) never consumed", staged[idx]),
            });
        }
    }

    (stats, findings)
}

/// One symbolic operation of the out-of-core stale replay: the depth-K
/// fetch schedule run communication-free against the disk tier, exactly
/// as `Worker::replay_tiered` runs it (`Fetch` → disk fault, `Serve` →
/// no-op).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierOp {
    /// Stage the round-0 local gather — RAM +1 (never touches disk).
    StageLocal,
    /// Fault round `round`'s cached block from the disk tier into the
    /// staging queue — disk −1, RAM +1.
    Fault {
        /// Rotation round whose spilled block is faulted (1-based).
        round: usize,
    },
    /// Consume the oldest staged block into the accumulator — RAM −1 —
    /// and return it to the disk tier if it was faulted.
    Consume {
        /// Partition whose block the rotation order expects here.
        q: usize,
    },
}

/// Builds rank `p`'s out-of-core replay program for one fetch call at
/// pipeline depth `k`, by the same one-step translation of
/// [`plan::fetch_steps`] the worker uses.
#[must_use]
pub fn build_tiered_program(n: usize, p: usize, k: usize) -> Vec<TierOp> {
    let mut ops = Vec::new();
    for step in plan::fetch_steps(n, p, k) {
        match step {
            FetchStep::GatherLocal => ops.push(TierOp::StageLocal),
            // A stale epoch is communication-free: nothing to serve.
            FetchStep::Serve { .. } => {}
            FetchStep::Fetch { round, .. } => ops.push(TierOp::Fault { round }),
            FetchStep::Consume { q } => ops.push(TierOp::Consume { q }),
        }
    }
    ops
}

/// What the out-of-core symbolic replay measured on a clean run.
#[derive(Debug, Clone, Copy, Default)]
pub struct TierProofStats {
    /// Disk faults executed (one per remote rotation round).
    pub faults: u64,
    /// Peak RAM-resident blocks: staged blocks plus the accumulator.
    pub peak_ram_blocks: usize,
}

/// Symbolically executes an out-of-core replay `program` for rank `p`
/// and checks the RAM residency bound (`staged + accumulator ≤
/// ram_bound`, the paper's K+2 with the remainder on disk) and disk-tier
/// conservation (faults hit spilled blocks, faulted blocks return to the
/// tier, each source rank consumed exactly once in rotation order).
///
/// Accepts *arbitrary* programs — not just ones from
/// [`build_tiered_program`] — so seeding a violation demonstrably fails.
#[must_use]
pub fn verify_tiered(
    n: usize,
    p: usize,
    program: &[TierOp],
    ram_bound: usize,
) -> (TierProofStats, Vec<Finding>) {
    let mut findings = Vec::new();
    let mut stats = TierProofStats::default();
    // The stale cache spilled one block per remote rotation round
    // (rounds 1..N−1); round 0 is the local gather and never spills.
    let mut on_disk = vec![true; n];
    on_disk[0] = false;
    // Staged blocks: (source partition, faulted round if from disk).
    let mut staged: VecDeque<(usize, Option<usize>)> = VecDeque::new();
    let mut consumed = vec![false; n];
    // The rotation accumulator occupies one block-equivalent of RAM from
    // the first consume on.
    let mut acc = 0usize;

    let location = |i: usize| format!("rank {p} op {i}");

    for (i, &op) in program.iter().enumerate() {
        match op {
            TierOp::StageLocal => staged.push_back((p, None)),
            TierOp::Fault { round } => {
                if round == 0 || round >= n || !on_disk[round] {
                    findings.push(Finding {
                        rule: "ooc-tier-conservation".into(),
                        location: location(i),
                        message: format!(
                            "fault of round {round}'s block, which is not on the disk tier"
                        ),
                    });
                } else {
                    on_disk[round] = false;
                }
                staged.push_back(((p + round) % n, Some(round)));
                stats.faults += 1;
            }
            TierOp::Consume { q } => match staged.pop_front() {
                None => findings.push(Finding {
                    rule: "ooc-residency-bound".into(),
                    location: location(i),
                    message: "consume with no staged block (replay underrun)".into(),
                }),
                Some((src, from)) => {
                    if src != q {
                        findings.push(Finding {
                            rule: "ooc-tier-conservation".into(),
                            location: location(i),
                            message: format!(
                                "consumed rank {src}'s block where rotation order \
                                 expects rank {q}'s"
                            ),
                        });
                    }
                    if src < n && consumed[src] {
                        findings.push(Finding {
                            rule: "ooc-tier-conservation".into(),
                            location: location(i),
                            message: format!("rank {src}'s block consumed twice"),
                        });
                    } else if src < n {
                        consumed[src] = true;
                    }
                    acc = 1;
                    // Consumed blocks return to the tier for the next
                    // stale epoch.
                    if let Some(round) = from {
                        if round < n {
                            on_disk[round] = true;
                        }
                    }
                }
            },
        }
        let ram = staged.len() + acc;
        stats.peak_ram_blocks = stats.peak_ram_blocks.max(ram);
        if ram > ram_bound {
            findings.push(Finding {
                rule: "ooc-residency-bound".into(),
                location: location(i),
                message: format!(
                    "{ram} RAM-resident blocks (staged + accumulator), bound is \
                     {ram_bound} (min(K, N-1) + 2)"
                ),
            });
        }
    }

    if !staged.is_empty() {
        findings.push(Finding {
            rule: "ooc-residency-bound".into(),
            location: format!("rank {p}"),
            message: format!("{} staged block(s) never consumed", staged.len()),
        });
    }
    for (q, done) in consumed.iter().enumerate() {
        if !done {
            findings.push(Finding {
                rule: "ooc-tier-conservation".into(),
                location: format!("rank {p}"),
                message: format!("rank {q}'s block never consumed"),
            });
        }
    }
    for (round, here) in on_disk.iter().enumerate().skip(1) {
        if !here {
            findings.push(Finding {
                rule: "ooc-tier-conservation".into(),
                location: format!("rank {p}"),
                message: format!(
                    "round {round}'s block not returned to the disk tier after the replay"
                ),
            });
        }
    }

    (stats, findings)
}

/// Runs the full CI sweep — every `(N, K)` in `ns × ks`, both
/// communication models, `layers` layers — and folds the results into one
/// [`PassReport`]. A clean report is a machine-checked proof that the
/// schedule [`Worker`](sar_core::Worker) executes is matched,
/// deadlock-free and within the `(K+2)/N` residency bound at every swept
/// scale — and that the out-of-core stale replay of the same schedule
/// keeps at most `min(K, N−1) + 2` blocks in RAM with the remainder on
/// the disk tier.
#[must_use]
pub fn sweep(ns: &[usize], ks: &[usize], layers: usize) -> PassReport {
    let mut report = PassReport::new("protocol");
    let mut peak_overall = 0usize;
    let mut peak_ram_overall = 0usize;
    for &n in ns {
        for &k in ks {
            for model in [CaseModel::Case1, CaseModel::Case2] {
                let programs = build_programs(n, k, model, layers);
                let staged_bound = k.min(n - 1) + 1;
                let (stats, findings) = verify(n, &programs, staged_bound);
                report.bump("configs_verified", 1);
                report.bump("sends_matched", stats.sends);
                report.bump("ops_executed", stats.steps);
                peak_overall = peak_overall.max(stats.peak_staged);
                let here = format!("N={n} K={k} model={}", model.name());
                for mut finding in findings {
                    finding.location = format!("{here} {}", finding.location);
                    report.findings.push(finding);
                }
            }
            // Out-of-core: the same schedule replayed against the disk
            // tier, per rank (communication-free, so ranks verify
            // independently).
            let ram_bound = k.min(n - 1) + 2;
            for p in 0..n {
                let program = build_tiered_program(n, p, k);
                let (stats, findings) = verify_tiered(n, p, &program, ram_bound);
                report.bump("tiered_replays_verified", 1);
                report.bump("disk_faults_matched", stats.faults);
                peak_ram_overall = peak_ram_overall.max(stats.peak_ram_blocks);
                let here = format!("N={n} K={k} model=ooc");
                for mut finding in findings {
                    finding.location = format!("{here} {}", finding.location);
                    report.findings.push(finding);
                }
            }
        }
    }
    report.bump("peak_staged_blocks", peak_overall as u64);
    report.bump("peak_ram_blocks", peak_ram_overall as u64);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_sweep_is_clean() {
        let report = sweep(&[2, 3, 4, 5, 6, 7, 8], &[0, 1, 2, 3], 2);
        assert!(
            report.clean(),
            "protocol sweep found: {:#?}",
            report.findings
        );
        // 7 world sizes × 4 depths × 2 models.
        assert_eq!(report.stats[0], ("configs_verified".into(), 56));
    }

    #[test]
    fn dropped_recv_is_reported_as_unmatched_send() {
        let mut programs = build_programs(4, 1, CaseModel::Case1, 1);
        // Seed the violation: rank 2 forgets one fetch receive (and its
        // consume, to keep residency accounting separate).
        let drop_at = programs[2]
            .ops
            .iter()
            .position(|op| matches!(op, Op::Recv { .. }))
            .expect("fetch plan has receives");
        programs[2].ops.remove(drop_at);
        let consume_at = programs[2]
            .ops
            .iter()
            .rposition(|op| matches!(op, Op::Consume))
            .expect("fetch plan has consumes");
        programs[2].ops.remove(consume_at);
        let (_, findings) = verify(4, &programs, 2);
        assert!(
            findings
                .iter()
                .any(|f| f.rule == "matched-send-recv" && f.message.contains("never received")),
            "expected an unmatched-send finding, got {findings:#?}"
        );
    }

    #[test]
    fn dropped_send_is_reported_as_deadlock_naming_both_ranks() {
        let mut programs = build_programs(3, 0, CaseModel::Case1, 1);
        let drop_at = programs[1]
            .ops
            .iter()
            .position(|op| matches!(op, Op::Send { .. }))
            .expect("fetch plan has sends");
        programs[1].ops.remove(drop_at);
        let (_, findings) = verify(3, &programs, 1);
        let deadlock = findings
            .iter()
            .find(|f| f.rule == "deadlock-free")
            .expect("expected a deadlock finding");
        assert!(
            deadlock.message.contains("blocked on recv"),
            "unexpected message: {}",
            deadlock.message
        );
    }

    #[test]
    fn residency_peak_matches_depth() {
        for k in 0..4usize {
            let programs = build_programs(5, k, CaseModel::Case2, 2);
            let (stats, findings) = verify(5, &programs, k.min(4) + 1);
            assert!(findings.is_empty(), "k={k}: {findings:#?}");
            assert_eq!(stats.peak_staged, k.min(4) + 1, "k={k}");
        }
    }

    #[test]
    fn tiered_replay_ram_peak_is_k_plus_2() {
        // With N−1 > K the steady phase refills the staging queue to its
        // bound while the accumulator is live, so the RAM peak is exactly
        // min(K, N−1) + 2 — and never more, at any rank.
        for k in 0..4usize {
            for p in 0..5usize {
                let program = build_tiered_program(5, p, k);
                let (stats, findings) = verify_tiered(5, p, &program, k.min(4) + 2);
                assert!(findings.is_empty(), "k={k} p={p}: {findings:#?}");
                assert_eq!(stats.peak_ram_blocks, k.min(4) + 2, "k={k} p={p}");
                assert_eq!(stats.faults, 4, "k={k} p={p}");
            }
        }
    }

    #[test]
    fn tiered_replay_too_tight_bound_is_reported() {
        // The verifier is not vacuous: handing it a bound one block
        // below the true peak produces a residency finding.
        let program = build_tiered_program(6, 0, 2);
        let (_, findings) = verify_tiered(6, 0, &program, 3);
        assert!(
            findings
                .iter()
                .any(|f| f.rule == "ooc-residency-bound" && f.message.contains("bound is 3")),
            "expected a residency finding, got {findings:#?}"
        );
    }

    #[test]
    fn double_fault_is_reported_as_tier_conservation() {
        // Seed the violation: the second fault re-fetches the first
        // fault's round, which is no longer on the disk tier.
        let mut program = build_tiered_program(4, 1, 1);
        let faults: Vec<usize> = program
            .iter()
            .enumerate()
            .filter(|(_, op)| matches!(op, TierOp::Fault { .. }))
            .map(|(i, _)| i)
            .collect();
        assert!(faults.len() >= 2, "plan has {} faults", faults.len());
        program[faults[1]] = program[faults[0]];
        let (_, findings) = verify_tiered(4, 1, &program, 3);
        assert!(
            findings
                .iter()
                .any(|f| f.rule == "ooc-tier-conservation"
                    && f.message.contains("not on the disk tier")),
            "expected a conservation finding, got {findings:#?}"
        );
    }
}
