//! Pass 1: the protocol verifier.
//!
//! Builds, for every rank at once, the full symbolic send/recv/barrier
//! program of one training step — forward fetch rounds plus backward
//! gradient routing, in both of the paper's communication models — from
//! the *same* pure schedules ([`sar_core::plan`]) that
//! [`Worker`](sar_core::Worker) executes, then proves three properties by
//! exhaustive symbolic execution:
//!
//! * **Matching** — every send is consumed by exactly one receive with
//!   the same `(src, dst, tag)`; nothing is left in flight at the end.
//! * **Deadlock-freedom** — the program set runs to completion. Sends are
//!   non-blocking (both transports queue them without waiting) and each
//!   `(src, dst, tag)` triple is unique within an exchange, so the
//!   simulation is confluent: one maximal run completing proves *every*
//!   schedule completes, and a stall identifies a genuine wait-cycle,
//!   which is reported rank by rank.
//! * **Residency** — at most `min(K, N−1) + 1 ≤ K + 1` fetched blocks are
//!   staged per worker at any step; with the local partition that is the
//!   paper's `(K+2)/N` memory bound.
//! * **Out-of-core residency** — the communication-free stale-epoch
//!   replay out of the disk tier ([`build_tiered_program`], mirroring
//!   `Worker::replay_tiered`) walks the *same* depth-K schedule with
//!   `Fetch` reinterpreted as a disk fault and `Serve` as a no-op, and
//!   keeps at most `min(K, N−1) + 2 ≤ K + 2` blocks in RAM (staged
//!   blocks plus the accumulator) with the remainder spilled: every
//!   fault hits a block actually on disk, every faulted block returns to
//!   the tier after consumption, and every source rank is consumed
//!   exactly once in rotation order.

use std::collections::{HashMap, VecDeque};

use sar_core::plan::{self, FetchStep, GradStep};

use crate::{Finding, PassReport};

/// Which of the paper's two communication models the backward pass uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseModel {
    /// Case 1 (GraphSage): the backward pass routes gradients only — no
    /// refetch of remote features.
    Case1,
    /// Case 2 (GAT): the backward pass refetches remote features (to
    /// rematerialize attention) *and* routes gradients.
    Case2,
}

impl CaseModel {
    /// Stable name used in report locations.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CaseModel::Case1 => "case1",
            CaseModel::Case2 => "case2",
        }
    }
}

/// One symbolic operation of a rank's communication program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Non-blocking send to `dst` under `tag`.
    Send {
        /// Destination rank.
        dst: usize,
        /// Message tag.
        tag: u64,
    },
    /// Blocking receive from `src` under `tag`. Whether the received
    /// payload counts against residency is expressed by a following
    /// [`Op::Stage`] — fetched feature blocks are staged, routed gradient
    /// blocks are accumulated immediately and are not.
    Recv {
        /// Source rank.
        src: usize,
        /// Message tag.
        tag: u64,
    },
    /// Stage a block (the round-0 local gather, or a just-fetched remote
    /// block) — residency +1.
    Stage,
    /// Consume the oldest staged block — residency −1.
    Consume,
    /// Synchronize with all ranks (epoch boundary).
    Barrier {
        /// Barrier sequence number; must agree across ranks.
        id: u64,
    },
}

/// One rank's complete program for a training step.
#[derive(Debug, Clone)]
pub struct Program {
    /// The rank executing `ops`.
    pub rank: usize,
    /// Operations in program order.
    pub ops: Vec<Op>,
}

/// Appends the ops of one pipelined fetch exchange (Algorithm 1) to
/// `ops`, translating the pure plan one step at a time.
fn push_fetch_exchange(ops: &mut Vec<Op>, n: usize, p: usize, k: usize, tag: u64) {
    for step in plan::fetch_steps(n, p, k) {
        match step {
            FetchStep::GatherLocal => ops.push(Op::Stage),
            FetchStep::Serve { dst, .. } => ops.push(Op::Send { dst, tag }),
            FetchStep::Fetch { src, .. } => {
                ops.push(Op::Recv { src, tag });
                ops.push(Op::Stage);
            }
            FetchStep::Consume { .. } => ops.push(Op::Consume),
        }
    }
}

/// Appends the ops of one gradient-routing exchange (Algorithm 2).
fn push_grad_exchange(ops: &mut Vec<Op>, n: usize, p: usize, tag: u64) {
    for step in plan::grad_steps(n, p) {
        match step {
            GradStep::AccumulateLocal => {}
            GradStep::Send { dst } => ops.push(Op::Send { dst, tag }),
            GradStep::Recv { src } => ops.push(Op::Recv { src, tag }),
        }
    }
}

/// Builds every rank's program for one `layers`-layer training step in
/// the given communication model, with pipeline depth `k`. Tags are
/// allocated the way [`Worker`](sar_core::Worker) allocates them — one
/// fresh tag per exchange, in SPMD order, so all ranks agree.
#[must_use]
pub fn build_programs(n: usize, k: usize, model: CaseModel, layers: usize) -> Vec<Program> {
    (0..n)
        .map(|p| {
            let mut ops = Vec::new();
            let mut tag = 0u64;
            // Forward: one fetch exchange per layer.
            for _ in 0..layers {
                push_fetch_exchange(&mut ops, n, p, k, tag);
                tag += 1;
            }
            // Backward, deepest layer first.
            for _ in 0..layers {
                if model == CaseModel::Case2 {
                    // Rematerialization refetch (runs the same rotation
                    // exchange under the BackwardRefetch phase).
                    push_fetch_exchange(&mut ops, n, p, k, tag);
                    tag += 1;
                }
                push_grad_exchange(&mut ops, n, p, tag);
                tag += 1;
            }
            // Epoch boundary.
            ops.push(Op::Barrier { id: 0 });
            Program { rank: p, ops }
        })
        .collect()
}

/// What the symbolic execution measured on a clean run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProofStats {
    /// Total sends executed across ranks.
    pub sends: u64,
    /// Total receives executed across ranks.
    pub recvs: u64,
    /// Maximum staged blocks resident on any rank at any step.
    pub peak_staged: usize,
    /// Total operations executed.
    pub steps: u64,
}

/// Symbolically executes `programs` and checks matching, deadlock-freedom
/// and the staged-block bound (`peak ≤ staged_bound`). Returns the run's
/// measurements plus every violated property.
///
/// Accepts *arbitrary* programs — not just ones from [`build_programs`] —
/// so seeding a violation (dropping a recv, say) demonstrably fails.
#[must_use]
pub fn verify(n: usize, programs: &[Program], staged_bound: usize) -> (ProofStats, Vec<Finding>) {
    let mut findings = Vec::new();
    let mut stats = ProofStats::default();
    let mut pc = vec![0usize; programs.len()];
    let mut staged = vec![0usize; programs.len()];
    // In-flight (src, dst, tag) → multiplicity.
    let mut inflight: HashMap<(usize, usize, u64), u64> = HashMap::new();

    let location = |p: usize, i: usize| format!("rank {p} op {i}");

    loop {
        let mut progressed = false;
        for (idx, prog) in programs.iter().enumerate() {
            let p = prog.rank;
            // Run this rank to its next blocking point.
            while let Some(&op) = prog.ops.get(pc[idx]) {
                match op {
                    Op::Send { dst, tag } => {
                        if dst >= n {
                            findings.push(Finding {
                                rule: "matched-send-recv".into(),
                                location: location(p, pc[idx]),
                                message: format!("send to rank {dst} outside world of {n}"),
                            });
                        }
                        *inflight.entry((p, dst, tag)).or_insert(0) += 1;
                        stats.sends += 1;
                    }
                    Op::Recv { src, tag } => {
                        match inflight.get_mut(&(src, p, tag)) {
                            Some(count) => {
                                *count -= 1;
                                if *count == 0 {
                                    inflight.remove(&(src, p, tag));
                                }
                                stats.recvs += 1;
                            }
                            // Message not in flight yet: block here.
                            None => break,
                        }
                    }
                    Op::Stage => {
                        staged[idx] += 1;
                        stats.peak_staged = stats.peak_staged.max(staged[idx]);
                    }
                    Op::Consume => {
                        if staged[idx] == 0 {
                            findings.push(Finding {
                                rule: "residency-bound".into(),
                                location: location(p, pc[idx]),
                                message: "consume with no staged block (pipeline underrun)".into(),
                            });
                        } else {
                            staged[idx] -= 1;
                        }
                    }
                    // Barriers are resolved globally below.
                    Op::Barrier { .. } => break,
                }
                pc[idx] += 1;
                stats.steps += 1;
                progressed = true;
                if staged[idx] > staged_bound {
                    findings.push(Finding {
                        rule: "residency-bound".into(),
                        location: location(p, pc[idx]),
                        message: format!(
                            "{} staged blocks resident, bound is {staged_bound} \
                             (min(K, N-1) + 1)",
                            staged[idx]
                        ),
                    });
                }
            }
        }

        // Barrier resolution: all ranks waiting at a barrier with one id
        // advance together.
        let at_barrier: Vec<Option<u64>> = programs
            .iter()
            .enumerate()
            .map(|(idx, prog)| match prog.ops.get(pc[idx]) {
                Some(Op::Barrier { id }) => Some(*id),
                _ => None,
            })
            .collect();
        if at_barrier.iter().all(Option::is_some) && !at_barrier.is_empty() {
            let ids: Vec<u64> = at_barrier.iter().map(|id| id.expect("checked")).collect();
            if ids.windows(2).all(|w| w[0] == w[1]) {
                for (idx, _) in programs.iter().enumerate() {
                    pc[idx] += 1;
                    stats.steps += 1;
                }
                progressed = true;
            } else {
                findings.push(Finding {
                    rule: "deadlock-free".into(),
                    location: "barrier".into(),
                    message: format!("ranks wait at different barriers: ids {ids:?}"),
                });
                return (stats, findings);
            }
        }

        let done = programs
            .iter()
            .enumerate()
            .all(|(idx, prog)| pc[idx] >= prog.ops.len());
        if done {
            break;
        }
        if !progressed {
            // Global stall: reconstruct the wait graph for the report.
            for (idx, prog) in programs.iter().enumerate() {
                if let Some(&op) = prog.ops.get(pc[idx]) {
                    let why = match op {
                        Op::Recv { src, tag } => {
                            let peer_state = programs
                                .iter()
                                .enumerate()
                                .find(|(_, q)| q.rank == src)
                                .map(|(qidx, q)| {
                                    if pc[qidx] >= q.ops.len() {
                                        format!("rank {src} already terminated")
                                    } else {
                                        format!("rank {src} is blocked at op {}", pc[qidx])
                                    }
                                })
                                .unwrap_or_else(|| format!("rank {src} has no program"));
                            format!(
                                "blocked on recv(src={src}, tag={tag}) — never sent; {peer_state}"
                            )
                        }
                        Op::Barrier { id } => {
                            format!("blocked at barrier {id} while some rank never arrives")
                        }
                        other => format!("stuck before {other:?}"),
                    };
                    findings.push(Finding {
                        rule: "deadlock-free".into(),
                        location: location(prog.rank, pc[idx]),
                        message: why,
                    });
                }
            }
            return (stats, findings);
        }
    }

    // Completion with messages still in flight = unmatched sends.
    let mut leftover: Vec<(&(usize, usize, u64), &u64)> = inflight.iter().collect();
    leftover.sort();
    for (&(src, dst, tag), &count) in leftover {
        findings.push(Finding {
            rule: "matched-send-recv".into(),
            location: format!("rank {src} -> rank {dst}"),
            message: format!(
                "{count} message(s) with tag {tag} sent by rank {src} but never \
                 received by rank {dst}"
            ),
        });
    }

    for (idx, prog) in programs.iter().enumerate() {
        if staged[idx] != 0 {
            findings.push(Finding {
                rule: "residency-bound".into(),
                location: format!("rank {}", prog.rank),
                message: format!("{} staged block(s) never consumed", staged[idx]),
            });
        }
    }

    (stats, findings)
}

/// One symbolic operation of the out-of-core stale replay: the depth-K
/// fetch schedule run communication-free against the disk tier, exactly
/// as `Worker::replay_tiered` runs it (`Fetch` → disk fault, `Serve` →
/// no-op).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierOp {
    /// Stage the round-0 local gather — RAM +1 (never touches disk).
    StageLocal,
    /// Fault round `round`'s cached block from the disk tier into the
    /// staging queue — disk −1, RAM +1.
    Fault {
        /// Rotation round whose spilled block is faulted (1-based).
        round: usize,
    },
    /// Consume the oldest staged block into the accumulator — RAM −1 —
    /// and return it to the disk tier if it was faulted.
    Consume {
        /// Partition whose block the rotation order expects here.
        q: usize,
    },
}

/// Builds rank `p`'s out-of-core replay program for one fetch call at
/// pipeline depth `k`, by the same one-step translation of
/// [`plan::fetch_steps`] the worker uses.
#[must_use]
pub fn build_tiered_program(n: usize, p: usize, k: usize) -> Vec<TierOp> {
    let mut ops = Vec::new();
    for step in plan::fetch_steps(n, p, k) {
        match step {
            FetchStep::GatherLocal => ops.push(TierOp::StageLocal),
            // A stale epoch is communication-free: nothing to serve.
            FetchStep::Serve { .. } => {}
            FetchStep::Fetch { round, .. } => ops.push(TierOp::Fault { round }),
            FetchStep::Consume { q } => ops.push(TierOp::Consume { q }),
        }
    }
    ops
}

/// What the out-of-core symbolic replay measured on a clean run.
#[derive(Debug, Clone, Copy, Default)]
pub struct TierProofStats {
    /// Disk faults executed (one per remote rotation round).
    pub faults: u64,
    /// Peak RAM-resident blocks: staged blocks plus the accumulator.
    pub peak_ram_blocks: usize,
}

/// Symbolically executes an out-of-core replay `program` for rank `p`
/// and checks the RAM residency bound (`staged + accumulator ≤
/// ram_bound`, the paper's K+2 with the remainder on disk) and disk-tier
/// conservation (faults hit spilled blocks, faulted blocks return to the
/// tier, each source rank consumed exactly once in rotation order).
///
/// Accepts *arbitrary* programs — not just ones from
/// [`build_tiered_program`] — so seeding a violation demonstrably fails.
#[must_use]
pub fn verify_tiered(
    n: usize,
    p: usize,
    program: &[TierOp],
    ram_bound: usize,
) -> (TierProofStats, Vec<Finding>) {
    let mut findings = Vec::new();
    let mut stats = TierProofStats::default();
    // The stale cache spilled one block per remote rotation round
    // (rounds 1..N−1); round 0 is the local gather and never spills.
    let mut on_disk = vec![true; n];
    on_disk[0] = false;
    // Staged blocks: (source partition, faulted round if from disk).
    let mut staged: VecDeque<(usize, Option<usize>)> = VecDeque::new();
    let mut consumed = vec![false; n];
    // The rotation accumulator occupies one block-equivalent of RAM from
    // the first consume on.
    let mut acc = 0usize;

    let location = |i: usize| format!("rank {p} op {i}");

    for (i, &op) in program.iter().enumerate() {
        match op {
            TierOp::StageLocal => staged.push_back((p, None)),
            TierOp::Fault { round } => {
                if round == 0 || round >= n || !on_disk[round] {
                    findings.push(Finding {
                        rule: "ooc-tier-conservation".into(),
                        location: location(i),
                        message: format!(
                            "fault of round {round}'s block, which is not on the disk tier"
                        ),
                    });
                } else {
                    on_disk[round] = false;
                }
                staged.push_back(((p + round) % n, Some(round)));
                stats.faults += 1;
            }
            TierOp::Consume { q } => match staged.pop_front() {
                None => findings.push(Finding {
                    rule: "ooc-residency-bound".into(),
                    location: location(i),
                    message: "consume with no staged block (replay underrun)".into(),
                }),
                Some((src, from)) => {
                    if src != q {
                        findings.push(Finding {
                            rule: "ooc-tier-conservation".into(),
                            location: location(i),
                            message: format!(
                                "consumed rank {src}'s block where rotation order \
                                 expects rank {q}'s"
                            ),
                        });
                    }
                    if src < n && consumed[src] {
                        findings.push(Finding {
                            rule: "ooc-tier-conservation".into(),
                            location: location(i),
                            message: format!("rank {src}'s block consumed twice"),
                        });
                    } else if src < n {
                        consumed[src] = true;
                    }
                    acc = 1;
                    // Consumed blocks return to the tier for the next
                    // stale epoch.
                    if let Some(round) = from {
                        if round < n {
                            on_disk[round] = true;
                        }
                    }
                }
            },
        }
        let ram = staged.len() + acc;
        stats.peak_ram_blocks = stats.peak_ram_blocks.max(ram);
        if ram > ram_bound {
            findings.push(Finding {
                rule: "ooc-residency-bound".into(),
                location: location(i),
                message: format!(
                    "{ram} RAM-resident blocks (staged + accumulator), bound is \
                     {ram_bound} (min(K, N-1) + 2)"
                ),
            });
        }
    }

    if !staged.is_empty() {
        findings.push(Finding {
            rule: "ooc-residency-bound".into(),
            location: format!("rank {p}"),
            message: format!("{} staged block(s) never consumed", staged.len()),
        });
    }
    for (q, done) in consumed.iter().enumerate() {
        if !done {
            findings.push(Finding {
                rule: "ooc-tier-conservation".into(),
                location: format!("rank {p}"),
                message: format!("rank {q}'s block never consumed"),
            });
        }
    }
    for (round, here) in on_disk.iter().enumerate().skip(1) {
        if !here {
            findings.push(Finding {
                rule: "ooc-tier-conservation".into(),
                location: format!("rank {p}"),
                message: format!(
                    "round {round}'s block not returned to the disk tier after the replay"
                ),
            });
        }
    }

    (stats, findings)
}

/// Which exchange protocol a multi-epoch training program runs — the
/// symbolic mirror of `sar_core::Protocol`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoSpec {
    /// Every epoch runs the full rotation exchange.
    Exact,
    /// Local-subgraph training: no remote fetch, no gradient routing.
    /// Every rank skips the same messages, so nothing is ever in flight.
    GradOnly,
    /// Refresh every `r` epochs (`r ≥ 1`); stale epochs in between replay
    /// the cached blocks with zero fetch-phase traffic.
    Stale(usize),
}

impl ProtoSpec {
    /// Stable name used in report locations (`gradonly`, `stale:2`, …).
    #[must_use]
    pub fn name(self) -> String {
        match self {
            ProtoSpec::Exact => "exact".to_string(),
            ProtoSpec::GradOnly => "gradonly".to_string(),
            ProtoSpec::Stale(r) => format!("stale:{r}"),
        }
    }
}

/// Appends a stale-epoch fetch replay: the rotation consumed from the
/// cache in order, no messages. Each block passes through the staging
/// queue transiently (residency 1), mirroring `Worker::fetch_rounds`'
/// cached-replay path.
fn push_stale_replay(ops: &mut Vec<Op>, n: usize) {
    for _ in 0..n {
        ops.push(Op::Stage);
        ops.push(Op::Consume);
    }
}

/// Appends one fetch call under `proto` — and bumps the tag
/// *unconditionally*, exactly as `Worker::next_tag` does: approximate
/// protocols skip messages, not tags, so the SPMD tag streams stay
/// aligned across protocol phases (a stale epoch followed by a refresh).
fn push_protocol_fetch(
    ops: &mut Vec<Op>,
    n: usize,
    p: usize,
    k: usize,
    proto: ProtoSpec,
    fresh: bool,
    tag: &mut u64,
) {
    match proto {
        // Local round only: gather, consume, no traffic.
        ProtoSpec::GradOnly => {
            ops.push(Op::Stage);
            ops.push(Op::Consume);
        }
        ProtoSpec::Exact => push_fetch_exchange(ops, n, p, k, *tag),
        ProtoSpec::Stale(_) if fresh => push_fetch_exchange(ops, n, p, k, *tag),
        ProtoSpec::Stale(_) => push_stale_replay(ops, n),
    }
    *tag += 1;
}

/// Builds rank `p`'s program for `epochs` training epochs under an
/// approximate-exchange protocol, mirroring the trainer's epoch loop:
/// `Stale(r)` refreshes when `epoch % r == 0` and replays otherwise;
/// `GradOnly` never exchanges; tags advance unconditionally on every
/// fetch call and gradient exchange so ranks stay aligned through
/// skipped phases. Each epoch ends at a barrier carrying the epoch
/// number, as the trainer's epoch boundary does.
#[must_use]
pub fn build_protocol_program(
    n: usize,
    p: usize,
    k: usize,
    model: CaseModel,
    layers: usize,
    proto: ProtoSpec,
    epochs: usize,
) -> Program {
    let mut ops = Vec::new();
    let mut tag = 0u64;
    for epoch in 0..epochs {
        let fresh = match proto {
            ProtoSpec::Stale(r) => r == 0 || epoch % r == 0,
            _ => true,
        };
        // Forward: one fetch call per layer.
        for _ in 0..layers {
            push_protocol_fetch(&mut ops, n, p, k, proto, fresh, &mut tag);
        }
        // Backward, deepest layer first.
        for _ in 0..layers {
            if model == CaseModel::Case2 {
                // Rematerialization refetch — same protocol dispatch (a
                // stale epoch replays it from cache too).
                push_protocol_fetch(&mut ops, n, p, k, proto, fresh, &mut tag);
            }
            if proto != ProtoSpec::GradOnly {
                push_grad_exchange(&mut ops, n, p, tag);
            }
            // Unconditional, like the fetch tag.
            tag += 1;
        }
        ops.push(Op::Barrier { id: epoch as u64 });
    }
    Program { rank: p, ops }
}

// ----------------------------------------------------------------------
// Serve-tier control plane
// ----------------------------------------------------------------------

/// Per-batch tag window of the symbolic serve model (scaled-down mirror
/// of the engine's `batch_base`).
fn serve_base(seq: u64) -> u64 {
    seq * 0x1000
}
/// Control broadcast slot within a batch window.
const SERVE_OFF_CTRL: u64 = 0;
/// MFG build-exchange slots (`+ level`).
const SERVE_OFF_BUILD: u64 = 0x100;
/// Restricted-rotation forward slots (`+ level`).
const SERVE_OFF_FWD: u64 = 0x200;
/// Result-gather position stream to rank 0.
const SERVE_OFF_RES_POS: u64 = 0x300;
/// Result-gather value stream to rank 0.
const SERVE_OFF_RES_VAL: u64 = 0x301;
/// Barrier id of the drain-then-ack shutdown.
const SERVE_QUIESCE_ID: u64 = u64::MAX;

/// Builds every rank's program for `batches` serve query batches followed
/// by a shutdown, mirroring `sar-serve`'s engine: rank 0 broadcasts a
/// seq-numbered control message per batch (tag `batch_base(seq) +
/// OFF_CTRL`); every batch runs `layers` send-all-then-recv-all MFG build
/// exchanges and `layers` forward exchanges; workers ship results to
/// rank 0 as a position stream plus a value stream; shutdown is one more
/// control broadcast followed by the drain barrier (`quiesce`), so no
/// rank exits while a peer still expects service.
#[must_use]
pub fn build_serve_programs(n: usize, layers: usize, batches: usize) -> Vec<Program> {
    (0..n)
        .map(|p| {
            let mut ops = Vec::new();
            for seq in 0..batches as u64 {
                let base = serve_base(seq);
                // Seq-numbered control broadcast.
                if p == 0 {
                    for q in 1..n {
                        ops.push(Op::Send {
                            dst: q,
                            tag: base + SERVE_OFF_CTRL,
                        });
                    }
                } else {
                    ops.push(Op::Recv {
                        src: 0,
                        tag: base + SERVE_OFF_CTRL,
                    });
                }
                // MFG build: top level down, all-to-all, send-all first.
                for k in (1..=layers).rev() {
                    let tag = base + SERVE_OFF_BUILD + k as u64;
                    for q in (0..n).filter(|&q| q != p) {
                        ops.push(Op::Send { dst: q, tag });
                    }
                    for q in (0..n).filter(|&q| q != p) {
                        ops.push(Op::Recv { src: q, tag });
                    }
                }
                // Restricted rotation forward: bottom level up.
                for k in 1..=layers {
                    let tag = base + SERVE_OFF_FWD + k as u64;
                    for q in (0..n).filter(|&q| q != p) {
                        ops.push(Op::Send { dst: q, tag });
                    }
                    for q in (0..n).filter(|&q| q != p) {
                        ops.push(Op::Recv { src: q, tag });
                    }
                }
                // Result gather: two streams per worker to rank 0.
                if p == 0 {
                    for q in 1..n {
                        ops.push(Op::Recv {
                            src: q,
                            tag: base + SERVE_OFF_RES_POS,
                        });
                        ops.push(Op::Recv {
                            src: q,
                            tag: base + SERVE_OFF_RES_VAL,
                        });
                    }
                } else {
                    ops.push(Op::Send {
                        dst: 0,
                        tag: base + SERVE_OFF_RES_POS,
                    });
                    ops.push(Op::Send {
                        dst: 0,
                        tag: base + SERVE_OFF_RES_VAL,
                    });
                }
            }
            // Shutdown: one more seq-numbered broadcast, then drain.
            let base = serve_base(batches as u64);
            if p == 0 {
                for q in 1..n {
                    ops.push(Op::Send {
                        dst: q,
                        tag: base + SERVE_OFF_CTRL,
                    });
                }
            } else {
                ops.push(Op::Recv {
                    src: 0,
                    tag: base + SERVE_OFF_CTRL,
                });
            }
            ops.push(Op::Barrier {
                id: SERVE_QUIESCE_ID,
            });
            Program { rank: p, ops }
        })
        .collect()
}

// ----------------------------------------------------------------------
// Codec negotiation at rendezvous
// ----------------------------------------------------------------------

/// Hello stream base tag (`+ worker rank`).
const NEG_HELLO: u64 = 1 << 32;
/// Reply stream base tag (`+ worker rank`).
const NEG_REPLY: u64 = (1 << 32) + 0x100;

/// Builds the rendezvous negotiation: every worker sends its hello
/// (world size, rank, codec byte) to rank 0 and blocks on the reply;
/// rank 0 collects all hellos, then answers each one. A codec mismatch
/// does not change this shape — rank 0 rejects by erroring out of the
/// rendezvous, and the connection teardown unblocks a blocked reader
/// just as a frame does, so the reject is modeled as a reply message.
/// Either way every worker is answered and no rank hangs.
#[must_use]
pub fn build_negotiation_programs(n: usize) -> Vec<Program> {
    (0..n)
        .map(|p| {
            let mut ops = Vec::new();
            if p == 0 {
                for q in 1..n {
                    ops.push(Op::Recv {
                        src: q,
                        tag: NEG_HELLO + q as u64,
                    });
                }
                for q in 1..n {
                    ops.push(Op::Send {
                        dst: q,
                        tag: NEG_REPLY + q as u64,
                    });
                }
            } else {
                ops.push(Op::Send {
                    dst: 0,
                    tag: NEG_HELLO + p as u64,
                });
                ops.push(Op::Recv {
                    src: 0,
                    tag: NEG_REPLY + p as u64,
                });
            }
            Program { rank: p, ops }
        })
        .collect()
}

/// Runs the full CI sweep — every `(N, K)` in `ns × ks`, both
/// communication models, `layers` layers — and folds the results into one
/// [`PassReport`]. A clean report is a machine-checked proof that the
/// schedule [`Worker`](sar_core::Worker) executes is matched,
/// deadlock-free and within the `(K+2)/N` residency bound at every swept
/// scale — and that the out-of-core stale replay of the same schedule
/// keeps at most `min(K, N−1) + 2` blocks in RAM with the remainder on
/// the disk tier.
///
/// Beyond the exact single-step schedules, the sweep covers the
/// approximate-exchange protocols (`gradonly`, `stale:2`, `stale:3` over
/// four epochs, proving the symmetric skips and unconditional tag bumps
/// keep mixed protocol phases aligned), the serve tier's seq-numbered
/// control broadcast / MFG exchanges / drain-then-ack shutdown, and the
/// rendezvous codec negotiation — each a distinct obligation counter in
/// the proof report.
#[must_use]
pub fn sweep(ns: &[usize], ks: &[usize], layers: usize) -> PassReport {
    let mut report = PassReport::new("protocol");
    let mut peak_overall = 0usize;
    let mut peak_ram_overall = 0usize;
    for &n in ns {
        for &k in ks {
            for model in [CaseModel::Case1, CaseModel::Case2] {
                let programs = build_programs(n, k, model, layers);
                let staged_bound = k.min(n - 1) + 1;
                let (stats, findings) = verify(n, &programs, staged_bound);
                report.bump("configs_verified", 1);
                report.bump("sends_matched", stats.sends);
                report.bump("ops_executed", stats.steps);
                peak_overall = peak_overall.max(stats.peak_staged);
                let here = format!("N={n} K={k} model={}", model.name());
                for mut finding in findings {
                    finding.location = format!("{here} {}", finding.location);
                    report.findings.push(finding);
                }
            }
            // Out-of-core: the same schedule replayed against the disk
            // tier, per rank (communication-free, so ranks verify
            // independently).
            let ram_bound = k.min(n - 1) + 2;
            for p in 0..n {
                let program = build_tiered_program(n, p, k);
                let (stats, findings) = verify_tiered(n, p, &program, ram_bound);
                report.bump("tiered_replays_verified", 1);
                report.bump("disk_faults_matched", stats.faults);
                peak_ram_overall = peak_ram_overall.max(stats.peak_ram_blocks);
                let here = format!("N={n} K={k} model=ooc");
                for mut finding in findings {
                    finding.location = format!("{here} {}", finding.location);
                    report.findings.push(finding);
                }
            }
        }
    }
    // Approximate-exchange protocols: gradonly and stale replay with
    // refresh epochs interleaved, four epochs so every Stale(r) swept
    // both refreshes and replays — proving the unconditional tag bumps
    // keep mixed protocol phases matched and deadlock-free.
    const PROTO_EPOCHS: usize = 4;
    for &n in ns {
        for &k in ks {
            for model in [CaseModel::Case1, CaseModel::Case2] {
                for proto in [
                    ProtoSpec::GradOnly,
                    ProtoSpec::Stale(2),
                    ProtoSpec::Stale(3),
                ] {
                    let programs: Vec<Program> = (0..n)
                        .map(|p| {
                            build_protocol_program(n, p, k, model, layers, proto, PROTO_EPOCHS)
                        })
                        .collect();
                    let staged_bound = k.min(n - 1) + 1;
                    let (stats, findings) = verify(n, &programs, staged_bound);
                    report.bump("protocol_configs_verified", 1);
                    report.bump("sends_matched", stats.sends);
                    report.bump("ops_executed", stats.steps);
                    peak_overall = peak_overall.max(stats.peak_staged);
                    let here = format!("N={n} K={k} model={} proto={}", model.name(), proto.name());
                    for mut finding in findings {
                        finding.location = format!("{here} {}", finding.location);
                        report.findings.push(finding);
                    }
                }
            }
        }
    }
    // Serve tier: seq-numbered control broadcasts, MFG build + forward
    // all-to-alls, result gather, drain-then-ack shutdown.
    for &n in ns {
        let programs = build_serve_programs(n, layers, 3);
        let (stats, findings) = verify(n, &programs, 0);
        report.bump("serve_configs_verified", 1);
        report.bump("sends_matched", stats.sends);
        report.bump("ops_executed", stats.steps);
        let here = format!("N={n} model=serve");
        for mut finding in findings {
            finding.location = format!("{here} {}", finding.location);
            report.findings.push(finding);
        }
    }
    // Codec negotiation at rendezvous: every worker's hello is answered —
    // by an accept frame or by the teardown a reject causes — so neither
    // outcome can hang a rank.
    for &n in ns {
        let programs = build_negotiation_programs(n);
        let (stats, findings) = verify(n, &programs, 0);
        report.bump("negotiations_verified", 1);
        report.bump("sends_matched", stats.sends);
        report.bump("ops_executed", stats.steps);
        let here = format!("N={n} model=negotiation");
        for mut finding in findings {
            finding.location = format!("{here} {}", finding.location);
            report.findings.push(finding);
        }
    }
    report.bump("peak_staged_blocks", peak_overall as u64);
    report.bump("peak_ram_blocks", peak_ram_overall as u64);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_sweep_is_clean() {
        let report = sweep(&[2, 3, 4, 5, 6, 7, 8], &[0, 1, 2, 3], 2);
        assert!(
            report.clean(),
            "protocol sweep found: {:#?}",
            report.findings
        );
        // 7 world sizes × 4 depths × 2 models.
        assert_eq!(report.stats[0], ("configs_verified".into(), 56));
    }

    #[test]
    fn dropped_recv_is_reported_as_unmatched_send() {
        let mut programs = build_programs(4, 1, CaseModel::Case1, 1);
        // Seed the violation: rank 2 forgets one fetch receive (and its
        // consume, to keep residency accounting separate).
        let drop_at = programs[2]
            .ops
            .iter()
            .position(|op| matches!(op, Op::Recv { .. }))
            .expect("fetch plan has receives");
        programs[2].ops.remove(drop_at);
        let consume_at = programs[2]
            .ops
            .iter()
            .rposition(|op| matches!(op, Op::Consume))
            .expect("fetch plan has consumes");
        programs[2].ops.remove(consume_at);
        let (_, findings) = verify(4, &programs, 2);
        assert!(
            findings
                .iter()
                .any(|f| f.rule == "matched-send-recv" && f.message.contains("never received")),
            "expected an unmatched-send finding, got {findings:#?}"
        );
    }

    #[test]
    fn dropped_send_is_reported_as_deadlock_naming_both_ranks() {
        let mut programs = build_programs(3, 0, CaseModel::Case1, 1);
        let drop_at = programs[1]
            .ops
            .iter()
            .position(|op| matches!(op, Op::Send { .. }))
            .expect("fetch plan has sends");
        programs[1].ops.remove(drop_at);
        let (_, findings) = verify(3, &programs, 1);
        let deadlock = findings
            .iter()
            .find(|f| f.rule == "deadlock-free")
            .expect("expected a deadlock finding");
        assert!(
            deadlock.message.contains("blocked on recv"),
            "unexpected message: {}",
            deadlock.message
        );
    }

    #[test]
    fn residency_peak_matches_depth() {
        for k in 0..4usize {
            let programs = build_programs(5, k, CaseModel::Case2, 2);
            let (stats, findings) = verify(5, &programs, k.min(4) + 1);
            assert!(findings.is_empty(), "k={k}: {findings:#?}");
            assert_eq!(stats.peak_staged, k.min(4) + 1, "k={k}");
        }
    }

    #[test]
    fn tiered_replay_ram_peak_is_k_plus_2() {
        // With N−1 > K the steady phase refills the staging queue to its
        // bound while the accumulator is live, so the RAM peak is exactly
        // min(K, N−1) + 2 — and never more, at any rank.
        for k in 0..4usize {
            for p in 0..5usize {
                let program = build_tiered_program(5, p, k);
                let (stats, findings) = verify_tiered(5, p, &program, k.min(4) + 2);
                assert!(findings.is_empty(), "k={k} p={p}: {findings:#?}");
                assert_eq!(stats.peak_ram_blocks, k.min(4) + 2, "k={k} p={p}");
                assert_eq!(stats.faults, 4, "k={k} p={p}");
            }
        }
    }

    #[test]
    fn tiered_replay_too_tight_bound_is_reported() {
        // The verifier is not vacuous: handing it a bound one block
        // below the true peak produces a residency finding.
        let program = build_tiered_program(6, 0, 2);
        let (_, findings) = verify_tiered(6, 0, &program, 3);
        assert!(
            findings
                .iter()
                .any(|f| f.rule == "ooc-residency-bound" && f.message.contains("bound is 3")),
            "expected a residency finding, got {findings:#?}"
        );
    }

    #[test]
    fn approximate_protocols_are_matched_and_deadlock_free() {
        for n in 2..=8usize {
            for proto in [
                ProtoSpec::GradOnly,
                ProtoSpec::Stale(2),
                ProtoSpec::Stale(3),
            ] {
                for model in [CaseModel::Case1, CaseModel::Case2] {
                    let programs: Vec<Program> = (0..n)
                        .map(|p| build_protocol_program(n, p, 1, model, 2, proto, 4))
                        .collect();
                    let (_, findings) = verify(n, &programs, 1.min(n - 1) + 1);
                    assert!(
                        findings.is_empty(),
                        "n={n} proto={} model={}: {findings:#?}",
                        proto.name(),
                        model.name()
                    );
                }
            }
        }
    }

    #[test]
    fn exact_protocol_program_matches_single_step_builder_per_epoch() {
        // One Exact epoch is exactly the single-step program (modulo the
        // barrier id), so the multi-epoch builder proves the same
        // schedule the original sweep proves.
        let single = build_programs(4, 1, CaseModel::Case2, 2);
        let multi: Vec<Program> = (0..4)
            .map(|p| build_protocol_program(4, p, 1, CaseModel::Case2, 2, ProtoSpec::Exact, 1))
            .collect();
        for (s, m) in single.iter().zip(&multi) {
            assert_eq!(s.ops, m.ops, "rank {}", s.rank);
        }
    }

    #[test]
    fn conditional_tag_bump_on_one_rank_breaks_matching() {
        // Seed the bug the unconditional-bump rule prevents: rank 0
        // forgets to advance its tag for the skipped fetch of a stale
        // epoch, so its epoch-1 gradient exchange runs under tag 2 while
        // every peer expects tag 3.
        let n = 3;
        let mut programs: Vec<Program> = (0..n)
            .map(|p| build_protocol_program(n, p, 0, CaseModel::Case1, 1, ProtoSpec::Stale(2), 2))
            .collect();
        for op in &mut programs[0].ops {
            match op {
                Op::Send { tag, .. } | Op::Recv { tag, .. } if *tag == 3 => *tag = 2,
                _ => {}
            }
        }
        let (_, findings) = verify(n, &programs, 1);
        assert!(
            findings.iter().any(|f| f.rule == "deadlock-free")
                || findings.iter().any(|f| f.rule == "matched-send-recv"),
            "expected misaligned tag streams to be caught, got {findings:#?}"
        );
    }

    #[test]
    fn serve_control_plane_is_matched_and_deadlock_free() {
        for n in 2..=8usize {
            let programs = build_serve_programs(n, 2, 3);
            let (stats, findings) = verify(n, &programs, 0);
            assert!(findings.is_empty(), "n={n}: {findings:#?}");
            // Per batch: ctrl (n−1) + 2·layers all-to-alls (n(n−1)) +
            // results (2(n−1)); shutdown adds one more ctrl broadcast.
            let per_batch = (n - 1) + 4 * n * (n - 1) + 2 * (n - 1);
            assert_eq!(stats.sends, (3 * per_batch + (n - 1)) as u64, "n={n}");
            assert_eq!(stats.sends, stats.recvs, "n={n}");
        }
    }

    #[test]
    fn worker_skipping_the_quiesce_barrier_is_reported() {
        // Seed the shutdown bug quiesce() exists to prevent: rank 2 acks
        // the shutdown but exits without draining. The barrier can then
        // never resolve and every parked rank is named.
        let mut programs = build_serve_programs(4, 2, 1);
        let barrier_at = programs[2]
            .ops
            .iter()
            .position(|op| matches!(op, Op::Barrier { .. }))
            .expect("serve program ends at the quiesce barrier");
        programs[2].ops.remove(barrier_at);
        let (_, findings) = verify(4, &programs, 0);
        assert!(
            findings
                .iter()
                .any(|f| f.rule == "deadlock-free" && f.message.contains("barrier")),
            "expected a quiesce deadlock, got {findings:#?}"
        );
    }

    #[test]
    fn stale_seq_number_is_reported_as_deadlock() {
        // Seed a seq-counter bug: rank 1 forgets to advance its batch
        // sequence after batch 0 and listens for batch 1's control
        // message on batch 0's tag, which was already consumed.
        let mut programs = build_serve_programs(3, 1, 2);
        let stale_tag = serve_base(0) + SERVE_OFF_CTRL;
        let fresh_tag = serve_base(1) + SERVE_OFF_CTRL;
        let mut seen = 0;
        for op in &mut programs[1].ops {
            if let Op::Recv { src: 0, tag } = op {
                if *tag == fresh_tag {
                    *tag = stale_tag;
                    seen += 1;
                }
            }
        }
        assert_eq!(seen, 1, "expected exactly one batch-1 ctrl recv");
        let (_, findings) = verify(3, &programs, 0);
        assert!(
            findings.iter().any(|f| f.rule == "deadlock-free"),
            "expected the stale seq to deadlock, got {findings:#?}"
        );
    }

    #[test]
    fn negotiation_answers_every_worker_for_both_outcomes() {
        // Accept and reject produce the same message shape (a reject's
        // connection teardown unblocks the reader like a frame), so one
        // clean verification covers both outcomes.
        for n in 2..=8usize {
            let programs = build_negotiation_programs(n);
            let (stats, findings) = verify(n, &programs, 0);
            assert!(findings.is_empty(), "n={n}: {findings:#?}");
            assert_eq!(stats.sends, 2 * (n as u64 - 1), "n={n}");
        }
    }

    #[test]
    fn negotiation_silent_reject_is_reported_as_deadlock() {
        // Seed the bug the reply-to-everyone rule prevents: rank 0 drops
        // the mismatched worker's reply without tearing the connection
        // down, leaving that worker blocked in the rendezvous forever.
        let mut programs = build_negotiation_programs(4);
        let reply_at = programs[0]
            .ops
            .iter()
            .position(|op| matches!(op, Op::Send { dst: 2, .. }))
            .expect("rank 0 replies to worker 2");
        programs[0].ops.remove(reply_at);
        let (_, findings) = verify(4, &programs, 0);
        assert!(
            findings
                .iter()
                .any(|f| f.rule == "deadlock-free" && f.message.contains("blocked on recv")),
            "expected the unanswered worker to be reported, got {findings:#?}"
        );
    }

    #[test]
    fn double_fault_is_reported_as_tier_conservation() {
        // Seed the violation: the second fault re-fetches the first
        // fault's round, which is no longer on the disk tier.
        let mut program = build_tiered_program(4, 1, 1);
        let faults: Vec<usize> = program
            .iter()
            .enumerate()
            .filter(|(_, op)| matches!(op, TierOp::Fault { .. }))
            .map(|(i, _)| i)
            .collect();
        assert!(faults.len() >= 2, "plan has {} faults", faults.len());
        program[faults[1]] = program[faults[0]];
        let (_, findings) = verify_tiered(4, 1, &program, 3);
        assert!(
            findings
                .iter()
                .any(|f| f.rule == "ooc-tier-conservation"
                    && f.message.contains("not on the disk tier")),
            "expected a conservation finding, got {findings:#?}"
        );
    }
}
