//! Pass 5: the ledger-conservation verifier.
//!
//! The byte/message ledger is the workspace's observability backbone: the
//! smoke gates, the bench baselines, and `parity_digest()` all pin its
//! values, so an uncharged (or double-charged) send is a silent
//! correctness bug — the class PR 2 fixed by hand and PR 8's
//! logical/wire codec split doubled the surface of. This pass checks the
//! charging discipline statically, over the [`crate::ast`] model:
//!
//! * **`ledger-field-symmetry`** — a function that charges a logical
//!   counter charges its wire twin and message counter in the same body
//!   (`sent_bytes` ⇒ `wire_sent_bytes` + `sent_messages`; `recv_bytes` ⇒
//!   `wire_recv_bytes` + `recv_messages`). The PR 8 split made logical
//!   and wire bytes diverge by design; *where they are charged* may not.
//! * **`ledger-charge-before-transport`** — a function that hands a
//!   payload to `transport.send` has already charged `sent_bytes` at an
//!   earlier byte offset: a send that fails mid-transport must still
//!   appear in the sent counters (the panicking path dies before the
//!   ledger could be read otherwise).
//! * **`ledger-charge-on-delivery`** — a function that *delivers* a
//!   message (calls the blocking `transport.recv_any`) calls
//!   `charge_recv` in the same body. Poll paths (`try_recv_any`) only
//!   buffer and are exempt — charging there would double-count; this is
//!   the charge-on-delivery discipline stated in `ctx.rs`.
//! * **`codec-arm-symmetry`** — `encode_block` and `decode_body` in the
//!   wire codec dispatch over the *same* set of `Codec::` variants, and
//!   the `code`/`from_code` id mapping exists in both directions: a
//!   codec that encodes but cannot decode (or vice versa) would strand
//!   every peer of the negotiation.
//! * **`phase-scoped-comm`** — every `ctx.…` communication call site in
//!   `sar-core` and `sar-serve` sits in a function that opens a
//!   `phase_scope` (or inspects `current_phase`), per call site — finer
//!   than the linter's function-level rule, and honoring the same
//!   `allow(phase-scope)` waivers.

use std::path::Path;

use crate::ast::{line_of, FileInfo, Workspace};
use crate::{Finding, PassReport};

/// The comm-context methods whose call sites are phase-audited.
const CTX_COMM_CALLS: &[&str] = &[
    "send_nowait",
    "try_send",
    "try_recv",
    "send",
    "recv",
    "recv_tagged_any",
];

/// Runs the pass over a workspace checkout.
#[must_use]
pub fn run(root: &Path) -> PassReport {
    run_ws(&Workspace::load(root))
}

/// Identifier tokens (start offset, text) of blanked code.
fn tokens(src: &str) -> Vec<(usize, &str)> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'_' || b.is_ascii_alphabetic() {
            let start = i;
            while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                i += 1;
            }
            out.push((start, &src[start..i]));
        } else if b.is_ascii_digit() {
            while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    out
}

/// Byte offset of the first `field … +=` charge in `body` — the exact
/// token `field`, optionally indexed (`field[dst]`), followed by `+=`.
fn charge_offset(body: &str, field: &str) -> Option<usize> {
    let bytes = body.as_bytes();
    for (start, text) in tokens(body) {
        if text != field {
            continue;
        }
        let mut j = start + text.len();
        // Skip one `[…]` index.
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if bytes.get(j) == Some(&b'[') {
            let mut depth = 0usize;
            while j < bytes.len() {
                match bytes[j] {
                    b'[' => depth += 1,
                    b']' => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if bytes.get(j) == Some(&b'+') && bytes.get(j + 1) == Some(&b'=') {
            return Some(start);
        }
    }
    None
}

/// The set of `Codec::Variant` tokens referenced in `body`.
fn codec_variants(body: &str) -> Vec<String> {
    let bytes = body.as_bytes();
    let toks = tokens(body);
    let mut out = Vec::new();
    for (i, &(start, text)) in toks.iter().enumerate() {
        if text != "Codec" {
            continue;
        }
        let end = start + text.len();
        if bytes.get(end) == Some(&b':') && bytes.get(end + 1) == Some(&b':') {
            if let Some(&(vstart, variant)) = toks.get(i + 1) {
                if vstart == end + 2 && variant.chars().next().is_some_and(char::is_uppercase) {
                    out.push(variant.to_string());
                }
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Whether `line` of `file` (or its contiguous comment block above)
/// carries a `sar-check: allow(phase-scope)` waiver in the raw source.
fn phase_waived(file: &FileInfo, line: usize) -> bool {
    let raw_lines: Vec<&str> = file.raw.lines().collect();
    let needle = "sar-check: allow(phase-scope)";
    let has = |l: usize| l >= 1 && l <= raw_lines.len() && raw_lines[l - 1].contains(needle);
    if has(line) {
        return true;
    }
    let mut l = line.saturating_sub(1);
    while l >= 1 && l <= raw_lines.len() && raw_lines[l - 1].trim_start().starts_with("//") {
        if has(l) {
            return true;
        }
        l -= 1;
    }
    false
}

/// Runs the pass over an in-memory workspace model (the mutation-test
/// entry point).
#[must_use]
pub fn run_ws(ws: &Workspace) -> PassReport {
    let mut report = PassReport::new("ledger");

    for (file_idx, file) in ws.files.iter().enumerate() {
        let is_ctx = file.rel.ends_with("comm/src/ctx.rs");
        let is_codec = file.rel.ends_with("comm/src/codec.rs");
        let is_phase_scope =
            file.rel.starts_with("crates/core/src/") || file.rel.starts_with("crates/serve/src/");
        if !(is_ctx || is_codec || is_phase_scope) {
            continue;
        }

        for &fi in &file.fns {
            let f = &ws.fns[fi];
            debug_assert_eq!(f.file, file_idx);
            let here = |off: usize| {
                format!(
                    "{}:{}",
                    file.rel,
                    line_of(&file.line_starts, f.body_offset + off)
                )
            };

            if is_ctx {
                report.bump("ledger_fns_checked", 1);
                // Rule: ledger-field-symmetry.
                for (logical, twins) in [
                    ("sent_bytes", ["wire_sent_bytes", "sent_messages"]),
                    ("recv_bytes", ["wire_recv_bytes", "recv_messages"]),
                ] {
                    let Some(off) = charge_offset(&f.body, logical) else {
                        continue;
                    };
                    report.bump("charge_sites_checked", 1);
                    for twin in twins {
                        if charge_offset(&f.body, twin).is_none() {
                            report.findings.push(Finding {
                                rule: "ledger-field-symmetry".into(),
                                location: here(off),
                                message: format!(
                                    "fn `{}` charges `{logical}` but never `{twin}` — \
                                     the logical/wire/message counters must move \
                                     together or the parity ledger splits",
                                    f.name
                                ),
                            });
                        }
                    }
                }

                // Rule: ledger-charge-before-transport.
                if let Some(send_off) = f.body.find("transport.send(") {
                    report.bump("charge_sites_checked", 1);
                    match charge_offset(&f.body, "sent_bytes") {
                        Some(charge) if charge < send_off => {}
                        Some(charge) => report.findings.push(Finding {
                            rule: "ledger-charge-before-transport".into(),
                            location: here(charge),
                            message: format!(
                                "fn `{}` charges `sent_bytes` only after handing the \
                                 payload to the transport — a failed send would vanish \
                                 from the ledger",
                                f.name
                            ),
                        }),
                        None => report.findings.push(Finding {
                            rule: "ledger-charge-before-transport".into(),
                            location: here(send_off),
                            message: format!(
                                "fn `{}` calls `transport.send` without charging \
                                 `sent_bytes` — an unledgered send",
                                f.name
                            ),
                        }),
                    }
                }

                // Rule: ledger-charge-on-delivery.
                if let Some(recv_off) = f.body.find("transport.recv_any(") {
                    report.bump("charge_sites_checked", 1);
                    let charges = f.body.contains("charge_recv(")
                        || charge_offset(&f.body, "recv_bytes").is_some();
                    if !charges {
                        report.findings.push(Finding {
                            rule: "ledger-charge-on-delivery".into(),
                            location: here(recv_off),
                            message: format!(
                                "fn `{}` delivers via `transport.recv_any` without \
                                 calling `charge_recv` — received bytes would never \
                                 reach the ledger",
                                f.name
                            ),
                        });
                    }
                }
            }

            // Rule: phase-scoped-comm — per call site.
            if is_phase_scope {
                let scoped = f.body.contains("phase_scope(") || f.body.contains("current_phase(");
                let toks = tokens(&f.body);
                for (i, &(start, text)) in toks.iter().enumerate() {
                    if !CTX_COMM_CALLS.contains(&text) {
                        continue;
                    }
                    // Only `ctx.…(` / `self.ctx.…(` receivers count.
                    let is_ctx_call = i > 0
                        && toks[i - 1].1 == "ctx"
                        && f.body.as_bytes().get(start + text.len()) == Some(&b'(')
                        && f.body.as_bytes().get(start.wrapping_sub(1)) == Some(&b'.');
                    if !is_ctx_call {
                        continue;
                    }
                    report.bump("comm_sites_checked", 1);
                    if scoped || phase_waived(file, f.line) {
                        continue;
                    }
                    report.findings.push(Finding {
                        rule: "phase-scoped-comm".into(),
                        location: here(start),
                        message: format!(
                            "`ctx.{text}` call site in fn `{}` outside any phase_scope \
                             — its bytes would be ledgered as Other",
                            f.name
                        ),
                    });
                }
            }
        }

        // Rule: codec-arm-symmetry — file granularity.
        if is_codec {
            let arms = |name: &str| -> Option<Vec<String>> {
                file.fns
                    .iter()
                    .map(|&fi| &ws.fns[fi])
                    .find(|f| f.name == name)
                    .map(|f| codec_variants(&f.body))
            };
            match (arms("encode_block"), arms("decode_body")) {
                (Some(enc), Some(dec)) => {
                    report.bump("codec_variants_checked", enc.len().max(dec.len()) as u64);
                    for v in enc.iter().filter(|v| !dec.contains(v)) {
                        report.findings.push(Finding {
                            rule: "codec-arm-symmetry".into(),
                            location: file.rel.clone(),
                            message: format!(
                                "`Codec::{v}` has an encode arm but no decode arm — \
                                 peers negotiating it would receive undecodable frames"
                            ),
                        });
                    }
                    for v in dec.iter().filter(|v| !enc.contains(v)) {
                        report.findings.push(Finding {
                            rule: "codec-arm-symmetry".into(),
                            location: file.rel.clone(),
                            message: format!(
                                "`Codec::{v}` has a decode arm but no encode arm — \
                                 dead negotiation surface"
                            ),
                        });
                    }
                }
                (enc, dec) => {
                    if enc.is_none() || dec.is_none() {
                        report.findings.push(Finding {
                            rule: "codec-arm-symmetry".into(),
                            location: file.rel.clone(),
                            message: "wire codec must define both `encode_block` and \
                                      `decode_body`"
                                .into(),
                        });
                    }
                }
            }
            // The id mapping must exist in both directions.
            let names: Vec<&str> = file
                .fns
                .iter()
                .map(|&fi| ws.fns[fi].name.as_str())
                .collect();
            for pair in [("code", "from_code"), ("name", "parse")] {
                if names.contains(&pair.0) != names.contains(&pair.1) {
                    report.findings.push(Finding {
                        rule: "codec-arm-symmetry".into(),
                        location: file.rel.clone(),
                        message: format!(
                            "codec id mapping is one-way: `{}` without `{}`",
                            if names.contains(&pair.0) {
                                pair.0
                            } else {
                                pair.1
                            },
                            if names.contains(&pair.0) {
                                pair.1
                            } else {
                                pair.0
                            },
                        ),
                    });
                }
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings_for(sources: &[(&str, &str)]) -> Vec<Finding> {
        run_ws(&Workspace::from_sources(sources)).findings
    }

    const GOOD_CTX: &str = "\
impl Ctx {
    fn try_send(&self, dst: usize) {
        let mut s = self.stats.borrow_mut();
        s.sent_bytes[dst] += logical;
        s.sent_messages += 1;
        entry.wire_sent_bytes += wire;
        self.transport.send(dst, tag, payload);
    }
    fn recv(&self) {
        let msg = self.transport.recv_any(t);
        self.charge_recv(src, tag, &payload, wire, blocked);
    }
    fn charge_recv(&self) {
        s.recv_bytes += bytes;
        entry.wire_recv_bytes += wire;
        entry.recv_messages += 1;
    }
}
";

    #[test]
    fn well_formed_charging_is_clean() {
        assert!(findings_for(&[("crates/comm/src/ctx.rs", GOOD_CTX)]).is_empty());
    }

    #[test]
    fn missing_wire_twin_is_flagged() {
        // Seeded bug: the PR 8 class — logical counter moves, wire
        // counter forgotten.
        let src = GOOD_CTX.replace("entry.wire_sent_bytes += wire;\n        ", "");
        let findings = findings_for(&[("crates/comm/src/ctx.rs", &src)]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "ledger-field-symmetry");
        assert!(findings[0].message.contains("wire_sent_bytes"));
    }

    #[test]
    fn charge_after_transport_send_is_flagged() {
        let src = "\
impl Ctx {
    fn try_send(&self, dst: usize) {
        self.transport.send(dst, tag, payload);
        s.sent_bytes[dst] += logical;
        s.sent_messages += 1;
        entry.wire_sent_bytes += wire;
    }
}
";
        let findings = findings_for(&[("crates/comm/src/ctx.rs", src)]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "ledger-charge-before-transport");
    }

    #[test]
    fn delivery_without_charge_recv_is_flagged_but_poll_buffering_is_exempt() {
        let src = "\
impl Ctx {
    fn recv(&self) {
        let msg = self.transport.recv_any(t);
        self.buffer(msg);
    }
    fn poll_ready(&self) {
        let msg = self.transport.try_recv_any();
        self.buffer(msg);
    }
}
";
        let findings = findings_for(&[("crates/comm/src/ctx.rs", src)]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "ledger-charge-on-delivery");
        assert!(findings[0].message.contains("recv"));
    }

    #[test]
    fn codec_arm_asymmetry_is_flagged() {
        let good = "\
impl Codec {
    fn encode_block(&self) {
        match self { Codec::Raw => a(), Codec::F16 => b() }
    }
    fn decode_body(&self) {
        match self { Codec::Raw => c(), Codec::F16 => d() }
    }
    fn code(&self) {}
    fn from_code(c: u8) {}
    fn name(&self) {}
    fn parse(s: &str) {}
}
";
        assert!(findings_for(&[("crates/comm/src/codec.rs", good)]).is_empty());

        // Seeded bug: a variant that encodes but cannot decode.
        let bad = good.replace("Codec::F16 => d()", "Codec::Raw => d()");
        let findings = findings_for(&[("crates/comm/src/codec.rs", &bad)]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "codec-arm-symmetry");
        assert!(findings[0].message.contains("F16"));
    }

    #[test]
    fn unscoped_comm_call_site_is_flagged_and_waiver_honored() {
        let bad = "\
impl W {
    fn exchange(&self) {
        self.ctx.send_nowait(dst, tag, payload);
    }
}
";
        let findings = findings_for(&[("crates/core/src/worker.rs", bad)]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "phase-scoped-comm");

        let scoped = "\
impl W {
    fn exchange(&self) {
        let _phase = self.ctx.phase_scope(Phase::ForwardFetch);
        self.ctx.send_nowait(dst, tag, payload);
    }
}
";
        assert!(findings_for(&[("crates/core/src/worker.rs", scoped)]).is_empty());

        let waived = "\
impl W {
    // sar-check: allow(phase-scope)
    fn exchange(&self) {
        self.ctx.send_nowait(dst, tag, payload);
    }
}
";
        assert!(findings_for(&[("crates/core/src/worker.rs", waived)]).is_empty());
    }
}
